//! End-to-end propagation parity suite (DESIGN.md §14).
//!
//! The headline property: a subscriber that applies the pushed
//! incremental deltas to its stale replica ends **bit-identical** to a
//! full recompute of its views over the current base instance — and
//! stays identical across forced mid-stream degradations
//! (overflow-triggered recompute-and-resync), client kills with
//! durable-cursor resume, and full engine restarts.
//!
//! Fault-injection claims proven here:
//! * a wedged subscriber never blocks the writer — every commit
//!   succeeds while the slow consumer is shed to resync-pending;
//! * degradations are recorded (counter + mirrored event), never
//!   silent;
//! * a killed client resumes from its durable cursor after an engine
//!   restart, and a stale cursor degrades to a cursor-lost resync
//!   rather than silently skipping events.

use mm_repository::codec::{Encode, Writer};
use model_management::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// Fixture: base schema, views, and a subscriber-side replica.
// ---------------------------------------------------------------------

fn base_schema() -> Schema {
    SchemaBuilder::new("Base")
        .relation("R", &[("a", DataType::Int), ("b", DataType::Int)])
        .build()
        .expect("static test schema")
}

/// Two views over `R`: the identity and a selection-projection, so
/// deltas exercise both pass-through and filtered maintenance.
fn views() -> ViewSet {
    let mut vs = ViewSet::new("Base", "V");
    vs.push(ViewDef::new("VAll", Expr::base("R")));
    vs.push(ViewDef::new(
        "VPos",
        Expr::base("R")
            .select(Predicate::Cmp {
                op: CmpOp::Gt,
                left: Scalar::col("a"),
                right: Scalar::lit(0i64),
            })
            .project(&["a"]),
    ));
    vs
}

fn seed_db(rows: &[(i64, i64)]) -> Database {
    let mut db = Database::empty_of(&base_schema());
    for (a, b) in rows {
        db.insert("R", Tuple::new(vec![Value::Int(*a), Value::Int(*b)]));
    }
    db
}

fn batch(rows: &[(i64, i64)]) -> Vec<(String, Vec<Tuple>)> {
    vec![(
        "R".to_string(),
        rows.iter().map(|(a, b)| Tuple::new(vec![Value::Int(*a), Value::Int(*b)])).collect(),
    )]
}

/// The subscriber's local materialization: per-view tuple sets plus
/// the cursor of the last applied notification.
#[derive(Default)]
struct Replica {
    views: BTreeMap<String, std::collections::BTreeSet<Tuple>>,
    cursor: u64,
    resyncs: usize,
}

impl Replica {
    fn apply(&mut self, n: &Notification) {
        match n {
            Notification::Delta { seq, view_inserts } => {
                for (view, tuples) in view_inserts {
                    self.views.entry(view.clone()).or_default().extend(tuples.iter().cloned());
                }
                self.cursor = *seq;
            }
            Notification::Resync { seq, views, .. } => {
                self.views.clear();
                for (name, rel) in views.relations() {
                    self.views
                        .insert(name.to_string(), rel.tuples().iter().cloned().collect());
                }
                self.cursor = *seq;
                self.resyncs += 1;
            }
        }
    }

    fn drain(&mut self, engine: &Engine, id: u64) {
        loop {
            let r = engine.poll(id, 64).expect("poll");
            if r.notifications.is_empty() {
                break;
            }
            for n in &r.notifications {
                self.apply(n);
            }
        }
    }

    /// Canonical byte image: every view's sorted tuples through the
    /// repository codec — the same bytes the WAL and the wire use.
    fn canon_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        for (name, tuples) in &self.views {
            w.str(name);
            w.u64(tuples.len() as u64);
            for t in tuples {
                t.encode(&mut w);
            }
        }
        w.finish().to_vec()
    }
}

/// Full recompute oracle: evaluate every view definition from scratch
/// over the engine's current committed instance, canonicalized through
/// the same codec as the replica.
fn recompute_bytes(engine: &Engine, instance: &str) -> Vec<u8> {
    let base = engine.instance(instance).expect("tracked instance");
    let schema = base_schema();
    let mut canon: BTreeMap<String, Vec<Tuple>> = BTreeMap::new();
    for v in &views().views {
        let rel = eval(&v.expr, &schema, &base).expect("recompute");
        canon.insert(v.name.clone(), rel.sorted_tuples());
    }
    let mut w = Writer::new();
    for (name, tuples) in &canon {
        w.str(name);
        w.u64(tuples.len() as u64);
        for t in tuples {
            t.encode(&mut w);
        }
    }
    w.finish().to_vec()
}

fn fresh_engine(config: EngineConfig) -> Engine {
    let engine = Engine::with_config(config).expect("engine");
    engine.add_schema(base_schema()).expect("base schema");
    engine.put_instance("I", seed_db(&[(1, 10), (-2, 20)])).expect("seed load");
    engine
}

// ---------------------------------------------------------------------
// Parity: pushed deltas == full recompute, bit for bit.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (subscribe → push deltas → apply) equals full recompute for
    /// arbitrary interleavings of batches and polls — including the
    /// batches committed *before* the first poll (folded into the
    /// bootstrap snapshot) and any overflow resyncs along the way.
    #[test]
    fn pushed_deltas_match_full_recompute(
        rows in proptest::collection::vec(
            proptest::collection::vec((-5i64..50, 0i64..100), 1..4),
            1..12,
        ),
        poll_every in 1usize..4,
        queue_bound in 2usize..32,
    ) {
        let engine = fresh_engine(EngineConfig {
            propagate: PropagateConfig {
                queue_bound,
                high_water: queue_bound.saturating_sub(1).max(1),
                low_water: 1,
                ..PropagateConfig::default()
            },
            ..EngineConfig::default()
        });
        let id = engine.subscribe("I", views()).expect("subscribe");
        let mut replica = Replica::default();
        for (i, b) in rows.iter().enumerate() {
            engine.insert_batch("I", batch(b)).expect("commit must never block");
            if i % poll_every == 0 {
                replica.drain(&engine, id);
            }
        }
        replica.drain(&engine, id);
        prop_assert_eq!(replica.canon_bytes(), recompute_bytes(&engine, "I"));
        prop_assert_eq!(replica.cursor, engine.repo.last_seq());
    }
}

/// A forced mid-stream resync (queue overflow while the client is
/// wedged) leaves the replica bit-identical to recompute, the writer
/// unblocked, and the degradation recorded in the metrics and the
/// event stream.
#[test]
fn overflow_degrades_records_and_resyncs_to_parity() {
    let ring = RingCollector::with_capacity(256);
    let tel = Telemetry::new(ring.clone());
    let engine = fresh_engine(EngineConfig {
        telemetry: tel,
        propagate: PropagateConfig {
            queue_bound: 3,
            high_water: 2,
            low_water: 1,
            ..PropagateConfig::default()
        },
        ..EngineConfig::default()
    });
    let id = engine.subscribe("I", views()).expect("subscribe");
    let mut replica = Replica::default();
    replica.drain(&engine, id); // bootstrap snapshot
    assert_eq!(replica.resyncs, 1);

    // Wedge the consumer: 10 commits against a queue bounded at 3.
    // Every commit must succeed — the slow subscriber is shed, the
    // writer never waits.
    for i in 0..10i64 {
        engine.insert_batch("I", batch(&[(i, i * 2)])).expect("writer must not block");
    }
    let status = engine.subscriber_status(id).expect("status");
    assert_eq!(
        status.resync_pending,
        Some(ResyncCause::Overflow),
        "wedged consumer should be degraded, got {status:?}"
    );

    replica.drain(&engine, id);
    assert_eq!(replica.resyncs, 2, "recovery must arrive as one snapshot");
    assert_eq!(replica.canon_bytes(), recompute_bytes(&engine, "I"));

    // ...and streaming resumes incrementally after the resync.
    engine.insert_batch("I", batch(&[(100, 0)])).expect("post-resync commit");
    replica.drain(&engine, id);
    assert_eq!(replica.resyncs, 2, "back to streaming — no extra snapshot");
    assert_eq!(replica.canon_bytes(), recompute_bytes(&engine, "I"));

    // The degradation is counted and mirrored 1:1 as an event.
    let m = engine.telemetry().metrics().expect("telemetry enabled").snapshot();
    assert_eq!(
        m.value("propagate.resyncs_overflow"),
        1,
        "exactly one overflow degradation: {m:?}"
    );
    let degraded_events =
        ring.drain().iter().filter(|e| e.op == "propagate.degraded").count();
    assert_eq!(degraded_events, 1, "events mirror the counter 1:1");
}

// ---------------------------------------------------------------------
// Kill / restart: durable cursors and registry recovery.
// ---------------------------------------------------------------------

/// Kill the client, restart the engine from disk, resume from the
/// durable cursor: the registry and instances recover via
/// `open_durable`, a fresh-enough cursor keeps streaming, and parity
/// holds afterwards.
#[test]
fn resume_after_engine_restart_from_durable_cursor() {
    let mem = MemStorage::new();
    let (id, mut replica) = {
        let engine = Engine::open_durable(mem.clone(), DurableOptions::default()).expect("open");
        engine.add_schema(base_schema()).expect("schema");
        engine.put_instance("I", seed_db(&[(1, 1)])).expect("load");
        let id = engine.subscribe("I", views()).expect("subscribe");
        let mut replica = Replica::default();
        replica.drain(&engine, id);
        engine.insert_batch("I", batch(&[(2, 2)])).expect("commit");
        replica.drain(&engine, id);
        engine.ack(id, replica.cursor).expect("durable ack");
        (id, replica)
        // engine dropped here — the "crash"; `mem` holds the disk image
    };

    let recovered =
        Engine::open_durable(MemStorage::from_files(mem.dump()), DurableOptions::default())
            .expect("recovery");
    let sub = recovered.repo.subscription(id).expect("registry survived the restart");
    assert_eq!(sub.cursor, replica.cursor, "ack was durable");

    // Resume from the durable cursor: it matches everything delivered,
    // so streaming continues without a resync.
    recovered.resume(id, sub.cursor).expect("resume");
    recovered.insert_batch("I", batch(&[(3, 3)])).expect("post-restart commit");
    let before = replica.resyncs;
    replica.drain(&recovered, id);
    assert_eq!(replica.resyncs, before, "fresh cursor resumes incrementally");
    assert_eq!(replica.canon_bytes(), recompute_bytes(&recovered, "I"));
}

/// A client that comes back with a cursor *behind* what recovery can
/// cover is degraded to a cursor-lost resync — never silently skipped
/// ahead — and still converges to parity.
#[test]
fn stale_cursor_after_restart_degrades_to_resync() {
    let mem = MemStorage::new();
    let id = {
        let engine = Engine::open_durable(mem.clone(), DurableOptions::default()).expect("open");
        engine.add_schema(base_schema()).expect("schema");
        engine.put_instance("I", seed_db(&[(1, 1)])).expect("load");
        let id = engine.subscribe("I", views()).expect("subscribe");
        // Commit events the client never polls: after the restart the
        // feed no longer covers them.
        for i in 0..4i64 {
            engine.insert_batch("I", batch(&[(10 + i, 0)])).expect("commit");
        }
        id
    };

    let recovered =
        Engine::open_durable(MemStorage::from_files(mem.dump()), DurableOptions::default())
            .expect("recovery");
    // The client claims cursor 0 (it applied only the bootstrap): the
    // restarted feed starts past that, so resume must degrade.
    recovered.resume(id, 0).expect("resume");
    let mut replica = Replica::default();
    replica.drain(&recovered, id);
    assert_eq!(replica.resyncs, 1, "stale cursor must arrive as a snapshot");
    assert_eq!(replica.canon_bytes(), recompute_bytes(&recovered, "I"));
    let status = recovered.subscriber_status(id).expect("status");
    assert_eq!(status.queued, 0);
    assert_eq!(status.resync_pending, None, "resync delivered, streaming again");
}

// ---------------------------------------------------------------------
// Over the wire: kill the TCP client mid-stream, reconnect, resume.
// ---------------------------------------------------------------------

#[test]
fn wire_subscriber_killed_mid_stream_resumes_from_cursor() {
    use mm_server::{Client, Server, ServerConfig};
    use std::time::Duration;

    let engine = fresh_engine(EngineConfig::default());
    let handle = Server::start(
        engine,
        ServerConfig { io_timeout: Duration::from_millis(500), ..ServerConfig::default() },
    )
    .expect("start");

    let mut replica = Replica::default();
    let (id, cursor) = {
        let mut c = Client::connect(handle.addr()).expect("connect");
        let id = c.subscribe("I", &views()).expect("subscribe");
        let (ns, _) = c.poll(id, 64).expect("bootstrap poll");
        for n in &ns {
            replica.apply(n);
        }
        c.insert_batch("I", &batch(&[(7, 7)])).expect("wire commit");
        let (ns, _) = c.poll(id, 64).expect("poll");
        for n in &ns {
            replica.apply(n);
        }
        c.ack(id, replica.cursor).expect("ack");
        (id, replica.cursor)
        // client dropped without unsubscribe — the "kill"
    };

    // A second client commits while the subscriber is gone.
    let mut writer = Client::connect(handle.addr()).expect("writer connect");
    writer.insert_batch("I", &batch(&[(8, 8)])).expect("commit while disconnected");

    // Reconnect, resume from the durable cursor, drain, verify parity
    // against a full recompute over the base the wire history implies:
    // the seed load plus both committed batches.
    let mut c = Client::connect(handle.addr()).expect("reconnect");
    c.resume(id, cursor).expect("resume");
    loop {
        let (ns, _) = c.poll(id, 64).expect("poll");
        if ns.is_empty() {
            break;
        }
        for n in &ns {
            replica.apply(n);
        }
    }
    let base = seed_db(&[(1, 10), (-2, 20), (7, 7), (8, 8)]);
    let schema = base_schema();
    let mut w = Writer::new();
    for v in &views().views {
        let rel = eval(&v.expr, &schema, &base).expect("recompute");
        w.str(&v.name);
        let tuples = rel.sorted_tuples();
        w.u64(tuples.len() as u64);
        for t in &tuples {
            t.encode(&mut w);
        }
    }
    assert_eq!(replica.canon_bytes(), w.finish().to_vec());

    c.unsubscribe(id).expect("unsubscribe");
    handle.shutdown().expect("shutdown");
}
