//! Compact-data-plane property suite (DESIGN.md §16).
//!
//! The interned/inline representation is a pure layout optimisation:
//! every observable output — chased instances, minted null ids,
//! canonical codec bytes, EXPLAIN text, CQ answers — must be
//! bit-identical whether tuples are built through the symbol pool
//! (`Value::Sym`, inline arity-≤4 layout, cached hashes) or through
//! the pre-interning baseline (`with_compact(false)`: owned strings,
//! spilled tuples, uncached hashes). These properties drive randomly
//! generated and deliberately skewed text workloads through both legs
//! and diff the bytes.
//!
//! The second half fuzzes durability: v4 snapshots carry an intern-pool
//! section (the distinct text values of all tracked instances), and a
//! recovery over arbitrarily mutated pool bytes must return Ok or a
//! typed error — never panic, whatever the corruption says about
//! string lengths or pool cardinality.

use mm_eval::{find_homomorphisms, Binding};
use mm_repository::codec::{Encode, Writer};
use mm_repository::{DurableOptions, MemStorage, Repository, SNAPSHOT_FILE, WAL_FILE};
use mm_workload::faults::{mutate_bytes, truncate_at};
use model_management::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

// --- workload generation ---------------------------------------------------

/// A text workload spec: a vocabulary plus rows that index into it.
/// Building the `Database` *inside* each representation leg is what
/// makes the comparison honest — the spec itself holds no `Value`s.
#[derive(Debug, Clone)]
struct TextWorkload {
    vocab: Vec<String>,
    /// (a-word, b-word, payload) per row of `R(a, b, n)`.
    rows: Vec<(usize, usize, i64)>,
}

fn source_schema() -> Schema {
    SchemaBuilder::new("S")
        .relation(
            "R",
            &[("a", DataType::Text), ("b", DataType::Text), ("n", DataType::Int)],
        )
        .build()
        .expect("static source schema")
}

fn target_schema() -> Schema {
    SchemaBuilder::new("T")
        .relation(
            "Copy",
            &[("a", DataType::Text), ("b", DataType::Text), ("n", DataType::Int)],
        )
        .relation("Join", &[("a", DataType::Text), ("b", DataType::Text)])
        .relation("Tag", &[("a", DataType::Text), ("t", DataType::Text)])
        .build()
        .expect("static target schema")
}

/// A copy tgd (exercises inline arity-3 tuples), a self-join tgd
/// (exercises hash probes on interned keys), and an existential tgd
/// (mints labelled nulls whose ids must come out identical).
fn workload_tgds() -> Vec<Tgd> {
    vec![
        Tgd::new(
            vec![Atom::vars("R", &["x", "y", "n"])],
            vec![Atom::vars("Copy", &["x", "y", "n"])],
        ),
        Tgd::new(
            vec![Atom::vars("R", &["x", "y", "n"]), Atom::vars("R", &["y", "z", "m"])],
            vec![Atom::vars("Join", &["x", "z"])],
        ),
        Tgd::new(
            vec![Atom::vars("R", &["x", "y", "n"])],
            vec![Atom::vars("Tag", &["x", "t"])],
        ),
    ]
}

fn query_atoms() -> Vec<Atom> {
    vec![Atom::vars("Copy", &["x", "y", "n"]), Atom::vars("Copy", &["y", "z", "m"])]
}

impl TextWorkload {
    /// Materialise the spec under whatever compact mode is currently
    /// active on this thread.
    fn build(&self) -> Database {
        let mut db = Database::empty_of(&source_schema());
        for &(a, b, n) in &self.rows {
            db.insert(
                "R",
                Tuple::new(vec![
                    Value::text(&self.vocab[a % self.vocab.len()]),
                    Value::text(&self.vocab[b % self.vocab.len()]),
                    Value::Int(n),
                ]),
            );
        }
        db
    }
}

/// Random workloads: a diverse vocabulary (up to 24 distinct words of
/// varied length, including words longer than `MAX_INTERN_LEN` so the
/// pool's length cap is exercised) and up to 60 rows.
fn arb_random_workload() -> impl Strategy<Value = TextWorkload> {
    (
        proptest::collection::vec("[a-z0-9 -]{0,160}", 1..24),
        proptest::collection::vec((any::<usize>(), any::<usize>(), any::<i64>()), 1..60),
    )
        .prop_map(|(vocab, rows)| TextWorkload { vocab, rows })
}

/// Skewed workloads: a tiny vocabulary (2–4 long low-cardinality
/// strings — the interning showcase) hammered by many rows, so hash
/// buckets collide heavily and the self-join fans out quadratically.
fn arb_skewed_workload() -> impl Strategy<Value = TextWorkload> {
    (
        proptest::collection::vec("[a-z]{24,48}", 2..4),
        proptest::collection::vec((0usize..4, 0usize..4, 0i64..8), 20..80),
    )
        .prop_map(|(vocab, rows)| TextWorkload { vocab, rows })
}

// --- canonical observations ------------------------------------------------

/// Canonical codec bytes of a database — the bit-identity witness.
/// `Value::Sym` encodes byte-identically to `Value::Text` by
/// construction, so any divergence here is a real result difference
/// (tuples, order, or null ids).
fn db_bytes(db: &Database) -> Vec<u8> {
    let mut w = Writer::new();
    db.encode(&mut w);
    w.finish().to_vec()
}

/// Canonical bytes of a CQ answer set: sorted per-binding (var, value)
/// pairs, then the bindings sorted, so enumeration order cannot hide
/// or fake a difference.
fn homs_bytes(homs: &[Binding]) -> Vec<u8> {
    let mut rows: Vec<Vec<u8>> = homs
        .iter()
        .map(|h| {
            let mut pairs: Vec<(&String, &Value)> = h.iter().collect();
            pairs.sort_by(|l, r| l.0.cmp(r.0));
            let mut w = Writer::new();
            for (name, v) in pairs {
                w.str(name);
                v.encode(&mut w);
            }
            w.finish().to_vec()
        })
        .collect();
    rows.sort();
    let mut w = Writer::new();
    w.u32(rows.len() as u32);
    let mut out = w.finish().to_vec();
    for r in rows {
        out.extend_from_slice(&r);
    }
    out
}

/// One full observation of a workload under the *current* compact
/// mode: source bytes, chased-target bytes, null count, EXPLAIN text,
/// and CQ answer bytes.
struct Observation {
    source: Vec<u8>,
    chased: Vec<u8>,
    nulls: usize,
    explain: String,
    answers: Vec<u8>,
}

fn observe(w: &TextWorkload) -> Observation {
    let db = w.build();
    let tgds = workload_tgds();
    let program = ChaseProgram::compile(&tgds, &db);
    let budget = ExecBudget::unbounded();
    let (chased, stats, explain) = chase_st_explained(
        &target_schema(),
        &program,
        &db,
        &budget,
        1,
        &Telemetry::disabled(),
    )
    .expect("unbounded chase on a bounded workload");
    let homs = find_homomorphisms(&query_atoms(), &chased);
    Observation {
        source: db_bytes(&db),
        chased: db_bytes(&chased),
        nulls: stats.nulls,
        explain: explain.to_string(),
        answers: homs_bytes(&homs),
    }
}

fn assert_bit_identical(w: &TextWorkload) {
    let compact = observe(w);
    let baseline = mm_instance::intern::with_compact(false, || observe(w));
    assert_eq!(compact.source, baseline.source, "source instance bytes diverged");
    assert_eq!(compact.chased, baseline.chased, "chased instance bytes diverged");
    assert_eq!(compact.nulls, baseline.nulls, "minted null count diverged");
    assert_eq!(compact.explain, baseline.explain, "EXPLAIN text diverged");
    assert_eq!(compact.answers, baseline.answers, "CQ answer bytes diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interned and uninterned engines are bit-identical on random
    /// text workloads: same codec bytes for source and chased
    /// instances, same null ids, same EXPLAIN, same CQ answers.
    #[test]
    fn compact_plane_is_bit_identical_on_random_workloads(
        w in arb_random_workload()
    ) {
        assert_bit_identical(&w);
    }

    /// Same property under heavy skew: a handful of long strings
    /// repeated across every row, colliding hash buckets, and a
    /// quadratic self-join.
    #[test]
    fn compact_plane_is_bit_identical_on_skewed_workloads(
        w in arb_skewed_workload()
    ) {
        assert_bit_identical(&w);
    }
}

// --- recovery never panics on mutated pool bytes ---------------------------

/// Pristine durable state with a deliberately large v4 pool section:
/// many distinct text values across two tracked instances, a
/// checkpoint (snapshot carries the pool), then post-checkpoint puts
/// (WAL carries text frames).
fn pristine_durable_files() -> BTreeMap<String, Vec<u8>> {
    let mem = MemStorage::new();
    let repo =
        Repository::open_durable(mem.clone(), DurableOptions::default()).expect("open");
    let mut db = Database::empty_of(&source_schema());
    for i in 0..40 {
        db.insert(
            "R",
            Tuple::new(vec![
                Value::text(&format!("warehouse-district-{i:03}-primary")),
                Value::text(&format!("{i}")),
                Value::Int(i),
            ]),
        );
    }
    repo.put_instance("I0", db.clone()).expect("put I0");
    repo.checkpoint().expect("checkpoint");
    for i in 0..10 {
        db.insert(
            "R",
            Tuple::new(vec![
                Value::text(&format!("post-checkpoint-{i}")),
                Value::text("tail"),
                Value::Int(i),
            ]),
        );
    }
    repo.put_instance("I1", db).expect("put I1");
    mem.dump()
}

/// Reopen over the mutated files; the only acceptable outcomes are a
/// recovered repository or a typed error.
fn reopen(files: BTreeMap<String, Vec<u8>>) {
    let mem = MemStorage::from_files(files);
    let _ = Repository::open_durable(mem, DurableOptions::default());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary mutations anywhere in the snapshot (including its
    /// leading pool section) never panic recovery.
    #[test]
    fn recovery_never_panics_on_mutated_snapshot(seed in any::<u64>()) {
        let mut files = pristine_durable_files();
        let snap = files.get(SNAPSHOT_FILE).expect("snapshot exists").clone();
        files.insert(SNAPSHOT_FILE.to_string(), mutate_bytes(&snap, seed));
        reopen(files);
    }

    /// Targeted mutations of the pool section specifically: the
    /// section leads the store encoding, so corrupting the first 256
    /// bytes rewrites pool cardinality and string lengths. Recovery
    /// must survive every such rewrite (a corrupt section can waste
    /// pool entries, never abort or panic by itself).
    #[test]
    fn recovery_never_panics_on_mutated_pool_section(
        offset in 0usize..256,
        byte in any::<u8>(),
        do_truncate in any::<bool>(),
    ) {
        let mut files = pristine_durable_files();
        let mut snap = files.get(SNAPSHOT_FILE).expect("snapshot exists").clone();
        if do_truncate {
            snap = truncate_at(&snap, offset);
        } else {
            let i = offset % snap.len();
            snap[i] = byte;
        }
        files.insert(SNAPSHOT_FILE.to_string(), snap);
        reopen(files);
    }

    /// Mutated WAL tails (text-heavy put frames after the checkpoint)
    /// never panic recovery either — replay stops at the last valid
    /// committed prefix or reports a typed error.
    #[test]
    fn recovery_never_panics_on_mutated_wal(seed in any::<u64>()) {
        let mut files = pristine_durable_files();
        let wal = files.get(WAL_FILE).expect("wal exists").clone();
        files.insert(WAL_FILE.to_string(), mutate_bytes(&wal, seed));
        reopen(files);
    }

    /// `Repository::restore` on mutated standalone snapshot bytes with
    /// a large pool section returns Ok or a typed error.
    #[test]
    fn restore_never_panics_on_mutated_pool_snapshot(seed in any::<u64>()) {
        let files = pristine_durable_files();
        let snap = files.get(SNAPSHOT_FILE).expect("snapshot exists");
        let _ = Repository::restore(bytes::Bytes::from(mutate_bytes(snap, seed)));
    }
}

/// The pristine files round-trip exactly when nothing is mutated —
/// guards the fixtures above against vacuity.
#[test]
fn pristine_durable_files_recover_cleanly() {
    let files = pristine_durable_files();
    let mem = MemStorage::from_files(files);
    let repo = Repository::open_durable(mem, DurableOptions::default())
        .expect("pristine files must recover");
    assert_eq!(repo.instance_names().len(), 2);
    let db = repo.instance("I1").expect("I1 recovered");
    let rel = db.relation("R").expect("R exists");
    assert_eq!(rel.len(), 50);
}
