//! EF5/EF6 — the paper's Figures 5 and 6: schema evolution handled by
//! mapping composition, with the exact composed view of Figure 6.

use model_management::prelude::*;

fn s() -> Schema {
    SchemaBuilder::new("S")
        .relation("Names", &[("SID", DataType::Int), ("Name", DataType::Text)])
        .relation("Addresses", &[
            ("SID", DataType::Int),
            ("Address", DataType::Text),
            ("Country", DataType::Text),
        ])
        .build()
        .expect("fig6 S")
}

fn s_prime() -> Schema {
    SchemaBuilder::new("Sprime")
        .relation("NamesP", &[("SID", DataType::Int), ("Name", DataType::Text)])
        .relation("Local", &[("SID", DataType::Int), ("Address", DataType::Text)])
        .relation("Foreign", &[
            ("SID", DataType::Int),
            ("Address", DataType::Text),
            ("Country", DataType::Text),
        ])
        .build()
        .expect("fig6 S'")
}

fn students_view() -> ViewSet {
    let mut v = ViewSet::new("S", "V");
    v.push(ViewDef::new(
        "Students",
        Expr::base("Names")
            .join(Expr::base("Addresses"), &[("SID", "SID")])
            .project(&["Name", "Address", "Country"]),
    ));
    v
}

fn migration() -> ViewSet {
    let mut v = ViewSet::new("S", "Sprime");
    v.push(ViewDef::new("NamesP", Expr::base("Names")));
    v.push(ViewDef::new(
        "Local",
        Expr::base("Addresses")
            .select(Predicate::col_eq_lit("Country", "US"))
            .project(&["SID", "Address"]),
    ));
    v.push(ViewDef::new(
        "Foreign",
        Expr::base("Addresses").select(Predicate::col_eq_lit("Country", "US").negate()),
    ));
    v
}

fn old_over_new() -> ViewSet {
    let mut v = ViewSet::new("Sprime", "S");
    v.push(ViewDef::new("Names", Expr::base("NamesP")));
    v.push(ViewDef::new(
        "Addresses",
        Expr::base("Local")
            .product(Expr::literal_row(&["Country"], vec![Lit::text("US")]))
            .union(Expr::base("Foreign")),
    ));
    v
}

fn d() -> Database {
    let mut db = Database::empty_of(&s());
    for (sid, name) in [(1, "ann"), (2, "bob"), (3, "cyd")] {
        db.insert("Names", Tuple::from([Value::Int(sid), Value::text(name)]));
    }
    for (sid, addr, c) in [(1, "9 Ave", "US"), (2, "5 Rue", "FR"), (3, "2 Way", "US")] {
        db.insert(
            "Addresses",
            Tuple::from([Value::Int(sid), Value::text(addr), Value::text(c)]),
        );
    }
    db
}

#[test]
fn ef6_composed_mapping_is_the_papers_formula() {
    // mapV-S' = Students = π_{Name,Address,Country}(Names' ⋈ (Local×{US} ∪ Foreign))
    let composed = compose_views(&old_over_new(), &students_view());
    let students = composed.view("Students").expect("repaired view");
    let expected = Expr::base("NamesP")
        .join(
            Expr::base("Local")
                .product(Expr::literal_row(&["Country"], vec![Lit::text("US")]))
                .union(Expr::base("Foreign")),
            &[("SID", "SID")],
        )
        .project(&["Name", "Address", "Country"]);
    assert_eq!(students.expr, expected);
}

#[test]
fn ef5_migration_preserves_the_view() {
    let outcome =
        evolve_view(&s(), &migration(), &old_over_new(), &students_view(), &d()).expect("evolve");
    // migration splits by country
    assert_eq!(outcome.migrated.relation("Local").expect("Local").len(), 2);
    assert_eq!(outcome.migrated.relation("Foreign").expect("Foreign").len(), 1);

    let before = eval(&students_view().views[0].expr, &s(), &d()).expect("before");
    let after = eval(
        &outcome.repaired_views.views[0].expr,
        &s_prime(),
        &outcome.migrated,
    )
    .expect("after");
    assert!(before.set_eq(&after));
    assert_eq!(after.len(), 3);
}

#[test]
fn ef5_composition_through_the_engine_with_lineage() {
    let engine = Engine::new();
    engine.add_viewset("old_over_new", old_over_new()).unwrap();
    engine.add_viewset("students", students_view()).unwrap();
    let repaired = engine
        .compose("old_over_new", "students", "students_repaired")
        .expect("compose");
    assert!(repaired.view("Students").is_some());
    let (_, id) = engine.repo.latest_viewset("students_repaired").expect("stored");
    assert_eq!(engine.repo.upstream(&id).len(), 2);
}

#[test]
fn ef5_diff_captures_what_the_mapping_does_not_touch() {
    // a migration that only moves US addresses: Diff (structural
    // participation, §6.2) reports the untouched parts — the whole Names
    // relation — while Addresses participates fully (its Country column
    // is read by the selection predicate)
    let lossy = Mapping::with_constraints(
        "S",
        "Sprime",
        vec![MappingConstraint::ExprEq {
            source: Expr::base("Addresses")
                .select(Predicate::col_eq_lit("Country", "US"))
                .project(&["SID", "Address"]),
            target: Expr::base("Local"),
        }],
    );
    let complement = diff(&s(), &lossy, mm_evolution::diff::Side::Source);
    let names = complement.schema.element("Names").expect("untouched relation");
    assert_eq!(names.attributes.len(), 2);
    assert!(complement.schema.element("Addresses").is_none());
    // and Extract returns exactly the participating complement
    let participating = extract(&s(), &lossy, mm_evolution::diff::Side::Source);
    assert!(participating.schema.element("Addresses").is_some());
    assert!(participating.schema.element("Names").is_none());
}

#[test]
fn ef5_inverse_rolls_back_the_migration() {
    let inv = invert_views(&migration(), &s()).expect("invertible migration");
    let kind = verify_inverse(&migration(), &inv, &s(), &s_prime(), &d());
    assert_eq!(kind, InverseKind::Exact);
}

#[test]
fn evolution_chain_workload_preserves_views_end_to_end() {
    // the generated many-step variant of Figure 5
    use mm_workload::{evolution_chain, populate_relational, relational_schema};
    let s0 = relational_schema(33, 4, 3);
    let db0 = populate_relational(&s0, 12, 15);
    let first = s0.element_names().next().expect("non-empty").to_string();
    let cols: Vec<String> = s0
        .element(&first)
        .expect("exists")
        .attributes
        .iter()
        .map(|a| a.name.clone())
        .collect();
    let mut views = ViewSet::new(s0.name.clone(), "V");
    views.push(ViewDef::new("V0", Expr::base(first).project_owned(cols)));
    let before = eval(&views.views[0].expr, &s0, &db0).expect("before");

    let mut schema = s0;
    let mut db = db0;
    for step in evolution_chain(&schema, 8, 6) {
        db = materialize_views(&step.migration, &schema, &db).expect("migrate");
        views = compose_views(&step.old_over_new, &views);
        schema = step.schema;
    }
    let after = eval(&views.views[0].expr, &schema, &db).expect("after");
    assert!(before.set_eq(&after));
}
