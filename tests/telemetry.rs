//! Tier-1 telemetry suite: EXPLAIN reports populated and byte-stable,
//! degradation records mirrored one-to-one as events, plan-cache
//! counters tracking hit/miss/invalidation, and the JSON-lines stream
//! landing parseable on a `Storage` backend.

use model_management::prelude::*;
use std::sync::Arc;

/// Source schema R(a,b) ⋈ S(b,c), target U(a,c): a two-atom join body
/// so the compiled plan has a non-trivial join order.
fn join_scenario() -> (Schema, Schema, Mapping, Database) {
    let src = SchemaBuilder::new("Src")
        .relation("R", &[("a", DataType::Int), ("b", DataType::Int)])
        .relation("S", &[("b", DataType::Int), ("c", DataType::Int)])
        .build()
        .unwrap();
    let tgt = SchemaBuilder::new("Tgt")
        .relation("U", &[("a", DataType::Int), ("c", DataType::Int)])
        .build()
        .unwrap();
    let mut m = Mapping::new("Src", "Tgt");
    m.push_tgd(Tgd::new(
        vec![Atom::vars("R", &["x", "y"]), Atom::vars("S", &["y", "z"])],
        vec![Atom::vars("U", &["x", "z"])],
    ));
    let mut db = Database::empty_of(&src);
    for i in 0..4i64 {
        db.insert("R", Tuple::from([Value::Int(i), Value::Int(i + 1)]));
        db.insert("S", Tuple::from([Value::Int(i + 1), Value::Int(i + 2)]));
    }
    (src, tgt, m, db)
}

fn engine_with(src: Schema, tgt: Schema, m: Mapping, tel: Telemetry) -> Engine {
    let engine =
        Engine::with_config(EngineConfig { telemetry: tel, ..Default::default() }).unwrap();
    engine.add_schema(src).unwrap();
    engine.add_schema(tgt).unwrap();
    engine.add_mapping("m", m).unwrap();
    engine
}

/// `Engine::explain_exchange` reports the compiled join order with
/// per-atom cardinalities, the per-round deltas, and renders
/// byte-identically across two identical runs.
#[test]
fn explain_exchange_is_populated_and_byte_stable() {
    let (src, tgt, m, db) = join_scenario();
    let engine = engine_with(src, tgt, m, Telemetry::disabled());

    let (out, stats, explain) = engine.explain_exchange("m", "Tgt", &db).unwrap();
    assert_eq!(out.relation("U").unwrap().len(), 4);
    assert_eq!(stats.fired, 4);

    // program shape: one tgd, two-atom join order, cardinalities from db
    assert_eq!(explain.mode, "st");
    assert_eq!(explain.tgds.len(), 1);
    let body = &explain.tgds[0].body;
    assert_eq!(body.join_order.len(), 2);
    assert!(body.join_order.contains(&"R".to_string()));
    assert!(body.join_order.contains(&"S".to_string()));
    assert!(body.atoms.iter().all(|a| a.rows_total == 4));
    // the second atom in join order probes on the shared variable
    assert!(!body.atoms[1].probe_cols.is_empty());

    // round history: the st chase is a single pass that built the target
    assert_eq!(explain.rounds.len(), 1);
    assert_eq!(explain.rounds[0].round, 1);
    assert_eq!(explain.rounds[0].new_tuples, 4);

    // rendered text is deterministic: two identical runs, identical bytes
    let (_, _, again) = engine.explain_exchange("m", "Tgt", &db).unwrap();
    assert_eq!(explain, again);
    let a = explain.to_node().to_string();
    let b = again.to_node().to_string();
    assert_eq!(a, b);
    assert!(a.starts_with("chase [mode=st"), "{a}");
    assert!(a.contains("join_order="), "{a}");
    assert!(a.contains("round#1"), "{a}");
}

/// The general chase explain carries one entry per fixpoint round, with
/// the productive rounds' deltas and the final empty round visible.
#[test]
fn explain_chase_general_reports_per_round_deltas() {
    let schema = SchemaBuilder::new("G")
        .relation("P", &[("a", DataType::Int)])
        .relation("Q", &[("a", DataType::Int)])
        .relation("W", &[("a", DataType::Int)])
        .build()
        .unwrap();
    let mut m = Mapping::new("G", "G");
    m.push_tgd(Tgd::new(vec![Atom::vars("P", &["x"])], vec![Atom::vars("Q", &["x"])]));
    m.push_tgd(Tgd::new(vec![Atom::vars("Q", &["x"])], vec![Atom::vars("W", &["x"])]));
    let engine = Engine::new();
    engine.add_schema(schema.clone()).unwrap();
    engine.add_mapping("m", m).unwrap();
    let mut db = Database::empty_of(&schema);
    db.insert("P", Tuple::from([Value::Int(7)]));

    let (out, outcome, explain) = engine.explain_chase_general("m", "G", &db).unwrap();
    assert!(matches!(outcome, ChaseOutcome::Done(_)));
    assert_eq!(out.relation("W").unwrap().len(), 1);

    assert_eq!(explain.mode, "general");
    assert!(explain.rounds.len() >= 2, "{:?}", explain.rounds);
    assert!(explain.rounds.iter().any(|r| r.new_tuples > 0));
    // the last round is the fixpoint check: nothing new
    assert_eq!(explain.rounds.last().unwrap().new_tuples, 0);
    // rounds are numbered 1..=n in order
    for (i, r) in explain.rounds.iter().enumerate() {
        assert_eq!(r.round, i + 1);
    }

    let (_, _, again) = engine.explain_chase_general("m", "G", &db).unwrap();
    assert_eq!(explain.to_node().to_string(), again.to_node().to_string());
}

/// The mediator explains which path it chose and why; a degraded plan
/// names the typed cause, and the rendering is byte-stable.
#[test]
fn mediation_explain_reports_path_and_cause() {
    let schema = SchemaBuilder::new("Base")
        .relation("R0", &[("a", DataType::Int), ("b", DataType::Int)])
        .build()
        .unwrap();
    let mut db = Database::empty_of(&schema);
    for i in 0..10i64 {
        db.insert("R0", Tuple::from([Value::Int(i), Value::Int(i)]));
    }
    let mut l1 = ViewSet::new("Base", "L1");
    l1.push(ViewDef::new("V1", Expr::base("R0")));
    let mut l2 = ViewSet::new("L1", "L2");
    l2.push(ViewDef::new("V2", Expr::base("V1").project(&["a"])));
    let mediator = Mediator::new(&schema, vec![&l1, &l2]);

    let fast = mediator.plan(&ExecBudget::unbounded()).unwrap();
    let explain = mediator.explain_plan(&fast);
    assert_eq!(explain.mode, MediationMode::Collapsed);
    assert_eq!(explain.hops, 2);
    assert!(!explain.why.is_empty());
    assert!(explain.cause.is_none());
    let text = explain.to_node().to_string();
    assert!(text.starts_with("mediation [mode=collapsed hops=2"), "{text}");

    let slow = mediator.plan(&ExecBudget::unbounded().with_clauses(1)).unwrap();
    let degraded = mediator.explain_plan(&slow);
    assert_eq!(degraded.mode, MediationMode::Chained);
    assert!(degraded.cause.is_some(), "degraded plan must name its cause");
    assert!(degraded.to_node().to_string().contains("cause="));

    // byte-stable: planning twice renders identically
    let again = mediator.explain_plan(&mediator.plan(&ExecBudget::unbounded()).unwrap());
    assert_eq!(text, again.to_node().to_string());
    let degraded_again =
        mediator.explain_plan(&mediator.plan(&ExecBudget::unbounded().with_clauses(1)).unwrap());
    assert_eq!(degraded.to_node().to_string(), degraded_again.to_node().to_string());
}

/// Every mediator degradation record is mirrored as exactly one
/// `mediator.degraded` event and counted at the mediator site by cause.
#[test]
fn mediator_degradations_mirror_as_events() {
    let schema = SchemaBuilder::new("Base")
        .relation("R0", &[("a", DataType::Int)])
        .build()
        .unwrap();
    let mut l1 = ViewSet::new("Base", "L1");
    l1.push(ViewDef::new("V1", Expr::base("R0")));
    let mut l2 = ViewSet::new("L1", "L2");
    l2.push(ViewDef::new("V2", Expr::base("V1").project(&["a"])));
    let ring = RingCollector::with_capacity(64);
    let tel = Telemetry::new(ring.clone());
    let mediator = Mediator::new(&schema, vec![&l1, &l2]).with_telemetry(tel.clone());

    let tight = ExecBudget::unbounded().with_clauses(1);
    let mut recorded = 0usize;
    for _ in 0..3 {
        let plan = mediator.plan(&tight).unwrap();
        if plan.degradation().is_some() {
            recorded += 1;
        }
    }
    assert_eq!(recorded, 3);
    let events = ring.events_for("mediator.degraded");
    assert_eq!(events.len(), recorded, "one event per recorded degradation");
    for e in &events {
        assert!(e.field("cause").is_some());
        assert_eq!(e.field("hops"), Some(&FieldValue::U64(2)));
    }
    let metrics = tel.metrics().unwrap();
    assert_eq!(metrics.degradations_at(DegradationSite::Mediator), 3);
    assert_eq!(metrics.degradations_by(DegradationSite::Mediator, Cause::Clauses), 3);

    // the happy path emits nothing
    mediator.plan(&ExecBudget::unbounded()).unwrap();
    assert_eq!(ring.events_for("mediator.degraded").len(), 3);
}

/// Every IVM degradation record is mirrored as exactly one
/// `ivm.degraded` event. The incremental pass shares one step meter
/// across views while each recompute gets a fresh one, so an expensive
/// self-join view drains the shared meter and the cheap identity view
/// behind it degrades — its delta rules trip, its recompute passes. The
/// scan finds that window deterministically (it is at least one step
/// wide: any budget covering the join's delta rules but not also the
/// identity view's leaves the fresh recompute meter with room to spare).
#[test]
fn ivm_degradations_mirror_as_events() {
    let schema = SchemaBuilder::new("Base")
        .relation("R0", &[("a", DataType::Int), ("b", DataType::Int)])
        .build()
        .unwrap();
    let mut db = Database::empty_of(&schema);
    for i in 0..6i64 {
        db.insert("R0", Tuple::from([Value::Int(i), Value::Int(i + 1)]));
    }
    let mut views = ViewSet::new("Base", "V");
    views.push(ViewDef::new(
        "SelfJoin",
        Expr::base("R0").join(Expr::base("R0").rename(&[("a", "b"), ("b", "c")]), &[("b", "b")]),
    ));
    views.push(ViewDef::new("Id", Expr::base("R0")));
    let plan = MaintenancePlan::compile(&views);
    let mut delta = Delta::new();
    delta.insert("R0", Tuple::from([Value::Int(99), Value::Int(0)]));

    let mut witnessed = false;
    for steps in 1..=4_000u64 {
        let ring = RingCollector::with_capacity(64);
        let tel = Telemetry::new(ring.clone());
        let mut mat = materialize_views(&views, &schema, &db).unwrap();
        let budget = ExecBudget::unbounded().with_steps(steps);
        let Ok(reports) =
            maintain_insertions_traced(&plan, &schema, &db, &delta, &mut mat, &budget, &tel)
        else {
            continue; // even a fresh recompute meter tripped: below the window
        };
        let degraded: Vec<_> = reports.iter().filter(|r| r.degradation.is_some()).collect();
        let events = ring.events_for("ivm.degraded");
        assert_eq!(events.len(), degraded.len(), "one event per recorded degradation");
        assert_eq!(
            tel.metrics().unwrap().degradations_at(DegradationSite::Ivm) as usize,
            degraded.len()
        );
        for e in &events {
            assert!(e.field("cause").is_some());
            assert!(e.field("kind").is_some());
        }
        if !degraded.is_empty() {
            witnessed = true;
            // correctness survives the degraded path
            let mut new_db = db.clone();
            delta.apply_to(&mut new_db);
            let oracle = materialize_views(&views, &schema, &new_db).unwrap();
            for v in ["SelfJoin", "Id"] {
                assert!(oracle.relation(v).unwrap().set_eq(mat.relation(v).unwrap()));
            }
            break;
        }
    }
    assert!(witnessed, "no step budget produced a degradation with a passing recompute");
}

/// Satellite: plan-cache hits and misses are metered across repeated
/// exchanges of the same mapping version, a newly stored version
/// invalidates (new ArtifactId → miss), and uncached engines only miss.
#[test]
fn plan_cache_counters_track_hits_misses_and_invalidation() {
    let (src, tgt, m, db) = join_scenario();
    let ring = RingCollector::with_capacity(256);
    let tel = Telemetry::new(ring.clone());
    let engine = engine_with(src.clone(), tgt.clone(), m.clone(), tel.clone());

    let value = |key: &str| tel.metrics().unwrap().snapshot().value(key);
    assert_eq!(value("plan_cache_hits"), 0);
    assert_eq!(value("plan_cache_misses"), 0);

    engine.exchange("m", "Tgt", &db).unwrap();
    assert_eq!((value("plan_cache_hits"), value("plan_cache_misses")), (0, 1));
    engine.exchange("m", "Tgt", &db).unwrap();
    engine.exchange("m", "Tgt", &db).unwrap();
    assert_eq!((value("plan_cache_hits"), value("plan_cache_misses")), (2, 1));

    // storing a new version yields a new ArtifactId: the next exchange
    // must compile (miss), later ones hit again
    engine.add_mapping("m", m.clone()).unwrap();
    engine.exchange("m", "Tgt", &db).unwrap();
    assert_eq!((value("plan_cache_hits"), value("plan_cache_misses")), (2, 2));
    engine.exchange("m", "Tgt", &db).unwrap();
    assert_eq!((value("plan_cache_hits"), value("plan_cache_misses")), (3, 2));

    // with caching disabled every exchange is a miss
    let ring2 = RingCollector::with_capacity(256);
    let tel2 = Telemetry::new(ring2);
    let uncached = Engine::with_config(EngineConfig {
        cache_plans: false,
        telemetry: tel2.clone(),
        ..Default::default()
    })
    .unwrap();
    uncached.add_schema(src).unwrap();
    uncached.add_schema(tgt).unwrap();
    uncached.add_mapping("m", m).unwrap();
    uncached.exchange("m", "Tgt", &db).unwrap();
    uncached.exchange("m", "Tgt", &db).unwrap();
    let snap = tel2.metrics().unwrap().snapshot();
    assert_eq!(snap.value("plan_cache_hits"), 0);
    assert_eq!(snap.value("plan_cache_misses"), 2);
}

/// Engine operators nest spans (engine.exchange → chase.st), carry the
/// governor's final consumption in success-path fields, and feed the
/// chase counters.
#[test]
fn operator_spans_nest_and_carry_consumption() {
    let (src, tgt, m, db) = join_scenario();
    let ring = RingCollector::with_capacity(256);
    let tel = Telemetry::new(ring.clone());
    let engine = engine_with(src, tgt, m, tel.clone());
    engine.exchange("m", "Tgt", &db).unwrap();

    let chase = &ring.events_for("chase.st")[0];
    let outer = &ring.events_for("engine.exchange")[0];
    assert_eq!(chase.parent_id, Some(outer.span_id), "chase span nests under engine span");
    assert!(outer.artifact.starts_with("mapping:m@"), "{}", outer.artifact);
    // success-path consumption fields from the governor
    for key in ["steps", "rows", "wall_us"] {
        assert!(chase.field(key).is_some(), "missing {key}");
    }
    assert!(matches!(chase.field("steps"), Some(FieldValue::U64(n)) if *n > 0));

    let snap = tel.metrics().unwrap().snapshot();
    assert_eq!(snap.value("chase_firings"), 4);
    assert_eq!(snap.value("chase_delta_tuples"), 4);
    assert!(snap.value("budget_steps_consumed") > 0);
    assert_eq!(snap.value("chase_count"), 1);
}

/// A durable, telemetry-enabled engine meters WAL frames/bytes,
/// checkpoints, and recovery.
#[test]
fn durable_engine_meters_wal_checkpoint_and_recovery() {
    let storage = MemStorage::new();
    let (src, tgt, m, db) = join_scenario();
    {
        let ring = RingCollector::with_capacity(256);
        let tel = Telemetry::new(ring);
        let engine = Engine::with_config(EngineConfig {
            durability: Durability::Durable {
                storage: storage.clone(),
                options: DurableOptions::default(),
            },
            telemetry: tel.clone(),
            ..Default::default()
        })
        .unwrap();
        engine.add_schema(src).unwrap();
        engine.add_schema(tgt).unwrap();
        engine.add_mapping("m", m).unwrap();
        engine.exchange("m", "Tgt", &db).unwrap();
        let snap = tel.metrics().unwrap().snapshot();
        assert!(snap.value("wal_frames_appended") >= 3);
        assert!(snap.value("wal_bytes_appended") > 0);
        assert_eq!(snap.value("recoveries"), 1);
        engine.repo.checkpoint().unwrap();
        let snap = tel.metrics().unwrap().snapshot();
        assert_eq!(snap.value("checkpoints"), 1);
        assert_eq!(snap.value("checkpoint_count"), 1);
    }
    // reopen: recovery is timed and the recovered event names the state
    let ring = RingCollector::with_capacity(256);
    let tel = Telemetry::new(ring.clone());
    let engine = Engine::with_config(EngineConfig {
        durability: Durability::Durable { storage, options: DurableOptions::default() },
        telemetry: tel.clone(),
        ..Default::default()
    })
    .unwrap();
    assert!(engine.repo.latest_mapping("m").is_ok());
    let snap = tel.metrics().unwrap().snapshot();
    assert_eq!(snap.value("recoveries"), 1);
    assert_eq!(snap.value("recovery_count"), 1);
    let recovered = ring.events_for("repository.recovered");
    assert_eq!(recovered.len(), 1);
    assert!(recovered[0].field("snapshot_seq").is_some());
}

/// Minimal JSON reader used to prove the telemetry stream is parseable
/// (the workspace has no real serde). Accepts exactly one value and
/// requires the whole line to be consumed.
mod json {
    pub fn check(line: &str) -> Result<(), String> {
        let b = line.as_bytes();
        let mut i = 0usize;
        value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing bytes at {i}"));
        }
        Ok(())
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => object(b, i),
            Some(b'[') => array(b, i),
            Some(b'"') => string(b, i),
            Some(b't') => literal(b, i, b"true"),
            Some(b'f') => literal(b, i, b"false"),
            Some(b'n') => literal(b, i, b"null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
            other => Err(format!("unexpected {other:?} at {i}")),
        }
    }

    fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), String> {
        if b[*i..].starts_with(lit) {
            *i += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at {i}"))
        }
    }

    fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
        let start = *i;
        if b.get(*i) == Some(&b'-') {
            *i += 1;
        }
        while *i < b.len() && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-')) {
            *i += 1;
        }
        if *i == start {
            Err(format!("empty number at {start}"))
        } else {
            Ok(())
        }
    }

    fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
        *i += 1; // opening quote
        while *i < b.len() {
            match b[*i] {
                b'\\' => {
                    *i += 2;
                }
                b'"' => {
                    *i += 1;
                    return Ok(());
                }
                _ => *i += 1,
            }
        }
        Err("unterminated string".into())
    }

    fn object(b: &[u8], i: &mut usize) -> Result<(), String> {
        *i += 1; // '{'
        skip_ws(b, i);
        if b.get(*i) == Some(&b'}') {
            *i += 1;
            return Ok(());
        }
        loop {
            skip_ws(b, i);
            string(b, i)?;
            skip_ws(b, i);
            if b.get(*i) != Some(&b':') {
                return Err(format!("expected ':' at {i}"));
            }
            *i += 1;
            value(b, i)?;
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b'}') => {
                    *i += 1;
                    return Ok(());
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn array(b: &[u8], i: &mut usize) -> Result<(), String> {
        *i += 1; // '['
        skip_ws(b, i);
        if b.get(*i) == Some(&b']') {
            *i += 1;
            return Ok(());
        }
        loop {
            value(b, i)?;
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b']') => {
                    *i += 1;
                    return Ok(());
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }
}

/// Satellite: histogram rows render under stable zero-elided keys — a
/// fresh registry snapshot carries no `_p50/_p90/_p99` keys at all (so
/// it is byte-identical to the pre-histogram era), touched histograms
/// materialize exactly their five keys, and rendering twice is
/// byte-identical.
#[test]
fn metrics_snapshot_elides_empty_histograms_and_is_byte_stable() {
    let m = EngineMetrics::new();
    let fresh = m.snapshot();
    for suffix in ["_p50", "_p90", "_p99"] {
        assert!(
            fresh.values.keys().all(|k| !k.ends_with(suffix)),
            "fresh snapshot must elide all histograms, found a {suffix} key"
        );
    }
    assert_eq!(fresh.to_string(), m.snapshot().to_string());

    m.observe_hist(Hist::ServerServiceUs, 700);
    m.observe_hist(Hist::ServerServiceUs, 90);
    m.observe_op_service_us(ServerOp::Ping, 12);
    let snap = m.snapshot();
    for key in [
        "server.service_us_p50",
        "server.service_us_p90",
        "server.service_us_p99",
        "server.service_us_max",
        "server.service_us_count",
        "server.op.ping.service_us_count",
    ] {
        assert!(snap.values.contains_key(key), "missing histogram key {key}");
    }
    // untouched histograms stay elided even once others are live
    assert!(!snap.values.contains_key("wal.append_us_count"));
    assert!(!snap.values.contains_key("server.op.exchange.service_us_count"));
    assert_eq!(snap.value("server.service_us_count"), 2);
    assert_eq!(snap.value("server.service_us_max"), 700);
    // two renders of the same state are byte-identical
    assert_eq!(snap.to_string(), m.snapshot().to_string());
}

/// Satellite: the log-bucketed histogram never panics, reports count
/// and max exactly, and its quantiles are monotone upper bounds on the
/// true order statistics within the promised 2x relative error.
mod histogram_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn observes_anything_with_exact_count_and_max(
            values in proptest::collection::vec(any::<u64>(), 0..256),
        ) {
            let h = Histogram::new();
            for &v in &values {
                h.observe(v);
            }
            let s = h.summary();
            prop_assert_eq!(s.count, values.len() as u64);
            prop_assert_eq!(s.max, values.iter().copied().max().unwrap_or(0));
        }

        #[test]
        fn quantiles_are_monotone_bounded_upper_estimates(
            values in proptest::collection::vec(any::<u64>(), 1..256),
            qs in proptest::collection::vec(0.0f64..1.0, 1..8),
        ) {
            let h = Histogram::new();
            for &v in &values {
                h.observe(v);
            }
            let s = h.summary();
            prop_assert!(s.p50 <= s.p90);
            prop_assert!(s.p90 <= s.p99);
            prop_assert!(s.p99 <= s.max);

            let mut sorted_q = qs;
            sorted_q.sort_by(|a, b| a.partial_cmp(b).expect("qs are finite"));
            let reported: Vec<u64> = sorted_q.iter().map(|&q| h.quantile(q)).collect();
            for w in reported.windows(2) {
                prop_assert!(w[0] <= w[1], "quantile not monotone: {w:?}");
            }

            // Each reported quantile is an upper bound on the true
            // order statistic, within 2x (power-of-two buckets), and
            // never exceeds the exact maximum.
            let mut sorted_v = values;
            sorted_v.sort_unstable();
            for (&q, &r) in sorted_q.iter().zip(&reported) {
                let rank = ((q * sorted_v.len() as f64).ceil() as usize)
                    .clamp(1, sorted_v.len());
                let truth = sorted_v[rank - 1];
                prop_assert!(r >= truth, "q={q}: reported {r} < true {truth}");
                prop_assert!(r >> 1 <= truth, "q={q}: reported {r} >2x true {truth}");
                prop_assert!(r <= s.max);
            }
        }
    }
}

/// The JSON-lines collector streams through `StorageLineSink` onto a
/// `MemStorage` backend; every line parses and carries the fixed keys.
#[test]
fn json_lines_stream_through_mem_storage_parses() {
    let storage = MemStorage::new();
    let sink = StorageLineSink::new(storage.clone(), "telemetry.jsonl");
    let collector = JsonLinesCollector::new(sink);
    let tel = Telemetry::new(collector.clone());

    let (src, tgt, m, db) = join_scenario();
    let engine = engine_with(src, tgt, m, tel);
    engine.exchange("m", "Tgt", &db).unwrap();
    engine.exchange("m", "Tgt", &db).unwrap();
    engine.explain_exchange("m", "Tgt", &db).unwrap();

    let bytes = (storage as Arc<dyn Storage>).read("telemetry.jsonl").unwrap().unwrap();
    let text = String::from_utf8(bytes.to_vec()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 4, "expected several events, got {}", lines.len());
    for line in &lines {
        json::check(line).unwrap_or_else(|e| panic!("unparseable line ({e}): {line}"));
        assert!(line.contains("\"kind\":"), "{line}");
        assert!(line.contains("\"op\":"), "{line}");
        assert!(line.contains("\"fields\":"), "{line}");
    }
    assert!(lines.iter().any(|l| l.contains("\"op\":\"engine.exchange\"")));
    assert!(lines.iter().any(|l| l.contains("\"op\":\"chase.st\"")));
    assert_eq!(collector.write_errors(), 0);
}
