//! EF1 — Figure 1 architecture: the engine drives every operator through
//! the repository, lineage connects the artifacts, and the repository
//! snapshot round-trips the whole session.

use model_management::prelude::*;

fn paper_er() -> Schema {
    SchemaBuilder::new("ER")
        .entity("Person", &[("Id", DataType::Int), ("Name", DataType::Text)])
        .entity_sub("Employee", "Person", &[("Dept", DataType::Text)])
        .entity_sub("Customer", "Person", &[
            ("CreditScore", DataType::Int),
            ("BillingAddr", DataType::Text),
        ])
        .key("Person", &["Id"])
        .build()
        .expect("paper schema")
}

#[test]
fn full_operator_tour_with_lineage() {
    let engine = Engine::new();
    engine.add_schema(paper_er()).unwrap();

    // ModelGen
    let gen = engine
        .modelgen_er_to_relational("ER", InheritanceStrategy::Vertical)
        .expect("modelgen");
    assert!(Metamodel::Relational.conforms(&gen.schema));

    // TransGen
    let (qv, uv) = engine.transgen("ER", "ER_rel", "ER->ER_rel").expect("transgen");
    assert_eq!(qv.len(), 3);
    assert_eq!(uv.len(), 3);

    // Match against an independent schema
    let legacy = SchemaBuilder::new("Legacy")
        .relation("staff", &[("id", DataType::Int), ("name", DataType::Text)])
        .build()
        .expect("legacy schema");
    engine.add_schema(legacy).unwrap();
    let (cs, _) = engine
        .match_schemas("ER", "Legacy", &MatchConfig::default())
        .expect("match");
    assert!(!cs.is_empty());

    // Compose stored view sets
    engine.add_viewset("fwd", gen.views.clone()).unwrap();
    let mut top = ViewSet::new("ER_rel", "Top");
    top.push(ViewDef::new("People", Expr::base("Person").project(&["Id", "Name"])));
    engine.add_viewset("top", top).unwrap();
    let collapsed = engine.compose("fwd", "top", "collapsed").expect("compose");
    // the collapsed view reads the ER entity sets directly
    let bases = mm_expr::analyze::base_relations(&collapsed.view("People").expect("view").expr);
    assert!(bases.contains(&"Person"));

    // Extract / Diff over the generated mapping
    let extract = engine.extract("ER", "ER->ER_rel").expect("extract");
    assert!(!extract.schema.is_empty());

    // Exchange via a tgd mapping
    let s = SchemaBuilder::new("Src")
        .relation("Emp", &[("e", DataType::Text)])
        .build()
        .expect("src");
    let t = SchemaBuilder::new("Tgt")
        .relation("Mgr", &[("e", DataType::Text), ("m", DataType::Text)])
        .build()
        .expect("tgt");
    engine.add_schema(s.clone()).unwrap();
    engine.add_schema(t).unwrap();
    let mut m = Mapping::new("Src", "Tgt");
    m.push_tgd(Tgd::new(vec![Atom::vars("Emp", &["e"])], vec![Atom::vars("Mgr", &["e", "m"])]));
    engine.add_mapping("exch", m).unwrap();
    let mut db = Database::empty_of(&s);
    db.insert("Emp", Tuple::from([Value::text("ann")]));
    let (universal, stats) = engine.exchange("exch", "Tgt", &db).expect("exchange");
    assert_eq!(stats.nulls, 1);
    assert!(!universal.is_ground());

    // certain answers over the universal instance
    let tgt_schema = engine.repo.latest_schema("Tgt").expect("stored").0;
    let certain = certain_answers(&Expr::base("Mgr").project(&["e"]), &tgt_schema, &universal)
        .expect("certain");
    assert_eq!(certain.len(), 1);

    // Lineage: transgen output reaches back to the ER schema
    let (_, qid) = engine.repo.latest_viewset("ER->ER_rel.qviews").expect("stored");
    let upstream = engine.repo.upstream(&qid);
    assert!(upstream.iter().any(|a| a.name.name == "ER" && a.kind == ArtifactKind::Schema));

    // Snapshot round-trip preserves the session
    let bytes = engine.repo.snapshot();
    let restored = Repository::restore(bytes).expect("restore");
    assert_eq!(restored.lineage().len(), engine.repo.lineage().len());
    assert_eq!(
        restored.latest_mapping("ER->ER_rel").expect("restored mapping").0,
        engine.repo.latest_mapping("ER->ER_rel").expect("original mapping").0,
    );
}

#[test]
fn engine_surfaces_operator_errors() {
    let engine = Engine::new();
    // missing artifacts
    assert!(engine.transgen("nope", "nope", "nope").is_err());
    assert!(engine.compose("a", "b", "c").is_err());
    // modelgen on a non-ER schema
    let s = SchemaBuilder::new("Flat")
        .relation("T", &[("a", DataType::Int)])
        .build()
        .expect("flat schema");
    engine.add_schema(s).unwrap();
    assert!(matches!(
        engine.modelgen_er_to_relational("Flat", InheritanceStrategy::Flat),
        Err(EngineError::ModelGen(_))
    ));
}
