//! EF4 — the paper's Figure 4: interpreting correspondences between two
//! snowflake schemas as mapping constraints (equalities of join
//! expressions), including the instance-level reading.

use model_management::prelude::*;

fn source() -> Schema {
    SchemaBuilder::new("S")
        .relation("Empl", &[
            ("EID", DataType::Int),
            ("Name", DataType::Text),
            ("Tel", DataType::Text),
            ("AID", DataType::Int),
        ])
        .relation("Addr", &[
            ("AID", DataType::Int),
            ("City", DataType::Text),
            ("Zip", DataType::Text),
        ])
        .key("Empl", &["EID"])
        .foreign_key("Empl", &["AID"], "Addr", &["AID"])
        .build()
        .expect("fig4 source")
}

fn target() -> Schema {
    SchemaBuilder::new("T")
        .relation("Staff", &[
            ("SID", DataType::Int),
            ("Name", DataType::Text),
            ("BirthDate", DataType::Date),
            ("City", DataType::Text),
        ])
        .key("Staff", &["SID"])
        .build()
        .expect("fig4 target")
}

fn fig4_corrs() -> CorrespondenceSet {
    let mut cs = CorrespondenceSet::new("S", "T");
    cs.push(Correspondence::new(PathRef::element("Empl"), PathRef::element("Staff"), 1.0));
    cs.push(Correspondence::new(
        PathRef::attr("Empl", "Name"),
        PathRef::attr("Staff", "Name"),
        1.0,
    ));
    cs.push(Correspondence::new(
        PathRef::attr("Addr", "City"),
        PathRef::attr("Staff", "City"),
        1.0,
    ));
    cs
}

#[test]
fn ef4_constraints_are_the_papers_three_equalities() {
    let m = snowflake_constraints(&source(), &target(), &fig4_corrs()).expect("interpretation");
    assert_eq!(m.len(), 3);
    let rendered: Vec<String> = m.constraints.iter().map(|c| c.to_string()).collect();
    // 1. πEID(Empl) = πSID(Staff)
    assert!(rendered[0].contains("SELECT EID FROM (Empl)"), "{}", rendered[0]);
    assert!(rendered[0].contains("SELECT SID FROM (Staff)"), "{}", rendered[0]);
    // 2. πEID,Name(Empl) = πSID,Name(Staff)
    assert!(rendered[1].contains("SELECT EID, Name FROM (Empl)"), "{}", rendered[1]);
    // 3. πEID,City(Empl ⋈ Addr) = πSID,City(Staff)
    assert!(
        rendered[2].contains("SELECT EID, City FROM ((Empl) JOIN (Addr) ON AID = AID)"),
        "{}",
        rendered[2]
    );
}

#[test]
fn ef4_matcher_feeds_the_interpretation() {
    // run the real matcher, confirm its top candidates contain the
    // ground-truth pairs, then interpret
    let s = source();
    let t = target();
    let candidates = match_schemas(&s, &t, &MatchConfig { threshold: 0.3, ..Default::default() });
    let name_c = candidates.candidates_for(&PathRef::attr("Empl", "Name"));
    assert!(name_c.iter().any(|c| c.target == PathRef::attr("Staff", "Name")));
    let city_c = candidates.candidates_for(&PathRef::attr("Addr", "City"));
    assert!(city_c.iter().any(|c| c.target == PathRef::attr("Staff", "City")));

    let m = snowflake_constraints(&s, &t, &fig4_corrs()).expect("interpretation");
    assert_eq!(m.source_schema, "S");
    assert_eq!(m.target_schema, "T");
}

#[test]
fn ef4_instance_level_semantics() {
    // populate the source, derive Staff with the natural transformation,
    // and check each constraint's two sides agree
    let s = source();
    let t = target();
    let m = snowflake_constraints(&s, &t, &fig4_corrs()).expect("interpretation");

    let mut sdb = Database::empty_of(&s);
    for (eid, name, tel, aid) in [(1, "ann", "555", 10), (2, "bob", "556", 20)] {
        sdb.insert(
            "Empl",
            Tuple::from([Value::Int(eid), Value::text(name), Value::text(tel), Value::Int(aid)]),
        );
    }
    for (aid, city, zip) in [(10, "rome", "00100"), (20, "oslo", "0150")] {
        sdb.insert("Addr", Tuple::from([Value::Int(aid), Value::text(city), Value::text(zip)]));
    }
    // the canonical Staff population (BirthDate unknown -> NULL)
    let mut tdb = Database::empty_of(&t);
    for (sid, name, city) in [(1, "ann", "rome"), (2, "bob", "oslo")] {
        tdb.insert(
            "Staff",
            Tuple::from([Value::Int(sid), Value::text(name), Value::Null, Value::text(city)]),
        );
    }

    for c in &m.constraints {
        let MappingConstraint::ExprEq { source: lhs, target: rhs } = c else { unreachable!() };
        let l = eval(lhs, &s, &sdb).expect("lhs");
        let r = eval(rhs, &t, &tdb).expect("rhs");
        assert!(l.set_eq(&r), "constraint fails:\n{c}\nlhs:\n{l}\nrhs:\n{r}");
    }
}

#[test]
fn ef4_clio_baseline_generates_equivalent_staff_rows() {
    // the Clio'00-style direct transformation produces the same Name/City
    // pairs the constraints describe
    let s = source();
    let t = target();
    let views = correspondences_to_views(&s, &t, &fig4_corrs()).expect("clio views");
    let mut sdb = Database::empty_of(&s);
    sdb.insert(
        "Empl",
        Tuple::from([Value::Int(1), Value::text("ann"), Value::text("555"), Value::Int(10)]),
    );
    sdb.insert("Addr", Tuple::from([Value::Int(10), Value::text("rome"), Value::text("00100")]));
    let staff = eval(&views.view("Staff").expect("staff").expr, &s, &sdb).expect("eval");
    assert_eq!(staff.len(), 1);
    let row = staff.iter().next().expect("row");
    assert_eq!(row.values()[1], Value::text("ann"));
    assert_eq!(row.values()[3], Value::text("rome"));
}
