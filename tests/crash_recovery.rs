//! Tier-1 crash-recovery property suite (DESIGN.md §9).
//!
//! For generated repository workloads (`mm_workload::faults::repo_ops`),
//! simulate a crash at **every WAL byte offset** and at every step of
//! the snapshot-swap protocol, recover by reopening over the surviving
//! bytes, and assert the recovered repository equals a *committed
//! prefix* of the original history: no partial artifacts, no dangling
//! lineage edges, no double-applied frames. Plus: script transactions
//! roll back completely on failure, and decoders never panic on
//! arbitrarily corrupted bytes.

use mm_repository::{
    ArtifactId, ArtifactKind, DurableOptions, FaultOp, FaultPlan, FaultStorage, MemStorage,
    Repository, Storage, Wal, SNAPSHOT_FILE, SNAPSHOT_TMP_FILE, WAL_FILE,
};
use mm_workload::faults::{mutate_bytes, repo_ops, RepoOp};
use model_management::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn sample_schema(name: &str) -> Schema {
    SchemaBuilder::new(name)
        .relation("R", &[("a", DataType::Int), ("b", DataType::Text)])
        .build()
        .expect("static test schema")
}

fn sample_mapping() -> Mapping {
    let mut m = Mapping::new("S", "T");
    m.push_tgd(Tgd::new(
        vec![Atom::vars("R", &["x", "y"])],
        vec![Atom::vars("U", &["x", "y"])],
    ));
    m
}

/// A deterministic tracked instance for `I{n}`: one relation `R(a, b)`
/// with `rows` tuples keyed off the op index so re-loads differ.
fn sample_instance(n: usize, rows: usize, salt: usize) -> Database {
    let mut db = Database::empty_of(&sample_schema(&format!("I{n}")));
    for r in 0..rows {
        db.insert(
            "R",
            Tuple::new(vec![
                Value::Int((salt * 100 + r) as i64),
                Value::Text(format!("t{n}-{salt}-{r}")),
            ]),
        );
    }
    db
}

fn sample_views() -> ViewSet {
    let mut vs = ViewSet::new("Base", "V");
    vs.push(ViewDef::new("VR", Expr::base("R")));
    vs
}

/// Apply one workload op, tracking op-index → stored ArtifactId so
/// lineage ops can reference earlier stores. Returns Err on the first
/// storage failure (the simulated crash).
fn apply_op(
    repo: &Repository,
    op: &RepoOp,
    i: usize,
    ids: &mut HashMap<usize, ArtifactId>,
) -> Result<(), RepositoryError> {
    match op {
        RepoOp::StoreSchema { n } => {
            let name = format!("S{n}");
            let id = repo.store_schema(name.clone(), sample_schema(&name))?;
            ids.insert(i, id);
        }
        RepoOp::StoreMapping { n } => {
            let id = repo.store_mapping(format!("m{n}"), sample_mapping())?;
            ids.insert(i, id);
        }
        RepoOp::RecordLineage { input_ops, output_op } => {
            let inputs: Vec<ArtifactId> =
                input_ops.iter().map(|o| ids[o].clone()).collect();
            repo.record("op", inputs, ids[output_op].clone())?;
        }
        RepoOp::PutInstance { n, rows } => {
            repo.put_instance(format!("I{n}"), sample_instance(*n, *rows, i))?;
        }
        RepoOp::InsertRows { n, rows } => {
            let tuples: Vec<Tuple> = (0..*rows)
                .map(|r| {
                    Tuple::new(vec![
                        Value::Int((i * 1000 + r) as i64),
                        Value::Text(format!("d{n}-{i}-{r}")),
                    ])
                })
                .collect();
            repo.apply_instance_delta(&format!("I{n}"), vec![("R".to_string(), tuples)])?;
        }
        RepoOp::RegisterSubscription { id, n } => {
            repo.register_subscription(Subscription {
                id: *id,
                instance: format!("I{n}"),
                views: sample_views(),
                cursor: 0,
            })?;
        }
        RepoOp::AdvanceCursor { id, cursor } => {
            repo.advance_cursor(*id, *cursor)?;
        }
        RepoOp::DropSubscription { id } => {
            repo.drop_subscription(*id)?;
        }
    }
    Ok(())
}

/// Every lineage edge must reference artifacts the repository actually
/// holds — a recovered repository may lose a suffix of history, but an
/// edge whose endpoint is missing means recovery tore a batch apart.
fn assert_no_dangling(repo: &Repository) {
    for edge in repo.lineage() {
        for id in edge.inputs.iter().chain(std::iter::once(&edge.output)) {
            let versions = match id.kind {
                ArtifactKind::Schema => repo.schema_versions(&id.name.name),
                ArtifactKind::Mapping => repo.mapping_versions(&id.name.name),
                ArtifactKind::ViewSet => repo.viewset_versions(&id.name.name),
                ArtifactKind::Correspondences => {
                    repo.correspondences_versions(&id.name.name)
                }
            };
            assert!(versions > id.name.version, "dangling lineage reference {id}");
        }
    }
}

/// Golden run: apply the whole workload on reliable storage, recording
/// after each op the WAL length and the state fingerprint. Returns
/// `(bytes_after, state_after)` where index `i` describes the prefix of
/// `i` committed ops (index 0 = empty repository).
fn golden_run(ops: &[RepoOp]) -> (Vec<usize>, Vec<bytes::Bytes>) {
    let mem = MemStorage::new();
    let repo = Repository::open_durable(mem.clone(), DurableOptions::default())
        .expect("golden open");
    let mut ids = HashMap::new();
    let mut bytes_after = vec![0usize];
    let mut state_after = vec![repo.state_bytes()];
    for (i, op) in ops.iter().enumerate() {
        apply_op(&repo, op, i, &mut ids).expect("golden apply");
        bytes_after.push(mem.len_of(WAL_FILE).unwrap_or(0));
        state_after.push(repo.state_bytes());
    }
    (bytes_after, state_after)
}

/// The headline property: crash after every WAL byte offset, recover,
/// and the result is exactly the longest committed prefix that fits in
/// the surviving bytes.
#[test]
fn crash_at_every_wal_byte_recovers_a_committed_prefix() {
    for seed in [1u64, 2, 3] {
        let ops = repo_ops(seed, 24, 3);
        let (bytes_after, state_after) = golden_run(&ops);
        let total = *bytes_after.last().expect("nonempty");

        for crash_at in 0..=total {
            // run the workload against storage that tears at `crash_at`
            // persisted bytes, then dies
            let mem = MemStorage::new();
            let faulty =
                FaultStorage::new(mem.clone(), FaultPlan::crash_after_bytes(crash_at as u64));
            let repo = Repository::open_durable(faulty, DurableOptions::default())
                .expect("open on healthy prefix");
            let mut ids = HashMap::new();
            for (i, op) in ops.iter().enumerate() {
                if apply_op(&repo, op, i, &mut ids).is_err() {
                    break; // crashed — the disk image is frozen in `mem`
                }
            }
            drop(repo);

            // recover over the surviving bytes
            let recovered =
                Repository::open_durable(MemStorage::from_files(mem.dump()), DurableOptions::default())
                    .expect("recovery must succeed at any crash offset");

            // expected: the longest committed prefix whose WAL fits
            let expect =
                (0..bytes_after.len()).rev().find(|&i| bytes_after[i] <= crash_at).expect("i=0");
            assert_eq!(
                recovered.state_bytes(),
                state_after[expect],
                "seed {seed}, crash at byte {crash_at}: expected prefix of {expect} ops"
            );
            assert_no_dangling(&recovered);
        }
    }
}

/// Crash inside the snapshot-swap protocol at every step: while writing
/// `snapshot.tmp` (at every byte), at the atomic rename, and at the
/// post-swap log reset. Recovery must always yield the full
/// pre-checkpoint state — the swap is all-or-nothing.
#[test]
fn crash_inside_snapshot_swap_never_loses_committed_state() {
    let ops = repo_ops(7, 16, 3);
    let (bytes_after, state_after) = golden_run(&ops);
    let wal_total = *bytes_after.last().expect("nonempty");
    let full_state = state_after.last().expect("nonempty").clone();

    // how big is the snapshot? run one clean checkpoint to measure
    let snapshot_len = {
        let mem = MemStorage::new();
        let repo =
            Repository::open_durable(mem.clone(), DurableOptions::default()).expect("open");
        let mut ids = HashMap::new();
        for (i, op) in ops.iter().enumerate() {
            apply_op(&repo, op, i, &mut ids).expect("apply");
        }
        repo.checkpoint().expect("clean checkpoint");
        assert_eq!(mem.len_of(WAL_FILE), None, "checkpoint must reset the log");
        mem.len_of(SNAPSHOT_FILE).expect("snapshot written")
    };

    let run_to_checkpoint = |storage: Arc<dyn Storage>| {
        let repo = Repository::open_durable(storage, DurableOptions::default()).expect("open");
        let mut ids = HashMap::new();
        for (i, op) in ops.iter().enumerate() {
            apply_op(&repo, op, i, &mut ids).expect("apply");
        }
        repo.checkpoint() // may fail — that's the point
    };

    // (a) tear the snapshot.tmp write at every byte offset
    for cut in 0..snapshot_len {
        let mem = MemStorage::new();
        let budget = (wal_total + cut) as u64;
        let faulty = FaultStorage::new(mem.clone(), FaultPlan::crash_after_bytes(budget));
        assert!(run_to_checkpoint(faulty).is_err(), "cut {cut} must fail the checkpoint");
        let image = mem.dump();
        assert!(image.contains_key(WAL_FILE), "WAL must still be intact");
        let recovered =
            Repository::open_durable(MemStorage::from_files(image), DurableOptions::default())
                .expect("recovery after torn snapshot write");
        assert_eq!(recovered.state_bytes(), full_state, "cut {cut}");
        assert_no_dangling(&recovered);
    }

    // (b) crash at the rename: tmp exists, snapshot not swapped
    {
        let mem = MemStorage::new();
        let faulty = FaultStorage::new(mem.clone(), FaultPlan::crash_at(FaultOp::Rename, 0));
        assert!(run_to_checkpoint(faulty).is_err());
        let image = mem.dump();
        assert!(image.contains_key(SNAPSHOT_TMP_FILE), "tmp written before rename");
        assert!(!image.contains_key(SNAPSHOT_FILE), "swap never happened");
        let recovered =
            Repository::open_durable(MemStorage::from_files(image), DurableOptions::default())
                .expect("recovery after failed rename");
        assert_eq!(recovered.state_bytes(), full_state);
    }

    // (c) crash at the log reset: snapshot swapped, stale WAL remains —
    // recovery must skip the already-snapshotted frames (no double
    // apply). Delete #0 is open_durable's tmp cleanup; #1 is the reset.
    {
        let mem = MemStorage::new();
        let faulty = FaultStorage::new(mem.clone(), FaultPlan::crash_at(FaultOp::Delete, 1));
        assert!(run_to_checkpoint(faulty).is_err());
        let image = mem.dump();
        assert!(image.contains_key(SNAPSHOT_FILE), "swap completed");
        assert!(image.contains_key(WAL_FILE), "stale log survived the crash");
        let recovered =
            Repository::open_durable(MemStorage::from_files(image), DurableOptions::default())
                .expect("recovery with snapshot + stale log");
        assert_eq!(recovered.state_bytes(), full_state, "stale frames double-applied");
        assert_no_dangling(&recovered);
    }
}

/// A script that dies because the *commit itself* hits a storage fault
/// must leave memory at the pre-script state — memory and log never
/// diverge.
#[test]
fn script_commit_failure_rolls_back_memory() {
    let mem = MemStorage::new();
    // enough budget for the first script, not for the second's commit
    let first_script = "schema Base {\n  table T(a: int)\n}";
    let probe = MemStorage::new();
    let e = Engine::open_durable(probe.clone(), DurableOptions::default()).expect("probe");
    run_script(&e, first_script).expect("probe script");
    let first_cost = probe.len_of(WAL_FILE).expect("probe wal") as u64;

    let faulty = FaultStorage::new(mem.clone(), FaultPlan::crash_after_bytes(first_cost + 8));
    let engine = Engine::open_durable(faulty, DurableOptions::default()).expect("open");
    run_script(&engine, first_script).expect("first script fits its budget");
    let committed = engine.repo.state_bytes();

    let err = run_script(&engine, "schema X {\n  table U(a: int)\n}").unwrap_err();
    assert!(err.message.contains("commit transaction"), "{err}");
    assert_eq!(engine.repo.state_bytes(), committed, "commit failure must roll back");
    assert!(!engine.repo.in_transaction());

    // and the on-disk image recovers to the same state
    let recovered = Repository::open_durable(
        MemStorage::from_files(mem.dump()),
        DurableOptions::default(),
    )
    .expect("recovery");
    assert_eq!(recovered.state_bytes(), committed);
}

// --- decoders never panic on corrupted bytes (satellite 3) ---------------

fn pristine_snapshot() -> Vec<u8> {
    let repo = Repository::new();
    let mut ids = HashMap::new();
    for (i, op) in repo_ops(11, 12, 3).iter().enumerate() {
        apply_op(&repo, op, i, &mut ids).expect("ephemeral apply");
    }
    repo.snapshot().to_vec()
}

fn pristine_wal() -> Vec<u8> {
    let mem = MemStorage::new();
    let repo =
        Repository::open_durable(mem.clone(), DurableOptions::default()).expect("open");
    let mut ids = HashMap::new();
    for (i, op) in repo_ops(13, 12, 3).iter().enumerate() {
        apply_op(&repo, op, i, &mut ids).expect("durable apply");
    }
    mem.dump().remove(WAL_FILE).expect("wal bytes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `Repository::restore` on arbitrarily mutated snapshot bytes
    /// returns Ok or a typed error — never panics, never OOMs on an
    /// adversarial length prefix.
    #[test]
    fn restore_never_panics_on_mutated_snapshots(seed in any::<u64>()) {
        let corrupt = mutate_bytes(&pristine_snapshot(), seed);
        let _ = Repository::restore(bytes::Bytes::from(corrupt));
    }

    /// WAL replay on arbitrarily mutated log bytes yields a valid
    /// prefix (possibly empty) — never panics.
    #[test]
    fn wal_replay_never_panics_on_mutated_logs(seed in any::<u64>()) {
        let corrupt = mutate_bytes(&pristine_wal(), seed);
        let mut files = std::collections::BTreeMap::new();
        files.insert(WAL_FILE.to_string(), corrupt);
        let wal = Wal::new(MemStorage::from_files(files), WAL_FILE);
        let replay = wal.replay().expect("MemStorage read cannot fail");
        prop_assert!(replay.valid_len <= replay.total_len);
    }

    /// Full recovery over a mutated disk image (snapshot + WAL both
    /// corrupted) either succeeds with a consistent repository or fails
    /// with a typed error.
    #[test]
    fn recovery_never_panics_on_mutated_disk_images(seed in any::<u64>()) {
        let mut files = std::collections::BTreeMap::new();
        files.insert(SNAPSHOT_FILE.to_string(), mutate_bytes(&pristine_snapshot(), seed));
        files.insert(WAL_FILE.to_string(), mutate_bytes(&pristine_wal(), seed ^ 0x9E37_79B9));
        if let Ok(repo) = Repository::open_durable(
            MemStorage::from_files(files),
            DurableOptions::default(),
        ) {
            assert_no_dangling(&repo);
        }
    }
}
