//! EF2/EF3 — the paper's Figures 2 and 3, verbatim.
//!
//! Figure 2: three equality constraints between slices of the
//! Person/Employee/Customer hierarchy and the HR/Empl/Client tables.
//! Figure 3: the generated query that populates the Persons entity set —
//! a left-outer-join assembly with `_from` flags and a CASE over them.
//! We verify the *semantics* of the generated query on the paper's data
//! shapes, the textual CASE/flag structure, and roundtripping.

use model_management::prelude::*;

fn er() -> Schema {
    SchemaBuilder::new("ER")
        .entity("Person", &[("Id", DataType::Int), ("Name", DataType::Text)])
        .entity_sub("Employee", "Person", &[("Dept", DataType::Text)])
        .entity_sub("Customer", "Person", &[
            ("CreditScore", DataType::Int),
            ("BillingAddr", DataType::Text),
        ])
        .key("Person", &["Id"])
        .build()
        .expect("paper ER schema")
}

fn sql() -> Schema {
    SchemaBuilder::new("SQL")
        .relation("HR", &[("Id", DataType::Int), ("Name", DataType::Text)])
        .relation("Empl", &[("Id", DataType::Int), ("Dept", DataType::Text)])
        .relation("Client", &[
            ("Id", DataType::Int),
            ("Name", DataType::Text),
            ("Score", DataType::Int),
            ("Addr", DataType::Text),
        ])
        .build()
        .expect("paper SQL schema")
}

/// The Figure 2 constraints, written exactly as in the paper:
/// 1. persons that are ONLY Person or ONLY Employee → HR(Id, Name)
/// 2. employees → Empl(Id, Dept)
/// 3. customers → Client(Id, Name, Score, Addr)
fn fig2(er: &Schema) -> Mapping {
    let ext = |ty: &str| entity_extent(er, ty).expect("entity type");
    Mapping::with_constraints(
        "ER",
        "SQL",
        vec![
            MappingConstraint::ExprEq {
                source: ext("Person")
                    .select(
                        Predicate::IsOf { ty: "Person".into(), only: true }
                            .or(Predicate::IsOf { ty: "Employee".into(), only: true }),
                    )
                    .project(&["Id", "Name"]),
                target: Expr::base("HR"),
            },
            MappingConstraint::ExprEq {
                source: ext("Employee")
                    .select(Predicate::IsOf { ty: "Employee".into(), only: false })
                    .project(&["Id", "Dept"]),
                target: Expr::base("Empl"),
            },
            MappingConstraint::ExprEq {
                source: ext("Customer")
                    .select(Predicate::IsOf { ty: "Customer".into(), only: false })
                    .project(&["Id", "Name", "CreditScore", "BillingAddr"]),
                target: Expr::base("Client"),
            },
        ],
    )
}

fn tables() -> Database {
    let mut db = Database::empty_of(&sql());
    db.insert("HR", Tuple::from([Value::Int(1), Value::text("pat")]));
    db.insert("HR", Tuple::from([Value::Int(2), Value::text("eve")]));
    db.insert("Empl", Tuple::from([Value::Int(2), Value::text("hr")]));
    db.insert(
        "Client",
        Tuple::from([Value::Int(3), Value::text("carl"), Value::Int(700), Value::text("5 Rue")]),
    );
    db
}

#[test]
fn ef3_generated_query_populates_persons() {
    let er = er();
    let sql = sql();
    let frags = parse_fragments(&er, &sql, &fig2(&er)).expect("fragments");
    assert_eq!(frags.len(), 3);
    let qv = query_views(&er, &sql, &frags).expect("query views");
    let entities = materialize_views(&qv, &sql, &tables()).expect("materialize");

    // pat (HR only) reconstructs as a plain Person
    let person = entities.relation("Person").expect("set");
    assert_eq!(person.len(), 1);
    assert_eq!(
        person.iter().next().expect("row").values(),
        [Value::text("Person"), Value::Int(1), Value::text("pat")]
    );
    // eve (HR + Empl) reconstructs as an Employee with Dept joined in
    let employee = entities.relation("Employee").expect("set");
    assert_eq!(
        employee.iter().next().expect("row").values(),
        [Value::text("Employee"), Value::Int(2), Value::text("eve"), Value::text("hr")]
    );
    // carl (Client only) reconstructs as a Customer with the renamed
    // Score/Addr columns mapped back to CreditScore/BillingAddr
    let customer = entities.relation("Customer").expect("set");
    assert_eq!(
        customer.iter().next().expect("row").values(),
        [
            Value::text("Customer"),
            Value::Int(3),
            Value::text("carl"),
            Value::Int(700),
            Value::text("5 Rue")
        ]
    );
}

#[test]
fn ef3_query_shape_matches_figure3() {
    let er = er();
    let sql = sql();
    let frags = parse_fragments(&er, &sql, &fig2(&er)).expect("fragments");
    let qv = query_views(&er, &sql, &frags).expect("query views");
    let text = qv.view("Person").expect("view").expr.to_string();
    // the structural signatures of the Figure 3 query
    assert!(text.contains("LEFT OUTER JOIN"), "{text}");
    assert!(text.contains("CASE WHEN"), "{text}");
    assert!(text.contains("$from0"), "{text}");
    assert!(text.contains("IS NULL"), "{text}");
    assert!(text.contains("'Person'") && text.contains("'Employee'") && text.contains("'Customer'"));
}

#[test]
fn ef2_constraints_hold_on_roundtripped_instance() {
    // both sides of every Figure 2 constraint evaluate to the same
    // relation when entities and tables are related by the update views
    let er = er();
    let sql = sql();
    let mapping = fig2(&er);
    let frags = parse_fragments(&er, &sql, &mapping).expect("fragments");
    let uv = update_views(&er, &sql, &frags).expect("update views");

    let mut entities = Database::empty_of(&er);
    entities.insert_entity("Person", "Person", vec![Value::Int(1), Value::text("pat")]);
    entities.insert_entity(
        "Employee",
        "Employee",
        vec![Value::Int(2), Value::text("eve"), Value::text("hr")],
    );
    entities.insert_entity(
        "Customer",
        "Customer",
        vec![Value::Int(3), Value::text("carl"), Value::Int(700), Value::text("5 Rue")],
    );
    let tables = materialize_views(&uv, &er, &entities).expect("tables");

    for c in &mapping.constraints {
        let MappingConstraint::ExprEq { source, target } = c else { unreachable!() };
        let lhs = eval(source, &er, &entities).expect("source side");
        let rhs = eval(target, &sql, &tables).expect("target side");
        assert!(lhs.set_eq(&rhs), "constraint violated:\n{c}\nlhs:\n{lhs}\nrhs:\n{rhs}");
    }
}

#[test]
fn ef3_roundtrip_and_coverage() {
    let er = er();
    let sql = sql();
    let frags = parse_fragments(&er, &sql, &fig2(&er)).expect("fragments");
    assert!(check_coverage(&er, &frags).is_empty());

    let mut entities = Database::empty_of(&er);
    for i in 0..10 {
        entities.insert_entity(
            "Person",
            "Person",
            vec![Value::Int(i), Value::Text(format!("p{i}"))],
        );
        entities.insert_entity(
            "Employee",
            "Employee",
            vec![Value::Int(100 + i), Value::Text(format!("e{i}")), Value::Text(format!("d{i}"))],
        );
        entities.insert_entity(
            "Customer",
            "Customer",
            vec![
                Value::Int(200 + i),
                Value::Text(format!("c{i}")),
                Value::Int(600 + i),
                Value::Text(format!("a{i}")),
            ],
        );
    }
    let report = verify_roundtrip(&er, &sql, &frags, &entities).expect("roundtrip check");
    assert!(report.roundtrips(), "{:?}", report.mismatches);
}
