//! Tier-1 fault-injection suite: every engine operator, driven with the
//! adversarial inputs from `mm_workload::faults`, must return a typed
//! error or a recorded degradation within its budget — never panic,
//! never run unbounded.

use mm_engine::prelude::*;
use mm_workload::faults;

fn store_tgd_mapping(engine: &Engine, name: &str, source: &str, target: &str, tgds: Vec<Tgd>) {
    let mut m = Mapping::new(source, target);
    for t in tgds {
        m.push_tgd(t);
    }
    engine.add_mapping(name, m).unwrap();
}

/// The divergent tgd set trips `Diverged` at the configured round cap
/// instead of silently stopping or spinning forever.
#[test]
fn divergent_chase_trips_diverged() {
    let (schema, db, tgds) = faults::divergent_tgds();
    let engine = Engine::with_config(EngineConfig { chase_max_rounds: 16, ..Default::default() }).unwrap();
    engine.add_schema(schema).unwrap();
    store_tgd_mapping(&engine, "loop", "Loop", "Loop", tgds);
    let err = engine.chase_general("loop", "Loop", &db).unwrap_err();
    match err {
        EngineError::Exec(ExecError::Diverged { rounds }) => assert_eq!(rounds, 16),
        other => panic!("expected Diverged, got {other:?}"),
    }
}

/// The same divergent set under a wall-clock budget stops within the
/// deadline — boundedness does not depend on the round cap alone.
#[test]
fn divergent_chase_respects_wall_clock() {
    let (schema, db, tgds) = faults::divergent_tgds();
    let engine = Engine::with_config(EngineConfig {
        chase_max_rounds: u64::MAX,
        budget: ExecBudget::unbounded().with_wall(std::time::Duration::from_millis(50)),
        ..Default::default()
    })
    .unwrap();
    engine.add_schema(schema).unwrap();
    store_tgd_mapping(&engine, "loop", "Loop", "Loop", tgds);
    let started = std::time::Instant::now();
    let err = engine.chase_general("loop", "Loop", &db).unwrap_err();
    assert!(started.elapsed() < std::time::Duration::from_secs(10), "ran unbounded");
    assert!(
        matches!(err, EngineError::Exec(ExecError::BudgetExhausted { .. })),
        "expected a budget trip, got {err:?}"
    );
}

/// A weakly acyclic set terminates normally under a generous budget —
/// governance must not break converging runs.
#[test]
fn terminating_chain_completes_under_budget() {
    let (schema, db, tgds) = faults::terminating_chain(5);
    let engine = Engine::new();
    engine.add_schema(schema).unwrap();
    store_tgd_mapping(&engine, "chain", "Chain", "Chain", tgds);
    let (out, outcome) = engine.chase_general("chain", "Chain", &db).unwrap();
    assert!(matches!(outcome, ChaseOutcome::Done(_)));
    assert_eq!(out.relation("R4").unwrap().len(), 1);
}

/// Mid-operation cancellation stops an otherwise-unbounded chase: no
/// round cap, no step cap — the token alone halts it.
#[test]
fn cancellation_stops_divergent_chase() {
    let (schema, db, tgds) = faults::divergent_tgds();
    let token = faults::cancel_after(5);
    let engine = Engine::with_config(EngineConfig {
        chase_max_rounds: u64::MAX,
        budget: ExecBudget::unbounded().with_cancel(token),
        ..Default::default()
    })
    .unwrap();
    engine.add_schema(schema).unwrap();
    store_tgd_mapping(&engine, "loop", "Loop", "Loop", tgds);
    let err = engine.chase_general("loop", "Loop", &db).unwrap_err();
    assert!(matches!(err, EngineError::Exec(ExecError::Cancelled { .. })), "{err:?}");
}

/// Exchange of an oversized instance trips the row budget with a typed
/// error instead of materializing everything.
#[test]
fn exchange_respects_row_budget() {
    let (src, db) = faults::oversized_instance(5_000);
    let tgt = mm_workload::binary_schema("TgtBig", "T", 1);
    let tgds = vec![Tgd::new(
        vec![Atom::vars("R0", &["x", "y"])],
        vec![Atom::vars("T0", &["x", "y"])],
    )];
    let engine = Engine::with_config(EngineConfig {
        budget: ExecBudget::unbounded().with_rows(100),
        ..Default::default()
    })
    .unwrap();
    engine.add_schema(src).unwrap();
    engine.add_schema(tgt).unwrap();
    store_tgd_mapping(&engine, "copy", "Big", "TgtBig", tgds);
    let err = engine.exchange("copy", "TgtBig", &Database::new("Big")).map(|_| ()).err();
    // empty source: fine. Now the oversized one must trip.
    assert!(err.is_none() || matches!(err, Some(EngineError::Exec(_))));
    let err = engine.exchange("copy", "TgtBig", &db).unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::Exec(ExecError::BudgetExhausted { resource: Resource::Rows, .. })
        ),
        "{err:?}"
    );
}

/// Under the default (permissive) config the governed exchange agrees
/// with the legacy ungoverned chase.
#[test]
fn governed_exchange_matches_legacy_chase() {
    let (src, db) = faults::oversized_instance(50);
    let tgt = mm_workload::binary_schema("TgtBig", "T", 1);
    let tgds = vec![Tgd::new(
        vec![Atom::vars("R0", &["x", "y"])],
        vec![Atom::vars("T0", &["x", "y"])],
    )];
    let engine = Engine::new();
    engine.add_schema(src).unwrap();
    engine.add_schema(tgt.clone()).unwrap();
    store_tgd_mapping(&engine, "copy", "Big", "TgtBig", tgds.clone());
    let (governed, stats) = engine.exchange("copy", "TgtBig", &db).unwrap();
    let (legacy, legacy_stats) = chase_st(&tgt, &tgds, &db);
    assert!(governed.relation("T0").unwrap().set_eq(legacy.relation("T0").unwrap()));
    assert_eq!(stats.fired, legacy_stats.fired);
}

/// Exponential SO-tgd composition trips the engine's clause bound with a
/// typed `ComposeError` instead of materializing 4^4 clauses.
#[test]
fn exponential_compose_trips_clause_bound() {
    let (_, _, _, m12, m23) = faults::exponential_compose(4, 4);
    let engine = Engine::with_config(EngineConfig {
        compose_clause_bound: 32, // < 4^4 = 256
        ..Default::default()
    })
    .unwrap();
    store_tgd_mapping(&engine, "m12", "S1", "S2", m12);
    store_tgd_mapping(&engine, "m23", "S2", "S3", m23);
    let err = engine.compose_tgd_mappings("m12", "m23", "m13").unwrap_err();
    assert!(matches!(err, EngineError::Compose(ComposeError::OutputTooLarge { .. })), "{err:?}");
}

/// The same composition under a clause *budget* (rather than the bound)
/// surfaces `BudgetExhausted { resource: Clauses }`.
#[test]
fn exponential_compose_trips_clause_budget() {
    let (_, _, _, m12, m23) = faults::exponential_compose(4, 4);
    let engine = Engine::with_config(EngineConfig {
        budget: ExecBudget::unbounded().with_clauses(32),
        ..Default::default()
    })
    .unwrap();
    store_tgd_mapping(&engine, "m12", "S1", "S2", m12);
    store_tgd_mapping(&engine, "m23", "S2", "S3", m23);
    let err = engine.compose_tgd_mappings("m12", "m23", "m13").unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::Compose(ComposeError::Exec(ExecError::BudgetExhausted {
                resource: Resource::Clauses,
                ..
            }))
        ),
        "{err:?}"
    );
}

/// A feasible composition stores the deskolemized first-order mapping.
#[test]
fn feasible_compose_stores_folded_mapping() {
    let (_, _, _, m12, m23) = faults::exponential_compose(2, 2);
    let engine = Engine::new();
    store_tgd_mapping(&engine, "m12", "S1", "S2", m12);
    store_tgd_mapping(&engine, "m23", "S2", "S3", m23);
    let (so, _folded) = engine.compose_tgd_mappings("m12", "m23", "m13").unwrap();
    assert_eq!(so.clauses.len(), 4);
}

/// Applying a malformed SO-tgd (head variable never bound by the body)
/// returns `Malformed`, not a panic.
#[test]
fn malformed_sotgd_yields_typed_error() {
    let (src, tgt, so) = faults::unbound_variable_sotgd();
    let mut db = Database::empty_of(&src);
    db.insert("A0", Tuple::from([Value::Int(1), Value::Int(2)]));
    let err = apply_sotgd(&so, &db, &tgt).unwrap_err();
    assert!(matches!(err, ExecError::Malformed { .. }), "{err:?}");
}

/// The quadratic self-join workload trips a step budget inside the
/// homomorphism search, and a pre-cancelled token stops evaluation
/// before any work.
#[test]
fn eval_and_hom_search_respect_budgets() {
    let (src, tgt, db, tgds) = faults::quadratic_join(60);
    let tight = ExecBudget::unbounded().with_steps(200);
    let err = chase_st_governed(&tgt, &tgds, &db, &tight).unwrap_err();
    assert!(err.error.is_resource(), "{err}");
    assert!(err.stats.rounds <= 1);

    let token = CancelToken::new();
    token.cancel();
    let budget = ExecBudget::unbounded().with_cancel(token);
    let mut gov = Governor::new(&budget);
    let err = eval_governed(&Expr::base("R0"), &src, &db, &mut gov).unwrap_err();
    assert!(matches!(err, EvalError::Exec(ExecError::Cancelled { .. })), "{err:?}");
}

/// Governed batch load of an oversized batch trips the row budget and
/// leaves the base database untouched.
#[test]
fn batch_load_budget_trip_leaves_base_untouched() {
    let (schema, batch) = faults::oversized_instance(1_000);
    let mut views = ViewSet::new("Big", "Load");
    views.push(ViewDef::new("R0", Expr::base("R0")));
    let mut base = Database::empty_of(&schema);
    let budget = ExecBudget::unbounded().with_rows(10);
    let err = batch_load_governed(&views, &schema, &batch, &mut base, &budget).unwrap_err();
    assert!(matches!(err, EvalError::Exec(ExecError::BudgetExhausted { .. })), "{err:?}");
    assert_eq!(base.relation("R0").unwrap().len(), 0, "budget trip must not partially load");
}

/// The governed mediator prefers the collapsed plan and degrades to
/// chained unfolding — with the degradation recorded — when the collapse
/// trips the clause budget. Both paths return the same rows.
#[test]
fn mediator_degradation_is_recorded_and_correct() {
    let (schema, db) = faults::oversized_instance(20);
    let mut l1 = ViewSet::new("Big", "L1");
    l1.push(ViewDef::new("V1", Expr::base("R0")));
    let mut l2 = ViewSet::new("L1", "L2");
    l2.push(ViewDef::new("V2", Expr::base("V1").project(&["a"])));
    let mediator = Mediator::new(&schema, vec![&l1, &l2]);
    let q = Expr::base("V2");

    let full = mediator.answer_governed(&q, &db, &ExecBudget::unbounded()).unwrap();
    assert_eq!(full.mode, MediationMode::Collapsed);
    assert!(full.degradation.is_none());

    let tight = ExecBudget::unbounded().with_clauses(1);
    let degraded = mediator.answer_governed(&q, &db, &tight).unwrap();
    assert_eq!(degraded.mode, MediationMode::Chained);
    let d = degraded.degradation.expect("degradation must be recorded");
    assert_eq!(d.kind, DegradationKind::CollapsedToChained);
    assert!(degraded.rows.set_eq(&full.rows));
}

/// IVM under a starved budget degrades to recompute per view, records
/// it, and still produces correct views.
#[test]
fn ivm_degradation_is_recorded_and_correct() {
    let (schema, db) = faults::oversized_instance(200);
    let mut views = ViewSet::new("Big", "V");
    views.push(ViewDef::new(
        "SelfJoin",
        Expr::base("R0")
            .join(Expr::base("R0").rename(&[("a", "b"), ("b", "c")]), &[("b", "b")]),
    ));
    let mut mat = materialize_views(&views, &schema, &db).unwrap();
    let mut delta = Delta::new();
    delta.insert("R0", Tuple::from([Value::Int(9_999), Value::Int(0)]));

    // starve the incremental pass: one step is never enough for the
    // join's delta rules, but the per-view recompute meter is fresh
    let budget = ExecBudget::unbounded().with_steps(1);
    let reports =
        maintain_insertions_governed(&views, &schema, &db, &delta, &mut mat, &budget);
    match reports {
        Ok(reports) => {
            let r = &reports[0];
            assert_eq!(r.strategy, MaintenanceStrategy::Recompute);
            assert!(r.degradation.is_some(), "degradation must be recorded");
            let mut new_db = db.clone();
            delta.apply_to(&mut new_db);
            let oracle = materialize_views(&views, &schema, &new_db).unwrap();
            assert!(oracle.relation("SelfJoin").unwrap().set_eq(mat.relation("SelfJoin").unwrap()));
        }
        // also acceptable: the recompute itself cannot fit one step —
        // but then the error must be typed, not a panic
        Err(e) => assert!(matches!(e, EvalError::Exec(ExecError::BudgetExhausted { .. })), "{e:?}"),
    }
}

/// Every repository-backed engine operator handles adversarial inputs
/// with `Ok` or a typed error — this test's completion is the no-panic,
/// no-unbounded-run guarantee for the whole operator surface.
#[test]
fn engine_operator_surface_is_total() {
    let engine = Engine::with_config(EngineConfig {
        chase_max_rounds: 8,
        compose_clause_bound: 64,
        budget: ExecBudget::unbounded()
            .with_steps(200_000)
            .with_rows(100_000)
            .with_clauses(64)
            .with_wall(std::time::Duration::from_secs(30)),
        ..Default::default()
    })
    .unwrap();

    // missing artifacts: typed repository errors
    assert!(matches!(engine.exchange("nope", "nope", &Database::new("x")),
        Err(EngineError::Repository(_))));
    assert!(matches!(engine.chase_general("nope", "nope", &Database::new("x")),
        Err(EngineError::Repository(_))));
    assert!(matches!(engine.compose("nope", "nope", "out"), Err(EngineError::Repository(_))));
    assert!(matches!(engine.compose_tgd_mappings("nope", "nope", "out"),
        Err(EngineError::Repository(_))));

    // non-tgd mapping where tgds are required: typed transgen error
    engine.add_mapping(
        "views-only",
        Mapping::with_constraints("A", "B", vec![MappingConstraint::ExprEq {
            source: Expr::base("X"),
            target: Expr::base("Y"),
        }]),
    )
    .unwrap();
    assert!(matches!(engine.compose_tgd_mappings("views-only", "views-only", "out"),
        Err(EngineError::TransGen(_))));

    // adversarial workloads under the capped config: each is Ok or typed
    let (schema, db, tgds) = faults::divergent_tgds();
    engine.add_schema(schema).unwrap();
    store_tgd_mapping(&engine, "loop", "Loop", "Loop", tgds);
    assert!(matches!(engine.chase_general("loop", "Loop", &db),
        Err(EngineError::Exec(_))));

    let (_, _, _, m12, m23) = faults::exponential_compose(4, 4);
    store_tgd_mapping(&engine, "m12", "S1", "S2", m12);
    store_tgd_mapping(&engine, "m23", "S2", "S3", m23);
    assert!(engine.compose_tgd_mappings("m12", "m23", "m13").is_err());
}
