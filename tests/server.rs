//! Fault-injection suite for the wire front-end (`mm-server`).
//!
//! Robustness claims proven here:
//! * overload returns typed shed frames while in-flight requests
//!   still complete, and the inflight gauge returns to zero;
//! * every byte-mutated / truncated / spliced frame and every
//!   mid-request disconnect leaves the server serving subsequent
//!   requests — no panic, no hang, no leaked session slot;
//! * deadlines and session budgets surface as stable wire codes;
//! * graceful shutdown drains inflight work and checkpoints durably
//!   (recoverable via `open_durable`);
//! * shed events and the `server.shed` counter stay 1:1.

use mm_engine::prelude::*;
use mm_server::protocol::{
    self, encode_request, read_frame, write_frame, Request, ERR_BAD_CRC, ERR_BUDGET_EXHAUSTED,
    ERR_DEADLINE_EXCEEDED, ERR_OVERLOADED, ERR_QUEUE_FULL, ERR_SHUTTING_DOWN,
};
use mm_server::{Client, Server, ServerConfig};
use mm_workload::{faults, tgds};
use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// An engine preloaded with a copy mapping `copy: Src -> Dst` plus the
/// quadratic-join mapping `quad: QSrc -> QTgt` for slow requests.
fn test_engine(config: EngineConfig) -> Engine {
    let engine = Engine::with_config(config).expect("engine");
    engine.add_schema(tgds::binary_schema("Src", "A", 2)).expect("src");
    engine.add_schema(tgds::binary_schema("Dst", "B", 2)).expect("dst");
    let mut copy = Mapping::new("Src", "Dst");
    for t in tgds::copy_tgds("A", "B", 2) {
        copy.push_tgd(t);
    }
    engine.add_mapping("copy", copy).expect("copy mapping");

    let (qsrc, qtgt, _, qtgds) = faults::quadratic_join(4);
    engine.add_schema(qsrc).expect("qsrc");
    engine.add_schema(qtgt).expect("qtgt");
    let mut quad = Mapping::new("QSrc", "QTgt");
    for t in qtgds {
        quad.push_tgd(t);
    }
    engine.add_mapping("quad", quad).expect("quad mapping");
    engine
}

fn small_source() -> Database {
    let mut db = Database::new("S");
    let mut rel = Relation::new(RelSchema::of(&[("a", DataType::Int), ("b", DataType::Int)]));
    rel.insert(Tuple::new(vec![Value::Int(1), Value::Int(2)]));
    rel.insert(Tuple::new(vec![Value::Int(3), Value::Int(4)]));
    db.insert_relation("A0", rel.clone());
    db.insert_relation("A1", rel);
    db
}

/// A config tuned for fast tests: short IO timeouts, quick drains.
fn fast_config() -> ServerConfig {
    ServerConfig {
        io_timeout: Duration::from_millis(200),
        drain_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    }
}

/// Spin until `cond` holds or `timeout` passes; panics on timeout.
fn wait_for(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let until = Instant::now() + timeout;
    while !cond() {
        assert!(Instant::now() < until, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

// ---------------------------------------------------------------------
// Happy paths: the wire agrees with the embedded engine.
// ---------------------------------------------------------------------

#[test]
fn exchange_explain_and_script_round_trip() {
    let engine = test_engine(EngineConfig::default());
    let oracle = test_engine(EngineConfig::default());
    let handle = Server::start(engine, fast_config()).expect("start");
    let mut client = Client::connect(handle.addr()).expect("connect");

    client.ping().expect("ping");

    let src = small_source();
    let (wire_db, wire_stats) = client.exchange("copy", "Dst", &src).expect("wire exchange");
    let (local_db, local_stats) = oracle.exchange("copy", "Dst", &src).expect("local exchange");
    assert_eq!(wire_stats.fired, local_stats.fired as u64);
    for (name, rel) in local_db.relations() {
        assert!(
            wire_db.relation(name).expect("relation").set_eq(rel),
            "wire and local exchange disagree on {name}"
        );
    }

    let (_, _, explain) = client.explain_exchange("copy", "Dst", &src).expect("explain");
    assert!(explain.contains("tgd"), "explain report looks empty: {explain:?}");

    let outputs = client
        .script("schema Extra {\n  table E0(a: int, b: int)\n}\nshow schema Extra")
        .expect("script");
    assert!(!outputs.is_empty());

    // Batch: two copies answer like two sequential exchanges.
    let items = vec![
        ("copy".to_string(), "Dst".to_string(), src.clone()),
        ("copy".to_string(), "Dst".to_string(), src.clone()),
    ];
    let slots = client.exchange_batch(&items).expect("batch");
    assert_eq!(slots.len(), 2);
    for slot in slots {
        let (db, _) = slot.expect("batch slot");
        assert!(db.relation("B0").expect("B0").set_eq(local_db.relation("B0").expect("B0")));
    }

    handle.shutdown().expect("shutdown");
}

#[test]
fn mediation_round_trips_over_the_wire() {
    // The runtime-services scenario: an ER model compiled onto tables,
    // queried back through the generated query views.
    let er = SchemaBuilder::new("ER")
        .entity("Party", &[("Id", DataType::Int), ("Name", DataType::Text)])
        .entity_sub("Customer", "Party", &[("Tier", DataType::Text)])
        .key("Party", &["Id"])
        .build()
        .expect("er schema");
    let gen = er_to_relational(&er, InheritanceStrategy::Vertical).expect("modelgen");
    let frags = parse_fragments(&er, &gen.schema, &gen.mapping).expect("fragments");
    let qv = query_views(&er, &gen.schema, &frags).expect("query views");
    let uv = update_views(&er, &gen.schema, &frags).expect("update views");
    let mut entities = Database::empty_of(&er);
    entities.insert_entity("Party", "Party", vec![Value::Int(1), Value::text("acme")]);
    entities.insert_entity(
        "Customer",
        "Customer",
        vec![Value::Int(2), Value::text("globex"), Value::text("gold")],
    );
    let tables = materialize_views(&uv, &er, &entities).expect("tables");

    let engine = Engine::new();
    let rel_name = gen.schema.name.clone();
    engine.add_schema(gen.schema.clone()).expect("rel schema");
    engine.add_viewset("qv", qv.clone()).expect("viewset");

    let handle = Server::start(engine, fast_config()).expect("start");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let q = Expr::base("Customer")
        .select(Predicate::col_eq_lit("Tier", "gold"))
        .project(&["Name"]);
    let reply = client
        .mediate(&rel_name, &["qv".to_string()], &q, &tables)
        .expect("wire mediation");

    let mediator = Mediator::new(&gen.schema, vec![&qv]);
    let local = mediator.answer_chained(&q, &tables).expect("local mediation");
    assert!(reply.rows.set_eq(&local));
    assert_eq!(reply.rows.len(), 1);
    handle.shutdown().expect("shutdown");
}

// ---------------------------------------------------------------------
// Overload: typed sheds, bounded queues, inflight completion.
// ---------------------------------------------------------------------

/// Raw single-stream driver: pipelines requests without waiting.
struct RawConn {
    stream: TcpStream,
}

impl RawConn {
    fn connect(addr: std::net::SocketAddr) -> RawConn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        RawConn { stream }
    }

    fn send(&mut self, req_id: u64, deadline_ms: u32, req: &Request) {
        let payload = encode_request(req_id, deadline_ms, 0, req);
        write_frame(&mut self.stream, &payload).expect("send frame");
    }

    /// Read one response frame: (req_id, Ok(())|Err(code)).
    fn read_reply(&mut self) -> (u64, Result<(), u32>) {
        let frame =
            read_frame(&mut self.stream, protocol::DEFAULT_MAX_FRAME_LEN).expect("read frame");
        assert!(frame.crc_ok(), "server sent a corrupt frame");
        let (id, body) = protocol::decode_response(frame.payload).expect("decode response");
        (id, body.map(|_| ()).map_err(|(code, _)| code))
    }
}

fn slow_exchange_request(rows: usize) -> Request {
    let (_, _, db, _) = faults::quadratic_join(rows);
    Request::Exchange { mapping: "quad".into(), target_schema: "QTgt".into(), source_db: db }
}

#[test]
fn overload_sheds_typed_frames_while_inflight_completes() {
    let collector = RingCollector::with_capacity(4096);
    let tel = Telemetry::new(collector.clone());
    let engine = test_engine(EngineConfig { telemetry: tel.clone(), ..Default::default() });
    let cfg = ServerConfig {
        workers: 1,
        queue_depth: 4,
        high_water: 2,
        low_water: 0,
        ..fast_config()
    };
    let handle = Server::start(engine, cfg).expect("start");
    let mut conn = RawConn::connect(handle.addr());

    // Two slow requests saturate the single worker (one executing, one
    // queued); the third crosses the high-water mark and must be shed
    // from the prelude without touching the engine.
    conn.send(1, 0, &slow_exchange_request(400));
    conn.send(2, 0, &slow_exchange_request(400));
    conn.send(3, 0, &Request::Ping);

    let mut outcomes = std::collections::HashMap::new();
    for _ in 0..3 {
        let (id, outcome) = conn.read_reply();
        outcomes.insert(id, outcome);
    }
    assert_eq!(outcomes[&3], Err(ERR_OVERLOADED), "request 3 must be shed");
    assert_eq!(outcomes[&1], Ok(()), "inflight request 1 must still complete");
    assert_eq!(outcomes[&2], Ok(()), "queued request 2 must still complete");

    wait_for("inflight to drain", Duration::from_secs(5), || handle.inflight() == 0);

    // Shedding clears below the low-water mark: the next request runs.
    conn.send(4, 0, &Request::Ping);
    assert_eq!(conn.read_reply(), (4, Ok(())));

    // Shed events mirror the counter 1:1 (the degradation parity rule).
    let snap = tel.metrics().expect("metrics").snapshot();
    let shed_events =
        collector.events().iter().filter(|e| e.op == "server.shed").count() as u64;
    assert!(snap.value("server.shed") >= 1);
    assert_eq!(snap.value("server.shed"), shed_events, "shed counter/event parity");
    assert_eq!(snap.value("server.completed"), 3, "requests 1, 2, 4 reached workers");

    handle.shutdown().expect("shutdown");
}

#[test]
fn full_queue_rejects_with_queue_full() {
    let engine = test_engine(EngineConfig::default());
    let cfg = ServerConfig {
        workers: 1,
        queue_depth: 1,
        // high-water out of reach: this test isolates the queue bound
        high_water: 1000,
        low_water: 0,
        ..fast_config()
    };
    let handle = Server::start(engine, cfg).expect("start");
    let mut conn = RawConn::connect(handle.addr());

    conn.send(1, 0, &slow_exchange_request(400)); // worker
    conn.send(2, 0, &slow_exchange_request(400)); // queue slot
    conn.send(3, 0, &slow_exchange_request(400)); // queue full
    conn.send(4, 0, &Request::Ping); // also queue full

    let mut outcomes = std::collections::HashMap::new();
    for _ in 0..4 {
        let (id, outcome) = conn.read_reply();
        outcomes.insert(id, outcome);
    }
    let rejected = [3u64, 4]
        .iter()
        .filter(|id| outcomes[id] == Err(ERR_QUEUE_FULL))
        .count();
    assert!(rejected >= 1, "at least one request must hit the queue bound: {outcomes:?}");
    assert_eq!(outcomes[&1], Ok(()));

    handle.shutdown().expect("shutdown");
}

// ---------------------------------------------------------------------
// Introspection under duress (DESIGN.md §15): the observability plane
// answers inline, bypassing admission control, precisely when the data
// plane is refusing work.
// ---------------------------------------------------------------------

#[test]
fn introspection_answers_while_shedding_and_draining() {
    let tel = Telemetry::new(RingCollector::with_capacity(4096));
    let engine = test_engine(EngineConfig { telemetry: tel, ..Default::default() });
    let cfg = ServerConfig {
        workers: 1,
        queue_depth: 4,
        high_water: 2,
        low_water: 0,
        // Threshold 0: every finished request keeps a slow-log entry.
        slow_threshold: Duration::from_micros(0),
        ..fast_config()
    };
    let handle = Server::start(engine, cfg).expect("start");
    let mut conn = RawConn::connect(handle.addr());

    // Saturate the single worker: one slow request executing, one
    // queued — inflight sits at the high-water mark and the shed latch
    // closes the data plane for everything after. Sized so the window
    // stays open across all the probes below even on the compact data
    // plane (which runs this exchange several times faster).
    conn.send(1, 0, &slow_exchange_request(2400));
    conn.send(2, 0, &slow_exchange_request(2400));
    wait_for("saturation", Duration::from_secs(10), || handle.inflight() >= 2);

    // A second session: data-plane traffic is shed with code 50...
    let mut probe = Client::connect(handle.addr()).expect("probe");
    let err = probe.ping().expect_err("ping must be shed while saturated");
    assert_eq!(err.code(), Some(ERR_OVERLOADED));
    let shed_trace = probe.last_trace_id();

    // ...while all four introspection ops on the same shedding server
    // answer inline, with state that reflects the overload.
    let health = probe.health().expect("health must answer under overload");
    assert!(health.shedding, "health must report the shed latch");
    assert!(health.inflight >= 2);
    assert!(health.shed >= 1, "the shed ping must be counted");
    assert_eq!(health.queue_capacity, 4);
    let metrics = probe.metrics().expect("metrics must answer under overload");
    let read = |key: &str| {
        metrics.iter().find(|(k, _)| k == key).map_or(0, |(_, v)| *v)
    };
    assert!(read("server.shed") >= 1, "snapshot must carry the shed counter");
    let slow = probe.slow_log(0).expect("slow log must answer under overload");
    assert!(
        slow.iter().any(|l| l.contains("\"code\":50") && l.contains("\"outcome\":\"rejected\"")),
        "the shed ping must be on the slow log: {slow:?}"
    );
    let trace = probe.trace(shed_trace).expect("trace must answer under overload");
    assert!(
        trace.iter().any(|l| l.contains("\"outcome\":\"rejected\"")),
        "the shed ping's trace id must resolve to its rejection: {trace:?}"
    );

    // Graceful shutdown on another thread: drain starts immediately,
    // and the saturating requests keep it open while we probe.
    let stopper = std::thread::spawn(move || handle.shutdown());
    wait_for("drain visible over the wire", Duration::from_secs(10), || {
        probe.health().map(|h| h.draining).unwrap_or(false)
    });
    let err = probe.ping().expect_err("data plane must refuse during drain");
    assert_eq!(err.code(), Some(ERR_SHUTTING_DOWN));
    let health = probe.health().expect("health must answer during drain");
    assert!(health.draining);
    let slow = probe.slow_log(0).expect("slow log must answer during drain");
    assert!(
        slow.iter().any(|l| l.contains("\"code\":52")),
        "the drain rejection must be on the slow log: {slow:?}"
    );

    // Drain means drain: the saturating requests still complete.
    let mut outcomes = std::collections::HashMap::new();
    for _ in 0..2 {
        let (id, outcome) = conn.read_reply();
        outcomes.insert(id, outcome);
    }
    assert_eq!(outcomes[&1], Ok(()), "inflight request must finish during drain");
    assert_eq!(outcomes[&2], Ok(()), "queued request must finish during drain");
    stopper.join().expect("stopper thread").expect("shutdown");
}

// ---------------------------------------------------------------------
// Hostile bytes and client faults.
// ---------------------------------------------------------------------

#[test]
fn payload_corruption_yields_typed_error_and_live_session() {
    let engine = test_engine(EngineConfig::default());
    let handle = Server::start(engine, fast_config()).expect("start");
    let mut conn = RawConn::connect(handle.addr());

    let payload = encode_request(7, 0, 0, &slow_exchange_request(8));
    let mut framed = Vec::new();
    write_frame(&mut framed, &payload).expect("frame");

    // Flip one bit in the payload region (frame header intact): a
    // typed error comes back and the same session stays usable. Byte 0
    // is the version byte — corrupting it answers `ERR_BAD_VERSION`
    // from the prelude (version dispatch runs before the CRC check);
    // everything past it is caught by the worker's CRC verification.
    for (bit_offset, expected) in [
        (0usize, protocol::ERR_BAD_VERSION),
        (5, ERR_BAD_CRC),
        (12, ERR_BAD_CRC),
        (40, ERR_BAD_CRC),
    ] {
        let corrupted = faults::bit_flip(
            &framed[protocol::HEADER_LEN..],
            bit_offset,
            (bit_offset % 8) as u32,
        );
        conn.stream.write_all(&framed[..protocol::HEADER_LEN]).expect("header");
        conn.stream.write_all(&corrupted).expect("payload");
        conn.stream.flush().expect("flush");
        let (_, outcome) = conn.read_reply();
        assert_eq!(outcome, Err(expected), "bit {bit_offset}");
    }

    // Same connection, valid request: the session survived.
    conn.send(8, 0, &Request::Ping);
    assert_eq!(conn.read_reply(), (8, Ok(())));
    handle.shutdown().expect("shutdown");
}

#[test]
fn mutated_frames_never_kill_the_server() {
    let engine = test_engine(EngineConfig::default());
    let handle = Server::start(engine, fast_config()).expect("start");
    let addr = handle.addr();

    let payload = encode_request(1, 0, 0, &Request::Exchange {
        mapping: "copy".into(),
        target_schema: "Dst".into(),
        source_db: small_source(),
    });
    let mut framed = Vec::new();
    write_frame(&mut framed, &payload).expect("frame");

    for seed in 0..32u64 {
        let hostile = match seed % 4 {
            0 => faults::mutate_bytes(&framed, seed),
            1 => faults::truncate_at(&framed, (seed as usize * 7) % framed.len()),
            2 => faults::splice(&framed, (seed as usize * 11) % framed.len(), &faults::garbage_bytes(seed, 9)),
            _ => faults::garbage_bytes(seed, 64 + seed as usize),
        };
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        // The write itself may fail if the server already closed on us;
        // both outcomes are acceptable, panicking/hanging is not.
        let _ = stream.write_all(&hostile);
        let _ = stream.flush();
        // Read whatever comes back (typed error frame or EOF) until the
        // server closes or stops answering; then the stream is dropped
        // (possibly mid-request from the server's perspective).
        let _ = read_frame(&mut &stream, protocol::DEFAULT_MAX_FRAME_LEN);
        drop(stream);

        // The server must keep serving fresh sessions.
        let mut probe = Client::connect(addr).expect("reconnect");
        probe.ping().unwrap_or_else(|e| panic!("server dead after seed {seed}: {e}"));
    }

    // No leaked inflight slots; session slots drain once peers leave.
    wait_for("inflight drain", Duration::from_secs(5), || handle.inflight() == 0);
    wait_for("session drain", Duration::from_secs(5), || handle.active_sessions() <= 1);
    handle.shutdown().expect("shutdown");
}

#[test]
fn slow_writer_is_disconnected_not_waited_on() {
    let engine = test_engine(EngineConfig::default());
    let cfg = ServerConfig { io_timeout: Duration::from_millis(100), ..fast_config() };
    let handle = Server::start(engine, cfg).expect("start");

    let payload = encode_request(1, 0, 0, &Request::Ping);
    let mut framed = Vec::new();
    write_frame(&mut framed, &payload).expect("frame");

    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    let spans = faults::chunk_plan(framed.len(), 4);
    // Send the first chunk, then stall far past the per-IO timeout.
    let (start, end) = spans[0];
    stream.write_all(&framed[start..end]).expect("first chunk");
    stream.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(400));
    // The server must have dropped us: finishing the frame cannot
    // produce a response (EOF or reset instead).
    for &(s, e) in &spans[1..] {
        if stream.write_all(&framed[s..e]).is_err() {
            break;
        }
    }
    let reply = read_frame(&mut &stream, protocol::DEFAULT_MAX_FRAME_LEN);
    assert!(reply.is_err(), "server answered a frame it should have abandoned");

    wait_for("slot release", Duration::from_secs(5), || handle.active_sessions() == 0);
    let mut probe = Client::connect(handle.addr()).expect("reconnect");
    probe.ping().expect("server must keep serving after a slow writer");
    handle.shutdown().expect("shutdown");
}

#[test]
fn mid_request_disconnect_returns_inflight_to_zero() {
    let collector = RingCollector::with_capacity(1024);
    let tel = Telemetry::new(collector);
    let engine = test_engine(EngineConfig { telemetry: tel.clone(), ..Default::default() });
    let handle = Server::start(engine, fast_config()).expect("start");

    let mut conn = RawConn::connect(handle.addr());
    conn.send(1, 0, &slow_exchange_request(6_000));
    // Give the session thread a moment to admit the request, then
    // vanish mid-request.
    wait_for("request admitted", Duration::from_secs(5), || handle.inflight() == 1);
    drop(conn);

    wait_for("inflight back to zero", Duration::from_secs(10), || handle.inflight() == 0);
    wait_for("session slot released", Duration::from_secs(5), || {
        handle.active_sessions() == 0
    });
    let snap = tel.metrics().expect("metrics").snapshot();
    assert!(snap.value("server.disconnects") >= 1, "disconnect must be counted");

    let mut probe = Client::connect(handle.addr()).expect("reconnect");
    probe.ping().expect("server must keep serving after a disconnect");
    handle.shutdown().expect("shutdown");
}

// ---------------------------------------------------------------------
// Deadlines and session budgets.
// ---------------------------------------------------------------------

#[test]
fn expired_deadline_surfaces_as_wire_code() {
    let collector = RingCollector::with_capacity(1024);
    let tel = Telemetry::new(collector);
    let engine = test_engine(EngineConfig { telemetry: tel.clone(), ..Default::default() });
    let handle = Server::start(engine, fast_config()).expect("start");
    let mut client = Client::connect(handle.addr()).expect("connect");

    client.set_deadline_ms(1);
    let err = client
        .exchange("quad", "QTgt", &faults::quadratic_join(2_000).2)
        .expect_err("a 1ms deadline cannot satisfy a slow exchange");
    assert_eq!(err.code(), Some(ERR_DEADLINE_EXCEEDED), "got {err}");

    client.set_deadline_ms(0);
    client.exchange("copy", "Dst", &small_source()).expect("default deadline suffices");

    let snap = tel.metrics().expect("metrics").snapshot();
    assert!(snap.value("server.timed_out") >= 1);
    handle.shutdown().expect("shutdown");
}

#[test]
fn session_budget_caps_one_tenant_not_the_next() {
    let engine = test_engine(EngineConfig::default());
    let cfg = ServerConfig {
        session_budget: ExecBudget::unbounded().with_steps(2_000),
        ..fast_config()
    };
    let handle = Server::start(engine, cfg).expect("start");

    let mut greedy = Client::connect(handle.addr()).expect("connect");
    let err = greedy
        .exchange("quad", "QTgt", &faults::quadratic_join(200).2)
        .expect_err("the session step cap must trip");
    assert_eq!(err.code(), Some(ERR_BUDGET_EXHAUSTED), "got {err}");
    // The same session stays capped: even a small request sees the
    // meter the big one filled.
    let err = greedy
        .exchange("quad", "QTgt", &faults::quadratic_join(200).2)
        .expect_err("session meter persists across requests");
    assert_eq!(err.code(), Some(ERR_BUDGET_EXHAUSTED));

    // A fresh session gets a fresh meter.
    let mut modest = Client::connect(handle.addr()).expect("connect");
    modest.exchange("copy", "Dst", &small_source()).expect("small tenant unaffected");
    handle.shutdown().expect("shutdown");
}

// ---------------------------------------------------------------------
// Graceful shutdown.
// ---------------------------------------------------------------------

#[test]
fn shutdown_drains_inflight_refuses_new_and_checkpoints() {
    let storage = MemStorage::new();
    let tel = Telemetry::new(RingCollector::with_capacity(1024));
    let engine = Engine::with_config(EngineConfig {
        durability: Durability::Durable {
            storage: storage.clone(),
            options: DurableOptions::default(),
        },
        telemetry: tel.clone(),
        ..Default::default()
    })
    .expect("durable engine");
    engine.add_schema(tgds::binary_schema("Src", "A", 2)).expect("src");
    engine.add_schema(tgds::binary_schema("Dst", "B", 2)).expect("dst");
    let mut copy = Mapping::new("Src", "Dst");
    for t in tgds::copy_tgds("A", "B", 2) {
        copy.push_tgd(t);
    }
    engine.add_mapping("copy", copy).expect("copy");
    let (qsrc, qtgt, _, qtgds) = faults::quadratic_join(4);
    engine.add_schema(qsrc).expect("qsrc");
    engine.add_schema(qtgt).expect("qtgt");
    let mut quad = Mapping::new("QSrc", "QTgt");
    for t in qtgds {
        quad.push_tgd(t);
    }
    engine.add_mapping("quad", quad).expect("quad");

    let handle = Server::start(engine, fast_config()).expect("start");
    let addr = handle.addr();

    // A slow request goes inflight, then shutdown begins concurrently.
    let mut conn = RawConn::connect(addr);
    conn.send(1, 0, &slow_exchange_request(12_000));
    wait_for("request admitted", Duration::from_secs(5), || handle.inflight() == 1);

    let drain = std::thread::spawn(move || handle.shutdown());

    // While draining, new requests on the same session get the typed
    // ShuttingDown frame, and the inflight request still completes. The
    // drain thread races our first ping, so pings sent before it set
    // the draining flag may still succeed — keep pinging until one is
    // refused, bounded well below the inflight request's runtime.
    let mut outcomes = std::collections::HashMap::new();
    let mut refused_ping = None;
    for ping_id in 2u64..200 {
        conn.send(ping_id, 0, &Request::Ping);
        let (id, outcome) = conn.read_reply();
        outcomes.insert(id, outcome);
        // replies interleave with request 1's, so scan every ping seen
        if let Some((&id, _)) =
            outcomes.iter().find(|&(&id, &o)| id >= 2 && o == Err(ERR_SHUTTING_DOWN))
        {
            refused_ping = Some(id);
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(refused_ping.is_some(), "drain must refuse new work");
    while !outcomes.contains_key(&1) {
        let (id, outcome) = conn.read_reply();
        outcomes.insert(id, outcome);
    }
    assert_eq!(outcomes[&1], Ok(()), "inflight request must drain, not be dropped");

    drain.join().expect("drain thread").expect("shutdown");

    // The drain checkpointed: recovery comes up from the snapshot with
    // every artifact intact.
    let snap = tel.metrics().expect("metrics").snapshot();
    assert!(snap.value("checkpoints") >= 1, "shutdown must checkpoint");
    let recovered =
        Engine::open_durable(storage, DurableOptions::default()).expect("recover");
    recovered.repo.latest_mapping("copy").expect("mapping survives");
    recovered.repo.latest_schema("Dst").expect("schema survives");
    let (out, _) = recovered.exchange("copy", "Dst", &small_source()).expect("exchange");
    assert_eq!(out.relation("B0").expect("B0").len(), 2);
}

#[test]
fn new_connections_during_drain_get_shutting_down() {
    let engine = test_engine(EngineConfig::default());
    let handle = Server::start(engine, fast_config()).expect("start");
    let addr = handle.addr();

    let mut conn = RawConn::connect(addr);
    conn.send(1, 0, &slow_exchange_request(12_000));
    wait_for("request admitted", Duration::from_secs(5), || handle.inflight() == 1);
    let drain = std::thread::spawn(move || handle.shutdown());

    // Poll with fresh connections until the drain flag is visible; each
    // refused connect must carry the typed frame, never hang.
    let saw_refusal = (0..100).any(|_| {
        std::thread::sleep(Duration::from_millis(5));
        let Ok(stream) = TcpStream::connect(addr) else {
            return false;
        };
        stream.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
        match read_frame(&mut &stream, protocol::DEFAULT_MAX_FRAME_LEN) {
            Ok(frame) => {
                let (_, body) = protocol::decode_response(frame.payload).expect("decode");
                body.err().map(|(code, _)| code) == Some(ERR_SHUTTING_DOWN)
            }
            Err(_) => false,
        }
    });
    assert!(saw_refusal, "no connection observed the ShuttingDown refusal");
    assert_eq!(conn.read_reply(), (1, Ok(())), "inflight request survives the drain");
    drain.join().expect("drain thread").expect("shutdown");
}

// ---------------------------------------------------------------------
// Property tests: the codec layer never panics on hostile bytes.
// ---------------------------------------------------------------------

mod codec_props {
    use super::*;
    use proptest::prelude::*;

    /// A pristine framed exchange request to corrupt.
    fn pristine_frame() -> Vec<u8> {
        let payload = encode_request(42, 250, 7, &Request::Exchange {
            mapping: "copy".into(),
            target_schema: "Dst".into(),
            source_db: small_source(),
        });
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).expect("frame");
        framed
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Arbitrarily mutated frames decode to a typed outcome —
        /// `Ok`, a `FrameError`, a CRC mismatch, or a `BodyError` —
        /// and never panic or over-allocate on an adversarial length.
        #[test]
        fn mutated_frames_decode_to_typed_outcomes(seed in any::<u64>()) {
            let corrupt = faults::mutate_bytes(&pristine_frame(), seed);
            let mut cursor = &corrupt[..];
            if let Ok(frame) = read_frame(&mut cursor, protocol::DEFAULT_MAX_FRAME_LEN) {
                if frame.crc_ok() {
                    if let Ok(head) = protocol::parse_head(&frame.payload) {
                        let body = frame.payload.slice(protocol::PRELUDE_LEN..frame.payload.len());
                        let mut r = mm_repository::codec::Reader::new(body);
                        let _ = protocol::decode_request(head.op, &mut r);
                    }
                }
            }
        }

        /// Truncation at every boundary is a torn frame: reading yields
        /// `Ok` (truncation fell past the frame) or a typed error.
        #[test]
        fn truncated_frames_never_panic(at in 0usize..2048) {
            let pristine = pristine_frame();
            let torn = faults::truncate_at(&pristine, at % pristine.len());
            let mut cursor = &torn[..];
            let _ = read_frame(&mut cursor, protocol::DEFAULT_MAX_FRAME_LEN);
        }

        /// Spliced garbage (misdirected write) never panics the frame
        /// reader, and a payload splice never passes the CRC.
        #[test]
        fn spliced_frames_never_pass_crc(offset in any::<usize>(), seed in any::<u64>()) {
            let pristine = pristine_frame();
            let garbage = faults::garbage_bytes(seed, 1 + (seed as usize % 16));
            let spliced = faults::splice(&pristine, offset, &garbage);
            let mut cursor = &spliced[..];
            if let Ok(frame) = read_frame(&mut cursor, protocol::DEFAULT_MAX_FRAME_LEN) {
                let at = offset % (pristine.len() + 1);
                // A splice strictly inside the original payload region
                // either changes the bytes under the CRC or shifts the
                // frame boundary; equal-length reads with intact CRC can
                // only happen when the splice landed past the frame.
                if frame.crc_ok() && at >= protocol::HEADER_LEN {
                    let body_end = pristine.len();
                    prop_assert!(
                        at >= body_end
                            || frame.payload.as_ref()
                                == &pristine[protocol::HEADER_LEN..body_end],
                        "splice inside the payload survived the CRC"
                    );
                }
            }
        }

        /// Bit flips in the payload region are always caught by the
        /// CRC — the exact defense the wire relies on.
        #[test]
        fn payload_bit_flips_always_fail_crc(offset in any::<usize>(), bit in 0u32..8) {
            let pristine = pristine_frame();
            let body = faults::bit_flip(&pristine[protocol::HEADER_LEN..], offset, bit);
            let mut framed = pristine[..protocol::HEADER_LEN].to_vec();
            framed.extend_from_slice(&body);
            let mut cursor = &framed[..];
            let frame = read_frame(&mut cursor, protocol::DEFAULT_MAX_FRAME_LEN)
                .expect("header untouched");
            prop_assert!(!frame.crc_ok(), "flipped payload bit passed the CRC");
        }
    }
}
