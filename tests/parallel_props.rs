//! Property tests for the parallel execution core (PR 5): every parallel
//! entry point must be **bit-identical** to its sequential counterpart —
//! same tuples, same labeled-null identities, same binding order, same
//! stats — at every thread count, because parallelism here is a pure
//! scheduling choice, never a semantic one.
//!
//! * parallel CQ evaluation enumerates exactly the sequential binding
//!   sequence on random databases and random conjunctive queries;
//! * the parallel s-t and general chases reach the sequential fixpoint
//!   bit-identically on the adversarial `workload::faults` inputs;
//! * `Engine::exchange_batch` equals a sequential `exchange` loop slot
//!   by slot, in input order;
//! * cancellation and step-budget trips surface as their typed errors
//!   from inside a parallel region instead of wedging the pool;
//! * a batch of mediated queries over one degraded plan records the
//!   plan-time degradation exactly once, not once per query.

use mm_eval::Binding;
use mm_workload::faults;
use model_management::prelude::*;
use proptest::prelude::*;

/// Thread counts every parallel path is checked at. All of them must
/// agree with `threads = 1`; 8 oversubscribes the container on purpose.
const THREADS: [usize; 3] = [2, 4, 8];

// --- generators -------------------------------------------------------------

/// The fixed schema random databases and queries range over: two binary
/// relations and a unary one, all over small ints so joins actually hit.
fn cq_schema() -> Schema {
    SchemaBuilder::new("P")
        .relation("R", &[("a", DataType::Int), ("b", DataType::Int)])
        .relation("S", &[("a", DataType::Int), ("b", DataType::Int)])
        .relation("U", &[("a", DataType::Int)])
        .build()
        .expect("static schema")
}

/// Random database: up to ~80 tuples over `R`/`S`/`U`, values in 0..6,
/// enough rows that the driver atom actually gets chunked across workers.
fn arb_db() -> impl Strategy<Value = Database> {
    let tuple = (0usize..3, 0i64..6, 0i64..6);
    proptest::collection::vec(tuple, 0..80).prop_map(|rows| {
        let mut db = Database::empty_of(&cq_schema());
        for (rel, a, b) in rows {
            match rel {
                0 => db.insert("R", Tuple::from([Value::Int(a), Value::Int(b)])),
                1 => db.insert("S", Tuple::from([Value::Int(a), Value::Int(b)])),
                _ => db.insert("U", Tuple::from([Value::Int(a)])),
            };
        }
        db
    })
}

/// A term over a small shared variable pool (so atoms join) or a small
/// constant (so selections sometimes hit, sometimes miss).
fn arb_cq_term() -> impl Strategy<Value = mm_expr::Term> {
    prop_oneof![
        prop_oneof![Just("x"), Just("y"), Just("z"), Just("w")]
            .prop_map(|v| mm_expr::Term::Var(v.to_string())),
        (0i64..6).prop_map(|c| mm_expr::Term::Const(Lit::Int(c))),
    ]
}

/// A conjunctive query of 1..=4 atoms over the fixed schema.
fn arb_cq() -> impl Strategy<Value = Vec<Atom>> {
    let atom = (0usize..3, arb_cq_term(), arb_cq_term()).prop_map(|(rel, t1, t2)| match rel {
        0 => Atom { relation: "R".into(), terms: vec![t1, t2] },
        1 => Atom { relation: "S".into(), terms: vec![t1, t2] },
        _ => Atom { relation: "U".into(), terms: vec![t1] },
    });
    proptest::collection::vec(atom, 1..5)
}

// --- (a) parallel CQ evaluation == sequential -------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    /// Chunking the driver atom across workers and merging in chunk
    /// order reproduces the sequential binding sequence exactly — same
    /// bindings, same order — at every thread count.
    #[test]
    fn parallel_cq_matches_sequential_bindings(db in arb_db(), atoms in arb_cq()) {
        let budget = ExecBudget::unbounded();
        let seed = Binding::new();
        let seq = find_homomorphisms_governed(&atoms, &db, &seed, &mut Governor::new(&budget))
            .expect("unbounded");
        for threads in THREADS {
            let (par, _run) = find_homomorphisms_parallel(
                &atoms, &db, &seed, threads, &mut Governor::new(&budget),
            )
            .expect("unbounded");
            prop_assert_eq!(&par, &seq, "threads={}", threads);
        }
    }
}

// --- (b) parallel chase == sequential fixpoint ------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 32 })]

    /// The parallel s-t chase of the quadratic self-join workload is
    /// bit-identical to the sequential prepared chase — including
    /// labeled-null identities, which are sensitive to firing order, so
    /// this fails if the merge ever reorders worker results.
    #[test]
    fn parallel_st_chase_matches_sequential(rows in 3usize..20) {
        let (_, tgt, db, tgds) = faults::quadratic_join(rows);
        let program = ChaseProgram::compile(&tgds, &db);
        let budget = ExecBudget::unbounded();
        let (seq_db, seq_stats) =
            chase_st_prepared(&tgt, &program, &db, &budget).expect("unbounded");
        for threads in THREADS {
            let (par_db, par_stats) = chase_st_parallel(&tgt, &program, &db, &budget, threads)
                .expect("unbounded");
            prop_assert_eq!(&par_stats, &seq_stats, "threads={}", threads);
            prop_assert_eq!(&par_db, &seq_db, "threads={}", threads);
        }
    }

    /// The parallel general chase (multi-round, semi-naive deltas)
    /// reaches the sequential fixpoint bit-identically: same tuples,
    /// same outcome, same per-round stats.
    #[test]
    fn parallel_general_chase_matches_sequential(n in 2usize..10) {
        let (_, db, tgds) = faults::terminating_chain(n);
        let program = ChaseProgram::compile(&tgds, &db);
        let budget = ExecBudget::unbounded().with_rounds(64);
        let mut seq_db = db.clone();
        let seq = chase_general_prepared(&mut seq_db, &program, &[], &budget).expect("terminates");
        for threads in THREADS {
            let mut par_db = db.clone();
            let par = chase_general_parallel(&mut par_db, &program, &[], &budget, threads)
                .expect("terminates");
            prop_assert_eq!(&par, &seq, "threads={}", threads);
            prop_assert_eq!(&par_db, &seq_db, "threads={}", threads);
        }
    }
}

// --- (c) batch serving == sequential loop -----------------------------------

/// An engine storing `R(a,b) → ∃w. U(a,w)` — an existential head, so
/// batch/sequential agreement covers null minting, not just copying.
fn exchange_engine(threads: usize) -> Engine {
    let src = SchemaBuilder::new("Src")
        .relation("R", &[("a", DataType::Int), ("b", DataType::Int)])
        .build()
        .expect("static schema");
    let tgt = SchemaBuilder::new("Tgt")
        .relation("U", &[("a", DataType::Int), ("w", DataType::Int)])
        .build()
        .expect("static schema");
    let mut m = Mapping::new("Src", "Tgt");
    m.push_tgd(Tgd::new(vec![Atom::vars("R", &["x", "y"])], vec![Atom::vars("U", &["x", "w"])]));
    let engine =
        Engine::with_config(EngineConfig { threads, ..Default::default() }).expect("ephemeral");
    engine.add_schema(src).expect("store src");
    engine.add_schema(tgt).expect("store tgt");
    engine.add_mapping("m", m).expect("store m");
    engine
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16 })]

    /// `exchange_batch` over random batches equals a sequential
    /// `exchange` loop slot by slot — same universal instances, same
    /// null ids, same stats, results in input order.
    #[test]
    fn exchange_batch_matches_sequential_loop(sizes in proptest::collection::vec(0usize..40, 1..7)) {
        let src = SchemaBuilder::new("Src")
            .relation("R", &[("a", DataType::Int), ("b", DataType::Int)])
            .build()
            .expect("static schema");
        let dbs: Vec<Database> = sizes
            .iter()
            .map(|&n| {
                let mut db = Database::empty_of(&src);
                for i in 0..n as i64 {
                    db.insert("R", Tuple::from([Value::Int(i), Value::Int(i + 1)]));
                }
                db
            })
            .collect();
        let seq_engine = exchange_engine(1);
        let expected: Vec<(Database, ChaseStats)> = dbs
            .iter()
            .map(|db| seq_engine.exchange("m", "Tgt", db).expect("unbounded"))
            .collect();
        for threads in THREADS {
            let engine = exchange_engine(threads);
            let requests: Vec<ExchangeRequest<'_>> = dbs
                .iter()
                .map(|db| ExchangeRequest { mapping: "m", target_schema: "Tgt", source_db: db })
                .collect();
            let got = engine.exchange_batch(&requests);
            prop_assert_eq!(got.len(), expected.len());
            for (i, (g, e)) in got.into_iter().zip(&expected).enumerate() {
                prop_assert_eq!(&g.expect("unbounded"), e, "slot {} threads={}", i, threads);
            }
        }
    }
}

// --- (d) faults inside a parallel region ------------------------------------

/// Cancellation tripped mid-run surfaces as [`ExecError::Cancelled`]
/// from the parallel chase at every thread count: the pool joins, the
/// error propagates, nothing wedges or panics.
#[test]
fn cancellation_mid_parallel_chase_surfaces_cleanly() {
    let (_, tgt, db, tgds) = faults::quadratic_join(220);
    let program = ChaseProgram::compile(&tgds, &db);
    for threads in [1, 2, 4, 8] {
        let budget = ExecBudget::unbounded().with_cancel(faults::cancel_after(2));
        let failure = match chase_st_parallel(&tgt, &program, &db, &budget, threads) {
            Err(f) => f,
            Ok(_) => panic!("cancel_after(2) must trip at threads={threads}"),
        };
        assert!(
            matches!(failure.error, ExecError::Cancelled { .. }),
            "threads={threads}: {:?}",
            failure.error
        );
    }
}

/// A step cap below the sequential cost trips [`ExecError::BudgetExhausted`]
/// at every thread count: forked worker governors publish their steps to
/// the shared meter, so the *global* cap binds no matter how the work is
/// scheduled.
#[test]
fn step_budget_trips_inside_the_parallel_chase() {
    let (_, tgt, db, tgds) = faults::quadratic_join(220);
    let program = ChaseProgram::compile(&tgds, &db);
    let solo_steps = {
        let mut gov = Governor::new(&ExecBudget::unbounded());
        chase_st_prepared_governed(&tgt, &program, &db, &mut gov, 1, &Telemetry::disabled())
            .expect("unbounded");
        gov.steps_consumed()
    };
    assert!(solo_steps > 2048, "workload must span safepoints: {solo_steps}");
    for threads in [1, 2, 4, 8] {
        let budget = ExecBudget::unbounded().with_steps(solo_steps / 2);
        let failure = match chase_st_parallel(&tgt, &program, &db, &budget, threads) {
            Err(f) => f,
            Ok(_) => panic!("half the sequential step cost must trip at threads={threads}"),
        };
        assert!(
            matches!(
                failure.error,
                ExecError::BudgetExhausted { resource: Resource::Steps, .. }
            ),
            "threads={threads}: {:?}",
            failure.error
        );
    }
}

// --- (e) batch mediation records a plan degradation once --------------------

/// Planning under a tight clause budget degrades collapsed→chained and
/// records that once; a parallel batch of answers over the degraded plan
/// copies the degradation into every result **without** re-recording it
/// — the mediator metric stays at exactly 1 after an 8-query batch.
#[test]
fn batch_mediation_records_plan_degradation_exactly_once() {
    let s = SchemaBuilder::new("Base")
        .relation("People", &[
            ("id", DataType::Int),
            ("name", DataType::Text),
            ("age", DataType::Int),
            ("city", DataType::Text),
        ])
        .build()
        .expect("static schema");
    let mut db = Database::empty_of(&s);
    for (id, name, age, city) in
        [(1, "ann", 31, "rome"), (2, "bob", 17, "oslo"), (3, "cyd", 45, "rome")]
    {
        db.insert(
            "People",
            Tuple::from([
                Value::Int(id),
                Value::text(name),
                Value::Int(age),
                Value::text(city),
            ]),
        );
    }
    let mut l1 = ViewSet::new("Base", "L1");
    l1.push(ViewDef::new(
        "Adults",
        Expr::base("People").select(Predicate::Cmp {
            op: CmpOp::Ge,
            left: Scalar::col("age"),
            right: Scalar::lit(18i64),
        }),
    ));
    let mut l2 = ViewSet::new("L1", "L2");
    l2.push(ViewDef::new(
        "RomanAdults",
        Expr::base("Adults").select(Predicate::col_eq_lit("city", "rome")).project(&["id", "name"]),
    ));
    let ring = RingCollector::with_capacity(256);
    let tel = Telemetry::new(ring);
    let m = Mediator::new(&s, vec![&l1, &l2]).with_telemetry(tel.clone());
    let plan = m.plan(&ExecBudget::unbounded().with_clauses(1)).expect("degrades, not fails");
    assert_eq!(plan.mode(), MediationMode::Chained);
    assert!(plan.degradation().is_some());
    let queries: Vec<Expr> = (0..8).map(|_| Expr::base("RomanAdults")).collect();
    let batch = m.answer_batch(&plan, &queries, &db, &ExecBudget::unbounded(), 4);
    let oracle = m
        .answer_with_plan(
            &plan,
            &Expr::base("RomanAdults"),
            &db,
            &mut Governor::new(&ExecBudget::unbounded()),
        )
        .expect("unbounded");
    assert_eq!(batch.len(), 8);
    for r in batch {
        let r = r.expect("unbounded");
        assert_eq!(r.mode, MediationMode::Chained);
        assert!(r.degradation.is_some(), "every result carries the plan degradation");
        assert_eq!(r.rows, oracle.rows);
    }
    let metrics = tel.metrics().expect("ring telemetry has metrics");
    assert_eq!(
        metrics.degradations_at(DegradationSite::Mediator),
        1,
        "the plan-time degradation is recorded once, not once per query"
    );
}
