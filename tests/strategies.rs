//! Cross-crate pipeline tests: every inheritance strategy, from ModelGen
//! through TransGen to instance roundtrips — the "flexible mapping of
//! inheritance hierarchies to tables" the paper calls for (§3.2), wired
//! through the whole stack.

use model_management::prelude::*;
use mm_workload::{er_hierarchy, populate_er};

fn roundtrip_strategy(strategy: InheritanceStrategy) {
    let er = er_hierarchy(77, 2, 2, 2);
    let db = populate_er(&er, 5, 20);
    let gen = er_to_relational(&er, strategy).expect("modelgen");
    let frags = parse_fragments(&er, &gen.schema, &gen.mapping).expect("fragments");
    assert!(check_coverage(&er, &frags).is_empty());

    // forward: entities -> tables via ModelGen's compiled views
    let tables = materialize_views(&gen.views, &er, &db).expect("forward");
    // backward: tables -> entities via TransGen's query views
    let qv = query_views(&er, &gen.schema, &frags).expect("query views");
    let back = materialize_views(&qv, &gen.schema, &tables).expect("backward");
    for (name, rel) in db.relations() {
        let b = back.relation(name).unwrap_or_else(|| panic!("{strategy}: {name} missing"));
        assert!(
            rel.set_eq(b),
            "{strategy}: {name} diverged\nwant:\n{rel}\ngot:\n{b}"
        );
    }
}

#[test]
fn vertical_roundtrips_through_the_full_stack() {
    roundtrip_strategy(InheritanceStrategy::Vertical);
}

#[test]
fn horizontal_roundtrips_through_the_full_stack() {
    roundtrip_strategy(InheritanceStrategy::Horizontal);
}

#[test]
fn flat_roundtrips_through_the_full_stack() {
    roundtrip_strategy(InheritanceStrategy::Flat);
}

#[test]
fn horizontal_update_views_agree_with_modelgen_views() {
    // for horizontal, both ModelGen's forward views and TransGen's update
    // views express the same transformation — verify they agree on data
    let er = er_hierarchy(78, 2, 2, 2);
    let db = populate_er(&er, 6, 15);
    let gen = er_to_relational(&er, InheritanceStrategy::Horizontal).expect("modelgen");
    let frags = parse_fragments(&er, &gen.schema, &gen.mapping).expect("fragments");
    let uv = update_views(&er, &gen.schema, &frags).expect("update views");
    let via_modelgen = materialize_views(&gen.views, &er, &db).expect("modelgen route");
    let via_transgen = materialize_views(&uv, &er, &db).expect("transgen route");
    for (name, rel) in via_modelgen.relations() {
        assert!(rel.set_eq(via_transgen.relation(name).expect("same relations")));
    }
}

#[test]
fn constraint_propagation_holds_for_generated_hierarchies() {
    for strategy in [InheritanceStrategy::Vertical, InheritanceStrategy::Horizontal] {
        let er = er_hierarchy(79, 2, 2, 2);
        let db = populate_er(&er, 7, 10);
        let gen = er_to_relational(&er, strategy).expect("modelgen");
        let frags = parse_fragments(&er, &gen.schema, &gen.mapping).expect("fragments");
        let violations =
            check_implication(&er, &gen.schema, &frags, &db).expect("implication check");
        assert!(violations.is_empty(), "{strategy}: {violations:?}");
    }
}

#[test]
fn wrapper_direction_composes_with_forward_direction() {
    // relational -> ER (wrapper) then query the wrapper through mediation
    let rel = SchemaBuilder::new("DB")
        .relation("items", &[("iid", DataType::Int), ("label", DataType::Text)])
        .key("items", &["iid"])
        .build()
        .expect("schema");
    let wrapper = relational_to_er(&rel).expect("wrapper");
    let mut db = Database::empty_of(&rel);
    for i in 0..10 {
        db.insert(
            "items",
            Tuple::from([Value::Int(i), Value::Text(format!("item{i}"))]),
        );
    }
    let mediator = Mediator::new(&rel, vec![&wrapper.views]);
    let q = Expr::base("items").select(Predicate::col_eq_lit("label", "item3"));
    let plain = mediator.answer_chained(&q, &db).expect("plain");
    let fast = mediator.answer_chained_optimized(&q, &db).expect("optimized");
    assert!(plain.set_eq(&fast));
    assert_eq!(plain.len(), 1);
}
