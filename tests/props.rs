//! Property-based tests on core invariants, spanning crates.

use mm_repository::codec::{Decode, Encode, Reader, Writer};
use model_management::prelude::*;
use proptest::prelude::*;

// --- generators -------------------------------------------------------------

fn arb_lit() -> impl Strategy<Value = Lit> {
    prop_oneof![
        any::<i64>().prop_map(Lit::Int),
        any::<bool>().prop_map(Lit::Bool),
        "[a-z]{0,8}".prop_map(Lit::Text),
        (-30000i32..30000).prop_map(Lit::Date),
        Just(Lit::Null),
        any::<f64>().prop_map(Lit::Double),
    ]
}

fn arb_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        "[a-z]{1,4}".prop_map(Term::Var),
        arb_lit().prop_map(Term::Const),
    ];
    leaf.prop_recursive(3, 12, 3, |inner| {
        ("[f-h]{1}", proptest::collection::vec(inner, 0..3))
            .prop_map(|(f, args)| Term::Func(f, args))
    })
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    ("[A-Z]{1,3}", proptest::collection::vec(arb_term(), 1..4))
        .prop_map(|(r, terms)| Atom { relation: r, terms })
}

/// Small SPJ expressions over the fixed two-relation test schema.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let base = prop_oneof![Just(Expr::base("R")), Just(Expr::base("T"))];
    base.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| e.select(Predicate::col_eq_lit("a", 1i64))),
            inner.clone().prop_map(|e| e.select(Predicate::True)),
            inner.clone().prop_map(|e| e.project(&["a"])),
            inner.clone().prop_map(|e| e.distinct()),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| {
                // align both sides to single column `a` for set ops
                l.project(&["a"]).union(r.project(&["a"]))
            }),
            inner.prop_map(|e| {
                e.aggregate(&["a"], vec![AggSpec::count("cnt")]).project(&["a"])
            }),
        ]
    })
}

fn test_schema() -> Schema {
    SchemaBuilder::new("P")
        .relation("R", &[("a", DataType::Int), ("b", DataType::Int)])
        .relation("T", &[("a", DataType::Int), ("b", DataType::Int)])
        .build()
        .expect("test schema")
}

fn db_from(rows_r: &[(i64, i64)], rows_t: &[(i64, i64)]) -> Database {
    let s = test_schema();
    let mut db = Database::empty_of(&s);
    for (a, b) in rows_r {
        db.insert("R", Tuple::from([Value::Int(*a), Value::Int(*b)]));
    }
    for (a, b) in rows_t {
        db.insert("T", Tuple::from([Value::Int(*a), Value::Int(*b)]));
    }
    db
}

fn codec_roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: &T) {
    let mut w = Writer::new();
    v.encode(&mut w);
    let mut r = Reader::new(w.finish());
    let back = T::decode(&mut r).expect("decode");
    assert_eq!(&back, v);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // --- codec: every Lit/Term/Atom/Expr round-trips -----------------------
    #[test]
    fn codec_lit_roundtrip(l in arb_lit()) {
        codec_roundtrip(&l);
    }

    #[test]
    fn codec_term_roundtrip(t in arb_term()) {
        codec_roundtrip(&t);
    }

    #[test]
    fn codec_atom_roundtrip(a in arb_atom()) {
        codec_roundtrip(&a);
    }

    #[test]
    fn codec_expr_roundtrip(e in arb_expr()) {
        codec_roundtrip(&e);
    }

    // --- simplify preserves semantics ---------------------------------------
    #[test]
    fn simplify_preserves_evaluation(
        e in arb_expr(),
        rows_r in proptest::collection::vec((0i64..5, 0i64..5), 0..8),
        rows_t in proptest::collection::vec((0i64..5, 0i64..5), 0..8),
    ) {
        let s = test_schema();
        let db = db_from(&rows_r, &rows_t);
        let simplified = mm_expr::rewrite::simplify_fix(&e);
        let before = eval(&e, &s, &db).expect("well-typed by construction");
        let after = eval(&simplified, &s, &db).expect("simplified stays well-typed");
        prop_assert!(before.set_eq(&after), "simplify changed semantics\n{e}\n=>\n{simplified}");
    }

    // --- optimizer preserves semantics --------------------------------------
    #[test]
    fn optimizer_preserves_evaluation(
        e in arb_expr(),
        rows_r in proptest::collection::vec((0i64..5, 0i64..5), 0..8),
        rows_t in proptest::collection::vec((0i64..5, 0i64..5), 0..8),
    ) {
        let s = test_schema();
        let db = db_from(&rows_r, &rows_t);
        let optimized = mm_expr::optimize::optimize(&e, &s).expect("optimizable");
        let before = eval(&e, &s, &db).expect("well-typed by construction");
        let after = eval(&optimized, &s, &db).expect("optimized stays well-typed");
        prop_assert!(before.set_eq(&after), "optimize changed semantics\n{e}\n=>\n{optimized}");
    }

    #[test]
    fn optimizer_preserves_join_queries(
        rows_r in proptest::collection::vec((0i64..5, 0i64..5), 0..10),
        rows_t in proptest::collection::vec((0i64..5, 0i64..5), 0..10),
        pivot in 0i64..5,
    ) {
        let s = test_schema();
        let db = db_from(&rows_r, &rows_t);
        let e = Expr::base("R")
            .join(Expr::base("T").rename(&[("b", "c")]), &[("a", "a")])
            .select(Predicate::col_eq_lit("c", pivot).or(Predicate::col_eq_lit("b", pivot)))
            .project(&["a", "b"]);
        let optimized = mm_expr::optimize::optimize(&e, &s).expect("optimizable");
        let before = eval(&e, &s, &db).expect("plain");
        let after = eval(&optimized, &s, &db).expect("optimized");
        prop_assert!(before.set_eq(&after));
    }

    // --- view unfolding equals materialize-then-query ----------------------
    #[test]
    fn unfolding_agrees_with_materialization(
        rows_r in proptest::collection::vec((0i64..5, 0i64..5), 0..8),
        rows_t in proptest::collection::vec((0i64..5, 0i64..5), 0..8),
    ) {
        let s = test_schema();
        let db = db_from(&rows_r, &rows_t);
        let mut views = ViewSet::new("P", "V");
        views.push(ViewDef::new(
            "J",
            Expr::base("R").join(Expr::base("T").rename(&[("b", "c")]), &[("a", "a")]),
        ));
        let vschema = SchemaBuilder::new("V")
            .relation("J", &[("a", DataType::Int), ("b", DataType::Int), ("c", DataType::Int)])
            .build()
            .expect("view schema");
        let q = Expr::base("J").project(&["a", "c"]);
        let mat = materialize_views(&views, &s, &db).expect("materialize");
        let direct = eval(&q, &vschema, &mat).expect("query view");
        let unfolded = eval(&unfold_query(&q, &views), &s, &db).expect("unfolded");
        prop_assert!(direct.set_eq(&unfolded));
    }

    // --- chase: the result is a universal solution -------------------------
    #[test]
    fn chase_produces_satisfying_instance(
        rows_r in proptest::collection::vec((0i64..4, 0i64..4), 0..6),
    ) {
        let _src = test_schema();
        let tgt = SchemaBuilder::new("Tgt")
            .relation("U", &[("a", DataType::Int), ("w", DataType::Any)])
            .build()
            .expect("target");
        let tgds = vec![Tgd::new(
            vec![Atom::vars("R", &["x", "y"])],
            vec![Atom::vars("U", &["x", "w"])],
        )];
        let db = db_from(&rows_r, &[]);
        let (out, _) = chase_st(&tgt, &tgds, &db);
        // satisfaction: every R row has a U witness
        for t in db.relation("R").expect("R").iter() {
            let a = t.values()[0].clone();
            let found = out
                .relation("U")
                .expect("U")
                .iter()
                .any(|u| u.values()[0] == a);
            prop_assert!(found);
        }
        // chasing again adds nothing (fixpoint)
        let merged_schema = SchemaBuilder::new("M")
            .relation("R", &[("a", DataType::Int), ("b", DataType::Int)])
            .relation("U", &[("a", DataType::Int), ("w", DataType::Any)])
            .build()
            .expect("merged");
        let mut merged = Database::empty_of(&merged_schema);
        for (name, rel) in db.relations().chain(out.relations()) {
            if merged.relation(name).is_some() {
                for t in rel.iter() {
                    merged.insert(name, t.clone());
                }
            }
        }
        merged.set_label_watermark(out.label_watermark());
        let outcome = chase_general(&mut merged, &tgds, &[], 5);
        prop_assert!(matches!(outcome, ChaseOutcome::Done(st) if st.fired == 0));
    }

    // --- composition agrees with transport on copy chains -------------------
    #[test]
    fn composition_transport_equivalence(
        rows in proptest::collection::vec((0i64..4, 0i64..4), 0..6),
    ) {
        use mm_workload::composition_chain;
        let (s1, s2, s3, m12, m23) = composition_chain(2, 2);
        let mut d1 = Database::empty_of(&s1);
        for (i, (a, b)) in rows.iter().enumerate() {
            let rel = format!("S{}", i % 2);
            d1.insert(&rel, Tuple::from([Value::Int(*a), Value::Int(*b)]));
        }
        let (chased, _, _) = transport_via(&s2, &m12, &s3, &m23, &d1);
        let so = compose_st_tgds(&m12, &m23, 1 << 12).expect("compose");
        let direct = apply_sotgd(&so, &d1, &s3).expect("apply");
        prop_assert!(hom_equivalent(&chased, &direct));
    }

    // --- deskolemized compositions agree with SO application ----------------
    #[test]
    fn deskolemization_preserves_composition_semantics(
        rows in proptest::collection::vec((0i64..4, 0i64..4), 0..6),
    ) {
        use mm_workload::{copy_tgds, tgds::binary_schema};
        // full copy tgds compose to a first-order-expressible SO-tgd
        let s1 = binary_schema("S1", "A", 2);
        let s3 = binary_schema("S3", "C", 2);
        let m12 = copy_tgds("A", "B", 2);
        let m23 = copy_tgds("B", "C", 2);
        let so = compose_st_tgds(&m12, &m23, 1 << 12).expect("compose");
        let tgds = try_deskolemize(&so).expect("full tgds deskolemize");
        let mut d1 = Database::empty_of(&s1);
        for (i, (a, b)) in rows.iter().enumerate() {
            d1.insert(&format!("A{}", i % 2), Tuple::from([Value::Int(*a), Value::Int(*b)]));
        }
        let via_so = apply_sotgd(&so, &d1, &s3).expect("apply");
        let (via_fo, _) = chase_st(&s3, &tgds, &d1);
        prop_assert!(hom_equivalent(&via_so, &via_fo));
    }

    // --- matcher: top-k candidate lists are nested and sorted ---------------
    #[test]
    fn matcher_topk_nested(seed in 0u64..50) {
        use mm_workload::{perturb_schema, relational_schema};
        let s = relational_schema(seed, 3, 4);
        let (p, _) = perturb_schema(&s, seed + 1, 0.4, 0.1, 0.2);
        let cfg1 = MatchConfig { top_k: 1, threshold: 0.2, ..Default::default() };
        let cfg3 = MatchConfig { top_k: 3, threshold: 0.2, ..Default::default() };
        let top1 = match_schemas(&s, &p, &cfg1);
        let top3 = match_schemas(&s, &p, &cfg3);
        // every top-1 attribute candidate appears in the top-3 set
        for c in &top1.correspondences {
            if c.source.attribute.is_none() { continue; }
            prop_assert!(
                top3.correspondences
                    .iter()
                    .any(|d| d.source == c.source && d.target == c.target),
                "top-1 candidate {c} missing from top-3"
            );
        }
        // candidate lists are sorted by confidence
        for c in &top3.correspondences {
            let list = top3.candidates_for(&c.source);
            for w in list.windows(2) {
                prop_assert!(w[0].confidence >= w[1].confidence);
            }
        }
    }

    // --- schema text format round-trips -------------------------------------
    #[test]
    fn schema_display_parse_roundtrip(seed in 0u64..40, which in 0usize..3) {
        use mm_workload::{er_hierarchy, relational_schema, snowflake_schema};
        let schema = match which {
            0 => relational_schema(seed, 4, 5),
            1 => snowflake_schema(seed, 3, 3),
            _ => er_hierarchy(seed, 2, 2, 2),
        };
        let text = schema.to_string();
        let parsed = parse_schema(&text)
            .unwrap_or_else(|e| panic!("{e}\n{text}"));
        prop_assert_eq!(parsed, schema);
    }

    // --- relation invariants -------------------------------------------------
    #[test]
    fn relation_set_semantics(rows in proptest::collection::vec((0i64..4, 0i64..4), 0..20)) {
        let mut rel = Relation::new(RelSchema::of(&[("a", DataType::Int), ("b", DataType::Int)]));
        for (a, b) in &rows {
            rel.insert(Tuple::from([Value::Int(*a), Value::Int(*b)]));
        }
        let unique: std::collections::HashSet<_> = rows.iter().collect();
        prop_assert_eq!(rel.len(), unique.len());
        // remove everything; relation is empty
        for (a, b) in &rows {
            rel.remove(&Tuple::from([Value::Int(*a), Value::Int(*b)]));
        }
        prop_assert!(rel.is_empty());
    }

    // --- roundtripping holds for generated hierarchies of any shape --------
    #[test]
    fn generated_hierarchies_roundtrip(
        seed in 0u64..20,
        depth in 1usize..3,
        fanout in 1usize..3,
    ) {
        use mm_workload::{er_hierarchy, populate_er};
        let er = er_hierarchy(seed, depth, fanout, 2);
        let gen = er_to_relational(&er, InheritanceStrategy::Vertical).expect("modelgen");
        let frags = parse_fragments(&er, &gen.schema, &gen.mapping).expect("fragments");
        prop_assert!(check_coverage(&er, &frags).is_empty());
        let db = populate_er(&er, seed, 3);
        let report = verify_roundtrip(&er, &gen.schema, &frags, &db).expect("roundtrip");
        prop_assert!(report.roundtrips(), "{:?}", report.mismatches);
    }

    // --- governance: weakly acyclic sets terminate under generous budgets ---
    #[test]
    fn weakly_acyclic_chase_terminates_under_budget(hops in 2usize..7) {
        use mm_workload::faults;
        let (_, mut db, tgds) = faults::terminating_chain(hops);
        let budget = ExecBudget::unbounded().with_rounds(64).with_steps(1_000_000);
        let out = chase_general_governed(&mut db, &tgds, &[], &budget).expect("terminates");
        prop_assert!(matches!(out, ChaseOutcome::Done(st) if st.fired == hops - 1));
        prop_assert_eq!(db.relation(&format!("R{}", hops - 1)).expect("last hop").len(), 1);
    }

    // --- governance: divergent sets trip a typed resource error -------------
    #[test]
    fn divergent_chase_trips_resource_error(cap in 1u64..12) {
        use mm_workload::faults;
        let (_, mut db, tgds) = faults::divergent_tgds();
        let budget = ExecBudget::unbounded().with_rounds(cap);
        let failure = chase_general_governed(&mut db, &tgds, &[], &budget)
            .expect_err("must not converge");
        prop_assert!(
            matches!(
                failure.error,
                ExecError::Diverged { .. } | ExecError::BudgetExhausted { .. }
            ),
            "unexpected error: {}",
            failure.error
        );
    }

    // --- governance: cancellation stops chase and eval mid-run --------------
    #[test]
    fn cancellation_stops_chase_and_eval(polls in 1u64..6) {
        use mm_workload::faults;
        // chase: no round cap — the token alone must stop the divergent run
        let (_, mut db, tgds) = faults::divergent_tgds();
        let budget = ExecBudget::unbounded().with_cancel(faults::cancel_after(polls));
        let failure = chase_general_governed(&mut db, &tgds, &[], &budget)
            .expect_err("cancellation must stop the chase");
        prop_assert!(matches!(failure.error, ExecError::Cancelled { .. }), "{}", failure.error);

        // eval: the token trips inside the join loops of a large self-join
        let (schema, big) = faults::oversized_instance(5_000);
        let q = Expr::base("R0")
            .join(Expr::base("R0").rename(&[("a", "b"), ("b", "c")]), &[("b", "b")]);
        let budget = ExecBudget::unbounded().with_cancel(faults::cancel_after(polls));
        let mut gov = Governor::new(&budget);
        let err = eval_governed(&q, &schema, &big, &mut gov)
            .expect_err("cancellation must stop evaluation");
        prop_assert!(matches!(err, EvalError::Exec(ExecError::Cancelled { .. })), "{err:?}");
    }
}
