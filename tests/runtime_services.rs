//! Integration of the §5 runtime services over one realistic mapping:
//! an entity model compiled onto tables (TransGen), then mediated,
//! secured, synchronized, triggered, debugged, and index-advised — the
//! full "Mapping Runtime" box of Figure 1.

use model_management::prelude::*;

/// One shared scenario: a Customer hierarchy mapped vertically onto
/// tables, with data flowing both ways.
fn scenario() -> (Schema, Schema, Vec<Fragment>, ViewSet, ViewSet, Database) {
    let er = SchemaBuilder::new("ER")
        .entity("Party", &[("Id", DataType::Int), ("Name", DataType::Text)])
        .entity_sub("Customer", "Party", &[("Tier", DataType::Text)])
        .key("Party", &["Id"])
        .build()
        .expect("er schema");
    let gen = er_to_relational(&er, InheritanceStrategy::Vertical).expect("modelgen");
    let frags = parse_fragments(&er, &gen.schema, &gen.mapping).expect("fragments");
    let qv = query_views(&er, &gen.schema, &frags).expect("query views");
    let uv = update_views(&er, &gen.schema, &frags).expect("update views");

    let mut entities = Database::empty_of(&er);
    entities.insert_entity("Party", "Party", vec![Value::Int(1), Value::text("acme")]);
    entities.insert_entity(
        "Customer",
        "Customer",
        vec![Value::Int(2), Value::text("globex"), Value::text("gold")],
    );
    entities.insert_entity(
        "Customer",
        "Customer",
        vec![Value::Int(3), Value::text("initech"), Value::text("silver")],
    );
    let tables = materialize_views(&uv, &er, &entities).expect("tables");
    (er, gen.schema, frags, qv, uv, tables)
}

#[test]
fn mediation_plain_and_optimized_agree_over_compiled_views() {
    let (_, rel, _, qv, _, tables) = scenario();
    let mediator = Mediator::new(&rel, vec![&qv]);
    let q = Expr::base("Customer")
        .select(Predicate::col_eq_lit("Tier", "gold"))
        .project(&["Name"]);
    let plain = mediator.answer_chained(&q, &tables).expect("plain");
    let fast = mediator.answer_chained_optimized(&q, &tables).expect("optimized");
    assert!(plain.set_eq(&fast));
    assert_eq!(plain.len(), 1);
}

#[test]
fn access_policy_composes_with_query_views() {
    let (_, rel, _, qv, _, tables) = scenario();
    // the entity sets exposed to a restricted tool: no Tier column, only
    // customers (not plain parties)
    let policy = AccessPolicy::new().allow(
        "Customer",
        AccessRule::columns(&["Id", "Name"]),
    );
    let restricted = compile_policy(&qv, &policy);
    let mat = materialize_views(&restricted, &rel, &tables).expect("restricted");
    let c = mat.relation("Customer").expect("visible");
    assert!(!c.schema.has("Tier"));
    assert_eq!(c.len(), 2);
    assert!(mat.relation("Party").is_none());
    // static check rejects a Tier probe before any data moves
    let probe = Expr::base("Customer").project(&["Tier"]);
    assert!(!check_query(&probe, &policy).is_empty());
}

#[test]
fn triggers_fire_on_base_deltas_in_entity_terms() {
    let (_, rel, _, qv, _, tables) = scenario();
    let triggers = vec![Trigger::new("gold_signup", "Customer")
        .when(Predicate::col_eq_lit("Tier", "gold"))];
    let compiled = compile_triggers(&triggers, &qv, &rel);
    // a new gold customer arrives at the *table* level
    let mut delta = Delta::new();
    delta.insert("Party", Tuple::from([Value::Int(9), Value::text("hooli")]));
    delta.insert("Customer", Tuple::from([Value::Int(9), Value::text("gold")]));
    let firings = fire_triggers(&compiled, &rel, &tables, &delta).expect("fire");
    assert_eq!(firings.len(), 1);
    assert!(firings[0].row.values().contains(&Value::text("hooli")));
    // a silver customer does not fire
    let mut delta2 = Delta::new();
    delta2.insert("Party", Tuple::from([Value::Int(10), Value::text("pied")]));
    delta2.insert("Customer", Tuple::from([Value::Int(10), Value::text("silver")]));
    assert!(fire_triggers(&compiled, &rel, &tables, &delta2).expect("fire").is_empty());
}

#[test]
fn sync_rules_replicate_between_peers_sharing_the_entity_model() {
    let (er, rel, _, qv, uv, tables) = scenario();
    // peer 2: same entity model, fresh (empty) tables
    let mut peer2 = Database::empty_of(&rel);
    let rules = vec![SyncRule::filtered(
        "Customer",
        Predicate::col_eq_lit("Tier", "gold"),
    )];
    let translated = translate_rules(&rules, &qv, &rel);
    let stats = run_sync(&translated, &rel, &tables, &uv, &er, &mut peer2).expect("sync");
    assert_eq!(stats.rows_read, 1);
    // the gold customer landed in peer 2's Party AND Customer tables
    assert_eq!(peer2.relation("Party").expect("party").len(), 1);
    assert_eq!(peer2.relation("Customer").expect("customer").len(), 1);
}

#[test]
fn debugger_traces_the_generated_figure3_query() {
    let (_, rel, _, qv, _, tables) = scenario();
    let t = trace(&qv.view("Customer").expect("view").expr, &rel, &tables).expect("trace");
    // the compiled query has scans, a union of keys, left joins, the CASE
    // extension, and projections — all visible in the trace
    assert!(t.steps.iter().any(|s| s.operator.starts_with("scan")));
    assert!(t.steps.iter().any(|s| s.operator.starts_with('⟕')));
    assert!(t.steps.iter().any(|s| s.operator.starts_with("ext $type")));
    assert_eq!(t.steps.last().expect("root").output_rows, 2);
}

#[test]
fn index_advice_targets_the_join_keys_of_the_compiled_views() {
    let (_, rel, _, qv, _, _) = scenario();
    let workload = vec![
        Expr::base("Customer").select(Predicate::col_eq_lit("Tier", "gold")),
        Expr::base("Party").project(&["Name"]),
    ];
    let recs = advise_indexes(&workload, &qv, &rel);
    // the reconstruction queries join Party and Customer tables on Id
    assert!(
        recs.iter().any(|r| r.column == "Id"),
        "expected Id join-key advice, got {recs:?}"
    );
}

#[test]
fn error_translation_speaks_entity_language() {
    let (_, rel, frags, _, _, mut tables) = scenario();
    // corrupt the Customer table with a NULL tier
    tables.insert("Customer", Tuple::from([Value::Int(4), Value::Null]));
    let mut rel_nn = rel.clone();
    rel_nn
        .add_constraint(Constraint::NotNull {
            element: "Customer".into(),
            attribute: "Tier".into(),
        })
        .expect("constraint");
    let violations = validate(&rel_nn, &tables);
    assert!(!violations.is_empty());
    let translated = translate_violations(&rel_nn, &frags, &violations);
    assert!(translated
        .iter()
        .any(|e| e.entity_types.contains(&"Customer".to_string())
            && e.attribute.as_deref() == Some("Tier")));
}

#[test]
fn batch_load_bypasses_row_at_a_time_propagation() {
    let (er, _, _, _, uv, mut tables) = scenario();
    let mut batch = Database::empty_of(&er);
    for i in 100..110 {
        batch.insert_entity(
            "Customer",
            "Customer",
            vec![Value::Int(i), Value::Text(format!("bulk{i}")), Value::text("bronze")],
        );
    }
    let stats = batch_load(&uv, &er, &batch, &mut tables).expect("load");
    assert_eq!(stats.staged, 10);
    assert_eq!(stats.loaded, 20); // Party row + Customer row per entity
}
