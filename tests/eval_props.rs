//! Property tests for the indexed, semi-naive evaluation core (PR 2):
//! the compiled/indexed paths must be observationally identical to the
//! naive reference paths they replaced.
//!
//! * compiled + indexed CQ evaluation enumerates exactly the bindings of
//!   the naive nested-loop scan, in the same order, on random databases
//!   and random conjunctive queries;
//! * the semi-naive, index-probing chase reaches a bit-identical fixpoint
//!   (same tuples, same labeled-null identities, same [`ChaseStats`]) as
//!   the full-reevaluation scanning reference on the adversarial
//!   `workload::faults` inputs;
//! * (PR 7) the cost-based planner — statistics-driven join orders, the
//!   skewed `workload::skew` instances built to mislead the greedy
//!   heuristic, and the adaptive mid-chase re-planner — changes *how*
//!   bodies are walked but never *what* they enumerate: bindings, firing
//!   order, and labeled-null identities all stay bit-identical to the
//!   naive reference.

use mm_chase::{
    chase_general_adaptive, chase_general_governed, chase_general_reference, chase_st_governed,
    chase_st_prepared, chase_st_reference, egds_from_keys, ChaseOutcome, ChaseProgram,
};
use mm_eval::{find_homomorphisms_costed, find_homomorphisms_governed, find_homomorphisms_naive, Binding};
use mm_expr::{Atom, Lit, Term, Tgd};
use mm_guard::{ExecBudget, Governor};
use mm_instance::{Database, Tuple, Value};
use mm_metamodel::{DataType, Schema, SchemaBuilder};
use mm_telemetry::Telemetry;
use mm_workload::{faults, skew};
use proptest::prelude::*;

// --- generators -------------------------------------------------------------

/// The fixed schema random databases and queries range over: two binary
/// relations and a unary one, all over small ints so joins actually hit.
fn cq_schema() -> Schema {
    SchemaBuilder::new("P")
        .relation("R", &[("a", DataType::Int), ("b", DataType::Int)])
        .relation("S", &[("a", DataType::Int), ("b", DataType::Int)])
        .relation("U", &[("a", DataType::Int)])
        .build()
        .expect("static schema")
}

/// Random database: up to ~60 tuples over `R`/`S`/`U`, values in 0..6.
fn arb_db() -> impl Strategy<Value = Database> {
    let tuple = (0usize..3, 0i64..6, 0i64..6);
    proptest::collection::vec(tuple, 0..60).prop_map(|rows| {
        let mut db = Database::empty_of(&cq_schema());
        for (rel, a, b) in rows {
            match rel {
                0 => db.insert("R", Tuple::from([Value::Int(a), Value::Int(b)])),
                1 => db.insert("S", Tuple::from([Value::Int(a), Value::Int(b)])),
                _ => db.insert("U", Tuple::from([Value::Int(a)])),
            };
        }
        db
    })
}

/// A term over a small shared variable pool (so atoms join) or a small
/// constant (so selections sometimes hit, sometimes miss).
fn arb_cq_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        prop_oneof![Just("x"), Just("y"), Just("z"), Just("w")]
            .prop_map(|v| Term::Var(v.to_string())),
        prop_oneof![Just("x"), Just("y"), Just("z"), Just("w")]
            .prop_map(|v| Term::Var(v.to_string())),
        (0i64..6).prop_map(|c| Term::Const(Lit::Int(c))),
    ]
}

/// A conjunctive query of 1..=4 atoms over the fixed schema, with the
/// right arity per relation.
fn arb_cq() -> impl Strategy<Value = Vec<Atom>> {
    let atom = (0usize..3, arb_cq_term(), arb_cq_term()).prop_map(|(rel, t1, t2)| match rel {
        0 => Atom { relation: "R".into(), terms: vec![t1, t2] },
        1 => Atom { relation: "S".into(), terms: vec![t1, t2] },
        _ => Atom { relation: "U".into(), terms: vec![t1] },
    });
    proptest::collection::vec(atom, 1..5)
}

fn unbounded() -> ExecBudget {
    ExecBudget::unbounded()
}

// --- (a) indexed CQ evaluation == naive scan --------------------------------

proptest! {
    /// The compiled, index-probing homomorphism search returns exactly
    /// the naive nested-loop binding sequence — same bindings, same
    /// order — on random databases and queries.
    #[test]
    fn indexed_cq_matches_naive_scan(db in arb_db(), atoms in arb_cq()) {
        let budget = unbounded();
        let seed = Binding::new();
        let indexed =
            find_homomorphisms_governed(&atoms, &db, &seed, &mut Governor::new(&budget));
        let naive = find_homomorphisms_naive(&atoms, &db, &seed, &mut Governor::new(&budget));
        prop_assert_eq!(indexed.unwrap(), naive.unwrap());
    }

    /// Same equivalence with a pre-bound seed variable (the chase's
    /// head-satisfaction shape): seeded slots become probe columns on the
    /// indexed path and filters on the naive path.
    #[test]
    fn indexed_seeded_cq_matches_naive_scan(
        db in arb_db(),
        atoms in arb_cq(),
        seed_val in 0i64..6,
    ) {
        let budget = unbounded();
        let mut seed = Binding::new();
        seed.insert("x".to_string(), Value::Int(seed_val));
        let indexed =
            find_homomorphisms_governed(&atoms, &db, &seed, &mut Governor::new(&budget));
        let naive = find_homomorphisms_naive(&atoms, &db, &seed, &mut Governor::new(&budget));
        prop_assert_eq!(indexed.unwrap(), naive.unwrap());
    }
}

// --- (b) semi-naive chase == naive reference fixpoint -----------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 48 })]

    /// The semi-naive general chase of the terminating copy chain reaches
    /// the reference fixpoint bit-identically: same tuples, same rounds,
    /// same `ChaseStats.fired`.
    #[test]
    fn semi_naive_chain_chase_matches_reference(n in 2usize..10) {
        let (_, db, tgds) = faults::terminating_chain(n);
        let budget = unbounded().with_rounds(64);
        let mut fast_db = db.clone();
        let fast = chase_general_governed(&mut fast_db, &tgds, &[], &budget).unwrap();
        let mut ref_db = db;
        let reference = chase_general_reference(&mut ref_db, &tgds, &[], &budget).unwrap();
        prop_assert_eq!(fast, reference);
        prop_assert_eq!(fast_db, ref_db);
    }

    /// The indexed s-t chase of the quadratic self-join workload produces
    /// the reference universal instance bit-identically — including
    /// labeled-null identities, which are sensitive to firing order.
    #[test]
    fn indexed_st_chase_matches_reference_on_quadratic_join(rows in 3usize..24) {
        let (_, tgt, db, tgds) = faults::quadratic_join(rows);
        let budget = unbounded();
        let (fast_db, fast_stats) = chase_st_governed(&tgt, &tgds, &db, &budget).unwrap();
        let (ref_db, ref_stats) = chase_st_reference(&tgt, &tgds, &db, &budget).unwrap();
        prop_assert_eq!(fast_stats, ref_stats);
        prop_assert_eq!(fast_db, ref_db);
    }

    /// Copy tgds over an oversized instance: the semi-naive chase fires
    /// each tgd exactly as often as the reference and inserts the same
    /// tuples, even when an existential head mints nulls per firing.
    #[test]
    fn st_chase_matches_reference_on_oversized_copy(rows in 1usize..200) {
        let (_, db) = faults::oversized_instance(rows);
        let tgt = SchemaBuilder::new("CopyT")
            .relation("C0", &[("a", DataType::Int), ("b", DataType::Int)])
            .relation("C1", &[("a", DataType::Int), ("b", DataType::Int)])
            .build()
            .unwrap();
        let tgds = vec![
            Tgd::new(vec![Atom::vars("R0", &["x", "y"])], vec![Atom::vars("C0", &["x", "y"])]),
            // existential head: one fresh null per source tuple
            Tgd::new(vec![Atom::vars("R0", &["x", "y"])], vec![Atom::vars("C1", &["x", "u"])]),
        ];
        let budget = unbounded();
        let (fast_db, fast_stats) = chase_st_governed(&tgt, &tgds, &db, &budget).unwrap();
        let (ref_db, ref_stats) = chase_st_reference(&tgt, &tgds, &db, &budget).unwrap();
        prop_assert_eq!(fast_stats, ref_stats);
        prop_assert_eq!(fast_db, ref_db);
    }

    /// General chase with key egds (null-rewriting equates) stays
    /// bit-identical: the fast path resets its watermarks after every
    /// equate, so delta bookkeeping never hides a rewritten tuple.
    #[test]
    fn general_chase_with_key_egds_matches_reference(rows in 1usize..30) {
        let src = SchemaBuilder::new("KSrc")
            .relation("R0", &[("k", DataType::Int), ("v", DataType::Int)])
            .build()
            .unwrap();
        let tgt = SchemaBuilder::new("KTgt")
            .relation("T0", &[("k", DataType::Int), ("v", DataType::Int)])
            .key("T0", &["k"])
            .build()
            .unwrap();
        let mut db = Database::empty_of(&src);
        for t in Database::empty_of(&tgt).relations().map(|(n, r)| (n.to_string(), r.clone())) {
            db.insert_relation(t.0, t.1);
        }
        for i in 0..rows {
            // two rows per key: the egd must merge their images in T0
            db.insert("R0", Tuple::from([Value::Int((i % 7) as i64), Value::Int(i as i64)]));
        }
        // two tgds that each mint a null for the same key
        let tgds = vec![
            Tgd::new(vec![Atom::vars("R0", &["k", "v"])], vec![Atom::vars("T0", &["k", "u"])]),
            Tgd::new(vec![Atom::vars("R0", &["k", "v"])], vec![Atom::vars("T0", &["k", "w"])]),
        ];
        let egds = egds_from_keys(&tgt);
        let budget = unbounded().with_rounds(64);
        let mut fast_db = db.clone();
        let fast = chase_general_governed(&mut fast_db, &tgds, &egds, &budget).unwrap();
        let mut ref_db = db;
        let reference = chase_general_reference(&mut ref_db, &tgds, &egds, &budget).unwrap();
        prop_assert!(matches!(fast, ChaseOutcome::Done(_)), "{fast:?}");
        prop_assert_eq!(fast, reference);
        prop_assert_eq!(fast_db, ref_db);
    }
}

// --- (c) cost-based planning == naive reference (PR 7) ----------------------

proptest! {
    /// The statistics-driven planner may walk atoms in any order it
    /// likes, but the canonical-order remap at the leaves must recover
    /// exactly the naive nested-loop binding sequence on random
    /// databases and queries.
    #[test]
    fn costed_cq_matches_naive_scan(db in arb_db(), atoms in arb_cq()) {
        let budget = unbounded();
        let seed = Binding::new();
        let costed = find_homomorphisms_costed(&atoms, &db, &seed, &mut Governor::new(&budget));
        let naive = find_homomorphisms_naive(&atoms, &db, &seed, &mut Governor::new(&budget));
        prop_assert_eq!(costed.unwrap(), naive.unwrap());
    }

    /// Same equivalence with a pre-bound seed variable, which changes
    /// the planner's selectivity arithmetic (seeded slots are free
    /// probe columns) but must not change the enumeration.
    #[test]
    fn costed_seeded_cq_matches_naive_scan(
        db in arb_db(),
        atoms in arb_cq(),
        seed_val in 0i64..6,
    ) {
        let budget = unbounded();
        let mut seed = Binding::new();
        seed.insert("x".to_string(), Value::Int(seed_val));
        let costed = find_homomorphisms_costed(&atoms, &db, &seed, &mut Governor::new(&budget));
        let naive = find_homomorphisms_naive(&atoms, &db, &seed, &mut Governor::new(&budget));
        prop_assert_eq!(costed.unwrap(), naive.unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// On the skewed instances built to make the greedy order
    /// catastrophic (fat hub, Zipfian hub, correlated selection), the
    /// costed planner picks a genuinely different walk — and still
    /// enumerates the naive binding sequence bit-identically.
    #[test]
    fn costed_cq_matches_naive_on_skewed_data(
        rows in 40usize..140,
        seed in 0u64..64,
        shape in 0usize..3,
    ) {
        let (_, db, atoms) = match shape {
            0 => skew::fat_hub_join(rows),
            1 => skew::zipf_join(rows, seed),
            _ => skew::correlated_join(rows, seed),
        };
        let budget = unbounded();
        let empty = Binding::new();
        let costed = find_homomorphisms_costed(&atoms, &db, &empty, &mut Governor::new(&budget));
        let naive = find_homomorphisms_naive(&atoms, &db, &empty, &mut Governor::new(&budget));
        prop_assert_eq!(costed.unwrap(), naive.unwrap());
    }

    /// An s-t chase whose tgd body is the skewed three-way join: the
    /// costed program must reproduce the reference universal instance
    /// bit-identically — firing order decides labeled-null identities,
    /// so any planner reordering that leaked through the canonical
    /// remap would show up here.
    #[test]
    fn costed_st_chase_matches_reference_on_skewed_data(
        rows in 40usize..140,
        seed in 0u64..64,
    ) {
        let (_, db, atoms) = skew::zipf_join(rows, seed);
        let tgt = SchemaBuilder::new("SkewT")
            .relation("Out", &[("x", DataType::Int), ("y", DataType::Int), ("tag", DataType::Int)])
            .build()
            .unwrap();
        // existential head: one fresh null per firing, so null ids trace
        // the firing order exactly
        let tgds = vec![Tgd::new(atoms, vec![Atom::vars("Out", &["x", "y", "u"])])];
        let budget = unbounded();
        let program = ChaseProgram::compile_costed(&tgds, &db);
        let (fast_db, fast_stats) = chase_st_prepared(&tgt, &program, &db, &budget).unwrap();
        let (ref_db, ref_stats) = chase_st_reference(&tgt, &tgds, &db, &budget).unwrap();
        prop_assert_eq!(fast_stats, ref_stats);
        prop_assert_eq!(fast_db, ref_db);
    }

    /// The adaptive general chase on the growing copy chain: plans are
    /// costed against the *initial* instance (every relation past `R0`
    /// empty), so cardinalities drift as the chain fills and the
    /// re-planner must fire mid-run — and the re-planned run must still
    /// be bit-identical to the naive full-reevaluation reference.
    #[test]
    fn adaptive_chase_replans_and_matches_reference(n in 3usize..10) {
        let (_, db, tgds) = faults::terminating_chain(n);
        let budget = unbounded().with_rounds(64);
        let mut fast_db = db.clone();
        let program = ChaseProgram::compile_costed(&tgds, &fast_db);
        let (fast, replans) = chase_general_adaptive(
            &mut fast_db,
            &program,
            &[],
            &budget,
            1,
            &Telemetry::disabled(),
            1.5,
        )
        .unwrap();
        let mut ref_db = db;
        let reference = chase_general_reference(&mut ref_db, &tgds, &[], &budget).unwrap();
        prop_assert!(replans > 0, "chain growth from empty must trigger a re-plan");
        prop_assert_eq!(fast, reference);
        prop_assert_eq!(fast_db, ref_db);
    }
}
