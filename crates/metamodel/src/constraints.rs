//! Intra-schema integrity constraints.
//!
//! These are constraints on *one* schema, as opposed to the mapping
//! constraints of `mm-expr` which relate two schemas (§2 of the paper
//! draws exactly this distinction). The runtime needs them to reason about
//! constraint propagation across mappings (§5, "Integrity constraints"),
//! and ModelGen emits them when constructs are translated (e.g. the
//! disjointness of sibling subtypes becomes unrepresentable when classes
//! map to distinct tables — the paper's own example).

use crate::error::MetamodelError;
use crate::schema::Schema;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Key constraint: the given attributes uniquely identify a tuple/entity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Key {
    pub element: String,
    pub attributes: Vec<String>,
}

/// Foreign key: `from.(from_attrs)` references `to.(to_attrs)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    pub from: String,
    pub from_attrs: Vec<String>,
    pub to: String,
    pub to_attrs: Vec<String>,
}

/// Inclusion dependency: π(from_attrs)(from) ⊆ π(to_attrs)(to). A foreign
/// key is an inclusion dependency into a key; the general form is needed
/// for constraint propagation through mappings.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InclusionDependency {
    pub from: String,
    pub from_attrs: Vec<String>,
    pub to: String,
    pub to_attrs: Vec<String>,
}

/// The integrity constraints of the universal metamodel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Constraint {
    Key(Key),
    ForeignKey(ForeignKey),
    Inclusion(InclusionDependency),
    /// Two sets of entity-type instances are disjoint (no shared entity is
    /// an instance of both most-derived types).
    Disjoint { left: String, right: String },
    /// Every instance of `parent` is an instance of one of `children`
    /// (total specialization).
    Covering { parent: String, children: Vec<String> },
    /// An attribute may not be null (expressed separately from the
    /// attribute's own nullability so ModelGen can move it between
    /// elements).
    NotNull { element: String, attribute: String },
}

impl Constraint {
    /// Whether the constraint mentions element `name`.
    pub fn mentions(&self, name: &str) -> bool {
        match self {
            Constraint::Key(k) => k.element == name,
            Constraint::ForeignKey(fk) => fk.from == name || fk.to == name,
            Constraint::Inclusion(i) => i.from == name || i.to == name,
            Constraint::Disjoint { left, right } => left == name || right == name,
            Constraint::Covering { parent, children } => {
                parent == name || children.iter().any(|c| c == name)
            }
            Constraint::NotNull { element, .. } => element == name,
        }
    }

    /// Every element the constraint mentions.
    pub fn elements(&self) -> Vec<&str> {
        match self {
            Constraint::Key(k) => vec![k.element.as_str()],
            Constraint::ForeignKey(fk) => vec![fk.from.as_str(), fk.to.as_str()],
            Constraint::Inclusion(i) => vec![i.from.as_str(), i.to.as_str()],
            Constraint::Disjoint { left, right } => vec![left.as_str(), right.as_str()],
            Constraint::Covering { parent, children } => {
                let mut v = vec![parent.as_str()];
                v.extend(children.iter().map(String::as_str));
                v
            }
            Constraint::NotNull { element, .. } => vec![element.as_str()],
        }
    }

    /// Validate that everything the constraint mentions exists in `schema`
    /// and is well-formed (arity matches, attributes exist).
    pub fn check(&self, schema: &Schema) -> Result<(), MetamodelError> {
        let check_attrs = |element: &str, attrs: &[String]| -> Result<(), MetamodelError> {
            let all = schema.all_attributes(element)?;
            for a in attrs {
                if !all.iter().any(|x| &x.name == a) {
                    return Err(MetamodelError::UnknownAttribute {
                        element: element.to_string(),
                        attribute: a.clone(),
                    });
                }
            }
            Ok(())
        };
        match self {
            Constraint::Key(k) => {
                if k.attributes.is_empty() {
                    return Err(MetamodelError::MalformedConstraint("empty key".into()));
                }
                check_attrs(&k.element, &k.attributes)
            }
            Constraint::ForeignKey(fk) => {
                if fk.from_attrs.len() != fk.to_attrs.len() || fk.from_attrs.is_empty() {
                    return Err(MetamodelError::MalformedConstraint(format!(
                        "foreign key {} -> {} arity mismatch",
                        fk.from, fk.to
                    )));
                }
                check_attrs(&fk.from, &fk.from_attrs)?;
                check_attrs(&fk.to, &fk.to_attrs)
            }
            Constraint::Inclusion(i) => {
                if i.from_attrs.len() != i.to_attrs.len() || i.from_attrs.is_empty() {
                    return Err(MetamodelError::MalformedConstraint(format!(
                        "inclusion {} -> {} arity mismatch",
                        i.from, i.to
                    )));
                }
                check_attrs(&i.from, &i.from_attrs)?;
                check_attrs(&i.to, &i.to_attrs)
            }
            Constraint::Disjoint { left, right } => {
                for e in [left, right] {
                    if schema.element(e).is_none() {
                        return Err(MetamodelError::UnknownElement(e.clone()));
                    }
                }
                Ok(())
            }
            Constraint::Covering { parent, children } => {
                if children.is_empty() {
                    return Err(MetamodelError::MalformedConstraint("empty covering".into()));
                }
                for e in std::iter::once(parent).chain(children.iter()) {
                    if schema.element(e).is_none() {
                        return Err(MetamodelError::UnknownElement(e.clone()));
                    }
                }
                Ok(())
            }
            Constraint::NotNull { element, attribute } => {
                check_attrs(element, std::slice::from_ref(attribute))
            }
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Key(k) => {
                write!(f, "key {}({})", k.element, k.attributes.join(", "))
            }
            Constraint::ForeignKey(fk) => write!(
                f,
                "fk {}({}) -> {}({})",
                fk.from,
                fk.from_attrs.join(", "),
                fk.to,
                fk.to_attrs.join(", ")
            ),
            Constraint::Inclusion(i) => write!(
                f,
                "incl {}({}) <= {}({})",
                i.from,
                i.from_attrs.join(", "),
                i.to,
                i.to_attrs.join(", ")
            ),
            Constraint::Disjoint { left, right } => write!(f, "disjoint({left}, {right})"),
            Constraint::Covering { parent, children } => {
                write!(f, "covering {} = {}", parent, children.join(" | "))
            }
            Constraint::NotNull { element, attribute } => {
                write!(f, "notnull {element}.{attribute}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;
    use crate::types::DataType;

    fn rel_schema() -> Schema {
        SchemaBuilder::new("S")
            .relation("R", &[("a", DataType::Int), ("b", DataType::Text)])
            .relation("T", &[("x", DataType::Int)])
            .build()
            .unwrap()
    }

    #[test]
    fn key_over_unknown_attribute_rejected() {
        let mut s = rel_schema();
        let err = s
            .add_constraint(Constraint::Key(Key {
                element: "R".into(),
                attributes: vec!["zzz".into()],
            }))
            .unwrap_err();
        assert!(matches!(err, MetamodelError::UnknownAttribute { .. }));
    }

    #[test]
    fn empty_key_rejected() {
        let mut s = rel_schema();
        let err = s
            .add_constraint(Constraint::Key(Key { element: "R".into(), attributes: vec![] }))
            .unwrap_err();
        assert!(matches!(err, MetamodelError::MalformedConstraint(_)));
    }

    #[test]
    fn fk_arity_mismatch_rejected() {
        let mut s = rel_schema();
        let err = s
            .add_constraint(Constraint::ForeignKey(ForeignKey {
                from: "R".into(),
                from_attrs: vec!["a".into(), "b".into()],
                to: "T".into(),
                to_attrs: vec!["x".into()],
            }))
            .unwrap_err();
        assert!(matches!(err, MetamodelError::MalformedConstraint(_)));
    }

    #[test]
    fn valid_fk_accepted_and_displayed() {
        let mut s = rel_schema();
        s.add_constraint(Constraint::ForeignKey(ForeignKey {
            from: "R".into(),
            from_attrs: vec!["a".into()],
            to: "T".into(),
            to_attrs: vec!["x".into()],
        }))
        .unwrap();
        assert_eq!(s.constraints.len(), 1);
        assert_eq!(s.constraints[0].to_string(), "fk R(a) -> T(x)");
    }

    #[test]
    fn key_on_inherited_attribute_is_valid() {
        let mut s = SchemaBuilder::new("ER")
            .entity("P", &[("Id", DataType::Int)])
            .entity_sub("E", "P", &[("D", DataType::Text)])
            .build()
            .unwrap();
        s.add_constraint(Constraint::Key(Key {
            element: "E".into(),
            attributes: vec!["Id".into()], // inherited from P
        }))
        .unwrap();
    }

    #[test]
    fn mentions_and_elements() {
        let c = Constraint::Covering {
            parent: "P".into(),
            children: vec!["E".into(), "C".into()],
        };
        assert!(c.mentions("P"));
        assert!(c.mentions("C"));
        assert!(!c.mentions("X"));
        assert_eq!(c.elements(), vec!["P", "E", "C"]);
    }

    #[test]
    fn removing_element_drops_its_constraints() {
        let mut s = rel_schema();
        s.add_constraint(Constraint::Key(Key {
            element: "R".into(),
            attributes: vec!["a".into()],
        }))
        .unwrap();
        s.remove_element("R");
        assert!(s.constraints.is_empty());
    }
}
