//! Metamodel profiles: the concrete metamodels the engine supports.
//!
//! §2 of the paper: "an MMS must support schemas expressed in all popular
//! metamodels. Today, that means SQL, XML Schema, Entity-Relationship, and
//! object-oriented metamodels". Each profile admits a subset of the
//! universal constructs; [`Metamodel::violations`] reports precisely the
//! constructs ModelGen must eliminate to move a schema into the profile.

use crate::error::Violation;
use crate::schema::{ElementKind, Schema};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A concrete metamodel, i.e. a profile of the universal metamodel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metamodel {
    /// Flat SQL: relations only. No inheritance, associations, or nesting.
    Relational,
    /// Extended ER (as in the ADO.NET Entity Data Model): entity types with
    /// inheritance plus associations. No nesting; plain relations are also
    /// disallowed (an ER schema exposes entity sets, not tables).
    EntityRelationship,
    /// Object-oriented: classes (entity types) with single inheritance and
    /// references (associations). Same constructs as ER in this engine;
    /// kept distinct because ModelGen strategies differ (OO wrappers
    /// require updatability).
    ObjectOriented,
    /// XML-like: relations/entity roots with nested collections; no
    /// inheritance or associations (containment instead of reference).
    XmlLike,
    /// The universal metamodel itself: everything is admissible.
    Universal,
}

impl Metamodel {
    /// Whether this profile admits the given construct.
    pub fn admits(self, kind: &ElementKind) -> bool {
        use Metamodel::*;
        match self {
            Universal => true,
            Relational => matches!(kind, ElementKind::Relation),
            EntityRelationship | ObjectOriented => matches!(
                kind,
                ElementKind::EntityType { .. } | ElementKind::Association { .. }
            ),
            XmlLike => matches!(
                kind,
                ElementKind::Relation
                    | ElementKind::EntityType { parent: None }
                    | ElementKind::Nested { .. }
            ),
        }
    }

    /// All constructs of `schema` that fall outside this profile. An empty
    /// result means `schema` conforms.
    pub fn violations(self, schema: &Schema) -> Vec<Violation> {
        let mut out = Vec::new();
        for e in schema.elements() {
            if !self.admits(&e.kind) {
                out.push(Violation {
                    element: e.name.clone(),
                    reason: format!("{} is not expressible in {}", describe(&e.kind), self),
                });
            }
        }
        out
    }

    /// Convenience: does the schema conform to this profile?
    pub fn conforms(self, schema: &Schema) -> bool {
        schema.elements().all(|e| self.admits(&e.kind))
    }
}

fn describe(kind: &ElementKind) -> &'static str {
    match kind {
        ElementKind::Relation => "a flat relation",
        ElementKind::EntityType { parent: None } => "a root entity type",
        ElementKind::EntityType { parent: Some(_) } => "a subtype (is-a edge)",
        ElementKind::Association { .. } => "an association",
        ElementKind::Nested { .. } => "a nested collection",
    }
}

impl fmt::Display for Metamodel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Metamodel::Relational => "Relational",
            Metamodel::EntityRelationship => "ER",
            Metamodel::ObjectOriented => "OO",
            Metamodel::XmlLike => "XML",
            Metamodel::Universal => "Universal",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;
    use crate::types::DataType;

    fn mixed_schema() -> Schema {
        SchemaBuilder::new("Mixed")
            .relation("T", &[("a", DataType::Int)])
            .entity("P", &[("Id", DataType::Int)])
            .entity_sub("E", "P", &[("D", DataType::Text)])
            .nested("Items", "T", &[("qty", DataType::Int)])
            .build()
            .unwrap()
    }

    #[test]
    fn relational_rejects_entities_and_nesting() {
        let s = mixed_schema();
        let v = Metamodel::Relational.violations(&s);
        let names: Vec<&str> = v.iter().map(|x| x.element.as_str()).collect();
        assert_eq!(names, ["P", "E", "Items"]);
    }

    #[test]
    fn er_rejects_relations_and_nesting() {
        let s = mixed_schema();
        let v = Metamodel::EntityRelationship.violations(&s);
        let names: Vec<&str> = v.iter().map(|x| x.element.as_str()).collect();
        assert_eq!(names, ["T", "Items"]);
    }

    #[test]
    fn xml_rejects_subtypes() {
        let s = mixed_schema();
        let v = Metamodel::XmlLike.violations(&s);
        let names: Vec<&str> = v.iter().map(|x| x.element.as_str()).collect();
        assert_eq!(names, ["E"]);
    }

    #[test]
    fn universal_admits_everything() {
        let s = mixed_schema();
        assert!(Metamodel::Universal.conforms(&s));
    }

    #[test]
    fn pure_relational_schema_conforms() {
        let s = SchemaBuilder::new("S")
            .relation("A", &[("x", DataType::Int)])
            .relation("B", &[("y", DataType::Text)])
            .build()
            .unwrap();
        assert!(Metamodel::Relational.conforms(&s));
        assert!(!Metamodel::EntityRelationship.conforms(&s));
    }
}
