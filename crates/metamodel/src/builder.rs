//! Fluent construction of schemas.
//!
//! The builder front-loads validation errors: `build()` returns the first
//! construction error, so tests and examples can assemble schemas in one
//! expression.

use crate::constraints::{Constraint, ForeignKey, Key};
use crate::error::MetamodelError;
use crate::schema::{Attribute, Cardinality, Element, ElementKind, Schema};
use crate::types::DataType;

/// Fluent builder for [`Schema`].
#[derive(Debug)]
pub struct SchemaBuilder {
    schema: Schema,
    error: Option<MetamodelError>,
}

impl SchemaBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        SchemaBuilder { schema: Schema::new(name), error: None }
    }

    fn push(mut self, element: Element) -> Self {
        if self.error.is_none() {
            if let Err(e) = self.schema.add_element(element) {
                self.error = Some(e);
            }
        }
        self
    }

    fn attrs(pairs: &[(&str, DataType)]) -> Vec<Attribute> {
        pairs.iter().map(|(n, t)| Attribute::new(*n, *t)).collect()
    }

    /// Add a flat relation.
    pub fn relation(self, name: &str, attrs: &[(&str, DataType)]) -> Self {
        self.push(Element {
            name: name.into(),
            kind: ElementKind::Relation,
            attributes: Self::attrs(attrs),
        })
    }

    /// Add a relation with explicit nullability per attribute.
    pub fn relation_nullable(
        self,
        name: &str,
        attrs: &[(&str, DataType, bool)],
    ) -> Self {
        self.push(Element {
            name: name.into(),
            kind: ElementKind::Relation,
            attributes: attrs
                .iter()
                .map(|(n, t, nl)| Attribute { name: (*n).into(), ty: *t, nullable: *nl })
                .collect(),
        })
    }

    /// Add a root entity type.
    pub fn entity(self, name: &str, attrs: &[(&str, DataType)]) -> Self {
        self.push(Element {
            name: name.into(),
            kind: ElementKind::EntityType { parent: None },
            attributes: Self::attrs(attrs),
        })
    }

    /// Add an entity subtype. Only the *added* attributes are listed.
    pub fn entity_sub(self, name: &str, parent: &str, attrs: &[(&str, DataType)]) -> Self {
        self.push(Element {
            name: name.into(),
            kind: ElementKind::EntityType { parent: Some(parent.into()) },
            attributes: Self::attrs(attrs),
        })
    }

    /// Add a binary association between two entity types.
    pub fn association(
        self,
        name: &str,
        from: &str,
        to: &str,
        from_card: Cardinality,
        to_card: Cardinality,
    ) -> Self {
        self.push(Element {
            name: name.into(),
            kind: ElementKind::Association {
                from: from.into(),
                to: to.into(),
                from_card,
                to_card,
            },
            attributes: Vec::new(),
        })
    }

    /// Add a nested collection owned by `parent`.
    pub fn nested(self, name: &str, parent: &str, attrs: &[(&str, DataType)]) -> Self {
        self.push(Element {
            name: name.into(),
            kind: ElementKind::Nested { parent: parent.into() },
            attributes: Self::attrs(attrs),
        })
    }

    /// Add a key constraint.
    pub fn key(mut self, element: &str, attrs: &[&str]) -> Self {
        if self.error.is_none() {
            let c = Constraint::Key(Key {
                element: element.into(),
                attributes: attrs.iter().map(|s| (*s).into()).collect(),
            });
            if let Err(e) = self.schema.add_constraint(c) {
                self.error = Some(e);
            }
        }
        self
    }

    /// Add a foreign key constraint.
    pub fn foreign_key(
        mut self,
        from: &str,
        from_attrs: &[&str],
        to: &str,
        to_attrs: &[&str],
    ) -> Self {
        if self.error.is_none() {
            let c = Constraint::ForeignKey(ForeignKey {
                from: from.into(),
                from_attrs: from_attrs.iter().map(|s| (*s).into()).collect(),
                to: to.into(),
                to_attrs: to_attrs.iter().map(|s| (*s).into()).collect(),
            });
            if let Err(e) = self.schema.add_constraint(c) {
                self.error = Some(e);
            }
        }
        self
    }

    /// Add any constraint.
    pub fn constraint(mut self, c: Constraint) -> Self {
        if self.error.is_none() {
            if let Err(e) = self.schema.add_constraint(c) {
                self.error = Some(e);
            }
        }
        self
    }

    /// Finish, returning the schema or the first construction error.
    pub fn build(self) -> Result<Schema, MetamodelError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.schema),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_happy_path() {
        let s = SchemaBuilder::new("W")
            .relation("Orders", &[("id", DataType::Int), ("cust", DataType::Int)])
            .relation("Customers", &[("id", DataType::Int), ("name", DataType::Text)])
            .key("Orders", &["id"])
            .foreign_key("Orders", &["cust"], "Customers", &["id"])
            .build()
            .unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.constraints.len(), 2);
    }

    #[test]
    fn builder_propagates_first_error() {
        let err = SchemaBuilder::new("W")
            .relation("A", &[("x", DataType::Int)])
            .relation("A", &[("y", DataType::Int)])
            .key("A", &["zzz"]) // would also be an error, but first wins
            .build()
            .unwrap_err();
        assert_eq!(err, MetamodelError::DuplicateElement("A".into()));
    }

    #[test]
    fn nullable_relation_attributes() {
        let s = SchemaBuilder::new("S")
            .relation_nullable("R", &[("a", DataType::Int, false), ("b", DataType::Text, true)])
            .build()
            .unwrap();
        let r = s.element("R").unwrap();
        assert!(!r.attribute("a").unwrap().nullable);
        assert!(r.attribute("b").unwrap().nullable);
    }

    #[test]
    fn association_between_entities() {
        let s = SchemaBuilder::new("S")
            .entity("A", &[("id", DataType::Int)])
            .entity("B", &[("id", DataType::Int)])
            .association("AB", "A", "B", Cardinality::One, Cardinality::Many)
            .build()
            .unwrap();
        assert!(matches!(
            s.element("AB").unwrap().kind,
            ElementKind::Association { .. }
        ));
    }
}
