//! Universal metamodel for the model management engine.
//!
//! A *schema* is an expression that defines a set of possible instances
//! (database states); a *metamodel* is a language for expressing schemas
//! (Bernstein & Melnik, SIGMOD 2007, §2). This crate provides a single
//! universal metamodel whose constructs cover the popular metamodels the
//! paper enumerates — SQL (relational), ER, object-oriented, and nested
//! (XML-like) — together with *profiles* that restrict the universal
//! metamodel to one of those concrete metamodels.
//!
//! The design follows Atzeni & Torlone's supermodel idea (cited in §3.2):
//! every concrete metamodel is a subset of the universal constructs, so
//! translating a schema between metamodels ([`crate::profile::Metamodel`]s)
//! reduces to eliminating the constructs the target profile forbids.
//! Construct elimination itself lives in the `mm-modelgen` crate.

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod builder;
pub mod constraints;
pub mod error;
pub mod parse;
pub mod profile;
pub mod schema;
pub mod types;

pub use builder::SchemaBuilder;
pub use constraints::{Constraint, ForeignKey, InclusionDependency, Key};
pub use error::{MetamodelError, Violation};
pub use parse::{parse_schema, ParseError};
pub use profile::Metamodel;
pub use schema::{Attribute, Cardinality, Element, ElementKind, Schema};
pub use types::DataType;

/// The reserved attribute used to tag the most-derived type of an entity in
/// an entity set. Instance-level inheritance (`IS OF` tests, type-case
/// construction as in the paper's Figure 3) is driven by this attribute.
pub const TYPE_ATTR: &str = "$type";
