//! Primitive data types shared by all metamodel profiles.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Primitive data types of the universal metamodel.
///
/// The set is deliberately small: the paper (§2) asks for "a basis set of
/// data type constructs that are common to many metamodels". Each concrete
/// metamodel maps its native types onto these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer (SQL INT/BIGINT, XSD integer, OO int/long).
    Int,
    /// 64-bit floating point (SQL DOUBLE/FLOAT, XSD double).
    Double,
    /// Boolean.
    Bool,
    /// Unicode string (SQL VARCHAR/NVARCHAR, XSD string).
    Text,
    /// Calendar date, stored as days since an epoch.
    Date,
    /// Wildcard used by generated schemas before a concrete type is pinned
    /// down and by the matcher when the type is unknown.
    Any,
}

impl DataType {
    /// Whether a value of `self` can flow into a slot typed `other`
    /// without loss of meaning. `Any` is compatible with everything in
    /// both directions; `Int` widens to `Double`.
    pub fn compatible_with(self, other: DataType) -> bool {
        use DataType::*;
        matches!(
            (self, other),
            (Any, _) | (_, Any) | (Int, Double)
        ) || self == other
    }

    /// A similarity score in `[0, 1]` for the schema matcher's data-type
    /// heuristic.
    pub fn similarity(self, other: DataType) -> f64 {
        use DataType::*;
        if self == other {
            1.0
        } else if matches!((self, other), (Int, Double) | (Double, Int)) {
            0.8
        } else if self == Any || other == Any {
            0.5
        } else {
            0.1
        }
    }

    /// All concrete (non-`Any`) types, used by workload generators.
    pub const CONCRETE: [DataType; 5] =
        [DataType::Int, DataType::Double, DataType::Bool, DataType::Text, DataType::Date];
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "int",
            DataType::Double => "double",
            DataType::Bool => "bool",
            DataType::Text => "text",
            DataType::Date => "date",
            DataType::Any => "any",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_types_are_compatible() {
        for t in DataType::CONCRETE {
            assert!(t.compatible_with(t), "{t} should be self-compatible");
        }
    }

    #[test]
    fn int_widens_to_double_but_not_back() {
        assert!(DataType::Int.compatible_with(DataType::Double));
        assert!(!DataType::Double.compatible_with(DataType::Int));
    }

    #[test]
    fn any_is_bidirectionally_compatible() {
        for t in DataType::CONCRETE {
            assert!(DataType::Any.compatible_with(t));
            assert!(t.compatible_with(DataType::Any));
        }
    }

    #[test]
    fn text_does_not_flow_into_int() {
        assert!(!DataType::Text.compatible_with(DataType::Int));
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        for a in DataType::CONCRETE {
            for b in DataType::CONCRETE {
                let s = a.similarity(b);
                assert!((0.0..=1.0).contains(&s));
                assert_eq!(s, b.similarity(a));
            }
        }
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(DataType::Text.to_string(), "text");
        assert_eq!(DataType::Date.to_string(), "date");
    }
}
