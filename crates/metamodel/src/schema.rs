//! Schemas and schema elements of the universal metamodel.

use crate::constraints::Constraint;
use crate::error::MetamodelError;
use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A typed, named attribute of a relation, entity type, or nested element.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Attribute {
    pub name: String,
    pub ty: DataType,
    /// Whether SQL `NULL` is an admissible value.
    pub nullable: bool,
}

impl Attribute {
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Attribute { name: name.into(), ty, nullable: false }
    }

    pub fn nullable(name: impl Into<String>, ty: DataType) -> Self {
        Attribute { name: name.into(), ty, nullable: true }
    }
}

/// Cardinality of an association end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cardinality {
    One,
    ZeroOrOne,
    Many,
}

/// The construct kind of a schema element.
///
/// These are the universal metamodel's modeling constructs. Each concrete
/// metamodel profile ([`crate::profile::Metamodel`]) admits a subset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ElementKind {
    /// A flat relation (SQL table).
    Relation,
    /// An ER entity type / OO class. `parent` introduces an is-a edge; the
    /// attributes listed on the element are those *added* at this level
    /// (inherited attributes are resolved via [`Schema::all_attributes`]).
    EntityType { parent: Option<String> },
    /// A binary association (ER relationship / OO reference) between two
    /// entity types.
    Association {
        from: String,
        to: String,
        from_card: Cardinality,
        to_card: Cardinality,
    },
    /// A nested collection (XML-like): a repeated group of attributes owned
    /// by `parent`. The implicit containment edge carries an ordinal.
    Nested { parent: String },
}

/// A named element of a schema together with its attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Element {
    pub name: String,
    pub kind: ElementKind,
    pub attributes: Vec<Attribute>,
}

impl Element {
    pub fn attribute(&self, name: &str) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.name == name)
    }

    pub fn attribute_names(&self) -> impl Iterator<Item = &str> {
        self.attributes.iter().map(|a| a.name.as_str())
    }

    pub fn is_entity_type(&self) -> bool {
        matches!(self.kind, ElementKind::EntityType { .. })
    }

    pub fn is_relation(&self) -> bool {
        matches!(self.kind, ElementKind::Relation)
    }
}

/// A schema: a named collection of elements plus integrity constraints.
///
/// Elements are stored in insertion order (deterministic iteration matters
/// for reproducible operator output) with a name index for O(1) lookup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    pub name: String,
    elements: Vec<Element>,
    index: BTreeMap<String, usize>,
    pub constraints: Vec<Constraint>,
}

impl Schema {
    pub fn new(name: impl Into<String>) -> Self {
        Schema { name: name.into(), elements: Vec::new(), index: BTreeMap::new(), constraints: Vec::new() }
    }

    /// Add an element, rejecting duplicates and dangling/cyclic references.
    pub fn add_element(&mut self, element: Element) -> Result<(), MetamodelError> {
        if self.index.contains_key(&element.name) {
            return Err(MetamodelError::DuplicateElement(element.name));
        }
        let mut seen = std::collections::HashSet::new();
        for a in &element.attributes {
            if !seen.insert(a.name.as_str()) {
                return Err(MetamodelError::DuplicateAttribute {
                    element: element.name.clone(),
                    attribute: a.name.clone(),
                });
            }
        }
        match &element.kind {
            ElementKind::EntityType { parent: Some(p) } => {
                let parent = self
                    .element(p)
                    .ok_or_else(|| MetamodelError::UnknownElement(p.clone()))?;
                if !parent.is_entity_type() {
                    return Err(MetamodelError::InvalidParent {
                        child: element.name.clone(),
                        parent: p.clone(),
                    });
                }
            }
            ElementKind::Association { from, to, .. } => {
                for end in [from, to] {
                    let e = self
                        .element(end)
                        .ok_or_else(|| MetamodelError::UnknownElement(end.clone()))?;
                    if !e.is_entity_type() {
                        return Err(MetamodelError::InvalidParent {
                            child: element.name.clone(),
                            parent: end.clone(),
                        });
                    }
                }
            }
            ElementKind::Nested { parent }
                if self.element(parent).is_none() => {
                    return Err(MetamodelError::UnknownElement(parent.clone()));
                }
            _ => {}
        }
        self.index.insert(element.name.clone(), self.elements.len());
        self.elements.push(element);
        Ok(())
    }

    /// Remove an element by name, returning it. Constraints mentioning the
    /// element are dropped as well (the caller is expected to have captured
    /// them if they matter, e.g. Diff keeps them on the complement schema).
    pub fn remove_element(&mut self, name: &str) -> Option<Element> {
        let pos = *self.index.get(name)?;
        let elem = self.elements.remove(pos);
        self.index.remove(name);
        for (_, idx) in self.index.iter_mut() {
            if *idx > pos {
                *idx -= 1;
            }
        }
        self.constraints.retain(|c| !c.mentions(name));
        Some(elem)
    }

    pub fn element(&self, name: &str) -> Option<&Element> {
        self.index.get(name).map(|&i| &self.elements[i])
    }

    pub fn element_mut(&mut self, name: &str) -> Option<&mut Element> {
        self.index.get(name).copied().map(move |i| &mut self.elements[i])
    }

    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.elements.iter()
    }

    pub fn element_names(&self) -> impl Iterator<Item = &str> {
        self.elements.iter().map(|e| e.name.as_str())
    }

    pub fn len(&self) -> usize {
        self.elements.len()
    }

    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    pub fn contains(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Add an integrity constraint after checking that everything it
    /// mentions exists.
    pub fn add_constraint(&mut self, c: Constraint) -> Result<(), MetamodelError> {
        c.check(self)?;
        self.constraints.push(c);
        Ok(())
    }

    /// The parent entity type of `name`, if any.
    pub fn parent_of(&self, name: &str) -> Option<&str> {
        match &self.element(name)?.kind {
            ElementKind::EntityType { parent } => parent.as_deref(),
            _ => None,
        }
    }

    /// Direct children of entity type `name`.
    pub fn children_of<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.elements.iter().filter(move |e| match &e.kind {
            ElementKind::EntityType { parent: Some(p) } => p == name,
            _ => false,
        })
    }

    /// `name` and all its transitive subtypes, in a deterministic
    /// (pre-order) order. Empty if `name` is not an entity type.
    pub fn subtree(&self, name: &str) -> Vec<&str> {
        let mut out = Vec::new();
        if self.element(name).map(Element::is_entity_type) != Some(true) {
            return out;
        }
        let mut stack = vec![name];
        while let Some(n) = stack.pop() {
            if let Some(e) = self.element(n) {
                out.push(e.name.as_str());
                let mut kids: Vec<&str> =
                    self.children_of(n).map(|c| c.name.as_str()).collect();
                kids.sort_unstable();
                for k in kids.into_iter().rev() {
                    stack.push(k);
                }
            }
        }
        out
    }

    /// The chain from `name` up to the root of its is-a hierarchy,
    /// inclusive, root last. Detects cycles defensively (construction
    /// prevents them, but schemas can be deserialized).
    pub fn ancestry<'a>(&'a self, name: &'a str) -> Result<Vec<&'a str>, MetamodelError> {
        let mut chain = Vec::new();
        let mut cur = Some(name);
        while let Some(n) = cur {
            if chain.contains(&n) {
                return Err(MetamodelError::InheritanceCycle(n.to_string()));
            }
            if self.element(n).is_none() {
                return Err(MetamodelError::UnknownElement(n.to_string()));
            }
            chain.push(n);
            cur = self.parent_of(n);
        }
        Ok(chain)
    }

    #[allow(clippy::expect_used)] // invariant-backed: see expect messages
    /// All attributes of an entity type, inherited first (root-most first),
    /// then locally declared — the flattened attribute list the instance
    /// layer and ModelGen operate on. For non-entity elements this is just
    /// the declared attribute list.
    pub fn all_attributes(&self, name: &str) -> Result<Vec<Attribute>, MetamodelError> {
        let elem = self
            .element(name)
            .ok_or_else(|| MetamodelError::UnknownElement(name.to_string()))?;
        if !elem.is_entity_type() {
            return Ok(elem.attributes.clone());
        }
        let chain = self.ancestry(name)?;
        let mut out = Vec::new();
        for n in chain.iter().rev() {
            out.extend(self.element(n).expect("ancestry checked").attributes.iter().cloned());
        }
        Ok(out)
    }

    /// Whether entity type `sub` is `sup` or a (transitive) subtype of it.
    pub fn is_subtype(&self, sub: &str, sup: &str) -> bool {
        self.ancestry(sub).map(|c| c.contains(&sup)).unwrap_or(false)
    }

    /// Root entity types (entity types without a parent).
    pub fn roots(&self) -> impl Iterator<Item = &Element> {
        self.elements.iter().filter(|e| {
            matches!(e.kind, ElementKind::EntityType { parent: None })
        })
    }

    /// Total number of attributes over all elements (schema "size" used by
    /// benchmarks and the matcher).
    pub fn attribute_count(&self) -> usize {
        self.elements.iter().map(|e| e.attributes.len()).sum()
    }

    /// The declared key attributes of `element`, if a key constraint
    /// exists for it.
    pub fn declared_key(&self, element: &str) -> Option<&[String]> {
        self.constraints.iter().find_map(|c| match c {
            crate::constraints::Constraint::Key(k) if k.element == element => {
                Some(k.attributes.as_slice())
            }
            _ => None,
        })
    }

    /// The instance-level column layout of element `name`:
    ///
    /// * relations — the declared attributes;
    /// * entity types — the reserved `$type` tag followed by the flattened
    ///   (inherited-first) attributes — the layout the paper's Figure 3
    ///   query constructs with its `CASE WHEN … THEN Employee(…)` branches;
    /// * associations — a binary `($from, $to)` link relation;
    /// * nested collections — `$parent` surrogate, declared attributes,
    ///   and an `$ord` ordinal.
    pub fn instance_layout(&self, name: &str) -> Option<Vec<Attribute>> {
        use crate::types::DataType;
        use crate::TYPE_ATTR;
        let e = self.element(name)?;
        let attrs = match &e.kind {
            ElementKind::Relation => e.attributes.clone(),
            ElementKind::EntityType { .. } => {
                let mut v = vec![Attribute::new(TYPE_ATTR, DataType::Text)];
                v.extend(self.all_attributes(name).ok()?);
                v
            }
            ElementKind::Association { .. } => vec![
                Attribute::new("$from", DataType::Any),
                Attribute::new("$to", DataType::Any),
            ],
            ElementKind::Nested { .. } => {
                let mut v = vec![Attribute::new("$parent", DataType::Any)];
                v.extend(e.attributes.iter().cloned());
                v.push(Attribute::new("$ord", DataType::Int));
                v
            }
        };
        Some(attrs)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schema {} {{", self.name)?;
        for e in &self.elements {
            match &e.kind {
                ElementKind::Relation => write!(f, "  table {}", e.name)?,
                ElementKind::EntityType { parent: None } => write!(f, "  entity {}", e.name)?,
                ElementKind::EntityType { parent: Some(p) } => {
                    write!(f, "  entity {} : {}", e.name, p)?
                }
                ElementKind::Association { from, to, from_card, to_card } => {
                    let card = |c: &Cardinality| match c {
                        Cardinality::One => "1",
                        Cardinality::ZeroOrOne => "?",
                        Cardinality::Many => "*",
                    };
                    write!(
                        f,
                        "  assoc {} ({} {}->{} {})",
                        e.name,
                        from,
                        card(from_card),
                        card(to_card),
                        to
                    )?
                }
                ElementKind::Nested { parent } => {
                    write!(f, "  nested {} in {}", e.name, parent)?
                }
            }
            let attrs: Vec<String> = e
                .attributes
                .iter()
                .map(|a| {
                    if a.nullable {
                        format!("{}: {}?", a.name, a.ty)
                    } else {
                        format!("{}: {}", a.name, a.ty)
                    }
                })
                .collect();
            writeln!(f, "({})", attrs.join(", "))?;
        }
        for c in &self.constraints {
            writeln!(f, "  {c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;

    fn person_schema() -> Schema {
        SchemaBuilder::new("ER")
            .entity("Person", &[("Id", DataType::Int), ("Name", DataType::Text)])
            .entity_sub("Employee", "Person", &[("Dept", DataType::Text)])
            .entity_sub("Customer", "Person", &[("CreditScore", DataType::Int)])
            .build()
            .unwrap()
    }

    #[test]
    fn duplicate_element_rejected() {
        let mut s = Schema::new("S");
        s.add_element(Element {
            name: "R".into(),
            kind: ElementKind::Relation,
            attributes: vec![Attribute::new("a", DataType::Int)],
        })
        .unwrap();
        let err = s
            .add_element(Element {
                name: "R".into(),
                kind: ElementKind::Relation,
                attributes: vec![],
            })
            .unwrap_err();
        assert_eq!(err, MetamodelError::DuplicateElement("R".into()));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let mut s = Schema::new("S");
        let err = s
            .add_element(Element {
                name: "R".into(),
                kind: ElementKind::Relation,
                attributes: vec![
                    Attribute::new("a", DataType::Int),
                    Attribute::new("a", DataType::Text),
                ],
            })
            .unwrap_err();
        assert!(matches!(err, MetamodelError::DuplicateAttribute { .. }));
    }

    #[test]
    fn unknown_parent_rejected() {
        let mut s = Schema::new("S");
        let err = s
            .add_element(Element {
                name: "E".into(),
                kind: ElementKind::EntityType { parent: Some("Nope".into()) },
                attributes: vec![],
            })
            .unwrap_err();
        assert_eq!(err, MetamodelError::UnknownElement("Nope".into()));
    }

    #[test]
    fn relation_cannot_be_parent() {
        let mut s = Schema::new("S");
        s.add_element(Element {
            name: "R".into(),
            kind: ElementKind::Relation,
            attributes: vec![],
        })
        .unwrap();
        let err = s
            .add_element(Element {
                name: "E".into(),
                kind: ElementKind::EntityType { parent: Some("R".into()) },
                attributes: vec![],
            })
            .unwrap_err();
        assert!(matches!(err, MetamodelError::InvalidParent { .. }));
    }

    #[test]
    fn inherited_attributes_flatten_root_first() {
        let s = person_schema();
        let attrs = s.all_attributes("Employee").unwrap();
        let names: Vec<&str> = attrs.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, ["Id", "Name", "Dept"]);
    }

    #[test]
    fn subtree_is_deterministic_preorder() {
        let s = person_schema();
        assert_eq!(s.subtree("Person"), ["Person", "Customer", "Employee"]);
        assert_eq!(s.subtree("Employee"), ["Employee"]);
    }

    #[test]
    fn subtype_checks() {
        let s = person_schema();
        assert!(s.is_subtype("Employee", "Person"));
        assert!(s.is_subtype("Person", "Person"));
        assert!(!s.is_subtype("Person", "Employee"));
        assert!(!s.is_subtype("Employee", "Customer"));
    }

    #[test]
    fn ancestry_root_last() {
        let s = person_schema();
        assert_eq!(s.ancestry("Customer").unwrap(), ["Customer", "Person"]);
    }

    #[test]
    fn remove_element_reindexes() {
        let mut s = person_schema();
        assert!(s.remove_element("Customer").is_some());
        assert!(s.element("Customer").is_none());
        assert!(s.element("Employee").is_some());
        assert_eq!(s.len(), 2);
        // index still consistent
        assert_eq!(s.element("Employee").unwrap().name, "Employee");
    }

    #[test]
    fn roots_only_returns_parentless_entities() {
        let s = person_schema();
        let roots: Vec<&str> = s.roots().map(|e| e.name.as_str()).collect();
        assert_eq!(roots, ["Person"]);
    }

    #[test]
    fn display_renders_hierarchy() {
        let s = person_schema();
        let text = s.to_string();
        assert!(text.contains("entity Employee : Person"));
        assert!(text.contains("Id: int"));
    }
}
