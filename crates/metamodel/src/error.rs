//! Error types for schema construction and profile validation.

use std::fmt;

/// An error raised while constructing or manipulating a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetamodelError {
    /// An element with this name already exists in the schema.
    DuplicateElement(String),
    /// An attribute with this name already exists on the element.
    DuplicateAttribute { element: String, attribute: String },
    /// A referenced element does not exist.
    UnknownElement(String),
    /// A referenced attribute does not exist on the element.
    UnknownAttribute { element: String, attribute: String },
    /// Inheritance edges form a cycle through this element.
    InheritanceCycle(String),
    /// The parent of an entity type is not itself an entity type.
    InvalidParent { child: String, parent: String },
    /// A constraint refers to elements/attributes inconsistently
    /// (e.g. a foreign key with mismatched column counts).
    MalformedConstraint(String),
}

impl fmt::Display for MetamodelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetamodelError::DuplicateElement(n) => write!(f, "duplicate element `{n}`"),
            MetamodelError::DuplicateAttribute { element, attribute } => {
                write!(f, "duplicate attribute `{attribute}` on `{element}`")
            }
            MetamodelError::UnknownElement(n) => write!(f, "unknown element `{n}`"),
            MetamodelError::UnknownAttribute { element, attribute } => {
                write!(f, "unknown attribute `{attribute}` on `{element}`")
            }
            MetamodelError::InheritanceCycle(n) => {
                write!(f, "inheritance cycle through `{n}`")
            }
            MetamodelError::InvalidParent { child, parent } => {
                write!(f, "`{child}` has non-entity parent `{parent}`")
            }
            MetamodelError::MalformedConstraint(msg) => {
                write!(f, "malformed constraint: {msg}")
            }
        }
    }
}

impl std::error::Error for MetamodelError {}

/// A violation found when validating a schema against a metamodel profile.
///
/// Profile validation never fails fast: all violations are collected so a
/// ModelGen pass knows the complete set of constructs to eliminate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The offending element.
    pub element: String,
    /// Human-readable description of why the construct is outside the
    /// profile.
    pub reason: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.element, self.reason)
    }
}
