//! A text format for schemas — the parser for [`Schema`]'s `Display`
//! syntax, so tools can read schemas from files and the repository can
//! exchange them with humans.
//!
//! ```text
//! schema ER {
//!   table Empl(EID: int, Name: text, AID: int)
//!   entity Person(Id: int, Name: text)
//!   entity Employee : Person(Dept: text)
//!   assoc Works (Employee *->1 Person)
//!   nested Items in Empl(qty: int)
//!   key Person(Id)
//!   fk Empl(AID) -> Addr(AID)
//!   incl A(x) <= B(y)
//!   disjoint(Employee, Customer)
//!   covering Person = Employee | Customer
//!   notnull Empl.Name
//! }
//! ```
//!
//! `Display` output parses back to an equal schema (round-trip tested,
//! including by property tests over generated schemas).

use crate::constraints::{Constraint, ForeignKey, InclusionDependency, Key};
use crate::error::MetamodelError;
use crate::schema::{Attribute, Cardinality, Element, ElementKind, Schema};
use crate::types::DataType;
use std::fmt;

/// A parse failure with a line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

fn from_schema_err(line: usize, e: MetamodelError) -> ParseError {
    err(line, e.to_string())
}

/// Parse a schema from its textual form.
pub fn parse_schema(text: &str) -> Result<Schema, ParseError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    // header: schema <name> {
    let (header_no, header) = lines
        .by_ref()
        .find(|(_, l)| !l.is_empty() && !l.starts_with("//"))
        .ok_or_else(|| err(0, "empty input"))?;
    let name = header
        .strip_prefix("schema ")
        .and_then(|rest| rest.strip_suffix('{'))
        .map(str::trim)
        .filter(|n| !n.is_empty())
        .ok_or_else(|| err(header_no, "expected `schema <name> {`"))?;
    let mut schema = Schema::new(name);
    let mut closed = false;
    for (no, line) in lines {
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        if line == "}" {
            closed = true;
            break;
        }
        parse_item(&mut schema, no, line)?;
    }
    if !closed {
        return Err(err(0, "missing closing `}`"));
    }
    Ok(schema)
}

fn parse_item(schema: &mut Schema, no: usize, line: &str) -> Result<(), ParseError> {
    if let Some(rest) = line.strip_prefix("table ") {
        let (name, attrs) = parse_named_attrs(no, rest)?;
        schema
            .add_element(Element { name, kind: ElementKind::Relation, attributes: attrs })
            .map_err(|e| from_schema_err(no, e))
    } else if let Some(rest) = line.strip_prefix("entity ") {
        // entity Name(attrs) | entity Name : Parent(attrs)
        let (head, attrs_src) = split_paren(no, rest)?;
        let (name, parent) = match head.split_once(':') {
            Some((n, p)) => (n.trim().to_string(), Some(p.trim().to_string())),
            None => (head.trim().to_string(), None),
        };
        let attrs = parse_attr_list(no, attrs_src)?;
        schema
            .add_element(Element {
                name,
                kind: ElementKind::EntityType { parent },
                attributes: attrs,
            })
            .map_err(|e| from_schema_err(no, e))
    } else if let Some(rest) = line.strip_prefix("assoc ") {
        // assoc Name (From <c>-><c> To)
        let (name, inner) = split_paren(no, rest)?;
        let parts: Vec<&str> = inner.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(err(no, "expected `assoc Name (From c->c To)`"));
        }
        let (from, arrow, to) = (parts[0], parts[1], parts[2]);
        let (fc, tc) = arrow
            .split_once("->")
            .ok_or_else(|| err(no, "expected `c->c` cardinalities"))?;
        let card = |s: &str| -> Result<Cardinality, ParseError> {
            match s {
                "1" => Ok(Cardinality::One),
                "?" => Ok(Cardinality::ZeroOrOne),
                "*" => Ok(Cardinality::Many),
                other => Err(err(no, format!("unknown cardinality `{other}`"))),
            }
        };
        schema
            .add_element(Element {
                name: name.trim().to_string(),
                kind: ElementKind::Association {
                    from: from.to_string(),
                    to: to.to_string(),
                    from_card: card(fc)?,
                    to_card: card(tc)?,
                },
                attributes: Vec::new(),
            })
            .map_err(|e| from_schema_err(no, e))
    } else if let Some(rest) = line.strip_prefix("nested ") {
        // nested Name in Parent(attrs)
        let (head, attrs_src) = split_paren(no, rest)?;
        let (name, parent) = head
            .split_once(" in ")
            .map(|(n, p)| (n.trim().to_string(), p.trim().to_string()))
            .ok_or_else(|| err(no, "expected `nested Name in Parent(attrs)`"))?;
        let attrs = parse_attr_list(no, attrs_src)?;
        schema
            .add_element(Element {
                name,
                kind: ElementKind::Nested { parent },
                attributes: attrs,
            })
            .map_err(|e| from_schema_err(no, e))
    } else if let Some(rest) = line.strip_prefix("key ") {
        let (element, cols) = split_paren(no, rest)?;
        schema
            .add_constraint(Constraint::Key(Key {
                element: element.trim().to_string(),
                attributes: split_commas(cols),
            }))
            .map_err(|e| from_schema_err(no, e))
    } else if let Some(rest) = line.strip_prefix("fk ") {
        let (from_part, to_part) = rest
            .split_once("->")
            .ok_or_else(|| err(no, "expected `fk A(x) -> B(y)`"))?;
        let (from, from_attrs) = split_paren(no, from_part.trim())?;
        let (to, to_attrs) = split_paren(no, to_part.trim())?;
        schema
            .add_constraint(Constraint::ForeignKey(ForeignKey {
                from: from.trim().to_string(),
                from_attrs: split_commas(from_attrs),
                to: to.trim().to_string(),
                to_attrs: split_commas(to_attrs),
            }))
            .map_err(|e| from_schema_err(no, e))
    } else if let Some(rest) = line.strip_prefix("incl ") {
        let (from_part, to_part) = rest
            .split_once("<=")
            .ok_or_else(|| err(no, "expected `incl A(x) <= B(y)`"))?;
        let (from, from_attrs) = split_paren(no, from_part.trim())?;
        let (to, to_attrs) = split_paren(no, to_part.trim())?;
        schema
            .add_constraint(Constraint::Inclusion(InclusionDependency {
                from: from.trim().to_string(),
                from_attrs: split_commas(from_attrs),
                to: to.trim().to_string(),
                to_attrs: split_commas(to_attrs),
            }))
            .map_err(|e| from_schema_err(no, e))
    } else if let Some(rest) = line.strip_prefix("disjoint") {
        let (_, inner) = split_paren(no, rest)?;
        let parts = split_commas(inner);
        if parts.len() != 2 {
            return Err(err(no, "expected `disjoint(A, B)`"));
        }
        schema
            .add_constraint(Constraint::Disjoint {
                left: parts[0].clone(),
                right: parts[1].clone(),
            })
            .map_err(|e| from_schema_err(no, e))
    } else if let Some(rest) = line.strip_prefix("covering ") {
        let (parent, kids) = rest
            .split_once('=')
            .ok_or_else(|| err(no, "expected `covering P = A | B`"))?;
        schema
            .add_constraint(Constraint::Covering {
                parent: parent.trim().to_string(),
                children: kids.split('|').map(|k| k.trim().to_string()).collect(),
            })
            .map_err(|e| from_schema_err(no, e))
    } else if let Some(rest) = line.strip_prefix("notnull ") {
        let (element, attribute) = rest
            .split_once('.')
            .ok_or_else(|| err(no, "expected `notnull Element.attr`"))?;
        schema
            .add_constraint(Constraint::NotNull {
                element: element.trim().to_string(),
                attribute: attribute.trim().to_string(),
            })
            .map_err(|e| from_schema_err(no, e))
    } else {
        Err(err(no, format!("unrecognized item: `{line}`")))
    }
}

/// Split `Name(...)` into head and the *first balanced* parenthesized
/// body (trailing groups, like the empty attribute list `Display` prints
/// after associations, are ignored).
fn split_paren(no: usize, s: &str) -> Result<(&str, &str), ParseError> {
    let open = s.find('(').ok_or_else(|| err(no, "expected `(`"))?;
    let mut depth = 0usize;
    for (i, ch) in s.char_indices().skip(open) {
        match ch {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Ok((s[..open].trim(), &s[open + 1..i]));
                }
            }
            _ => {}
        }
    }
    Err(err(no, "mismatched parentheses"))
}

fn split_commas(s: &str) -> Vec<String> {
    s.split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(String::from)
        .collect()
}

/// Parse `name(attr: type, attr: type?)`.
fn parse_named_attrs(no: usize, s: &str) -> Result<(String, Vec<Attribute>), ParseError> {
    let (name, body) = split_paren(no, s)?;
    Ok((name.to_string(), parse_attr_list(no, body)?))
}

fn parse_attr_list(no: usize, body: &str) -> Result<Vec<Attribute>, ParseError> {
    let mut out = Vec::new();
    for part in body.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (name, ty) = part
            .split_once(':')
            .ok_or_else(|| err(no, format!("expected `name: type` in `{part}`")))?;
        let ty = ty.trim();
        let (ty, nullable) = match ty.strip_suffix('?') {
            Some(t) => (t.trim(), true),
            None => (ty, false),
        };
        let ty = match ty {
            "int" => DataType::Int,
            "double" => DataType::Double,
            "bool" => DataType::Bool,
            "text" => DataType::Text,
            "date" => DataType::Date,
            "any" => DataType::Any,
            other => return Err(err(no, format!("unknown type `{other}`"))),
        };
        out.push(Attribute { name: name.trim().to_string(), ty, nullable });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;

    const SAMPLE: &str = r#"
schema ER {
  // the paper's running example
  entity Person(Id: int, Name: text)
  entity Employee : Person(Dept: text)
  entity Customer : Person(CreditScore: int, BillingAddr: text?)
  table HR(Id: int, Name: text)
  key Person(Id)
  notnull HR.Name
}
"#;

    #[test]
    fn parses_the_running_example() {
        let s = parse_schema(SAMPLE).unwrap();
        assert_eq!(s.name, "ER");
        assert_eq!(s.len(), 4);
        assert_eq!(s.parent_of("Employee"), Some("Person"));
        assert!(s.element("Customer").unwrap().attribute("BillingAddr").unwrap().nullable);
        assert_eq!(s.constraints.len(), 2);
        assert_eq!(s.declared_key("Person"), Some(&["Id".to_string()][..]));
    }

    #[test]
    fn display_round_trips() {
        let original = SchemaBuilder::new("Mix")
            .relation("T", &[("a", DataType::Int), ("b", DataType::Text)])
            .relation_nullable("U", &[("x", DataType::Double, true)])
            .entity("P", &[("Id", DataType::Int)])
            .entity_sub("E", "P", &[("D", DataType::Date)])
            .association("W", "E", "P", Cardinality::Many, Cardinality::One)
            .nested("Items", "T", &[("qty", DataType::Int)])
            .key("P", &["Id"])
            .foreign_key("T", &["a"], "U", &["x"])
            .constraint(Constraint::Disjoint { left: "E".into(), right: "P".into() })
            .constraint(Constraint::Covering { parent: "P".into(), children: vec!["E".into()] })
            .constraint(Constraint::NotNull { element: "T".into(), attribute: "b".into() })
            .constraint(Constraint::Inclusion(InclusionDependency {
                from: "T".into(),
                from_attrs: vec!["a".into()],
                to: "U".into(),
                to_attrs: vec!["x".into()],
            }))
            .build()
            .unwrap();
        let text = original.to_string();
        let parsed = parse_schema(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(parsed, original, "\n{text}");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "schema X {\n  table T(a: int)\n  wibble\n}";
        let e = parse_schema(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("unrecognized"));
    }

    #[test]
    fn unknown_type_rejected() {
        let bad = "schema X {\n  table T(a: varchar)\n}";
        let e = parse_schema(bad).unwrap_err();
        assert!(e.message.contains("unknown type"));
    }

    #[test]
    fn missing_brace_rejected() {
        let bad = "schema X {\n  table T(a: int)\n";
        assert!(parse_schema(bad).is_err());
    }

    #[test]
    fn duplicate_element_surfaces_schema_error() {
        let bad = "schema X {\n  table T(a: int)\n  table T(b: int)\n}";
        let e = parse_schema(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn empty_attribute_lists_allowed() {
        let s = parse_schema("schema X {\n  entity E()\n}").unwrap();
        assert!(s.element("E").unwrap().attributes.is_empty());
    }
}
