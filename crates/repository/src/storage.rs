//! The storage abstraction under the durable repository.
//!
//! `crates/repository` never touches the filesystem directly: the WAL and
//! snapshot layers (`wal.rs`, `store.rs`) speak to a [`Storage`] — a tiny
//! file-system-shaped trait with exactly the operations the recovery
//! protocol needs (whole-file read, append, atomic replace-by-rename,
//! delete, truncate). Two implementations ship here:
//!
//! * [`MemStorage`] — an in-memory file map, the default backing for
//!   tests, benches, and embedded use. Deterministic and cheap enough
//!   to reopen thousands of times in the crash-recovery property suite.
//! * [`FaultStorage`] — a wrapper that injects the failure modes real
//!   disks exhibit: hard I/O errors, *torn writes* (an append or write
//!   that persists only a prefix before the crash), partial flushes at
//!   a chosen total byte offset, and failures of the rename/delete
//!   steps inside the snapshot-swap protocol. Once a fault trips, the
//!   storage is *crashed*: every later operation fails, and the
//!   underlying [`MemStorage`] holds exactly the bytes a machine would
//!   find on disk after power loss — reopening a repository over it is
//!   a faithful crash-recovery simulation.
//!
//! The trait is object-safe: the repository holds an `Arc<dyn Storage>`,
//! so a process can layer fault injection (or, later, a real
//! filesystem/remote backend) without touching repository code.

use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A storage-layer failure, carrying the file and operation context so
/// recovery tooling can report *where* the fault hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A read/write/rename/delete failed (injected or real).
    Io { file: String, what: String },
    /// The storage crashed mid-operation: a previous fault tripped and
    /// every subsequent operation is refused, like a dead disk.
    Crashed { file: String },
}

impl StorageError {
    pub fn io(file: impl Into<String>, what: impl Into<String>) -> Self {
        StorageError::Io { file: file.into(), what: what.into() }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { file, what } => write!(f, "storage I/O error on `{file}`: {what}"),
            StorageError::Crashed { file } => {
                write!(f, "storage crashed: operation on `{file}` after a fatal fault")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<StorageError> for mm_guard::ExecError {
    fn from(e: StorageError) -> Self {
        mm_guard::ExecError::io(e.to_string())
    }
}

/// The file-system-shaped contract the durable repository builds on.
///
/// Semantics the recovery protocol relies on:
/// * `write` replaces the whole file (creating it if absent) — but is
///   **not** assumed atomic: a crash can leave a prefix. Atomicity comes
///   from `write` to a temporary name followed by `rename`.
/// * `append` extends a file (creating it if absent) — also tearable.
/// * `rename` is **atomic**: after a crash the destination holds either
///   its old content or the complete new content, never a mix. This is
///   the same contract POSIX `rename(2)` gives and is the only atomic
///   primitive the snapshot-swap protocol needs.
/// * `delete` and `truncate` are idempotent; deleting a missing file is
///   not an error.
pub trait Storage: Send + Sync {
    /// Read the whole file; `None` if it does not exist.
    fn read(&self, file: &str) -> Result<Option<Bytes>, StorageError>;
    /// Create or replace the whole file. Not assumed atomic.
    fn write(&self, file: &str, data: &[u8]) -> Result<(), StorageError>;
    /// Append to the file, creating it if absent. Not assumed atomic.
    fn append(&self, file: &str, data: &[u8]) -> Result<(), StorageError>;
    /// Atomically replace `to` with `from` (which ceases to exist).
    fn rename(&self, from: &str, to: &str) -> Result<(), StorageError>;
    /// Remove the file; succeeds if it does not exist.
    fn delete(&self, file: &str) -> Result<(), StorageError>;
    /// Shrink the file to `len` bytes (no-op if already shorter or absent).
    fn truncate(&self, file: &str, len: usize) -> Result<(), StorageError>;
}

/// In-memory [`Storage`]: a mutex-guarded map of file name to bytes.
#[derive(Default)]
pub struct MemStorage {
    files: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemStorage {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Snapshot of the current file map — the "disk image" the crash
    /// suite inspects and replays from.
    pub fn dump(&self) -> BTreeMap<String, Vec<u8>> {
        self.files.lock().clone()
    }

    /// Build a storage pre-loaded with a file map (e.g. a captured
    /// crash image).
    pub fn from_files(files: BTreeMap<String, Vec<u8>>) -> Arc<Self> {
        Arc::new(MemStorage { files: Mutex::new(files) })
    }

    /// Length of a file, `None` if absent — test/bench observability.
    pub fn len_of(&self, file: &str) -> Option<usize> {
        self.files.lock().get(file).map(Vec::len)
    }
}

impl Storage for MemStorage {
    fn read(&self, file: &str) -> Result<Option<Bytes>, StorageError> {
        Ok(self.files.lock().get(file).map(|v| Bytes::from(v.clone())))
    }

    fn write(&self, file: &str, data: &[u8]) -> Result<(), StorageError> {
        self.files.lock().insert(file.to_string(), data.to_vec());
        Ok(())
    }

    fn append(&self, file: &str, data: &[u8]) -> Result<(), StorageError> {
        self.files.lock().entry(file.to_string()).or_default().extend_from_slice(data);
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), StorageError> {
        let mut files = self.files.lock();
        match files.remove(from) {
            Some(v) => {
                files.insert(to.to_string(), v);
                Ok(())
            }
            None => Err(StorageError::io(from, "rename source does not exist")),
        }
    }

    fn delete(&self, file: &str) -> Result<(), StorageError> {
        self.files.lock().remove(file);
        Ok(())
    }

    fn truncate(&self, file: &str, len: usize) -> Result<(), StorageError> {
        if let Some(v) = self.files.lock().get_mut(file) {
            if v.len() > len {
                v.truncate(len);
            }
        }
        Ok(())
    }
}

/// Which snapshot-swap step a [`FaultPlan`] should fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    Rename,
    Delete,
    Truncate,
    Read,
}

/// A deterministic fault schedule for [`FaultStorage`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Total bytes (across `write`/`append`) that persist before the
    /// crash. The operation that crosses the budget persists exactly the
    /// remaining prefix — a torn write / partial flush — then the
    /// storage is crashed.
    pub byte_budget: Option<u64>,
    /// Crash on the nth (0-based) occurrence of the given operation,
    /// *before* it takes effect (the atomic-rename contract: a crashed
    /// rename never half-happens).
    pub fail_op: Option<(FaultOp, u64)>,
}

impl FaultPlan {
    /// Crash after exactly `n` persisted bytes.
    pub fn crash_after_bytes(n: u64) -> Self {
        FaultPlan { byte_budget: Some(n), fail_op: None }
    }

    /// Crash at the nth occurrence of `op`.
    pub fn crash_at(op: FaultOp, n: u64) -> Self {
        FaultPlan { byte_budget: None, fail_op: Some((op, n)) }
    }
}

struct FaultState {
    bytes_remaining: Option<u64>,
    fail_op: Option<(FaultOp, u64)>,
    op_counts: BTreeMap<&'static str, u64>,
    crashed: bool,
}

/// Fault-injecting [`Storage`] wrapper. See the module docs for the
/// failure model; after a fault trips, the wrapped storage holds the
/// simulated on-disk state at crash time.
pub struct FaultStorage {
    inner: Arc<dyn Storage>,
    state: Mutex<FaultState>,
}

impl FaultStorage {
    pub fn new(inner: Arc<dyn Storage>, plan: FaultPlan) -> Arc<Self> {
        Arc::new(FaultStorage {
            inner,
            state: Mutex::new(FaultState {
                bytes_remaining: plan.byte_budget,
                fail_op: plan.fail_op,
                op_counts: BTreeMap::new(),
                crashed: false,
            }),
        })
    }

    /// Has a fault tripped yet?
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    fn guard(&self, file: &str) -> Result<(), StorageError> {
        if self.state.lock().crashed {
            Err(StorageError::Crashed { file: file.to_string() })
        } else {
            Ok(())
        }
    }

    /// Charge `data.len()` bytes against the budget; returns how many
    /// bytes actually persist (the torn prefix), or the full length.
    fn charge(&self, len: usize) -> (usize, bool) {
        let mut st = self.state.lock();
        match &mut st.bytes_remaining {
            Some(rem) => {
                if (len as u64) <= *rem {
                    *rem -= len as u64;
                    (len, false)
                } else {
                    let keep = *rem as usize;
                    *rem = 0;
                    st.crashed = true;
                    (keep, true)
                }
            }
            None => (len, false),
        }
    }

    fn check_op(&self, op: FaultOp, file: &str) -> Result<(), StorageError> {
        let mut st = self.state.lock();
        let key = match op {
            FaultOp::Rename => "rename",
            FaultOp::Delete => "delete",
            FaultOp::Truncate => "truncate",
            FaultOp::Read => "read",
        };
        let count = st.op_counts.entry(key).or_insert(0);
        let this = *count;
        *count += 1;
        if let Some((fop, n)) = st.fail_op {
            if fop == op && this == n {
                st.crashed = true;
                return Err(StorageError::io(file, format!("injected fault on {key} #{n}")));
            }
        }
        Ok(())
    }
}

impl Storage for FaultStorage {
    fn read(&self, file: &str) -> Result<Option<Bytes>, StorageError> {
        self.guard(file)?;
        self.check_op(FaultOp::Read, file)?;
        self.inner.read(file)
    }

    fn write(&self, file: &str, data: &[u8]) -> Result<(), StorageError> {
        self.guard(file)?;
        let (keep, torn) = self.charge(data.len());
        if torn {
            // the torn prefix persists — a partially flushed new file
            self.inner.write(file, &data[..keep])?;
            return Err(StorageError::io(
                file,
                format!("torn write: {keep} of {} bytes persisted", data.len()),
            ));
        }
        self.inner.write(file, data)
    }

    fn append(&self, file: &str, data: &[u8]) -> Result<(), StorageError> {
        self.guard(file)?;
        let (keep, torn) = self.charge(data.len());
        if torn {
            self.inner.append(file, &data[..keep])?;
            return Err(StorageError::io(
                file,
                format!("torn append: {keep} of {} bytes persisted", data.len()),
            ));
        }
        self.inner.append(file, data)
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), StorageError> {
        self.guard(from)?;
        self.check_op(FaultOp::Rename, from)?;
        self.inner.rename(from, to)
    }

    fn delete(&self, file: &str) -> Result<(), StorageError> {
        self.guard(file)?;
        self.check_op(FaultOp::Delete, file)?;
        self.inner.delete(file)
    }

    fn truncate(&self, file: &str, len: usize) -> Result<(), StorageError> {
        self.guard(file)?;
        self.check_op(FaultOp::Truncate, file)?;
        self.inner.truncate(file, len)
    }
}

/// A [`mm_telemetry::LineSink`] over a [`Storage`] file: the adapter
/// that lets a `JsonLinesCollector` persist telemetry events through
/// the same storage abstraction (and fault injection) the repository's
/// WAL uses. Each line is appended with a trailing newline.
pub struct StorageLineSink {
    storage: Arc<dyn Storage>,
    file: String,
}

impl StorageLineSink {
    pub fn new(storage: Arc<dyn Storage>, file: impl Into<String>) -> Arc<Self> {
        Arc::new(StorageLineSink { storage, file: file.into() })
    }

    /// The file events append to.
    pub fn file(&self) -> &str {
        &self.file
    }
}

impl mm_telemetry::LineSink for StorageLineSink {
    fn append_line(&self, line: &str) -> Result<(), String> {
        let mut bytes = Vec::with_capacity(line.len() + 1);
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
        self.storage.append(&self.file, &bytes).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_round_trips() {
        let s = MemStorage::new();
        assert_eq!(s.read("a").unwrap(), None);
        s.write("a", b"hello").unwrap();
        s.append("a", b" world").unwrap();
        assert_eq!(s.read("a").unwrap().unwrap().as_ref(), b"hello world");
        s.truncate("a", 5).unwrap();
        assert_eq!(s.read("a").unwrap().unwrap().as_ref(), b"hello");
        s.rename("a", "b").unwrap();
        assert_eq!(s.read("a").unwrap(), None);
        assert_eq!(s.read("b").unwrap().unwrap().as_ref(), b"hello");
        s.delete("b").unwrap();
        s.delete("b").unwrap(); // idempotent
        assert_eq!(s.read("b").unwrap(), None);
    }

    #[test]
    fn byte_budget_tears_the_crossing_write() {
        let mem = MemStorage::new();
        let faulty = FaultStorage::new(mem.clone(), FaultPlan::crash_after_bytes(7));
        faulty.append("log", b"aaaa").unwrap(); // 4 of 7
        let err = faulty.append("log", b"bbbb").unwrap_err(); // crosses at 7
        assert!(matches!(err, StorageError::Io { .. }), "{err}");
        assert!(faulty.crashed());
        // the torn prefix persisted: 4 + 3 bytes
        assert_eq!(mem.read("log").unwrap().unwrap().as_ref(), b"aaaabbb");
        // everything afterwards is refused
        assert!(matches!(faulty.read("log"), Err(StorageError::Crashed { .. })));
        assert!(matches!(faulty.append("log", b"x"), Err(StorageError::Crashed { .. })));
    }

    #[test]
    fn op_faults_trip_before_taking_effect() {
        let mem = MemStorage::new();
        mem.write("a", b"1").unwrap();
        let faulty = FaultStorage::new(mem.clone(), FaultPlan::crash_at(FaultOp::Rename, 0));
        assert!(faulty.rename("a", "b").is_err());
        // the rename never happened — atomic contract
        assert_eq!(mem.read("a").unwrap().unwrap().as_ref(), b"1");
        assert_eq!(mem.read("b").unwrap(), None);
    }
}
