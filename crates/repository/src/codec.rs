//! A compact, self-contained binary codec for repository snapshots.
//!
//! Hand-rolled (no external serialization format is available in the
//! dependency budget): length-prefixed, little-endian, with one-byte tags
//! for enums. Every encodable type has a matching decoder; round-trip
//! property tests live at the bottom of the module.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use mm_expr::{
    AggFunc, AggSpec, Atom, CmpOp, Correspondence, CorrespondenceSet, Expr, Func, Lit, Mapping,
    MappingConstraint, PathRef, Predicate, Scalar, SoClause, SoTgd, Term, Tgd, ViewDef,
    ViewSet,
};
use mm_instance::{Database, RelSchema, Relation, Tuple, Value};
use mm_metamodel::{
    Attribute, Cardinality, Constraint, DataType, Element, ElementKind, ForeignKey,
    InclusionDependency, Key, Schema,
};
use std::fmt;

/// Decoding error: the snapshot is truncated or contains an unknown tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

pub type DecodeResult<T> = Result<T, DecodeError>;

/// CRC32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) checksum — guards every WAL frame and snapshot body
/// against torn writes and bit rot. Hand-rolled because no checksum
/// crate is in the dependency budget.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Byte writer.
pub struct Writer {
    buf: BytesMut,
}

impl Default for Writer {
    fn default() -> Self {
        Self::new()
    }
}

impl Writer {
    pub fn new() -> Self {
        Writer { buf: BytesMut::with_capacity(4096) }
    }

    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }

    pub fn i32(&mut self, v: i32) {
        self.buf.put_i32_le(v);
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.put_u8(v as u8);
    }

    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.put_slice(s.as_bytes());
    }

    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.u32(items.len() as u32);
        for it in items {
            f(self, it);
        }
    }
}

/// Byte reader.
pub struct Reader {
    buf: Bytes,
}

impl Reader {
    pub fn new(buf: Bytes) -> Self {
        Reader { buf }
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn need(&self, n: usize) -> DecodeResult<()> {
        if self.buf.remaining() < n {
            Err(DecodeError(format!("truncated: need {n}, have {}", self.buf.remaining())))
        } else {
            Ok(())
        }
    }

    pub fn u8(&mut self) -> DecodeResult<u8> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    pub fn u32(&mut self) -> DecodeResult<u32> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    pub fn u64(&mut self) -> DecodeResult<u64> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    pub fn i64(&mut self) -> DecodeResult<i64> {
        self.need(8)?;
        Ok(self.buf.get_i64_le())
    }

    pub fn i32(&mut self) -> DecodeResult<i32> {
        self.need(4)?;
        Ok(self.buf.get_i32_le())
    }

    pub fn f64(&mut self) -> DecodeResult<f64> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    pub fn bool(&mut self) -> DecodeResult<bool> {
        Ok(self.u8()? != 0)
    }

    pub fn str(&mut self) -> DecodeResult<String> {
        // the same pre-allocation bound as `seq`: the length prefix must
        // fit in the remaining buffer before any allocation happens, so
        // an adversarial prefix cannot trigger an oversized allocation
        let n = self.seq_len()?;
        let bytes = self.buf.copy_to_bytes(n);
        String::from_utf8(bytes.to_vec()).map_err(|e| DecodeError(e.to_string()))
    }

    /// Read a `u32` length prefix, bounded by the remaining buffer —
    /// element encodings take at least one byte, so any honest length
    /// fits. Every decoder that pre-allocates from a length prefix goes
    /// through this, capping `Vec::with_capacity` at the buffer size.
    pub fn seq_len(&mut self) -> DecodeResult<usize> {
        let n = self.u32()? as usize;
        if n > self.buf.remaining() {
            return Err(DecodeError(format!(
                "length {n} exceeds remaining buffer ({})",
                self.buf.remaining()
            )));
        }
        Ok(n)
    }

    pub fn seq<T>(&mut self, mut f: impl FnMut(&mut Self) -> DecodeResult<T>) -> DecodeResult<Vec<T>> {
        let n = self.seq_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

/// Types encodable into a snapshot.
pub trait Encode {
    fn encode(&self, w: &mut Writer);
}

/// Types decodable from a snapshot.
pub trait Decode: Sized {
    fn decode(r: &mut Reader) -> DecodeResult<Self>;
}

fn bad_tag(what: &str, tag: u8) -> DecodeError {
    DecodeError(format!("unknown {what} tag {tag}"))
}

// --- metamodel ------------------------------------------------------------

impl Encode for DataType {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            DataType::Int => 0,
            DataType::Double => 1,
            DataType::Bool => 2,
            DataType::Text => 3,
            DataType::Date => 4,
            DataType::Any => 5,
        });
    }
}

impl Decode for DataType {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        Ok(match r.u8()? {
            0 => DataType::Int,
            1 => DataType::Double,
            2 => DataType::Bool,
            3 => DataType::Text,
            4 => DataType::Date,
            5 => DataType::Any,
            t => return Err(bad_tag("DataType", t)),
        })
    }
}

impl Encode for Attribute {
    fn encode(&self, w: &mut Writer) {
        w.str(&self.name);
        self.ty.encode(w);
        w.bool(self.nullable);
    }
}

impl Decode for Attribute {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        Ok(Attribute {
            name: r.str()?,
            ty: DataType::decode(r)?,
            nullable: r.bool()?,
        })
    }
}

impl Encode for Cardinality {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            Cardinality::One => 0,
            Cardinality::ZeroOrOne => 1,
            Cardinality::Many => 2,
        });
    }
}

impl Decode for Cardinality {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        Ok(match r.u8()? {
            0 => Cardinality::One,
            1 => Cardinality::ZeroOrOne,
            2 => Cardinality::Many,
            t => return Err(bad_tag("Cardinality", t)),
        })
    }
}

impl Encode for ElementKind {
    fn encode(&self, w: &mut Writer) {
        match self {
            ElementKind::Relation => w.u8(0),
            ElementKind::EntityType { parent } => {
                w.u8(1);
                match parent {
                    Some(p) => {
                        w.bool(true);
                        w.str(p);
                    }
                    None => w.bool(false),
                }
            }
            ElementKind::Association { from, to, from_card, to_card } => {
                w.u8(2);
                w.str(from);
                w.str(to);
                from_card.encode(w);
                to_card.encode(w);
            }
            ElementKind::Nested { parent } => {
                w.u8(3);
                w.str(parent);
            }
        }
    }
}

impl Decode for ElementKind {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        Ok(match r.u8()? {
            0 => ElementKind::Relation,
            1 => {
                let parent = if r.bool()? { Some(r.str()?) } else { None };
                ElementKind::EntityType { parent }
            }
            2 => ElementKind::Association {
                from: r.str()?,
                to: r.str()?,
                from_card: Cardinality::decode(r)?,
                to_card: Cardinality::decode(r)?,
            },
            3 => ElementKind::Nested { parent: r.str()? },
            t => return Err(bad_tag("ElementKind", t)),
        })
    }
}

impl Encode for Constraint {
    fn encode(&self, w: &mut Writer) {
        match self {
            Constraint::Key(k) => {
                w.u8(0);
                w.str(&k.element);
                w.seq(&k.attributes, |w, a| w.str(a));
            }
            Constraint::ForeignKey(fk) => {
                w.u8(1);
                w.str(&fk.from);
                w.seq(&fk.from_attrs, |w, a| w.str(a));
                w.str(&fk.to);
                w.seq(&fk.to_attrs, |w, a| w.str(a));
            }
            Constraint::Inclusion(i) => {
                w.u8(2);
                w.str(&i.from);
                w.seq(&i.from_attrs, |w, a| w.str(a));
                w.str(&i.to);
                w.seq(&i.to_attrs, |w, a| w.str(a));
            }
            Constraint::Disjoint { left, right } => {
                w.u8(3);
                w.str(left);
                w.str(right);
            }
            Constraint::Covering { parent, children } => {
                w.u8(4);
                w.str(parent);
                w.seq(children, |w, c| w.str(c));
            }
            Constraint::NotNull { element, attribute } => {
                w.u8(5);
                w.str(element);
                w.str(attribute);
            }
        }
    }
}

impl Decode for Constraint {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        Ok(match r.u8()? {
            0 => Constraint::Key(Key {
                element: r.str()?,
                attributes: r.seq(Reader::str)?,
            }),
            1 => Constraint::ForeignKey(ForeignKey {
                from: r.str()?,
                from_attrs: r.seq(Reader::str)?,
                to: r.str()?,
                to_attrs: r.seq(Reader::str)?,
            }),
            2 => Constraint::Inclusion(InclusionDependency {
                from: r.str()?,
                from_attrs: r.seq(Reader::str)?,
                to: r.str()?,
                to_attrs: r.seq(Reader::str)?,
            }),
            3 => Constraint::Disjoint { left: r.str()?, right: r.str()? },
            4 => Constraint::Covering {
                parent: r.str()?,
                children: r.seq(Reader::str)?,
            },
            5 => Constraint::NotNull { element: r.str()?, attribute: r.str()? },
            t => return Err(bad_tag("Constraint", t)),
        })
    }
}

impl Encode for Schema {
    fn encode(&self, w: &mut Writer) {
        w.str(&self.name);
        let elements: Vec<&Element> = self.elements().collect();
        w.u32(elements.len() as u32);
        for e in elements {
            w.str(&e.name);
            e.kind.encode(w);
            w.seq(&e.attributes, |w, a| a.encode(w));
        }
        w.seq(&self.constraints, |w, c| c.encode(w));
    }
}

impl Decode for Schema {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        let name = r.str()?;
        let mut schema = Schema::new(name);
        let n = r.u32()? as usize;
        for _ in 0..n {
            let name = r.str()?;
            let kind = ElementKind::decode(r)?;
            let attributes = r.seq(Attribute::decode)?;
            schema
                .add_element(Element { name, kind, attributes })
                .map_err(|e| DecodeError(e.to_string()))?;
        }
        for c in r.seq(Constraint::decode)? {
            schema.add_constraint(c).map_err(|e| DecodeError(e.to_string()))?;
        }
        Ok(schema)
    }
}

// --- expressions -----------------------------------------------------------

impl Encode for Lit {
    fn encode(&self, w: &mut Writer) {
        match self {
            Lit::Int(v) => {
                w.u8(0);
                w.i64(*v);
            }
            Lit::Double(v) => {
                w.u8(1);
                w.f64(*v);
            }
            Lit::Bool(v) => {
                w.u8(2);
                w.bool(*v);
            }
            Lit::Text(v) => {
                w.u8(3);
                w.str(v);
            }
            Lit::Date(v) => {
                w.u8(4);
                w.i32(*v);
            }
            Lit::Null => w.u8(5),
        }
    }
}

impl Decode for Lit {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        Ok(match r.u8()? {
            0 => Lit::Int(r.i64()?),
            1 => Lit::Double(r.f64()?),
            2 => Lit::Bool(r.bool()?),
            3 => Lit::Text(r.str()?),
            4 => Lit::Date(r.i32()?),
            5 => Lit::Null,
            t => return Err(bad_tag("Lit", t)),
        })
    }
}

impl Encode for Func {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            Func::Concat => 0,
            Func::Add => 1,
            Func::Sub => 2,
            Func::Mul => 3,
            Func::Coalesce => 4,
            Func::Upper => 5,
            Func::Lower => 6,
        });
    }
}

impl Decode for Func {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        Ok(match r.u8()? {
            0 => Func::Concat,
            1 => Func::Add,
            2 => Func::Sub,
            3 => Func::Mul,
            4 => Func::Coalesce,
            5 => Func::Upper,
            6 => Func::Lower,
            t => return Err(bad_tag("Func", t)),
        })
    }
}

impl Encode for CmpOp {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            CmpOp::Eq => 0,
            CmpOp::Ne => 1,
            CmpOp::Lt => 2,
            CmpOp::Le => 3,
            CmpOp::Gt => 4,
            CmpOp::Ge => 5,
        });
    }
}

impl Decode for CmpOp {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        Ok(match r.u8()? {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Lt,
            3 => CmpOp::Le,
            4 => CmpOp::Gt,
            5 => CmpOp::Ge,
            t => return Err(bad_tag("CmpOp", t)),
        })
    }
}

impl Encode for Scalar {
    fn encode(&self, w: &mut Writer) {
        match self {
            Scalar::Col(c) => {
                w.u8(0);
                w.str(c);
            }
            Scalar::Lit(l) => {
                w.u8(1);
                l.encode(w);
            }
            Scalar::Func(f, args) => {
                w.u8(2);
                f.encode(w);
                w.seq(args, |w, a| a.encode(w));
            }
            Scalar::Case { branches, otherwise } => {
                w.u8(3);
                w.u32(branches.len() as u32);
                for (p, s) in branches {
                    p.encode(w);
                    s.encode(w);
                }
                otherwise.encode(w);
            }
        }
    }
}

impl Decode for Scalar {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        Ok(match r.u8()? {
            0 => Scalar::Col(r.str()?),
            1 => Scalar::Lit(Lit::decode(r)?),
            2 => Scalar::Func(Func::decode(r)?, r.seq(Scalar::decode)?),
            3 => {
                let n = r.seq_len()?;
                let mut branches = Vec::with_capacity(n);
                for _ in 0..n {
                    branches.push((Predicate::decode(r)?, Scalar::decode(r)?));
                }
                Scalar::Case { branches, otherwise: Box::new(Scalar::decode(r)?) }
            }
            t => return Err(bad_tag("Scalar", t)),
        })
    }
}

impl Encode for Predicate {
    fn encode(&self, w: &mut Writer) {
        match self {
            Predicate::Cmp { op, left, right } => {
                w.u8(0);
                op.encode(w);
                left.encode(w);
                right.encode(w);
            }
            Predicate::And(a, b) => {
                w.u8(1);
                a.encode(w);
                b.encode(w);
            }
            Predicate::Or(a, b) => {
                w.u8(2);
                a.encode(w);
                b.encode(w);
            }
            Predicate::Not(p) => {
                w.u8(3);
                p.encode(w);
            }
            Predicate::IsNull(s) => {
                w.u8(4);
                s.encode(w);
            }
            Predicate::IsOf { ty, only } => {
                w.u8(5);
                w.str(ty);
                w.bool(*only);
            }
            Predicate::True => w.u8(6),
            Predicate::False => w.u8(7),
        }
    }
}

impl Decode for Predicate {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        Ok(match r.u8()? {
            0 => Predicate::Cmp {
                op: CmpOp::decode(r)?,
                left: Scalar::decode(r)?,
                right: Scalar::decode(r)?,
            },
            1 => Predicate::And(Box::new(Predicate::decode(r)?), Box::new(Predicate::decode(r)?)),
            2 => Predicate::Or(Box::new(Predicate::decode(r)?), Box::new(Predicate::decode(r)?)),
            3 => Predicate::Not(Box::new(Predicate::decode(r)?)),
            4 => Predicate::IsNull(Scalar::decode(r)?),
            5 => Predicate::IsOf { ty: r.str()?, only: r.bool()? },
            6 => Predicate::True,
            7 => Predicate::False,
            t => return Err(bad_tag("Predicate", t)),
        })
    }
}

fn encode_pairs(w: &mut Writer, pairs: &[(String, String)]) {
    w.u32(pairs.len() as u32);
    for (a, b) in pairs {
        w.str(a);
        w.str(b);
    }
}

fn decode_pairs(r: &mut Reader) -> DecodeResult<Vec<(String, String)>> {
    let n = r.seq_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((r.str()?, r.str()?));
    }
    Ok(out)
}

impl Encode for Expr {
    fn encode(&self, w: &mut Writer) {
        match self {
            Expr::Base(n) => {
                w.u8(0);
                w.str(n);
            }
            Expr::Literal { columns, rows } => {
                w.u8(1);
                w.seq(columns, |w, c| w.str(c));
                w.u32(rows.len() as u32);
                for row in rows {
                    w.seq(row, |w, l| l.encode(w));
                }
            }
            Expr::Project { input, columns } => {
                w.u8(2);
                input.encode(w);
                w.seq(columns, |w, c| w.str(c));
            }
            Expr::Select { input, predicate } => {
                w.u8(3);
                input.encode(w);
                predicate.encode(w);
            }
            Expr::Join { left, right, on } => {
                w.u8(4);
                left.encode(w);
                right.encode(w);
                encode_pairs(w, on);
            }
            Expr::LeftJoin { left, right, on } => {
                w.u8(5);
                left.encode(w);
                right.encode(w);
                encode_pairs(w, on);
            }
            Expr::Product { left, right } => {
                w.u8(6);
                left.encode(w);
                right.encode(w);
            }
            Expr::Union { left, right, all } => {
                w.u8(7);
                left.encode(w);
                right.encode(w);
                w.bool(*all);
            }
            Expr::Diff { left, right } => {
                w.u8(8);
                left.encode(w);
                right.encode(w);
            }
            Expr::Rename { input, renames } => {
                w.u8(9);
                input.encode(w);
                encode_pairs(w, renames);
            }
            Expr::Extend { input, column, scalar } => {
                w.u8(10);
                input.encode(w);
                w.str(column);
                scalar.encode(w);
            }
            Expr::Distinct { input } => {
                w.u8(11);
                input.encode(w);
            }
            Expr::Aggregate { input, group_by, aggregates } => {
                w.u8(12);
                input.encode(w);
                w.seq(group_by, |w, g| w.str(g));
                w.u32(aggregates.len() as u32);
                for a in aggregates {
                    w.u8(match a.func {
                        AggFunc::Count => 0,
                        AggFunc::Sum => 1,
                        AggFunc::Min => 2,
                        AggFunc::Max => 3,
                        AggFunc::Avg => 4,
                    });
                    match &a.column {
                        Some(c) => {
                            w.bool(true);
                            w.str(c);
                        }
                        None => w.bool(false),
                    }
                    w.str(&a.output);
                }
            }
        }
    }
}

impl Decode for Expr {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        Ok(match r.u8()? {
            0 => Expr::Base(r.str()?),
            1 => {
                let columns = r.seq(Reader::str)?;
                let n = r.seq_len()?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(r.seq(Lit::decode)?);
                }
                Expr::Literal { columns, rows }
            }
            2 => Expr::Project {
                input: Box::new(Expr::decode(r)?),
                columns: r.seq(Reader::str)?,
            },
            3 => Expr::Select {
                input: Box::new(Expr::decode(r)?),
                predicate: Predicate::decode(r)?,
            },
            4 => Expr::Join {
                left: Box::new(Expr::decode(r)?),
                right: Box::new(Expr::decode(r)?),
                on: decode_pairs(r)?,
            },
            5 => Expr::LeftJoin {
                left: Box::new(Expr::decode(r)?),
                right: Box::new(Expr::decode(r)?),
                on: decode_pairs(r)?,
            },
            6 => Expr::Product {
                left: Box::new(Expr::decode(r)?),
                right: Box::new(Expr::decode(r)?),
            },
            7 => Expr::Union {
                left: Box::new(Expr::decode(r)?),
                right: Box::new(Expr::decode(r)?),
                all: r.bool()?,
            },
            8 => Expr::Diff {
                left: Box::new(Expr::decode(r)?),
                right: Box::new(Expr::decode(r)?),
            },
            9 => Expr::Rename {
                input: Box::new(Expr::decode(r)?),
                renames: decode_pairs(r)?,
            },
            10 => Expr::Extend {
                input: Box::new(Expr::decode(r)?),
                column: r.str()?,
                scalar: Scalar::decode(r)?,
            },
            11 => Expr::Distinct { input: Box::new(Expr::decode(r)?) },
            12 => {
                let input = Box::new(Expr::decode(r)?);
                let group_by = r.seq(Reader::str)?;
                let n = r.seq_len()?;
                let mut aggregates = Vec::with_capacity(n);
                for _ in 0..n {
                    let func = match r.u8()? {
                        0 => AggFunc::Count,
                        1 => AggFunc::Sum,
                        2 => AggFunc::Min,
                        3 => AggFunc::Max,
                        4 => AggFunc::Avg,
                        t => return Err(bad_tag("AggFunc", t)),
                    };
                    let column = if r.bool()? { Some(r.str()?) } else { None };
                    let output = r.str()?;
                    aggregates.push(AggSpec { func, column, output });
                }
                Expr::Aggregate { input, group_by, aggregates }
            }
            t => return Err(bad_tag("Expr", t)),
        })
    }
}

// --- logic ------------------------------------------------------------------

impl Encode for Term {
    fn encode(&self, w: &mut Writer) {
        match self {
            Term::Var(v) => {
                w.u8(0);
                w.str(v);
            }
            Term::Const(l) => {
                w.u8(1);
                l.encode(w);
            }
            Term::Func(f, args) => {
                w.u8(2);
                w.str(f);
                w.seq(args, |w, a| a.encode(w));
            }
        }
    }
}

impl Decode for Term {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        Ok(match r.u8()? {
            0 => Term::Var(r.str()?),
            1 => Term::Const(Lit::decode(r)?),
            2 => Term::Func(r.str()?, r.seq(Term::decode)?),
            t => return Err(bad_tag("Term", t)),
        })
    }
}

impl Encode for Atom {
    fn encode(&self, w: &mut Writer) {
        w.str(&self.relation);
        w.seq(&self.terms, |w, t| t.encode(w));
    }
}

impl Decode for Atom {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        Ok(Atom { relation: r.str()?, terms: r.seq(Term::decode)? })
    }
}

impl Encode for Tgd {
    fn encode(&self, w: &mut Writer) {
        w.seq(&self.body, |w, a| a.encode(w));
        w.seq(&self.head, |w, a| a.encode(w));
    }
}

impl Decode for Tgd {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        Ok(Tgd { body: r.seq(Atom::decode)?, head: r.seq(Atom::decode)? })
    }
}

impl Encode for SoTgd {
    fn encode(&self, w: &mut Writer) {
        w.seq(&self.functions, |w, f| w.str(f));
        w.u32(self.clauses.len() as u32);
        for c in &self.clauses {
            w.seq(&c.body, |w, a| a.encode(w));
            w.u32(c.eqs.len() as u32);
            for (l, rr) in &c.eqs {
                l.encode(w);
                rr.encode(w);
            }
            w.seq(&c.head, |w, a| a.encode(w));
        }
    }
}

impl Decode for SoTgd {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        let functions = r.seq(Reader::str)?;
        let n = r.seq_len()?;
        let mut clauses = Vec::with_capacity(n);
        for _ in 0..n {
            let body = r.seq(Atom::decode)?;
            let ne = r.seq_len()?;
            let mut eqs = Vec::with_capacity(ne);
            for _ in 0..ne {
                eqs.push((Term::decode(r)?, Term::decode(r)?));
            }
            let head = r.seq(Atom::decode)?;
            clauses.push(SoClause { body, eqs, head });
        }
        Ok(SoTgd { functions, clauses })
    }
}

// --- mappings ----------------------------------------------------------------

impl Encode for MappingConstraint {
    fn encode(&self, w: &mut Writer) {
        match self {
            MappingConstraint::Tgd(t) => {
                w.u8(0);
                t.encode(w);
            }
            MappingConstraint::SoTgd(t) => {
                w.u8(1);
                t.encode(w);
            }
            MappingConstraint::ExprEq { source, target } => {
                w.u8(2);
                source.encode(w);
                target.encode(w);
            }
        }
    }
}

impl Decode for MappingConstraint {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        Ok(match r.u8()? {
            0 => MappingConstraint::Tgd(Tgd::decode(r)?),
            1 => MappingConstraint::SoTgd(SoTgd::decode(r)?),
            2 => MappingConstraint::ExprEq {
                source: Expr::decode(r)?,
                target: Expr::decode(r)?,
            },
            t => return Err(bad_tag("MappingConstraint", t)),
        })
    }
}

impl Encode for Mapping {
    fn encode(&self, w: &mut Writer) {
        w.str(&self.source_schema);
        w.str(&self.target_schema);
        w.seq(&self.constraints, |w, c| c.encode(w));
    }
}

impl Decode for Mapping {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        Ok(Mapping {
            source_schema: r.str()?,
            target_schema: r.str()?,
            constraints: r.seq(MappingConstraint::decode)?,
        })
    }
}

impl Encode for PathRef {
    fn encode(&self, w: &mut Writer) {
        w.str(&self.element);
        match &self.attribute {
            Some(a) => {
                w.bool(true);
                w.str(a);
            }
            None => w.bool(false),
        }
    }
}

impl Decode for PathRef {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        let element = r.str()?;
        let attribute = if r.bool()? { Some(r.str()?) } else { None };
        Ok(PathRef { element, attribute })
    }
}

impl Encode for Correspondence {
    fn encode(&self, w: &mut Writer) {
        self.source.encode(w);
        self.target.encode(w);
        w.f64(self.confidence);
    }
}

impl Decode for Correspondence {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        Ok(Correspondence {
            source: PathRef::decode(r)?,
            target: PathRef::decode(r)?,
            confidence: r.f64()?,
        })
    }
}

impl Encode for CorrespondenceSet {
    fn encode(&self, w: &mut Writer) {
        w.str(&self.source_schema);
        w.str(&self.target_schema);
        w.seq(&self.correspondences, |w, c| c.encode(w));
    }
}

impl Decode for CorrespondenceSet {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        Ok(CorrespondenceSet {
            source_schema: r.str()?,
            target_schema: r.str()?,
            correspondences: r.seq(Correspondence::decode)?,
        })
    }
}

impl Encode for ViewDef {
    fn encode(&self, w: &mut Writer) {
        w.str(&self.name);
        self.expr.encode(w);
    }
}

impl Decode for ViewDef {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        Ok(ViewDef { name: r.str()?, expr: Expr::decode(r)? })
    }
}

impl Encode for ViewSet {
    fn encode(&self, w: &mut Writer) {
        w.str(&self.base_schema);
        w.str(&self.view_schema);
        w.seq(&self.views, |w, v| v.encode(w));
    }
}

impl Decode for ViewSet {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        Ok(ViewSet {
            base_schema: r.str()?,
            view_schema: r.str()?,
            views: r.seq(ViewDef::decode)?,
        })
    }
}

// --- instances ---------------------------------------------------------------
//
// The instance codec lives here (rather than in the wire protocol) so the
// WAL can journal data deltas; `mm-server` reuses these impls for its
// frames, keeping the two byte formats identical by construction.

impl Encode for Value {
    fn encode(&self, w: &mut Writer) {
        match self {
            Value::Int(i) => {
                w.u8(0);
                w.i64(*i);
            }
            Value::Double(d) => {
                w.u8(1);
                w.f64(*d);
            }
            Value::Bool(b) => {
                w.u8(2);
                w.bool(*b);
            }
            // both text forms share tag 3: symbols encode straight from
            // the pool's `&'static str`, byte-identical to owned text
            Value::Text(s) => {
                w.u8(3);
                w.str(s);
            }
            Value::Sym(s) => {
                w.u8(3);
                w.str(s.as_str());
            }
            Value::Date(d) => {
                w.u8(4);
                w.i32(*d);
            }
            Value::Null => w.u8(5),
            Value::Labeled(id) => {
                w.u8(6);
                w.u64(*id);
            }
        }
    }
}

impl Decode for Value {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        Ok(match r.u8()? {
            0 => Value::Int(r.i64()?),
            1 => Value::Double(r.f64()?),
            2 => Value::Bool(r.bool()?),
            // interns on decode (bounded; oversized/overflow text stays
            // owned), so recovered instances land warm in the pool
            3 => Value::text(r.str()?),
            4 => Value::Date(r.i32()?),
            5 => Value::Null,
            6 => Value::Labeled(r.u64()?),
            t => return Err(bad_tag("Value", t)),
        })
    }
}

impl Encode for Tuple {
    fn encode(&self, w: &mut Writer) {
        w.seq(self.values(), |w, v| v.encode(w));
    }
}

impl Decode for Tuple {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        Ok(Tuple::new(r.seq(Value::decode)?))
    }
}

impl Encode for Relation {
    fn encode(&self, w: &mut Writer) {
        w.seq(&self.schema.attributes, |w, a| a.encode(w));
        w.seq(self.tuples(), |w, t| t.encode(w));
    }
}

impl Decode for Relation {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        let attributes = r.seq(Attribute::decode)?;
        let tuples = r.seq(Tuple::decode)?;
        Ok(Relation::with_tuples(RelSchema::new(attributes), tuples))
    }
}

impl Encode for Database {
    fn encode(&self, w: &mut Writer) {
        w.str(&self.name);
        w.u64(self.label_watermark());
        let rels: Vec<(&str, &Relation)> = self.relations().collect();
        w.seq(&rels, |w, (name, rel)| {
            w.str(name);
            rel.encode(w);
        });
    }
}

impl Decode for Database {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        let name = r.str()?;
        let watermark = r.u64()?;
        let mut db = Database::new(name);
        let n = r.seq_len()?;
        for _ in 0..n {
            let rel_name = r.str()?;
            let rel = Relation::decode(r)?;
            db.insert_relation(rel_name, rel);
        }
        db.set_label_watermark(watermark);
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_metamodel::SchemaBuilder;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: &T) {
        let mut w = Writer::new();
        v.encode(&mut w);
        let mut r = Reader::new(w.finish());
        let back = T::decode(&mut r).expect("decode");
        assert_eq!(&back, v);
        assert!(r.is_empty(), "trailing bytes after decode");
    }

    #[test]
    fn schema_roundtrips() {
        let s = SchemaBuilder::new("ER")
            .entity("Person", &[("Id", DataType::Int), ("Name", DataType::Text)])
            .entity_sub("Employee", "Person", &[("Dept", DataType::Text)])
            .relation("T", &[("a", DataType::Double)])
            .nested("Items", "T", &[("qty", DataType::Int)])
            .association("A", "Person", "Employee", Cardinality::One, Cardinality::Many)
            .key("Person", &["Id"])
            .foreign_key("T", &["a"], "T", &["a"])
            .build()
            .unwrap();
        roundtrip(&s);
    }

    #[test]
    fn expr_roundtrips() {
        use mm_expr::Scalar;
        let e = Expr::base("Names")
            .join(Expr::base("Addresses"), &[("SID", "SID")])
            .select(Predicate::col_eq_lit("Country", "US").or(Predicate::IsNull(Scalar::col("Zip"))))
            .extend("tag", Scalar::Case {
                branches: vec![(Predicate::True, Scalar::lit(1i64))],
                otherwise: Box::new(Scalar::Lit(Lit::Null)),
            })
            .project(&["Name", "tag"])
            .union(Expr::literal_row(&["Name", "tag"], vec![Lit::text("x"), Lit::Int(0)]))
            .distinct()
            .aggregate(
                &["Name"],
                vec![
                    AggSpec::count("n"),
                    AggSpec::of(AggFunc::Sum, "tag", "total"),
                ],
            );
        roundtrip(&e);
    }

    #[test]
    fn mapping_with_all_constraint_kinds_roundtrips() {
        let tgd = Tgd::new(vec![Atom::vars("R", &["x"])], vec![Atom::vars("S", &["x", "y"])]);
        let so = SoTgd::skolemize(std::slice::from_ref(&tgd), "f");
        let m = Mapping::with_constraints(
            "A",
            "B",
            vec![
                MappingConstraint::Tgd(tgd),
                MappingConstraint::SoTgd(so),
                MappingConstraint::ExprEq {
                    source: Expr::base("R").project(&["x"]),
                    target: Expr::base("S"),
                },
            ],
        );
        roundtrip(&m);
    }

    #[test]
    fn correspondences_and_views_roundtrip() {
        let mut cs = CorrespondenceSet::new("S", "T");
        cs.push(Correspondence::new(
            PathRef::attr("A", "x"),
            PathRef::element("B"),
            0.75,
        ));
        roundtrip(&cs);
        let mut vs = ViewSet::new("S", "V");
        vs.push(ViewDef::new("V1", Expr::base("A").rename(&[("x", "y")])));
        roundtrip(&vs);
    }

    #[test]
    fn truncated_buffer_errors_cleanly() {
        let mut w = Writer::new();
        Expr::base("LongRelationName").encode(&mut w);
        let bytes = w.finish();
        let mut r = Reader::new(bytes.slice(0..3));
        assert!(Expr::decode(&mut r).is_err());
    }

    #[test]
    fn unknown_tag_errors_cleanly() {
        let mut w = Writer::new();
        w.u8(99);
        let mut r = Reader::new(w.finish());
        assert!(Expr::decode(&mut r).is_err());
    }

    #[test]
    fn database_roundtrips_bit_identically() {
        let mut db = Database::new("S");
        let mut rel = Relation::new(RelSchema::of(&[
            ("Id", DataType::Int),
            ("Name", DataType::Text),
        ]));
        rel.insert(Tuple::new(vec![Value::Int(1), Value::text("ada")]));
        rel.insert(Tuple::new(vec![Value::Int(2), Value::Labeled(7)]));
        db.insert_relation("Person", rel);
        db.insert_relation("Empty", Relation::new(RelSchema::of(&[("x", DataType::Any)])));
        db.set_label_watermark(8);
        let mut w = Writer::new();
        db.encode(&mut w);
        let bytes = w.finish();
        let mut r = Reader::new(bytes.clone());
        let back = Database::decode(&mut r).expect("decode");
        assert!(r.is_empty());
        assert_eq!(back.name, db.name);
        assert_eq!(back.label_watermark(), db.label_watermark());
        let mut w2 = Writer::new();
        back.encode(&mut w2);
        assert_eq!(w2.finish(), bytes, "re-encode is bit-identical");
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // standard IEEE CRC32 check values
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn adversarial_length_prefixes_error_before_allocating() {
        // a str whose length prefix claims u32::MAX bytes
        let mut w = Writer::new();
        w.u32(u32::MAX);
        w.u8(b'x');
        let mut r = Reader::new(w.finish());
        assert!(r.str().is_err());

        // an SO-tgd clause count far beyond the buffer
        let mut w = Writer::new();
        w.u32(0); // no functions
        w.u32(u32::MAX); // absurd clause count
        let mut r = Reader::new(w.finish());
        assert!(SoTgd::decode(&mut r).is_err());

        // a literal-table row count beyond the buffer
        let mut w = Writer::new();
        w.u8(1); // Expr::Literal tag
        w.u32(0); // no columns
        w.u32(0x7FFF_FFFF); // absurd row count
        let mut r = Reader::new(w.finish());
        assert!(Expr::decode(&mut r).is_err());
    }

    #[test]
    fn corrupt_length_errors_cleanly() {
        let mut w = Writer::new();
        w.u8(0); // Base tag
        w.u32(u32::MAX); // absurd string length
        let mut r = Reader::new(w.finish());
        assert!(Expr::decode(&mut r).is_err());
    }
}
