//! The append-only write-ahead log of repository mutations.
//!
//! Every committed repository mutation — an artifact version stored, a
//! lineage edge recorded — becomes a [`WalRecord`] inside a *batch
//! frame* appended to a single log file through the [`Storage`]
//! abstraction. A frame is the unit of both atomicity and integrity:
//!
//! ```text
//! frame   := [u32 payload_len] [u32 crc32(payload)] [payload]
//! payload := [u64 seq] [u32 record_count] [record ...]
//! ```
//!
//! * **Atomicity** — a multi-operator transaction (e.g. one script)
//!   commits as a single frame, so a crash mid-append tears the whole
//!   batch off, never half of it.
//! * **Integrity** — the CRC32 over the payload catches torn writes and
//!   bit rot; [`Wal::replay`] returns the longest valid prefix and the
//!   byte offset where it ends, so recovery truncates cleanly to the
//!   last good frame instead of failing open or panicking.
//! * **Idempotent replay** — frames carry a strictly increasing sequence
//!   number; the snapshot header records the last sequence it includes,
//!   and recovery skips frames at or below it. A crash between the
//!   snapshot swap and the log reset therefore never double-applies.

use crate::codec::{crc32, Decode, DecodeResult, Encode, Reader, Writer};
use crate::storage::{Storage, StorageError};
use crate::store::{LineageEdge, Subscription};
use bytes::Bytes;
use mm_expr::{CorrespondenceSet, Mapping, ViewSet};
use mm_instance::{Database, Tuple};
use mm_metamodel::Schema;
use std::sync::Arc;

/// One logged repository mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    Schema { name: String, value: Schema },
    Mapping { name: String, value: Mapping },
    ViewSet { name: String, value: ViewSet },
    Correspondences { name: String, value: CorrespondenceSet },
    Lineage(LineageEdge),
    /// Register (or replace) a change-feed subscription. Journaled
    /// WAL-first like every artifact write, so a torn registration
    /// recovers to "no subscriber" — never a half-registered one.
    Subscription(Subscription),
    /// Drop a subscription from the registry.
    SubscriptionDrop { id: u64 },
    /// Durably advance a subscriber's resume cursor to a feed sequence
    /// it has acknowledged.
    SubscriptionCursor { id: u64, cursor: u64 },
    /// Create or replace a tracked base instance (bulk load writes one
    /// of these — a single amortized frame no matter the tuple count).
    InstancePut { name: String, value: Database },
    /// Insert-only delta against a tracked instance: per-relation tuple
    /// batches, one frame per committed batch.
    InstanceDelta { name: String, inserts: Vec<(String, Vec<Tuple>)> },
}

impl Encode for WalRecord {
    fn encode(&self, w: &mut Writer) {
        match self {
            WalRecord::Schema { name, value } => {
                w.u8(0);
                w.str(name);
                value.encode(w);
            }
            WalRecord::Mapping { name, value } => {
                w.u8(1);
                w.str(name);
                value.encode(w);
            }
            WalRecord::ViewSet { name, value } => {
                w.u8(2);
                w.str(name);
                value.encode(w);
            }
            WalRecord::Correspondences { name, value } => {
                w.u8(3);
                w.str(name);
                value.encode(w);
            }
            WalRecord::Lineage(edge) => {
                w.u8(4);
                edge.encode(w);
            }
            WalRecord::Subscription(sub) => {
                w.u8(5);
                sub.encode(w);
            }
            WalRecord::SubscriptionDrop { id } => {
                w.u8(6);
                w.u64(*id);
            }
            WalRecord::SubscriptionCursor { id, cursor } => {
                w.u8(7);
                w.u64(*id);
                w.u64(*cursor);
            }
            WalRecord::InstancePut { name, value } => {
                w.u8(8);
                w.str(name);
                value.encode(w);
            }
            WalRecord::InstanceDelta { name, inserts } => {
                w.u8(9);
                w.str(name);
                w.u32(inserts.len() as u32);
                for (rel, tuples) in inserts {
                    w.str(rel);
                    w.seq(tuples, |w, t| t.encode(w));
                }
            }
        }
    }
}

impl Decode for WalRecord {
    fn decode(r: &mut Reader) -> DecodeResult<Self> {
        Ok(match r.u8()? {
            0 => WalRecord::Schema { name: r.str()?, value: Schema::decode(r)? },
            1 => WalRecord::Mapping { name: r.str()?, value: Mapping::decode(r)? },
            2 => WalRecord::ViewSet { name: r.str()?, value: ViewSet::decode(r)? },
            3 => WalRecord::Correspondences {
                name: r.str()?,
                value: CorrespondenceSet::decode(r)?,
            },
            4 => WalRecord::Lineage(LineageEdge::decode(r)?),
            5 => WalRecord::Subscription(Subscription::decode(r)?),
            6 => WalRecord::SubscriptionDrop { id: r.u64()? },
            7 => WalRecord::SubscriptionCursor { id: r.u64()?, cursor: r.u64()? },
            8 => WalRecord::InstancePut { name: r.str()?, value: Database::decode(r)? },
            9 => {
                let name = r.str()?;
                let n = r.seq_len()?;
                let mut inserts = Vec::with_capacity(n);
                for _ in 0..n {
                    let rel = r.str()?;
                    inserts.push((rel, r.seq(Tuple::decode)?));
                }
                WalRecord::InstanceDelta { name, inserts }
            }
            t => {
                return Err(crate::codec::DecodeError(format!("unknown WalRecord tag {t}")))
            }
        })
    }
}

/// The result of scanning a log: every decodable batch in order, plus
/// where the valid prefix ends.
#[derive(Debug)]
pub struct WalReplay {
    /// `(seq, records)` per valid frame, in log order.
    pub batches: Vec<(u64, Vec<WalRecord>)>,
    /// Byte offset one past the last valid frame.
    pub valid_len: usize,
    /// Total bytes in the log file.
    pub total_len: usize,
}

impl WalReplay {
    /// Did the scan stop before the end — i.e. is there a torn or
    /// corrupted tail that recovery should truncate away?
    pub fn truncated(&self) -> bool {
        self.valid_len < self.total_len
    }
}

/// The write-ahead log over a [`Storage`] file.
pub struct Wal {
    storage: Arc<dyn Storage>,
    file: String,
}

impl Wal {
    pub fn new(storage: Arc<dyn Storage>, file: impl Into<String>) -> Self {
        Wal { storage, file: file.into() }
    }

    /// The log's file name within its storage.
    pub fn file(&self) -> &str {
        &self.file
    }

    /// Append one committed batch as a single frame, returning the frame
    /// size in bytes (header + payload — what telemetry meters as WAL
    /// bytes appended). The frame only becomes visible to [`Wal::replay`]
    /// once every byte (including the trailing record bytes the CRC
    /// covers) is persisted — a torn append is indistinguishable from no
    /// append after recovery.
    pub fn append_batch(&self, seq: u64, records: &[WalRecord]) -> Result<usize, StorageError> {
        let mut body = Writer::new();
        body.u64(seq);
        body.u32(records.len() as u32);
        for rec in records {
            rec.encode(&mut body);
        }
        let payload = body.finish();
        let mut frame = Writer::new();
        frame.u32(payload.len() as u32);
        frame.u32(crc32(&payload));
        let mut bytes = frame.finish().to_vec();
        bytes.extend_from_slice(&payload);
        self.storage.append(&self.file, &bytes)?;
        Ok(bytes.len())
    }

    /// Scan the log, decoding the longest valid prefix of frames. Frames
    /// fail (and the scan stops) on: a truncated header or payload, a
    /// CRC mismatch, a payload that does not decode exactly, or a
    /// sequence number that is not strictly increasing.
    pub fn replay(&self) -> Result<WalReplay, StorageError> {
        let bytes = self.storage.read(&self.file)?.unwrap_or_else(Bytes::new);
        let total_len = bytes.len();
        let mut batches = Vec::new();
        let mut off = 0usize;
        let mut last_seq = 0u64;
        while off + 8 <= total_len {
            let len = u32::from_le_bytes([
                bytes[off],
                bytes[off + 1],
                bytes[off + 2],
                bytes[off + 3],
            ]) as usize;
            let crc = u32::from_le_bytes([
                bytes[off + 4],
                bytes[off + 5],
                bytes[off + 6],
                bytes[off + 7],
            ]);
            let start = off + 8;
            let Some(end) = start.checked_add(len).filter(|e| *e <= total_len) else {
                break; // torn: frame extends past the file
            };
            let payload = bytes.slice(start..end);
            if crc32(&payload) != crc {
                break; // torn or corrupted payload
            }
            let Some((seq, records)) = decode_payload(payload) else {
                break; // CRC collision on garbage — still refuse it
            };
            if !batches.is_empty() && seq <= last_seq {
                break; // sequence regression: corrupted frame boundary
            }
            last_seq = seq;
            batches.push((seq, records));
            off = end;
        }
        Ok(WalReplay { batches, valid_len: off, total_len })
    }

    /// Physically truncate the log to `len` bytes — recovery calls this
    /// to drop a torn tail so later appends extend the valid prefix.
    pub fn truncate(&self, len: usize) -> Result<(), StorageError> {
        self.storage.truncate(&self.file, len)
    }

    /// Reset the log to empty (after a snapshot made it redundant).
    pub fn reset(&self) -> Result<(), StorageError> {
        self.storage.delete(&self.file)
    }
}

fn decode_payload(payload: Bytes) -> Option<(u64, Vec<WalRecord>)> {
    let mut r = Reader::new(payload);
    let seq = r.u64().ok()?;
    let n = r.u32().ok()? as usize;
    let mut records = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        records.push(WalRecord::decode(&mut r).ok()?);
    }
    if !r.is_empty() {
        return None; // trailing garbage inside a "valid" CRC — refuse
    }
    Some((seq, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use mm_metamodel::{DataType, SchemaBuilder};

    fn schema_record(name: &str) -> WalRecord {
        WalRecord::Schema {
            name: name.to_string(),
            value: SchemaBuilder::new(name)
                .relation("R", &[("a", DataType::Int)])
                .build()
                .unwrap(),
        }
    }

    #[test]
    fn append_replay_round_trips() {
        let mem = MemStorage::new();
        let wal = Wal::new(mem.clone(), "wal");
        wal.append_batch(1, &[schema_record("A")]).unwrap();
        wal.append_batch(2, &[schema_record("B"), schema_record("C")]).unwrap();
        let replay = wal.replay().unwrap();
        assert_eq!(replay.batches.len(), 2);
        assert_eq!(replay.batches[0].0, 1);
        assert_eq!(replay.batches[1].1.len(), 2);
        assert!(!replay.truncated());
        assert_eq!(replay.valid_len, replay.total_len);
    }

    #[test]
    fn torn_tail_truncates_to_last_good_frame() {
        let mem = MemStorage::new();
        let wal = Wal::new(mem.clone(), "wal");
        wal.append_batch(1, &[schema_record("A")]).unwrap();
        let good_len = mem.len_of("wal").unwrap();
        wal.append_batch(2, &[schema_record("B")]).unwrap();
        let full_len = mem.len_of("wal").unwrap();
        // tear the second frame at every byte offset: replay always
        // yields exactly the first frame
        for cut in good_len..full_len {
            let mut files = mem.dump();
            files.get_mut("wal").unwrap().truncate(cut);
            let torn = Wal::new(MemStorage::from_files(files), "wal");
            let replay = torn.replay().unwrap();
            assert_eq!(replay.batches.len(), 1, "cut at {cut}");
            assert_eq!(replay.valid_len, good_len, "cut at {cut}");
            assert_eq!(replay.truncated(), cut > good_len, "cut at {cut}");
        }
    }

    #[test]
    fn bit_flips_never_panic_and_never_corrupt_accepted_frames() {
        let mem = MemStorage::new();
        let wal = Wal::new(mem.clone(), "wal");
        wal.append_batch(1, &[schema_record("A")]).unwrap();
        wal.append_batch(2, &[schema_record("B")]).unwrap();
        let pristine = mem.dump().remove("wal").unwrap();
        for byte in 0..pristine.len() {
            let mut flipped = pristine.clone();
            flipped[byte] ^= 0x40;
            let mut files = std::collections::BTreeMap::new();
            files.insert("wal".to_string(), flipped);
            let replay = Wal::new(MemStorage::from_files(files), "wal").replay().unwrap();
            // any accepted frame must be one of the two originals
            for (seq, records) in &replay.batches {
                assert!(*seq == 1 || *seq == 2);
                assert_eq!(records.len(), 1);
            }
        }
    }

    #[test]
    fn sequence_regression_stops_replay() {
        let mem = MemStorage::new();
        let wal = Wal::new(mem.clone(), "wal");
        wal.append_batch(5, &[schema_record("A")]).unwrap();
        wal.append_batch(3, &[schema_record("B")]).unwrap(); // regression
        let replay = wal.replay().unwrap();
        assert_eq!(replay.batches.len(), 1);
        assert!(replay.truncated());
    }
}
