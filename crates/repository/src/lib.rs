//! The metadata repository of Figure 1: versioned storage for schemas,
//! mappings, and view sets, with operator lineage between artifacts and
//! binary snapshots.
//!
//! The original model-management proposal grew out of Microsoft
//! Repository (§1.4); this crate is the modern, embeddable equivalent:
//! every operator invocation records a lineage edge from its inputs to
//! its output, supporting the impact-analysis and dependency-management
//! uses the paper attributes to the repository, while the artifacts
//! themselves are full mapping-language objects rather than "simple
//! relationships".
//!
//! Durability (DESIGN.md §9): [`Repository::open_durable`] layers a
//! checksummed write-ahead log ([`wal`]) and atomically swapped
//! snapshots over a pluggable [`storage::Storage`] backend, with a
//! fault-injecting wrapper ([`storage::FaultStorage`]) for crash
//! testing.

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod codec;
pub mod storage;
pub mod store;
pub mod wal;

pub use storage::{
    FaultOp, FaultPlan, FaultStorage, MemStorage, Storage, StorageError, StorageLineSink,
};
pub use store::{
    ArtifactId, ArtifactKind, DurableOptions, LineageEdge, Repository, RepositoryError,
    Subscription, VersionedName, SNAPSHOT_FILE, SNAPSHOT_TMP_FILE, WAL_FILE,
};
pub use wal::{Wal, WalRecord, WalReplay};
