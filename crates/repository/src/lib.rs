//! The metadata repository of Figure 1: versioned storage for schemas,
//! mappings, and view sets, with operator lineage between artifacts and
//! binary snapshots.
//!
//! The original model-management proposal grew out of Microsoft
//! Repository (§1.4); this crate is the modern, embeddable equivalent:
//! every operator invocation records a lineage edge from its inputs to
//! its output, supporting the impact-analysis and dependency-management
//! uses the paper attributes to the repository, while the artifacts
//! themselves are full mapping-language objects rather than "simple
//! relationships".

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod codec;
pub mod store;

pub use store::{
    ArtifactId, ArtifactKind, LineageEdge, Repository, RepositoryError, VersionedName,
};
