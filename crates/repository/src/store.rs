//! The versioned artifact store with operator lineage, with an optional
//! crash-safe durable mode.
//!
//! A [`Repository`] is either *ephemeral* ([`Repository::new`] — pure
//! in-memory, the historical behavior) or *durable*
//! ([`Repository::open_durable`] — every committed mutation is
//! journaled through a checksummed write-ahead log before it is applied
//! in memory, and [`Repository::checkpoint`] compacts the log into an
//! atomically swapped snapshot). The recovery protocol and its
//! invariants are documented in DESIGN.md §9; the crash-recovery
//! property suite (`tests/crash_recovery.rs`) enforces them at every
//! WAL byte offset and snapshot-swap step.
//!
//! Multi-operator commits are transactional: [`Repository::begin`]
//! takes a whole-store savepoint, writes buffer into a single WAL batch
//! frame, and [`Repository::commit`] / [`Repository::rollback`] make
//! the batch all-or-nothing — against both errors and crashes.

use crate::codec::{crc32, Decode, DecodeError, Encode, Reader, Writer};
use crate::storage::{Storage, StorageError};
use crate::wal::{Wal, WalRecord};
use bytes::Bytes;
use mm_expr::{CorrespondenceSet, Mapping, ViewSet};
use mm_instance::{Database, Tuple};
use mm_metamodel::Schema;
use mm_telemetry::{Counter, Hist, Telemetry, Timer};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What kind of artifact an id refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ArtifactKind {
    Schema,
    Mapping,
    ViewSet,
    Correspondences,
}

impl fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArtifactKind::Schema => "schema",
            ArtifactKind::Mapping => "mapping",
            ArtifactKind::ViewSet => "viewset",
            ArtifactKind::Correspondences => "correspondences",
        })
    }
}

/// A (name, version) pair naming one stored artifact version.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VersionedName {
    pub name: String,
    pub version: u32,
}

impl fmt::Display for VersionedName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@v{}", self.name, self.version)
    }
}

/// Fully qualified artifact id.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArtifactId {
    pub kind: ArtifactKind,
    pub name: VersionedName,
}

impl fmt::Display for ArtifactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.kind, self.name)
    }
}

/// A lineage edge: `operator(inputs) = output` — the repository's record
/// of one model-management operator invocation (impact analysis, §1.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageEdge {
    pub operator: String,
    pub inputs: Vec<ArtifactId>,
    pub output: ArtifactId,
}

/// A registered change-feed subscription: a set of continuous queries
/// (a [`ViewSet`]) over one tracked instance, plus the durable resume
/// cursor — the commit sequence of the last feed event the subscriber
/// acknowledged. Persisted WAL-first like every artifact, so recovery
/// restores the registry and a reconnecting client resumes from its
/// cursor instead of resubscribing from scratch.
#[derive(Debug, Clone, PartialEq)]
pub struct Subscription {
    /// Registry key, assigned by the caller (the engine allocates these
    /// monotonically).
    pub id: u64,
    /// Name of the tracked instance the queries read.
    pub instance: String,
    /// The continuous queries maintained for this subscriber.
    pub views: ViewSet,
    /// Commit sequence of the last acknowledged feed event.
    pub cursor: u64,
}

impl Encode for Subscription {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.id);
        w.str(&self.instance);
        self.views.encode(w);
        w.u64(self.cursor);
    }
}

impl Decode for Subscription {
    fn decode(r: &mut Reader) -> Result<Self, DecodeError> {
        Ok(Subscription {
            id: r.u64()?,
            instance: r.str()?,
            views: ViewSet::decode(r)?,
            cursor: r.u64()?,
        })
    }
}

/// Repository errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepositoryError {
    NotFound(String),
    Decode(DecodeError),
    /// Snapshot validation failed: bad magic, unknown format version, or
    /// a body checksum mismatch. The detail pinpoints the offset.
    BadSnapshot { detail: String },
    /// The storage layer failed (I/O error, torn write, crash).
    Storage(StorageError),
    /// `begin` while a transaction is already active, or `checkpoint`
    /// during a transaction (a snapshot must not persist uncommitted
    /// writes).
    TransactionActive,
    /// `commit`/`rollback` without an active transaction.
    NoTransaction,
    /// A durable-only operation (`checkpoint`) on an ephemeral repository.
    NotDurable,
    /// A data-path write was structurally invalid (unknown relation,
    /// arity mismatch) and was refused before journaling.
    InvalidWrite { detail: String },
}

impl fmt::Display for RepositoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepositoryError::NotFound(n) => write!(f, "artifact `{n}` not found"),
            RepositoryError::Decode(e) => write!(f, "{e}"),
            RepositoryError::BadSnapshot { detail } => write!(f, "bad snapshot: {detail}"),
            RepositoryError::Storage(e) => write!(f, "{e}"),
            RepositoryError::TransactionActive => {
                f.write_str("a repository transaction is already active")
            }
            RepositoryError::NoTransaction => f.write_str("no active repository transaction"),
            RepositoryError::NotDurable => {
                f.write_str("operation requires a durable repository")
            }
            RepositoryError::InvalidWrite { detail } => {
                write!(f, "invalid write: {detail}")
            }
        }
    }
}

impl std::error::Error for RepositoryError {}

impl From<DecodeError> for RepositoryError {
    fn from(e: DecodeError) -> Self {
        RepositoryError::Decode(e)
    }
}

impl From<StorageError> for RepositoryError {
    fn from(e: StorageError) -> Self {
        RepositoryError::Storage(e)
    }
}

#[derive(Default, Clone)]
struct Store {
    schemas: BTreeMap<String, Vec<Schema>>,
    mappings: BTreeMap<String, Vec<Mapping>>,
    viewsets: BTreeMap<String, Vec<ViewSet>>,
    correspondences: BTreeMap<String, Vec<CorrespondenceSet>>,
    lineage: Vec<LineageEdge>,
    subscriptions: BTreeMap<u64, Subscription>,
    instances: BTreeMap<String, Database>,
    /// Commit sequence of the last feed event (load or delta) per
    /// tracked instance. Registry writes and artifact stores bump the
    /// global sequence without touching this, so a resuming subscriber
    /// is judged against the events that actually concern it.
    instance_seqs: BTreeMap<String, u64>,
}

/// An open transaction: the pre-transaction state to roll back to, plus
/// the WAL records to flush as one batch frame on commit.
struct TxState {
    savepoint: Store,
    buffer: Vec<WalRecord>,
}

/// Durability knobs for [`Repository::open_durable`].
#[derive(Debug, Clone, Default)]
pub struct DurableOptions {
    /// Automatically [`Repository::checkpoint`] after this many committed
    /// WAL batches. `None` (the default) checkpoints only on demand.
    /// Auto-checkpoint failures do not fail the triggering write (the
    /// WAL already has the data); they are recorded and retrievable via
    /// [`Repository::take_checkpoint_error`].
    pub checkpoint_every: Option<u64>,
}

struct DurState {
    /// Sequence number the next committed batch will carry.
    next_seq: u64,
    batches_since_checkpoint: u64,
    checkpoint_error: Option<StorageError>,
}

struct DurableCore {
    storage: Arc<dyn Storage>,
    wal: Wal,
    state: Mutex<DurState>,
    opts: DurableOptions,
}

impl DurableCore {
    /// Append one committed batch, advancing the sequence counter only
    /// after the frame is fully persisted. Frame count and size feed the
    /// WAL telemetry counters.
    fn append_now(&self, records: &[WalRecord], tel: &Telemetry) -> Result<(), StorageError> {
        let mut st = self.state.lock();
        let started = tel.is_enabled().then(mm_telemetry::clock::now);
        let frame_bytes = self.wal.append_batch(st.next_seq, records)?;
        st.next_seq += 1;
        st.batches_since_checkpoint += 1;
        tel.count(Counter::WalFramesAppended, 1);
        tel.count(Counter::WalBytesAppended, frame_bytes as u64);
        if let (Some(t0), Some(m)) = (started, tel.metrics()) {
            m.observe_hist(Hist::WalAppendUs, mm_telemetry::clock::elapsed_us(t0));
        }
        Ok(())
    }
}

/// Thread-safe versioned metadata repository.
///
/// Lock order (held invariantly throughout this module, preventing
/// deadlock): `tx` mutex → `inner` RwLock → durable `state` mutex.
#[derive(Default)]
pub struct Repository {
    inner: RwLock<Store>,
    tx: Mutex<Option<TxState>>,
    durable: Option<DurableCore>,
    telemetry: Telemetry,
    /// Commit counter for ephemeral repositories, so the change feed
    /// has a cursor space in both modes (durable mode reads the WAL
    /// sequence instead).
    ephemeral_seq: AtomicU64,
}

const SNAPSHOT_MAGIC: u32 = 0x4D4D5232; // "MMR2"
/// Snapshot format version. v2 added the version byte, the last-applied
/// WAL sequence number, and the CRC32 body checksum; v3 added the
/// subscription registry and tracked instances; v4 prepends the interner
/// pool section (the distinct poolable text values of all stored
/// instances, bulk pre-interned on load so recovered databases come up
/// with a warm symbol pool). Snapshots are written at the current
/// version; v3 snapshots (no pool section) are still read.
const SNAPSHOT_VERSION: u8 = 4;
/// Oldest snapshot version this build still decodes.
const MIN_SNAPSHOT_VERSION: u8 = 3;
/// Snapshot header: magic (4) + version (1) + seq (8) + crc (4).
const SNAPSHOT_HEADER_LEN: usize = 17;

/// Storage file names of the durable layout.
pub const SNAPSHOT_FILE: &str = "snapshot";
pub const SNAPSHOT_TMP_FILE: &str = "snapshot.tmp";
pub const WAL_FILE: &str = "wal";

macro_rules! accessors {
    ($store_fn:ident, $get_fn:ident, $latest_fn:ident, $versions_fn:ident,
     $field:ident, $ty:ty, $kind:expr, $rec:ident) => {
        /// Store a new version; returns its id. In durable mode the
        /// write reaches the WAL (or the open transaction's buffer)
        /// before it is applied in memory; a storage failure leaves the
        /// repository unchanged.
        pub fn $store_fn(
            &self,
            name: impl Into<String>,
            value: $ty,
        ) -> Result<ArtifactId, RepositoryError> {
            let name = name.into();
            let id = {
                let mut tx = self.tx.lock();
                let mut store = self.inner.write();
                if let Some(tx) = tx.as_mut() {
                    tx.buffer.push(WalRecord::$rec {
                        name: name.clone(),
                        value: value.clone(),
                    });
                } else if let Some(d) = &self.durable {
                    d.append_now(&[WalRecord::$rec {
                        name: name.clone(),
                        value: value.clone(),
                    }], &self.telemetry)?;
                }
                let versions = store.$field.entry(name.clone()).or_default();
                versions.push(value);
                ArtifactId {
                    kind: $kind,
                    name: VersionedName { name, version: versions.len() as u32 - 1 },
                }
            };
            self.maybe_autocheckpoint();
            Ok(id)
        }

        /// Fetch a specific version.
        pub fn $get_fn(&self, name: &str, version: u32) -> Result<$ty, RepositoryError> {
            self.inner
                .read()
                .$field
                .get(name)
                .and_then(|v| v.get(version as usize))
                .cloned()
                .ok_or_else(|| RepositoryError::NotFound(format!("{name}@v{version}")))
        }

        /// Fetch the latest version with its id.
        pub fn $latest_fn(&self, name: &str) -> Result<($ty, ArtifactId), RepositoryError> {
            let store = self.inner.read();
            let versions = store
                .$field
                .get(name)
                .filter(|v| !v.is_empty())
                .ok_or_else(|| RepositoryError::NotFound(name.to_string()))?;
            let version = versions.len() as u32 - 1;
            let value = versions
                .last()
                .cloned()
                .ok_or_else(|| RepositoryError::NotFound(name.to_string()))?;
            Ok((
                value,
                ArtifactId {
                    kind: $kind,
                    name: VersionedName { name: name.to_string(), version },
                },
            ))
        }

        /// Number of stored versions.
        pub fn $versions_fn(&self, name: &str) -> u32 {
            self.inner.read().$field.get(name).map(|v| v.len() as u32).unwrap_or(0)
        }
    };
}

impl Repository {
    /// An ephemeral (in-memory only) repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open (or create) a durable repository over `storage`, running
    /// crash recovery:
    ///
    /// 1. delete any half-written `snapshot.tmp` (the swap never
    ///    completed, so the previous snapshot is still authoritative);
    /// 2. load and validate the snapshot (magic, version, CRC32) if one
    ///    exists, noting the last WAL sequence it includes;
    /// 3. replay the longest valid WAL prefix, skipping frames at or
    ///    below the snapshot's sequence (idempotent replay);
    /// 4. physically truncate any torn/corrupted WAL tail so later
    ///    appends extend the valid prefix.
    pub fn open_durable(
        storage: Arc<dyn Storage>,
        opts: DurableOptions,
    ) -> Result<Self, RepositoryError> {
        Self::open_durable_with_telemetry(storage, opts, Telemetry::disabled())
    }

    /// [`Repository::open_durable`] with a telemetry handle attached:
    /// the recovery pass is timed and counted, and the opened repository
    /// keeps the handle for WAL/checkpoint metering (equivalent to
    /// [`Repository::set_telemetry`] after a plain open).
    pub fn open_durable_with_telemetry(
        storage: Arc<dyn Storage>,
        opts: DurableOptions,
        tel: Telemetry,
    ) -> Result<Self, RepositoryError> {
        let started = mm_telemetry::clock::now();
        storage.delete(SNAPSHOT_TMP_FILE)?;
        let (mut store, base_seq) = match storage.read(SNAPSHOT_FILE)? {
            Some(bytes) => decode_snapshot(bytes)?,
            None => (Store::default(), 0),
        };
        let wal = Wal::new(Arc::clone(&storage), WAL_FILE);
        let replay = wal.replay()?;
        let truncated = replay.truncated();
        let valid_len = replay.valid_len;
        let batch_count = replay.batches.len();
        let mut last_seq = base_seq;
        for (seq, records) in replay.batches {
            if seq <= base_seq {
                continue; // already folded into the snapshot
            }
            for rec in records {
                apply_record(&mut store, rec, seq);
            }
            last_seq = seq;
        }
        if truncated {
            wal.truncate(valid_len)?;
        }
        if tel.is_enabled() {
            tel.count(Counter::Recoveries, 1);
            if let Some(m) = tel.metrics() {
                m.observe_us(Timer::Recovery, mm_telemetry::clock::elapsed_us(started));
            }
            tel.event(
                "repository.recovered",
                "",
                vec![
                    mm_telemetry::Field { key: "snapshot_seq", value: base_seq.into() },
                    mm_telemetry::Field { key: "wal_batches", value: batch_count.into() },
                    mm_telemetry::Field { key: "wal_truncated", value: truncated.into() },
                ],
            );
        }
        Ok(Repository {
            inner: RwLock::new(store),
            tx: Mutex::new(None),
            durable: Some(DurableCore {
                storage,
                wal,
                state: Mutex::new(DurState {
                    next_seq: last_seq + 1,
                    batches_since_checkpoint: 0,
                    checkpoint_error: None,
                }),
                opts,
            }),
            telemetry: tel,
            ephemeral_seq: AtomicU64::new(0),
        })
    }

    /// Attach (or replace) the telemetry handle metering WAL appends and
    /// checkpoints on this repository.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.telemetry = tel;
    }

    /// Is this repository journaling through a WAL?
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The sequence number of the last committed batch (durable mode).
    pub fn durable_seq(&self) -> Option<u64> {
        self.durable.as_ref().map(|d| d.state.lock().next_seq - 1)
    }

    /// The error of the most recent failed auto-checkpoint, if any
    /// (taking clears it). Auto-checkpoint failures are not data loss —
    /// the WAL holds everything — but callers may want to surface them.
    pub fn take_checkpoint_error(&self) -> Option<StorageError> {
        self.durable.as_ref().and_then(|d| d.state.lock().checkpoint_error.take())
    }

    accessors!(store_schema, get_schema, latest_schema, schema_versions,
               schemas, Schema, ArtifactKind::Schema, Schema);
    accessors!(store_mapping, get_mapping, latest_mapping, mapping_versions,
               mappings, Mapping, ArtifactKind::Mapping, Mapping);
    accessors!(store_viewset, get_viewset, latest_viewset, viewset_versions,
               viewsets, ViewSet, ArtifactKind::ViewSet, ViewSet);
    accessors!(store_correspondences, get_correspondences, latest_correspondences,
               correspondences_versions, correspondences, CorrespondenceSet,
               ArtifactKind::Correspondences, Correspondences);

    /// Names of all stored schemas.
    pub fn schema_names(&self) -> Vec<String> {
        self.inner.read().schemas.keys().cloned().collect()
    }

    /// Names of all stored mappings.
    pub fn mapping_names(&self) -> Vec<String> {
        self.inner.read().mappings.keys().cloned().collect()
    }

    /// Names of all stored view sets.
    pub fn viewset_names(&self) -> Vec<String> {
        self.inner.read().viewsets.keys().cloned().collect()
    }

    /// Names of all stored correspondence sets.
    pub fn correspondence_names(&self) -> Vec<String> {
        self.inner.read().correspondences.keys().cloned().collect()
    }

    /// The sequence number of the last committed batch: the WAL
    /// sequence in durable mode, an in-memory commit counter otherwise.
    /// This is the cursor space of the change feed.
    pub fn last_seq(&self) -> u64 {
        match &self.durable {
            Some(d) => d.state.lock().next_seq - 1,
            None => self.ephemeral_seq.load(Ordering::Acquire),
        }
    }

    /// Journal one record and apply it, returning the commit sequence
    /// the write carries (the apply closure receives the same sequence,
    /// so state derived from it — e.g. per-instance event sequences —
    /// stays consistent between the live path and WAL replay). Inside
    /// an open transaction the record joins the transaction's batch and
    /// the returned sequence is the one the commit frame will carry
    /// (writes queue behind the tx lock, so no other frame can claim it
    /// first).
    fn journal_apply(
        &self,
        rec: WalRecord,
        apply: impl FnOnce(&mut Store, u64),
    ) -> Result<u64, RepositoryError> {
        let seq = {
            let mut tx = self.tx.lock();
            let mut store = self.inner.write();
            if let Some(tx) = tx.as_mut() {
                tx.buffer.push(rec);
                let seq = match &self.durable {
                    Some(d) => d.state.lock().next_seq,
                    None => self.ephemeral_seq.load(Ordering::Acquire) + 1,
                };
                apply(&mut store, seq);
                seq
            } else if let Some(d) = &self.durable {
                d.append_now(std::slice::from_ref(&rec), &self.telemetry)?;
                let seq = d.state.lock().next_seq - 1;
                apply(&mut store, seq);
                seq
            } else {
                let seq = self.ephemeral_seq.fetch_add(1, Ordering::AcqRel) + 1;
                apply(&mut store, seq);
                seq
            }
        };
        self.maybe_autocheckpoint();
        Ok(seq)
    }

    // --- tracked instances (the data the change feed propagates) ----------

    /// Create or replace a tracked instance wholesale — the bulk-load
    /// path. However many tuples `value` carries, it is journaled as one
    /// amortized WAL record inside one frame. Returns the commit
    /// sequence (the feed event for the load).
    pub fn put_instance(
        &self,
        name: impl Into<String>,
        value: Database,
    ) -> Result<u64, RepositoryError> {
        let name = name.into();
        self.journal_apply(
            WalRecord::InstancePut { name: name.clone(), value: value.clone() },
            move |store, seq| {
                store.instance_seqs.insert(name.clone(), seq);
                store.instances.insert(name, value);
            },
        )
    }

    /// A clone of a tracked instance.
    pub fn instance(&self, name: &str) -> Option<Database> {
        self.inner.read().instances.get(name).cloned()
    }

    /// Names of all tracked instances.
    pub fn instance_names(&self) -> Vec<String> {
        self.inner.read().instances.keys().cloned().collect()
    }

    /// Commit sequence of the last feed event (load or delta) that
    /// touched instance `name` — 0 if never written. Unlike
    /// [`Repository::last_seq`], registry and artifact writes do not
    /// advance this, so it is the correct resume horizon for a
    /// recovered subscriber.
    pub fn instance_seq(&self, name: &str) -> u64 {
        self.inner.read().instance_seqs.get(name).copied().unwrap_or(0)
    }

    /// Apply an insert-only delta (per-relation tuple batches) to a
    /// tracked instance, journaled as a single WAL record. The write is
    /// validated (instance and relations must exist, arities must
    /// match) *before* journaling, so the log never carries a record
    /// that cannot replay. Returns the commit sequence.
    pub fn apply_instance_delta(
        &self,
        name: &str,
        inserts: Vec<(String, Vec<Tuple>)>,
    ) -> Result<u64, RepositoryError> {
        {
            let store = self.inner.read();
            let Some(db) = store.instances.get(name) else {
                return Err(RepositoryError::NotFound(format!("instance `{name}`")));
            };
            for (rel_name, tuples) in &inserts {
                let Some(rel) = db.relation(rel_name) else {
                    return Err(RepositoryError::InvalidWrite {
                        detail: format!("no relation `{rel_name}` in instance `{name}`"),
                    });
                };
                let arity = rel.schema.arity();
                if let Some(t) = tuples.iter().find(|t| t.arity() != arity) {
                    return Err(RepositoryError::InvalidWrite {
                        detail: format!(
                            "arity mismatch inserting into `{rel_name}`: got {}, want {arity}",
                            t.arity()
                        ),
                    });
                }
            }
        }
        let owned = name.to_string();
        self.journal_apply(
            WalRecord::InstanceDelta { name: owned.clone(), inserts: inserts.clone() },
            move |store, seq| {
                store.instance_seqs.insert(owned.clone(), seq);
                apply_instance_delta_to(store, &owned, &inserts);
            },
        )
    }

    // --- the subscription registry -----------------------------------------

    /// Register (or replace) a change-feed subscription, WAL-first.
    /// Returns the commit sequence of the registration.
    pub fn register_subscription(&self, sub: Subscription) -> Result<u64, RepositoryError> {
        self.journal_apply(WalRecord::Subscription(sub.clone()), move |store, _seq| {
            store.subscriptions.insert(sub.id, sub);
        })
    }

    /// Drop a subscription from the registry.
    pub fn drop_subscription(&self, id: u64) -> Result<u64, RepositoryError> {
        if !self.inner.read().subscriptions.contains_key(&id) {
            return Err(RepositoryError::NotFound(format!("subscription #{id}")));
        }
        self.journal_apply(WalRecord::SubscriptionDrop { id }, move |store, _seq| {
            store.subscriptions.remove(&id);
        })
    }

    /// Durably advance a subscriber's resume cursor (monotone: a replay
    /// or a late ack can never move it backwards).
    pub fn advance_cursor(&self, id: u64, cursor: u64) -> Result<u64, RepositoryError> {
        if !self.inner.read().subscriptions.contains_key(&id) {
            return Err(RepositoryError::NotFound(format!("subscription #{id}")));
        }
        self.journal_apply(WalRecord::SubscriptionCursor { id, cursor }, move |store, _seq| {
            if let Some(sub) = store.subscriptions.get_mut(&id) {
                sub.cursor = sub.cursor.max(cursor);
            }
        })
    }

    /// A clone of one registered subscription.
    pub fn subscription(&self, id: u64) -> Option<Subscription> {
        self.inner.read().subscriptions.get(&id).cloned()
    }

    /// All registered subscriptions, in id order.
    pub fn subscriptions(&self) -> Vec<Subscription> {
        self.inner.read().subscriptions.values().cloned().collect()
    }

    /// Record an operator invocation. Journaled like a store: callers
    /// should store the output artifact *before* recording the edge, so
    /// a crash between the two can orphan an artifact but never dangle
    /// an edge.
    pub fn record(
        &self,
        operator: impl Into<String>,
        inputs: Vec<ArtifactId>,
        output: ArtifactId,
    ) -> Result<(), RepositoryError> {
        let edge = LineageEdge { operator: operator.into(), inputs, output };
        {
            let mut tx = self.tx.lock();
            let mut store = self.inner.write();
            if let Some(tx) = tx.as_mut() {
                tx.buffer.push(WalRecord::Lineage(edge.clone()));
            } else if let Some(d) = &self.durable {
                d.append_now(&[WalRecord::Lineage(edge.clone())], &self.telemetry)?;
            }
            store.lineage.push(edge);
        }
        self.maybe_autocheckpoint();
        Ok(())
    }

    /// All lineage edges (clone).
    pub fn lineage(&self) -> Vec<LineageEdge> {
        self.inner.read().lineage.clone()
    }

    /// Transitive inputs of an artifact — the static-lineage query of
    /// Microsoft Repository (§1.4).
    pub fn upstream(&self, of: &ArtifactId) -> Vec<ArtifactId> {
        let lineage = self.inner.read().lineage.clone();
        let mut out: Vec<ArtifactId> = Vec::new();
        let mut frontier = vec![of.clone()];
        while let Some(cur) = frontier.pop() {
            for e in &lineage {
                if e.output == cur {
                    for i in &e.inputs {
                        if !out.contains(i) && i != of {
                            out.push(i.clone());
                            frontier.push(i.clone());
                        }
                    }
                }
            }
        }
        out.sort();
        out
    }

    /// Artifacts (transitively) derived from `of` — impact analysis.
    pub fn downstream(&self, of: &ArtifactId) -> Vec<ArtifactId> {
        let lineage = self.inner.read().lineage.clone();
        let mut out: Vec<ArtifactId> = Vec::new();
        let mut frontier = vec![of.clone()];
        while let Some(cur) = frontier.pop() {
            for e in &lineage {
                if e.inputs.contains(&cur) && !out.contains(&e.output) && e.output != *of {
                    out.push(e.output.clone());
                    frontier.push(e.output.clone());
                }
            }
        }
        out.sort();
        out
    }

    // --- transactions -----------------------------------------------------

    /// Begin a transaction: take a whole-store savepoint and start
    /// buffering journal records. One transaction at a time; writes from
    /// any thread while it is open belong to it (single-writer
    /// discipline is the caller's job, as with any savepoint API).
    pub fn begin(&self) -> Result<(), RepositoryError> {
        let mut tx = self.tx.lock();
        if tx.is_some() {
            return Err(RepositoryError::TransactionActive);
        }
        let store = self.inner.read();
        *tx = Some(TxState { savepoint: store.clone(), buffer: Vec::new() });
        Ok(())
    }

    /// Commit the open transaction. In durable mode the buffered records
    /// are flushed as **one** WAL batch frame — all-or-nothing against
    /// crashes — and a flush failure rolls the in-memory state back to
    /// the savepoint before surfacing the error, so memory and log never
    /// diverge.
    pub fn commit(&self) -> Result<(), RepositoryError> {
        {
            let mut tx = self.tx.lock();
            let Some(state) = tx.take() else {
                return Err(RepositoryError::NoTransaction);
            };
            if let Some(d) = &self.durable {
                if !state.buffer.is_empty() {
                    if let Err(e) = d.append_now(&state.buffer, &self.telemetry) {
                        *self.inner.write() = state.savepoint;
                        return Err(RepositoryError::Storage(e));
                    }
                }
            } else if !state.buffer.is_empty() {
                // ephemeral commits advance the feed cursor space too
                self.ephemeral_seq.fetch_add(1, Ordering::AcqRel);
            }
        }
        self.maybe_autocheckpoint();
        Ok(())
    }

    /// Abandon the open transaction, restoring the savepoint.
    pub fn rollback(&self) -> Result<(), RepositoryError> {
        let mut tx = self.tx.lock();
        let Some(state) = tx.take() else {
            return Err(RepositoryError::NoTransaction);
        };
        *self.inner.write() = state.savepoint;
        Ok(())
    }

    /// Is a transaction currently open?
    pub fn in_transaction(&self) -> bool {
        self.tx.lock().is_some()
    }

    // --- snapshots & checkpointing ----------------------------------------

    /// Compact the WAL into an atomically swapped snapshot:
    /// write-new-then-swap (`snapshot.tmp` → rename over `snapshot`),
    /// then reset the log. Never overwrites the live snapshot in place;
    /// a crash at any step leaves a recoverable state (see
    /// [`Repository::open_durable`]).
    pub fn checkpoint(&self) -> Result<(), RepositoryError> {
        let Some(d) = &self.durable else {
            return Err(RepositoryError::NotDurable);
        };
        let started = mm_telemetry::clock::now();
        // hold the tx lock throughout: writers queue behind it, so the
        // snapshot is a consistent cut, and no uncommitted transaction
        // state can leak into it
        let tx = self.tx.lock();
        if tx.is_some() {
            return Err(RepositoryError::TransactionActive);
        }
        let store = self.inner.read();
        let mut st = d.state.lock();
        let bytes = snapshot_bytes(&store, st.next_seq - 1);
        drop(store);
        d.storage.write(SNAPSHOT_TMP_FILE, &bytes)?;
        d.storage.rename(SNAPSHOT_TMP_FILE, SNAPSHOT_FILE)?;
        // from here the snapshot is authoritative; resetting the log is
        // best-effort (stale frames are skipped by sequence on recovery)
        d.wal.reset()?;
        st.batches_since_checkpoint = 0;
        self.telemetry.count(Counter::Checkpoints, 1);
        if let Some(m) = self.telemetry.metrics() {
            let elapsed = mm_telemetry::clock::elapsed_us(started);
            m.observe_us(Timer::Checkpoint, elapsed);
            m.observe_hist(Hist::WalCheckpointUs, elapsed);
        }
        Ok(())
    }

    fn maybe_autocheckpoint(&self) {
        let Some(d) = &self.durable else { return };
        let Some(every) = d.opts.checkpoint_every else { return };
        if d.state.lock().batches_since_checkpoint < every {
            return;
        }
        if let Err(e) = self.checkpoint() {
            // not data loss (the WAL has everything); record for callers
            if let Some(d) = &self.durable {
                let err = match e {
                    RepositoryError::Storage(s) => s,
                    RepositoryError::TransactionActive => return, // retry later
                    other => StorageError::io(SNAPSHOT_FILE, other.to_string()),
                };
                d.state.lock().checkpoint_error = Some(err);
            }
        }
    }

    /// Serialize the whole repository to a self-validating snapshot:
    /// magic, format version, last WAL sequence, CRC32 over the body.
    pub fn snapshot(&self) -> Bytes {
        let store = self.inner.read();
        let seq = self.durable.as_ref().map(|d| d.state.lock().next_seq - 1).unwrap_or(0);
        snapshot_bytes(&store, seq)
    }

    /// The canonical body encoding of the current state, without the
    /// snapshot header. Two repositories hold identical artifact and
    /// lineage state iff their `state_bytes` agree — the comparison the
    /// crash-recovery suite is built on.
    pub fn state_bytes(&self) -> Bytes {
        encode_store(&self.inner.read())
    }

    /// Restore an ephemeral repository from a snapshot.
    pub fn restore(bytes: Bytes) -> Result<Self, RepositoryError> {
        let (store, _) = decode_snapshot(bytes)?;
        Ok(Repository {
            inner: RwLock::new(store),
            tx: Mutex::new(None),
            durable: None,
            telemetry: Telemetry::disabled(),
            ephemeral_seq: AtomicU64::new(0),
        })
    }
}

fn apply_record(store: &mut Store, rec: WalRecord, seq: u64) {
    match rec {
        WalRecord::Schema { name, value } => {
            store.schemas.entry(name).or_default().push(value)
        }
        WalRecord::Mapping { name, value } => {
            store.mappings.entry(name).or_default().push(value)
        }
        WalRecord::ViewSet { name, value } => {
            store.viewsets.entry(name).or_default().push(value)
        }
        WalRecord::Correspondences { name, value } => {
            store.correspondences.entry(name).or_default().push(value)
        }
        WalRecord::Lineage(edge) => store.lineage.push(edge),
        WalRecord::Subscription(sub) => {
            store.subscriptions.insert(sub.id, sub);
        }
        WalRecord::SubscriptionDrop { id } => {
            store.subscriptions.remove(&id);
        }
        WalRecord::SubscriptionCursor { id, cursor } => {
            if let Some(sub) = store.subscriptions.get_mut(&id) {
                sub.cursor = sub.cursor.max(cursor);
            }
        }
        WalRecord::InstancePut { name, value } => {
            store.instance_seqs.insert(name.clone(), seq);
            store.instances.insert(name, value);
        }
        WalRecord::InstanceDelta { name, inserts } => {
            store.instance_seqs.insert(name.clone(), seq);
            apply_instance_delta_to(store, &name, &inserts);
        }
    }
}

/// Apply an insert-only delta to a tracked instance. Relations that do
/// not exist are skipped — the public write path validated the delta
/// before journaling, so this only arises for records hand-crafted
/// outside it, and replay must stay total (never panic on a log).
fn apply_instance_delta_to(store: &mut Store, name: &str, inserts: &[(String, Vec<Tuple>)]) {
    let Some(db) = store.instances.get_mut(name) else { return };
    for (rel_name, tuples) in inserts {
        if let Some(rel) = db.relation_mut(rel_name) {
            for t in tuples {
                rel.insert(t.clone());
            }
        }
    }
}

/// The v4 pool section: every distinct poolable text value in the
/// store's instances, in first-occurrence order (instance name →
/// relation → tuple insertion order → column), so a reload re-interns
/// them before any tuple decodes and the decoded databases land on warm
/// symbols with stable relative ids.
fn encode_pool_section(w: &mut Writer, store: &Store) {
    let mut seen: HashSet<&str> = HashSet::new();
    let mut strings: Vec<&str> = Vec::new();
    for db in store.instances.values() {
        for (_, rel) in db.relations() {
            for t in rel.iter() {
                for v in t.values() {
                    if let Some(s) = v.as_text() {
                        if s.len() <= mm_instance::intern::MAX_INTERN_LEN
                            && seen.insert(s)
                        {
                            strings.push(s);
                        }
                    }
                }
            }
        }
    }
    w.u32(strings.len() as u32);
    for s in strings {
        w.str(s);
    }
}

fn encode_store(store: &Store) -> Bytes {
    let mut w = Writer::new();
    encode_pool_section(&mut w, store);
    encode_versions(&mut w, &store.schemas);
    encode_versions(&mut w, &store.mappings);
    encode_versions(&mut w, &store.viewsets);
    encode_versions(&mut w, &store.correspondences);
    w.u32(store.lineage.len() as u32);
    for e in &store.lineage {
        e.encode(&mut w);
    }
    w.u32(store.subscriptions.len() as u32);
    for sub in store.subscriptions.values() {
        sub.encode(&mut w);
    }
    w.u32(store.instances.len() as u32);
    for (name, db) in &store.instances {
        w.str(name);
        w.u64(store.instance_seqs.get(name).copied().unwrap_or(0));
        db.encode(&mut w);
    }
    w.finish()
}

fn snapshot_bytes(store: &Store, seq: u64) -> Bytes {
    let body = encode_store(store);
    let mut w = Writer::new();
    w.u32(SNAPSHOT_MAGIC);
    w.u8(SNAPSHOT_VERSION);
    w.u64(seq);
    w.u32(crc32(&body));
    let mut out = w.finish().to_vec();
    out.extend_from_slice(&body);
    Bytes::from(out)
}

fn decode_snapshot(bytes: Bytes) -> Result<(Store, u64), RepositoryError> {
    if bytes.len() < SNAPSHOT_HEADER_LEN {
        return Err(RepositoryError::BadSnapshot {
            detail: format!(
                "truncated header: {} of {SNAPSHOT_HEADER_LEN} bytes",
                bytes.len()
            ),
        });
    }
    let mut r = Reader::new(bytes.slice(0..SNAPSHOT_HEADER_LEN));
    let magic = r.u32()?;
    if magic != SNAPSHOT_MAGIC {
        return Err(RepositoryError::BadSnapshot {
            detail: format!("bad magic at offset 0: {magic:#010x}"),
        });
    }
    let version = r.u8()?;
    if !(MIN_SNAPSHOT_VERSION..=SNAPSHOT_VERSION).contains(&version) {
        return Err(RepositoryError::BadSnapshot {
            detail: format!("unsupported format version {version} at offset 4"),
        });
    }
    let seq = r.u64()?;
    let expected_crc = r.u32()?;
    let body = bytes.slice(SNAPSHOT_HEADER_LEN..bytes.len());
    let found_crc = crc32(&body);
    if found_crc != expected_crc {
        return Err(RepositoryError::BadSnapshot {
            detail: format!(
                "body checksum mismatch over offsets {SNAPSHOT_HEADER_LEN}..{}: \
                 expected {expected_crc:#010x}, found {found_crc:#010x}",
                bytes.len()
            ),
        });
    }
    let mut r = Reader::new(body);
    if version >= 4 {
        // pool section: bulk pre-intern. Interning is bounded (length and
        // pool-capacity caps) and infallible, so a corrupted section can
        // waste pool entries but never panic or fail recovery by itself —
        // the CRC above is the integrity gate.
        let n = r.seq_len()?;
        for _ in 0..n {
            let s = r.str()?;
            let _ = mm_instance::intern::intern(&s);
        }
    }
    let schemas = decode_versions::<Schema>(&mut r)?;
    let mappings = decode_versions::<Mapping>(&mut r)?;
    let viewsets = decode_versions::<ViewSet>(&mut r)?;
    let correspondences = decode_versions::<CorrespondenceSet>(&mut r)?;
    let n = r.seq_len()?;
    let mut lineage = Vec::with_capacity(n);
    for _ in 0..n {
        lineage.push(LineageEdge::decode(&mut r)?);
    }
    let n = r.seq_len()?;
    let mut subscriptions = BTreeMap::new();
    for _ in 0..n {
        let sub = Subscription::decode(&mut r)?;
        subscriptions.insert(sub.id, sub);
    }
    let n = r.seq_len()?;
    let mut instances = BTreeMap::new();
    let mut instance_seqs = BTreeMap::new();
    for _ in 0..n {
        let name = r.str()?;
        let event_seq = r.u64()?;
        if event_seq != 0 {
            instance_seqs.insert(name.clone(), event_seq);
        }
        instances.insert(name, Database::decode(&mut r)?);
    }
    Ok((
        Store {
            schemas,
            mappings,
            viewsets,
            correspondences,
            lineage,
            subscriptions,
            instances,
            instance_seqs,
        },
        seq,
    ))
}

fn encode_versions<T: Encode>(w: &mut Writer, map: &BTreeMap<String, Vec<T>>) {
    w.u32(map.len() as u32);
    for (name, versions) in map {
        w.str(name);
        w.u32(versions.len() as u32);
        for v in versions {
            v.encode(w);
        }
    }
}

fn decode_versions<T: Decode>(r: &mut Reader) -> Result<BTreeMap<String, Vec<T>>, DecodeError> {
    let n = r.seq_len()?;
    let mut map = BTreeMap::new();
    for _ in 0..n {
        let name = r.str()?;
        let k = r.seq_len()?;
        let mut versions = Vec::with_capacity(k);
        for _ in 0..k {
            versions.push(T::decode(r)?);
        }
        map.insert(name, versions);
    }
    Ok(map)
}

impl Encode for ArtifactId {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self.kind {
            ArtifactKind::Schema => 0,
            ArtifactKind::Mapping => 1,
            ArtifactKind::ViewSet => 2,
            ArtifactKind::Correspondences => 3,
        });
        w.str(&self.name.name);
        w.u32(self.name.version);
    }
}

impl Decode for ArtifactId {
    fn decode(r: &mut Reader) -> Result<Self, DecodeError> {
        let kind = match r.u8()? {
            0 => ArtifactKind::Schema,
            1 => ArtifactKind::Mapping,
            2 => ArtifactKind::ViewSet,
            3 => ArtifactKind::Correspondences,
            t => return Err(DecodeError(format!("unknown artifact kind {t}"))),
        };
        Ok(ArtifactId { kind, name: VersionedName { name: r.str()?, version: r.u32()? } })
    }
}

impl Encode for LineageEdge {
    fn encode(&self, w: &mut Writer) {
        w.str(&self.operator);
        w.seq(&self.inputs, |w, id| id.encode(w));
        self.output.encode(w);
    }
}

impl Decode for LineageEdge {
    fn decode(r: &mut Reader) -> Result<Self, DecodeError> {
        Ok(LineageEdge {
            operator: r.str()?,
            inputs: r.seq(ArtifactId::decode)?,
            output: ArtifactId::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use mm_expr::{Expr, MappingConstraint, ViewDef};
    use mm_metamodel::{DataType, SchemaBuilder};

    fn sample_schema(name: &str) -> Schema {
        SchemaBuilder::new(name)
            .relation("R", &[("a", DataType::Int)])
            .build()
            .unwrap()
    }

    #[test]
    fn versioning_is_monotone() {
        let repo = Repository::new();
        let v0 = repo.store_schema("S", sample_schema("S")).unwrap();
        let v1 = repo.store_schema("S", sample_schema("S")).unwrap();
        assert_eq!(v0.name.version, 0);
        assert_eq!(v1.name.version, 1);
        assert_eq!(repo.schema_versions("S"), 2);
        let (latest, id) = repo.latest_schema("S").unwrap();
        assert_eq!(id.name.version, 1);
        assert_eq!(latest.name, "S");
        assert!(repo.get_schema("S", 0).is_ok());
        assert!(repo.get_schema("S", 7).is_err());
    }

    #[test]
    fn lineage_upstream_downstream() {
        let repo = Repository::new();
        let s1 = repo.store_schema("S1", sample_schema("S1")).unwrap();
        let s2 = repo.store_schema("S2", sample_schema("S2")).unwrap();
        let m = repo
            .store_mapping(
                "m12",
                Mapping::with_constraints("S1", "S2", vec![MappingConstraint::ExprEq {
                    source: Expr::base("R"),
                    target: Expr::base("R"),
                }]),
            )
            .unwrap();
        repo.record("match", vec![s1.clone(), s2.clone()], m.clone()).unwrap();
        let mut vs = ViewSet::new("S1", "S2");
        vs.push(ViewDef::new("R", Expr::base("R")));
        let v = repo.store_viewset("v12", vs).unwrap();
        repo.record("transgen", vec![m.clone()], v.clone()).unwrap();

        let up = repo.upstream(&v);
        assert!(up.contains(&m));
        assert!(up.contains(&s1));
        assert!(up.contains(&s2));
        let down = repo.downstream(&s1);
        assert!(down.contains(&m));
        assert!(down.contains(&v));
        assert!(repo.upstream(&s1).is_empty());
    }

    #[test]
    fn snapshot_restores_everything() {
        let repo = Repository::new();
        let s = repo.store_schema("S", sample_schema("S")).unwrap();
        let m = repo
            .store_mapping(
                "m",
                Mapping::with_constraints("S", "T", vec![MappingConstraint::ExprEq {
                    source: Expr::base("R").project(&["a"]),
                    target: Expr::base("R2"),
                }]),
            )
            .unwrap();
        repo.record("modelgen", vec![s], m).unwrap();
        let mut cs = CorrespondenceSet::new("S", "T");
        cs.push(mm_expr::Correspondence::new(
            mm_expr::PathRef::attr("R", "a"),
            mm_expr::PathRef::attr("R2", "b"),
            0.9,
        ));
        repo.store_correspondences("c", cs).unwrap();

        let bytes = repo.snapshot();
        let restored = Repository::restore(bytes).unwrap();
        assert_eq!(restored.schema_versions("S"), 1);
        assert_eq!(restored.mapping_versions("m"), 1);
        assert_eq!(restored.correspondences_versions("c"), 1);
        assert_eq!(restored.lineage().len(), 1);
        assert_eq!(
            restored.get_mapping("m", 0).unwrap(),
            repo.get_mapping("m", 0).unwrap()
        );
    }

    #[test]
    fn bad_snapshot_rejected_with_detail() {
        match Repository::restore(Bytes::from_static(b"nope-and-padding-")) {
            Err(RepositoryError::BadSnapshot { detail }) => {
                assert!(detail.contains("magic"), "{detail}");
            }
            other => panic!("expected BadSnapshot, got {:?}", other.map(|_| ()).err()),
        }
        match Repository::restore(Bytes::from_static(b"x")) {
            Err(RepositoryError::BadSnapshot { detail }) => {
                assert!(detail.contains("truncated"), "{detail}");
            }
            other => panic!("expected BadSnapshot, got {:?}", other.map(|_| ()).err()),
        }
    }

    #[test]
    fn corrupted_snapshot_body_fails_checksum_with_offset_detail() {
        let repo = Repository::new();
        repo.store_schema("S", sample_schema("S")).unwrap();
        let pristine = repo.snapshot().to_vec();
        // flip one bit in every body byte position: always BadSnapshot,
        // never a garbled decode or bogus data
        for off in SNAPSHOT_HEADER_LEN..pristine.len() {
            let mut corrupt = pristine.clone();
            corrupt[off] ^= 0x01;
            match Repository::restore(Bytes::from(corrupt)) {
                Err(RepositoryError::BadSnapshot { detail }) => {
                    assert!(detail.contains("checksum"), "{detail}");
                    assert!(detail.contains("expected"), "{detail}");
                }
                other => panic!(
                    "offset {off}: expected BadSnapshot, got {:?}",
                    other.map(|_| ()).err()
                ),
            }
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let repo = Repository::new();
        repo.store_schema("S", sample_schema("S")).unwrap();
        let mut bytes = repo.snapshot().to_vec();
        bytes[4] = 9; // version byte
        match Repository::restore(Bytes::from(bytes)) {
            Err(RepositoryError::BadSnapshot { detail }) => {
                assert!(detail.contains("version 9"), "{detail}");
            }
            other => panic!("expected BadSnapshot, got {:?}", other.map(|_| ()).err()),
        }
    }

    #[test]
    fn concurrent_reads_and_writes() {
        use std::sync::Arc;
        let repo = Arc::new(Repository::new());
        let mut handles = Vec::new();
        for i in 0..4 {
            let r = Arc::clone(&repo);
            handles.push(std::thread::spawn(move || {
                for j in 0..25 {
                    r.store_schema(format!("S{i}"), sample_schema(&format!("S{i}_{j}")))
                        .unwrap();
                    let _ = r.latest_schema(&format!("S{i}"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..4 {
            assert_eq!(repo.schema_versions(&format!("S{i}")), 25);
        }
    }

    #[test]
    fn durable_round_trip_via_wal_only() {
        let mem = MemStorage::new();
        {
            let repo =
                Repository::open_durable(mem.clone(), DurableOptions::default()).unwrap();
            let s = repo.store_schema("S", sample_schema("S")).unwrap();
            let m = repo
                .store_mapping(
                    "m",
                    Mapping::with_constraints("S", "T", vec![MappingConstraint::ExprEq {
                        source: Expr::base("R"),
                        target: Expr::base("U"),
                    }]),
                )
                .unwrap();
            repo.record("op", vec![s], m).unwrap();
            assert_eq!(repo.durable_seq(), Some(3));
        } // "crash": drop without checkpoint
        let reopened =
            Repository::open_durable(mem.clone(), DurableOptions::default()).unwrap();
        assert_eq!(reopened.schema_versions("S"), 1);
        assert_eq!(reopened.mapping_versions("m"), 1);
        assert_eq!(reopened.lineage().len(), 1);
        assert_eq!(reopened.durable_seq(), Some(3));
    }

    #[test]
    fn checkpoint_compacts_and_recovery_does_not_double_apply() {
        let mem = MemStorage::new();
        let repo = Repository::open_durable(mem.clone(), DurableOptions::default()).unwrap();
        repo.store_schema("S", sample_schema("S")).unwrap();
        repo.store_schema("S", sample_schema("S")).unwrap();
        repo.checkpoint().unwrap();
        assert_eq!(mem.len_of(WAL_FILE), None); // log reset
        repo.store_schema("T", sample_schema("T")).unwrap();
        drop(repo);
        let reopened =
            Repository::open_durable(mem.clone(), DurableOptions::default()).unwrap();
        assert_eq!(reopened.schema_versions("S"), 2); // exactly, not 4
        assert_eq!(reopened.schema_versions("T"), 1);
    }

    #[test]
    fn transaction_commit_is_one_frame_and_rollback_restores() {
        let mem = MemStorage::new();
        let repo = Repository::open_durable(mem.clone(), DurableOptions::default()).unwrap();
        repo.store_schema("base", sample_schema("base")).unwrap();
        let before = repo.state_bytes();

        repo.begin().unwrap();
        repo.store_schema("a", sample_schema("a")).unwrap();
        repo.store_schema("b", sample_schema("b")).unwrap();
        assert!(repo.in_transaction());
        repo.rollback().unwrap();
        assert_eq!(repo.state_bytes(), before);
        // nothing from the rolled-back tx reached the log
        let reopened =
            Repository::open_durable(mem.clone(), DurableOptions::default()).unwrap();
        assert_eq!(reopened.state_bytes(), before);

        repo.begin().unwrap();
        repo.store_schema("a", sample_schema("a")).unwrap();
        repo.store_schema("b", sample_schema("b")).unwrap();
        let seq_before = repo.durable_seq().unwrap();
        repo.commit().unwrap();
        assert_eq!(repo.durable_seq().unwrap(), seq_before + 1); // one frame
        let reopened =
            Repository::open_durable(mem.clone(), DurableOptions::default()).unwrap();
        assert_eq!(reopened.state_bytes(), repo.state_bytes());
    }

    #[test]
    fn nested_begin_and_stray_commit_are_typed_errors() {
        let repo = Repository::new();
        assert!(matches!(repo.commit(), Err(RepositoryError::NoTransaction)));
        assert!(matches!(repo.rollback(), Err(RepositoryError::NoTransaction)));
        repo.begin().unwrap();
        assert!(matches!(repo.begin(), Err(RepositoryError::TransactionActive)));
        repo.rollback().unwrap();
        assert!(matches!(repo.checkpoint(), Err(RepositoryError::NotDurable)));
    }

    #[test]
    fn autocheckpoint_resets_wal_periodically() {
        let mem = MemStorage::new();
        let repo = Repository::open_durable(
            mem.clone(),
            DurableOptions { checkpoint_every: Some(2) },
        )
        .unwrap();
        repo.store_schema("A", sample_schema("A")).unwrap();
        assert!(mem.len_of(WAL_FILE).is_some());
        repo.store_schema("B", sample_schema("B")).unwrap(); // triggers
        assert_eq!(mem.len_of(WAL_FILE), None);
        assert!(mem.len_of(SNAPSHOT_FILE).is_some());
        assert!(repo.take_checkpoint_error().is_none());
        drop(repo);
        let reopened =
            Repository::open_durable(mem.clone(), DurableOptions::default()).unwrap();
        assert_eq!(reopened.schema_versions("A"), 1);
        assert_eq!(reopened.schema_versions("B"), 1);
    }
}
