//! The versioned artifact store with operator lineage.

use crate::codec::{Decode, DecodeError, Encode, Reader, Writer};
use bytes::Bytes;
use mm_expr::{CorrespondenceSet, Mapping, ViewSet};
use mm_metamodel::Schema;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;

/// What kind of artifact an id refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ArtifactKind {
    Schema,
    Mapping,
    ViewSet,
    Correspondences,
}

impl fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArtifactKind::Schema => "schema",
            ArtifactKind::Mapping => "mapping",
            ArtifactKind::ViewSet => "viewset",
            ArtifactKind::Correspondences => "correspondences",
        })
    }
}

/// A (name, version) pair naming one stored artifact version.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VersionedName {
    pub name: String,
    pub version: u32,
}

impl fmt::Display for VersionedName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@v{}", self.name, self.version)
    }
}

/// Fully qualified artifact id.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArtifactId {
    pub kind: ArtifactKind,
    pub name: VersionedName,
}

impl fmt::Display for ArtifactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.kind, self.name)
    }
}

/// A lineage edge: `operator(inputs) = output` — the repository's record
/// of one model-management operator invocation (impact analysis, §1.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageEdge {
    pub operator: String,
    pub inputs: Vec<ArtifactId>,
    pub output: ArtifactId,
}

/// Repository errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepositoryError {
    NotFound(String),
    Decode(DecodeError),
    /// Snapshot header mismatch.
    BadSnapshot,
}

impl fmt::Display for RepositoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepositoryError::NotFound(n) => write!(f, "artifact `{n}` not found"),
            RepositoryError::Decode(e) => write!(f, "{e}"),
            RepositoryError::BadSnapshot => f.write_str("bad snapshot header"),
        }
    }
}

impl std::error::Error for RepositoryError {}

impl From<DecodeError> for RepositoryError {
    fn from(e: DecodeError) -> Self {
        RepositoryError::Decode(e)
    }
}

#[derive(Default)]
struct Store {
    schemas: BTreeMap<String, Vec<Schema>>,
    mappings: BTreeMap<String, Vec<Mapping>>,
    viewsets: BTreeMap<String, Vec<ViewSet>>,
    correspondences: BTreeMap<String, Vec<CorrespondenceSet>>,
    lineage: Vec<LineageEdge>,
}

/// Thread-safe versioned metadata repository.
#[derive(Default)]
pub struct Repository {
    inner: RwLock<Store>,
}

const SNAPSHOT_MAGIC: u32 = 0x4D4D5232; // "MMR2"

macro_rules! accessors {
    ($store_fn:ident, $get_fn:ident, $latest_fn:ident, $versions_fn:ident,
     $field:ident, $ty:ty, $kind:expr) => {
        /// Store a new version; returns its id.
        pub fn $store_fn(&self, name: impl Into<String>, value: $ty) -> ArtifactId {
            let name = name.into();
            let mut store = self.inner.write();
            let versions = store.$field.entry(name.clone()).or_default();
            versions.push(value);
            ArtifactId {
                kind: $kind,
                name: VersionedName { name, version: versions.len() as u32 - 1 },
            }
        }

        /// Fetch a specific version.
        pub fn $get_fn(&self, name: &str, version: u32) -> Result<$ty, RepositoryError> {
            self.inner
                .read()
                .$field
                .get(name)
                .and_then(|v| v.get(version as usize))
                .cloned()
                .ok_or_else(|| RepositoryError::NotFound(format!("{name}@v{version}")))
        }

        /// Fetch the latest version with its id.
        pub fn $latest_fn(&self, name: &str) -> Result<($ty, ArtifactId), RepositoryError> {
            let store = self.inner.read();
            let versions = store
                .$field
                .get(name)
                .filter(|v| !v.is_empty())
                .ok_or_else(|| RepositoryError::NotFound(name.to_string()))?;
            let version = versions.len() as u32 - 1;
            Ok((
                versions[version as usize].clone(),
                ArtifactId {
                    kind: $kind,
                    name: VersionedName { name: name.to_string(), version },
                },
            ))
        }

        /// Number of stored versions.
        pub fn $versions_fn(&self, name: &str) -> u32 {
            self.inner.read().$field.get(name).map(|v| v.len() as u32).unwrap_or(0)
        }
    };
}

impl Repository {
    pub fn new() -> Self {
        Self::default()
    }

    accessors!(store_schema, get_schema, latest_schema, schema_versions,
               schemas, Schema, ArtifactKind::Schema);
    accessors!(store_mapping, get_mapping, latest_mapping, mapping_versions,
               mappings, Mapping, ArtifactKind::Mapping);
    accessors!(store_viewset, get_viewset, latest_viewset, viewset_versions,
               viewsets, ViewSet, ArtifactKind::ViewSet);
    accessors!(store_correspondences, get_correspondences, latest_correspondences,
               correspondences_versions, correspondences, CorrespondenceSet,
               ArtifactKind::Correspondences);

    /// Names of all stored schemas.
    pub fn schema_names(&self) -> Vec<String> {
        self.inner.read().schemas.keys().cloned().collect()
    }

    /// Names of all stored mappings.
    pub fn mapping_names(&self) -> Vec<String> {
        self.inner.read().mappings.keys().cloned().collect()
    }

    /// Names of all stored view sets.
    pub fn viewset_names(&self) -> Vec<String> {
        self.inner.read().viewsets.keys().cloned().collect()
    }

    /// Names of all stored correspondence sets.
    pub fn correspondence_names(&self) -> Vec<String> {
        self.inner.read().correspondences.keys().cloned().collect()
    }

    /// Record an operator invocation.
    pub fn record(&self, operator: impl Into<String>, inputs: Vec<ArtifactId>, output: ArtifactId) {
        self.inner.write().lineage.push(LineageEdge {
            operator: operator.into(),
            inputs,
            output,
        });
    }

    /// All lineage edges (clone).
    pub fn lineage(&self) -> Vec<LineageEdge> {
        self.inner.read().lineage.clone()
    }

    /// Transitive inputs of an artifact — the static-lineage query of
    /// Microsoft Repository (§1.4).
    pub fn upstream(&self, of: &ArtifactId) -> Vec<ArtifactId> {
        let lineage = self.inner.read().lineage.clone();
        let mut out: Vec<ArtifactId> = Vec::new();
        let mut frontier = vec![of.clone()];
        while let Some(cur) = frontier.pop() {
            for e in &lineage {
                if e.output == cur {
                    for i in &e.inputs {
                        if !out.contains(i) && i != of {
                            out.push(i.clone());
                            frontier.push(i.clone());
                        }
                    }
                }
            }
        }
        out.sort();
        out
    }

    /// Artifacts (transitively) derived from `of` — impact analysis.
    pub fn downstream(&self, of: &ArtifactId) -> Vec<ArtifactId> {
        let lineage = self.inner.read().lineage.clone();
        let mut out: Vec<ArtifactId> = Vec::new();
        let mut frontier = vec![of.clone()];
        while let Some(cur) = frontier.pop() {
            for e in &lineage {
                if e.inputs.contains(&cur) && !out.contains(&e.output) && e.output != *of {
                    out.push(e.output.clone());
                    frontier.push(e.output.clone());
                }
            }
        }
        out.sort();
        out
    }

    /// Serialize the whole repository to a snapshot.
    pub fn snapshot(&self) -> Bytes {
        let store = self.inner.read();
        let mut w = Writer::new();
        w.u32(SNAPSHOT_MAGIC);
        encode_versions(&mut w, &store.schemas);
        encode_versions(&mut w, &store.mappings);
        encode_versions(&mut w, &store.viewsets);
        encode_versions(&mut w, &store.correspondences);
        w.u32(store.lineage.len() as u32);
        for e in &store.lineage {
            w.str(&e.operator);
            encode_ids(&mut w, &e.inputs);
            encode_id(&mut w, &e.output);
        }
        w.finish()
    }

    /// Restore a repository from a snapshot.
    pub fn restore(bytes: Bytes) -> Result<Self, RepositoryError> {
        let mut r = Reader::new(bytes);
        if r.u32()? != SNAPSHOT_MAGIC {
            return Err(RepositoryError::BadSnapshot);
        }
        let schemas = decode_versions::<Schema>(&mut r)?;
        let mappings = decode_versions::<Mapping>(&mut r)?;
        let viewsets = decode_versions::<ViewSet>(&mut r)?;
        let correspondences = decode_versions::<CorrespondenceSet>(&mut r)?;
        let n = r.u32()? as usize;
        let mut lineage = Vec::with_capacity(n);
        for _ in 0..n {
            let operator = r.str()?;
            let inputs = decode_ids(&mut r)?;
            let output = decode_id(&mut r)?;
            lineage.push(LineageEdge { operator, inputs, output });
        }
        Ok(Repository {
            inner: RwLock::new(Store { schemas, mappings, viewsets, correspondences, lineage }),
        })
    }
}

fn encode_versions<T: Encode>(w: &mut Writer, map: &BTreeMap<String, Vec<T>>) {
    w.u32(map.len() as u32);
    for (name, versions) in map {
        w.str(name);
        w.u32(versions.len() as u32);
        for v in versions {
            v.encode(w);
        }
    }
}

fn decode_versions<T: Decode>(r: &mut Reader) -> Result<BTreeMap<String, Vec<T>>, DecodeError> {
    let n = r.u32()? as usize;
    let mut map = BTreeMap::new();
    for _ in 0..n {
        let name = r.str()?;
        let k = r.u32()? as usize;
        let mut versions = Vec::with_capacity(k);
        for _ in 0..k {
            versions.push(T::decode(r)?);
        }
        map.insert(name, versions);
    }
    Ok(map)
}

fn encode_id(w: &mut Writer, id: &ArtifactId) {
    w.u8(match id.kind {
        ArtifactKind::Schema => 0,
        ArtifactKind::Mapping => 1,
        ArtifactKind::ViewSet => 2,
        ArtifactKind::Correspondences => 3,
    });
    w.str(&id.name.name);
    w.u32(id.name.version);
}

fn decode_id(r: &mut Reader) -> Result<ArtifactId, DecodeError> {
    let kind = match r.u8()? {
        0 => ArtifactKind::Schema,
        1 => ArtifactKind::Mapping,
        2 => ArtifactKind::ViewSet,
        3 => ArtifactKind::Correspondences,
        t => return Err(DecodeError(format!("unknown artifact kind {t}"))),
    };
    Ok(ArtifactId { kind, name: VersionedName { name: r.str()?, version: r.u32()? } })
}

fn encode_ids(w: &mut Writer, ids: &[ArtifactId]) {
    w.u32(ids.len() as u32);
    for id in ids {
        encode_id(w, id);
    }
}

fn decode_ids(r: &mut Reader) -> Result<Vec<ArtifactId>, DecodeError> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_id(r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_expr::{Expr, MappingConstraint, ViewDef};
    use mm_metamodel::{DataType, SchemaBuilder};

    fn sample_schema(name: &str) -> Schema {
        SchemaBuilder::new(name)
            .relation("R", &[("a", DataType::Int)])
            .build()
            .unwrap()
    }

    #[test]
    fn versioning_is_monotone() {
        let repo = Repository::new();
        let v0 = repo.store_schema("S", sample_schema("S"));
        let v1 = repo.store_schema("S", sample_schema("S"));
        assert_eq!(v0.name.version, 0);
        assert_eq!(v1.name.version, 1);
        assert_eq!(repo.schema_versions("S"), 2);
        let (latest, id) = repo.latest_schema("S").unwrap();
        assert_eq!(id.name.version, 1);
        assert_eq!(latest.name, "S");
        assert!(repo.get_schema("S", 0).is_ok());
        assert!(repo.get_schema("S", 7).is_err());
    }

    #[test]
    fn lineage_upstream_downstream() {
        let repo = Repository::new();
        let s1 = repo.store_schema("S1", sample_schema("S1"));
        let s2 = repo.store_schema("S2", sample_schema("S2"));
        let m = repo.store_mapping(
            "m12",
            Mapping::with_constraints("S1", "S2", vec![MappingConstraint::ExprEq {
                source: Expr::base("R"),
                target: Expr::base("R"),
            }]),
        );
        repo.record("match", vec![s1.clone(), s2.clone()], m.clone());
        let mut vs = ViewSet::new("S1", "S2");
        vs.push(ViewDef::new("R", Expr::base("R")));
        let v = repo.store_viewset("v12", vs);
        repo.record("transgen", vec![m.clone()], v.clone());

        let up = repo.upstream(&v);
        assert!(up.contains(&m));
        assert!(up.contains(&s1));
        assert!(up.contains(&s2));
        let down = repo.downstream(&s1);
        assert!(down.contains(&m));
        assert!(down.contains(&v));
        assert!(repo.upstream(&s1).is_empty());
    }

    #[test]
    fn snapshot_restores_everything() {
        let repo = Repository::new();
        let s = repo.store_schema("S", sample_schema("S"));
        let m = repo.store_mapping(
            "m",
            Mapping::with_constraints("S", "T", vec![MappingConstraint::ExprEq {
                source: Expr::base("R").project(&["a"]),
                target: Expr::base("R2"),
            }]),
        );
        repo.record("modelgen", vec![s], m);
        let mut cs = CorrespondenceSet::new("S", "T");
        cs.push(mm_expr::Correspondence::new(
            mm_expr::PathRef::attr("R", "a"),
            mm_expr::PathRef::attr("R2", "b"),
            0.9,
        ));
        repo.store_correspondences("c", cs);

        let bytes = repo.snapshot();
        let restored = Repository::restore(bytes).unwrap();
        assert_eq!(restored.schema_versions("S"), 1);
        assert_eq!(restored.mapping_versions("m"), 1);
        assert_eq!(restored.correspondences_versions("c"), 1);
        assert_eq!(restored.lineage().len(), 1);
        assert_eq!(
            restored.get_mapping("m", 0).unwrap(),
            repo.get_mapping("m", 0).unwrap()
        );
    }

    #[test]
    fn bad_snapshot_rejected() {
        match Repository::restore(Bytes::from_static(b"nope")) {
            Err(RepositoryError::BadSnapshot) => {}
            other => panic!("expected BadSnapshot, got {:?}", other.map(|_| ()).err()),
        }
        match Repository::restore(Bytes::from_static(b"x")) {
            Err(RepositoryError::Decode(_)) => {}
            other => panic!("expected Decode error, got {:?}", other.map(|_| ()).err()),
        }
    }

    #[test]
    fn concurrent_reads_and_writes() {
        use std::sync::Arc;
        let repo = Arc::new(Repository::new());
        let mut handles = Vec::new();
        for i in 0..4 {
            let r = Arc::clone(&repo);
            handles.push(std::thread::spawn(move || {
                for j in 0..25 {
                    r.store_schema(format!("S{i}"), sample_schema(&format!("S{i}_{j}")));
                    let _ = r.latest_schema(&format!("S{i}"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..4 {
            assert_eq!(repo.schema_versions(&format!("S{i}")), 25);
        }
    }
}
