//! Instances (database states) of schemas in the universal metamodel.
//!
//! A schema defines a set of possible instances; a mapping between schemas
//! S1 and S2 defines a subset of D1 × D2, where Di is the set of possible
//! instances of Si (§2 of the paper). This crate supplies the instance
//! side of that semantics: typed values — including the **labeled nulls**
//! needed for universal instances in data exchange (§4) — tuples,
//! set-semantics relations, and databases, plus validation of instances
//! against schemas and their integrity constraints.

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod database;
pub mod intern;
pub mod relation;
pub mod stats;
pub mod validate;
pub mod value;

pub use database::Database;
pub use intern::{FxHasher, Symbol};
pub use relation::{hash_values, RelIndex, RelSchema, Relation, Tuple, INLINE_ARITY};
pub use stats::{ColSketch, RelStats};
pub use validate::{validate, InstanceViolation};
pub use value::Value;
