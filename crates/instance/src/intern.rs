//! Global string interning pool and the compact-data-plane switches.
//!
//! Text values on hot paths are represented as [`Symbol`]s: `u32` handles
//! into a process-wide append-only pool. Each pool entry carries the
//! string itself (leaked, so resolution hands out `&'static str` with no
//! lifetime plumbing) plus its precomputed 64-bit string hash, so
//! hashing a symbol never touches the bytes again.
//!
//! The pool is organised like the `RelIndex` snapshots: append-only with
//! **lock-free reads**. Storage is a table of fixed-size chunks, each
//! slot a `OnceLock<Entry>`; readers do two atomic loads (chunk pointer,
//! slot) and never block. Writers serialise on a small mutex that guards
//! the dedup map and hands out ids; an entry is fully initialised before
//! the published length moves past it.
//!
//! Interning is **bounded**: strings longer than [`MAX_INTERN_LEN`] and
//! strings past the pool capacity are refused (callers fall back to plain
//! `Value::Text`), so adversarial wire input cannot grow the pool without
//! limit. The pool never shrinks — symbols stay valid for the process
//! lifetime, which is what makes `&'static str` resolution sound.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Longest string the pool will intern. Longer text stays `Value::Text`.
pub const MAX_INTERN_LEN: usize = 128;

const CHUNK_BITS: usize = 16;
const CHUNK_SIZE: usize = 1 << CHUNK_BITS; // 65 536 entries per chunk
const MAX_CHUNKS: usize = 64; // pool capacity ~4.2M distinct strings

#[derive(Debug)]
struct Entry {
    text: &'static str,
    /// Precomputed [`str_hash`] of `text`.
    hash: u64,
}

type Chunk = Box<[OnceLock<Entry>]>;

struct Pool {
    chunks: [OnceLock<Chunk>; MAX_CHUNKS],
    /// Published entry count; an id is readable iff `id < len` (Release
    /// store after the slot's `OnceLock::set`, Acquire load on read).
    len: AtomicU32,
    /// Writer side: dedup map from interned text to its id.
    dedup: Mutex<HashMap<&'static str, u32>>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        chunks: std::array::from_fn(|_| OnceLock::new()),
        len: AtomicU32::new(0),
        dedup: Mutex::new(HashMap::new()),
    })
}

/// A handle to an interned string: compares and hashes by id, resolves
/// in O(1) with no locks. Equal strings always intern to the same id, so
/// id equality is string equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw pool id.
    pub fn id(self) -> u32 {
        self.0
    }

    /// Resolve to the interned string. Lock-free; `""` for an id that was
    /// never handed out by [`intern`] (unreachable through safe use, but
    /// the no-panic guarantee extends to decoded-then-corrupted state).
    pub fn as_str(self) -> &'static str {
        entry(self.0).map_or("", |e| e.text)
    }

    /// The precomputed string hash ([`str_hash`] of the resolved text).
    /// An unresolvable id hashes as `str_hash("")`, consistent with its
    /// `""` resolution.
    pub fn hash64(self) -> u64 {
        entry(self.0).map_or_else(|| str_hash(""), |e| e.hash)
    }
}

fn entry(id: u32) -> Option<&'static Entry> {
    let p = pool();
    if id >= p.len.load(Ordering::Acquire) {
        return None;
    }
    let chunk = p.chunks.get(id as usize >> CHUNK_BITS)?.get()?;
    chunk.get(id as usize & (CHUNK_SIZE - 1))?.get()
}

/// Intern `s`, returning its symbol. `None` when the string is longer
/// than [`MAX_INTERN_LEN`] or the pool is at capacity — the caller keeps
/// the owned string instead.
pub fn intern(s: &str) -> Option<Symbol> {
    if s.len() > MAX_INTERN_LEN {
        return None;
    }
    let p = pool();
    #[allow(clippy::unwrap_used)] // mutex poisoning requires a prior panic
    let mut dedup = p.dedup.lock().unwrap();
    if let Some(&id) = dedup.get(s) {
        return Some(Symbol(id));
    }
    let id = p.len.load(Ordering::Relaxed);
    let (ci, si) = (id as usize >> CHUNK_BITS, id as usize & (CHUNK_SIZE - 1));
    let chunk = p.chunks.get(ci)?; // None: pool at capacity
    let chunk = chunk.get_or_init(|| (0..CHUNK_SIZE).map(|_| OnceLock::new()).collect());
    let text: &'static str = Box::leak(s.to_owned().into_boxed_str());
    let _ = chunk[si].set(Entry { text, hash: str_hash(text) });
    // publish after the slot is initialised; readers Acquire this
    p.len.store(id + 1, Ordering::Release);
    dedup.insert(text, id);
    ALLOC_INTERNED.fetch_add(1, Ordering::Relaxed);
    Some(Symbol(id))
}

/// Number of symbols currently in the pool.
pub fn pool_len() -> usize {
    pool().len.load(Ordering::Acquire) as usize
}

// ---------------------------------------------------------------------------
// Compact-mode switch
// ---------------------------------------------------------------------------

thread_local! {
    /// Whether this thread builds compact values/tuples (interned text,
    /// inline small tuples, cached hashes). On by default; benchmarks flip
    /// it off to time the pre-interning layout as an in-tree baseline.
    static COMPACT: std::cell::Cell<bool> = const { std::cell::Cell::new(true) };
}

/// Whether the compact data plane is enabled on this thread.
pub fn compact_enabled() -> bool {
    COMPACT.with(std::cell::Cell::get)
}

/// Enable/disable the compact data plane on this thread, returning the
/// previous setting. Thread-local so a baseline benchmark leg cannot race
/// a compact leg on another thread. Results are bit-identical either way
/// (property-tested); only layout and allocation behaviour change.
pub fn set_compact(on: bool) -> bool {
    COMPACT.with(|c| c.replace(on))
}

/// RAII guard that runs a closure with compact mode forced to `on`.
pub fn with_compact<T>(on: bool, f: impl FnOnce() -> T) -> T {
    let prev = set_compact(on);
    let out = f();
    set_compact(prev);
    out
}

// ---------------------------------------------------------------------------
// Allocation counters (sampled into `mm-telemetry` at op boundaries)
// ---------------------------------------------------------------------------

/// Heap-spilled tuple buffers allocated (arity > inline capacity, or
/// compact mode off). Inline tuples never bump this.
pub static ALLOC_TUPLES: AtomicU64 = AtomicU64::new(0);

/// New symbols appended to the pool (dedup hits don't count).
pub static ALLOC_INTERNED: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the allocation counters `(tuples, interned)`.
pub fn alloc_counts() -> (u64, u64) {
    (ALLOC_TUPLES.load(Ordering::Relaxed), ALLOC_INTERNED.load(Ordering::Relaxed))
}

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast non-cryptographic hasher (FxHash-style multiply-rotate) used
/// for tuple hashes, index bucket keys, and the interner's precomputed
/// string hashes. Deterministic across runs and platforms — cached tuple
/// hashes computed at insert time must match hashes recomputed at probe
/// time forever.
#[derive(Debug, Clone)]
pub struct FxHasher {
    state: u64,
}

impl Default for FxHasher {
    fn default() -> Self {
        // non-zero start so short inputs (and "") never hash to 0, which
        // tuple caching reserves as the "uncached" sentinel
        FxHasher { state: SEED }
    }
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(c);
            self.add(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// The canonical 64-bit hash of a string's bytes (length-salted so
/// prefixes don't collide trivially). This is the hash precomputed per
/// pool entry and written by `Value`'s `Hash` for text — computed here so
/// `Value::Text` and `Value::Sym` of equal strings hash identically.
pub fn str_hash(s: &str) -> u64 {
    use std::hash::Hasher;
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    h.write_usize(s.len());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_and_resolves() {
        let a = intern("alpha").unwrap();
        let b = intern("alpha").unwrap();
        let c = intern("beta").unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "alpha");
        assert_eq!(c.as_str(), "beta");
    }

    #[test]
    fn precomputed_hash_matches_str_hash() {
        let s = intern("gamma-hash").unwrap();
        assert_eq!(s.hash64(), str_hash("gamma-hash"));
    }

    #[test]
    fn oversized_strings_are_refused() {
        let long = "x".repeat(MAX_INTERN_LEN + 1);
        assert!(intern(&long).is_none());
        let max = "y".repeat(MAX_INTERN_LEN);
        assert!(intern(&max).is_some());
    }

    #[test]
    fn unknown_symbol_resolves_empty_not_panicking() {
        let bogus = Symbol(u32::MAX - 1);
        assert_eq!(bogus.as_str(), "");
        assert_eq!(bogus.hash64(), str_hash(""));
        assert_ne!(str_hash(""), 0);
    }

    #[test]
    fn compact_flag_is_thread_local_and_restores() {
        assert!(compact_enabled());
        let prev = set_compact(false);
        assert!(prev);
        assert!(!compact_enabled());
        let out = with_compact(true, compact_enabled);
        assert!(out);
        assert!(!compact_enabled());
        set_compact(true);
        let h = std::thread::spawn(compact_enabled);
        assert!(h.join().unwrap());
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..200)
                        .map(|i| {
                            let s = format!("conc-{}", i + t % 2);
                            (intern(&s).unwrap(), s)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (sym, s) in h.join().unwrap() {
                assert_eq!(sym.as_str(), s);
                assert_eq!(intern(&s).unwrap(), sym);
            }
        }
    }
}
