//! Tuples and set-semantics relations.

use crate::value::Value;
use mm_metamodel::{Attribute, DataType};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// A tuple: a fixed-arity row of values. Cheap to clone (Arc'd payload),
/// since evaluation and the chase pass tuples around heavily.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Tuple(Arc<Vec<Value>>);

impl Tuple {
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(Arc::new(values))
    }

    pub fn values(&self) -> &[Value] {
        &self.0
    }

    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Project onto the given positions.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple::new(positions.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Concatenate with another tuple.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple::new(v)
    }

    /// Whether every value is a constant (no NULLs, no labeled nulls).
    pub fn is_ground(&self) -> bool {
        self.0.iter().all(Value::is_constant)
    }
}

impl<const N: usize> From<[Value; N]> for Tuple {
    fn from(vs: [Value; N]) -> Self {
        Tuple::new(vs.into())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// The column layout of a relation instance: ordered attribute list.
///
/// This is the instance-level schema; it is derived from (and checked
/// against) the metamodel-level [`mm_metamodel::Element`] but carried on
/// the relation so algebra evaluation is self-contained.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelSchema {
    pub attributes: Vec<Attribute>,
}

impl RelSchema {
    pub fn new(attributes: Vec<Attribute>) -> Self {
        RelSchema { attributes }
    }

    pub fn of(pairs: &[(&str, DataType)]) -> Self {
        RelSchema {
            attributes: pairs.iter().map(|(n, t)| Attribute::new(*n, *t)).collect(),
        }
    }

    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Position of attribute `name`.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.attributes.iter().map(|a| a.name.as_str())
    }

    pub fn has(&self, name: &str) -> bool {
        self.position(name).is_some()
    }
}

/// A set-semantics relation instance: dedup on insert, deterministic
/// (insertion-order) iteration.
///
/// Set semantics matches the paper's formal treatment of mappings
/// (instance-level semantics over sets of tuples); bag behaviour where it
/// matters (UNION ALL in generated queries, Fig 3) is handled by the
/// evaluator before tuples land in a relation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Relation {
    pub schema: RelSchema,
    tuples: Vec<Tuple>,
    #[serde(skip)]
    seen: HashSet<Tuple>,
}

impl Relation {
    pub fn new(schema: RelSchema) -> Self {
        Relation { schema, tuples: Vec::new(), seen: HashSet::new() }
    }

    pub fn with_tuples(schema: RelSchema, tuples: impl IntoIterator<Item = Tuple>) -> Self {
        let mut r = Relation::new(schema);
        for t in tuples {
            r.insert(t);
        }
        r
    }

    /// Insert a tuple; returns `true` if it was new. Panics in debug builds
    /// on arity mismatch (an arity mismatch is always an engine bug, not a
    /// data error).
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        debug_assert_eq!(
            tuple.arity(),
            self.schema.arity(),
            "arity mismatch inserting into relation"
        );
        if self.seen.insert(tuple.clone()) {
            self.tuples.push(tuple);
            true
        } else {
            false
        }
    }

    /// Insert without the arity debug-check. Only for tests that exercise
    /// the instance validator's handling of malformed data.
    pub fn insert_unchecked(&mut self, tuple: Tuple) -> bool {
        if self.seen.insert(tuple.clone()) {
            self.tuples.push(tuple);
            true
        } else {
            false
        }
    }

    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.seen.contains(tuple)
    }

    /// Remove a tuple; returns `true` if it was present.
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        if self.seen.remove(tuple) {
            // O(n); deletions are rare relative to scans in this engine
            if let Some(pos) = self.tuples.iter().position(|t| t == tuple) {
                self.tuples.remove(pos);
            }
            true
        } else {
            false
        }
    }

    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Sorted copy of the tuples — canonical form for equality checks in
    /// tests and roundtripping verification.
    pub fn sorted_tuples(&self) -> Vec<Tuple> {
        let mut v = self.tuples.clone();
        v.sort();
        v
    }

    /// Set equality with another relation (ignores column names; positions
    /// must agree).
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.len() == other.len() && self.tuples.iter().all(|t| other.contains(t))
    }

    /// Rebuild the dedup index (needed after deserialization, where the
    /// `seen` set is skipped).
    pub fn rebuild_index(&mut self) {
        self.seen = self.tuples.iter().cloned().collect();
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.set_eq(other)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.schema.names().collect();
        writeln!(f, "[{}]", names.join(", "))?;
        for t in &self.tuples {
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r2(name_a: &str, name_b: &str) -> Relation {
        Relation::new(RelSchema::of(&[(name_a, DataType::Int), (name_b, DataType::Text)]))
    }

    fn t(i: i64, s: &str) -> Tuple {
        Tuple::from([Value::Int(i), Value::text(s)])
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = r2("a", "b");
        assert!(r.insert(t(1, "x")));
        assert!(!r.insert(t(1, "x")));
        assert!(r.insert(t(2, "y")));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let mut r = r2("a", "b");
        r.insert(t(3, "c"));
        r.insert(t(1, "a"));
        r.insert(t(2, "b"));
        let firsts: Vec<i64> = r
            .iter()
            .map(|tp| match tp.get(0).unwrap() {
                Value::Int(i) => *i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(firsts, [3, 1, 2]);
    }

    #[test]
    fn remove_keeps_index_consistent() {
        let mut r = r2("a", "b");
        r.insert(t(1, "x"));
        r.insert(t(2, "y"));
        assert!(r.remove(&t(1, "x")));
        assert!(!r.remove(&t(1, "x")));
        assert!(!r.contains(&t(1, "x")));
        assert!(r.insert(t(1, "x"))); // can be re-inserted
    }

    #[test]
    fn set_equality_ignores_order() {
        let mut a = r2("a", "b");
        let mut b = r2("a", "b");
        a.insert(t(1, "x"));
        a.insert(t(2, "y"));
        b.insert(t(2, "y"));
        b.insert(t(1, "x"));
        assert!(a.set_eq(&b));
        b.insert(t(3, "z"));
        assert!(!a.set_eq(&b));
    }

    #[test]
    fn tuple_project_and_concat() {
        let tp = Tuple::from([Value::Int(1), Value::text("x"), Value::Bool(true)]);
        assert_eq!(tp.project(&[2, 0]), Tuple::from([Value::Bool(true), Value::Int(1)]));
        let q = Tuple::from([Value::Int(9)]);
        assert_eq!(
            tp.concat(&q),
            Tuple::new(vec![Value::Int(1), Value::text("x"), Value::Bool(true), Value::Int(9)])
        );
    }

    #[test]
    fn groundness() {
        assert!(t(1, "x").is_ground());
        assert!(!Tuple::from([Value::Int(1), Value::Null]).is_ground());
        assert!(!Tuple::from([Value::Labeled(3)]).is_ground());
    }

    #[test]
    fn schema_positions() {
        let s = RelSchema::of(&[("a", DataType::Int), ("b", DataType::Text)]);
        assert_eq!(s.position("b"), Some(1));
        assert_eq!(s.position("z"), None);
        assert!(s.has("a"));
    }
}
