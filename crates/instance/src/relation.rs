//! Tuples and set-semantics relations.

use crate::stats::{RelStats, StatsSlot};
use crate::value::Value;
use mm_metamodel::{Attribute, DataType};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// A tuple: a fixed-arity row of values. Cheap to clone (Arc'd payload),
/// since evaluation and the chase pass tuples around heavily.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Tuple(Arc<Vec<Value>>);

impl Tuple {
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(Arc::new(values))
    }

    pub fn values(&self) -> &[Value] {
        &self.0
    }

    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Project onto the given positions. Out-of-range positions yield
    /// [`Value::Null`] rather than panicking (the §7 no-panic guarantee on
    /// caller data): a NULL join key matches nothing under SQL semantics,
    /// so a malformed projection degrades to an empty join instead of
    /// aborting. Use [`Tuple::try_project`] where out-of-range positions
    /// must be detected instead of absorbed.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple::new(
            positions
                .iter()
                .map(|&i| self.0.get(i).cloned().unwrap_or(Value::Null))
                .collect(),
        )
    }

    /// Strict projection: `None` if any position is out of range.
    pub fn try_project(&self, positions: &[usize]) -> Option<Tuple> {
        positions
            .iter()
            .map(|&i| self.0.get(i).cloned())
            .collect::<Option<Vec<Value>>>()
            .map(Tuple::new)
    }

    /// Concatenate with another tuple.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple::new(v)
    }

    /// Whether every value is a constant (no NULLs, no labeled nulls).
    pub fn is_ground(&self) -> bool {
        self.0.iter().all(Value::is_constant)
    }
}

impl<const N: usize> From<[Value; N]> for Tuple {
    fn from(vs: [Value; N]) -> Self {
        Tuple::new(vs.into())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// The column layout of a relation instance: ordered attribute list.
///
/// This is the instance-level schema; it is derived from (and checked
/// against) the metamodel-level [`mm_metamodel::Element`] but carried on
/// the relation so algebra evaluation is self-contained.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelSchema {
    pub attributes: Vec<Attribute>,
}

impl RelSchema {
    pub fn new(attributes: Vec<Attribute>) -> Self {
        RelSchema { attributes }
    }

    pub fn of(pairs: &[(&str, DataType)]) -> Self {
        RelSchema {
            attributes: pairs.iter().map(|(n, t)| Attribute::new(*n, *t)).collect(),
        }
    }

    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Position of attribute `name`.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.attributes.iter().map(|a| a.name.as_str())
    }

    pub fn has(&self, name: &str) -> bool {
        self.position(name).is_some()
    }
}

/// A hash index over one bound-position pattern of a relation.
///
/// Buckets map the projected key values at `positions` to the tuples
/// carrying them, each paired with its insertion position in the backing
/// relation. Bucket entries preserve relation insertion order, so an
/// index probe enumerates exactly the subsequence a full scan with a
/// filter would — evaluation results are order-identical either way, and
/// the positions let semi-naive consumers restrict a probe to delta
/// tuples (`pos >= watermark`) without touching the rest of the bucket.
#[derive(Debug, Clone, Default)]
pub struct RelIndex {
    positions: Vec<usize>,
    buckets: HashMap<Vec<Value>, Vec<(u32, Tuple)>>,
}

impl RelIndex {
    fn build(positions: &[usize], tuples: &[Tuple]) -> Self {
        let mut idx = RelIndex { positions: positions.to_vec(), buckets: HashMap::new() };
        for (i, t) in tuples.iter().enumerate() {
            idx.add(i as u32, t);
        }
        idx
    }

    fn add(&mut self, pos: u32, tuple: &Tuple) {
        let key = tuple.project(&self.positions).values().to_vec();
        self.buckets.entry(key).or_default().push((pos, tuple.clone()));
    }

    /// The bound-position pattern this index covers.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// All `(insertion position, tuple)` pairs whose projection onto the
    /// index pattern equals `key`, in insertion order. Empty slice when no
    /// tuple matches.
    pub fn probe(&self, key: &[Value]) -> &[(u32, Tuple)] {
        self.buckets.get(key).map_or(&[], Vec::as_slice)
    }
}

/// A set-semantics relation instance: dedup on insert, deterministic
/// (insertion-order) iteration.
///
/// Set semantics matches the paper's formal treatment of mappings
/// (instance-level semantics over sets of tuples); bag behaviour where it
/// matters (UNION ALL in generated queries, Fig 3) is handled by the
/// evaluator before tuples land in a relation.
///
/// Relations also carry a cache of [`RelIndex`]es keyed by bound-position
/// pattern, built lazily on first probe and maintained incrementally on
/// insert (removal invalidates the cache — deletions are rare relative to
/// probes in this engine). The cache lives behind a lock so probing works
/// through `&Relation`; it is never serialized or compared.
#[derive(Debug, Serialize, Deserialize)]
pub struct Relation {
    pub schema: RelSchema,
    tuples: Vec<Tuple>,
    #[serde(skip)]
    seen: HashSet<Tuple>,
    #[serde(skip)]
    indexes: RwLock<HashMap<Vec<usize>, Arc<RelIndex>>>,
    #[serde(skip)]
    stats: RwLock<StatsSlot>,
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        // index and stats caches are rebuilt lazily on the clone's first use
        Relation {
            schema: self.schema.clone(),
            tuples: self.tuples.clone(),
            seen: self.seen.clone(),
            indexes: RwLock::default(),
            stats: RwLock::default(),
        }
    }
}

impl Relation {
    pub fn new(schema: RelSchema) -> Self {
        Relation {
            schema,
            tuples: Vec::new(),
            seen: HashSet::new(),
            indexes: RwLock::default(),
            stats: RwLock::default(),
        }
    }

    pub fn with_tuples(schema: RelSchema, tuples: impl IntoIterator<Item = Tuple>) -> Self {
        let mut r = Relation::new(schema);
        for t in tuples {
            r.insert(t);
        }
        r
    }

    /// Insert a tuple; returns `true` if it was new. Panics in debug builds
    /// on arity mismatch (an arity mismatch is always an engine bug, not a
    /// data error).
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        debug_assert_eq!(
            tuple.arity(),
            self.schema.arity(),
            "arity mismatch inserting into relation"
        );
        self.insert_unchecked(tuple)
    }

    /// Insert without the arity debug-check. Only for tests that exercise
    /// the instance validator's handling of malformed data.
    pub fn insert_unchecked(&mut self, tuple: Tuple) -> bool {
        if self.seen.insert(tuple.clone()) {
            let pos = self.tuples.len() as u32;
            for idx in self.indexes.get_mut().values_mut() {
                Arc::make_mut(idx).add(pos, &tuple);
            }
            if let Some(stats) = self.stats.get_mut().as_mut() {
                Arc::make_mut(stats).note(&tuple);
            }
            self.tuples.push(tuple);
            true
        } else {
            false
        }
    }

    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.seen.contains(tuple)
    }

    /// Remove a tuple; returns `true` if it was present.
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        if self.seen.remove(tuple) {
            // O(n); deletions are rare relative to scans in this engine
            if let Some(pos) = self.tuples.iter().position(|t| t == tuple) {
                self.tuples.remove(pos);
            }
            // removal shifts insertion positions; drop the whole cache
            // rather than patching every bucket (same for the stats sketch)
            self.indexes.get_mut().clear();
            *self.stats.get_mut() = None;
            true
        } else {
            false
        }
    }

    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// The tuples in insertion order. Position `i` in this slice is the
    /// insertion position reported by [`RelIndex::probe`], and the slice
    /// tail from a recorded length watermark is exactly the delta since
    /// that watermark (as long as no removal happened in between).
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// The hash index for the bound-position pattern `positions`, built
    /// on first request and cached; subsequent inserts maintain it
    /// incrementally, removals invalidate it. The returned handle stays
    /// valid (a snapshot) even if the relation changes afterwards.
    pub fn index(&self, positions: &[usize]) -> Arc<RelIndex> {
        if let Some(idx) = self.indexes.read().get(positions) {
            return Arc::clone(idx);
        }
        let mut cache = self.indexes.write();
        // re-check under the write lock: another thread may have built it
        Arc::clone(
            cache
                .entry(positions.to_vec())
                .or_insert_with(|| Arc::new(RelIndex::build(positions, &self.tuples))),
        )
    }

    /// Cardinality statistics for this relation: tuple count plus
    /// per-column distinct-count and most-common-value sketches, built on
    /// first request and cached; subsequent inserts maintain the sketch
    /// incrementally, removals invalidate it. Like [`Relation::index`],
    /// the returned handle is a consistent snapshot even if the relation
    /// changes afterwards.
    pub fn stats(&self) -> Arc<RelStats> {
        if let Some(s) = self.stats.read().as_ref() {
            return Arc::clone(s);
        }
        let mut slot = self.stats.write();
        // re-check under the write lock: another thread may have built it
        Arc::clone(slot.get_or_insert_with(|| {
            Arc::new(RelStats::build(self.schema.arity(), &self.tuples))
        }))
    }

    /// Sorted copy of the tuples — canonical form for equality checks in
    /// tests and roundtripping verification.
    pub fn sorted_tuples(&self) -> Vec<Tuple> {
        let mut v = self.tuples.clone();
        v.sort();
        v
    }

    /// Set equality with another relation (ignores column names; positions
    /// must agree).
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.len() == other.len() && self.tuples.iter().all(|t| other.contains(t))
    }

    /// Rebuild the dedup index (needed after deserialization, where the
    /// `seen` set is skipped) and drop any stale hash-index cache.
    pub fn rebuild_index(&mut self) {
        self.seen = self.tuples.iter().cloned().collect();
        self.indexes.get_mut().clear();
        *self.stats.get_mut() = None;
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.set_eq(other)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.schema.names().collect();
        writeln!(f, "[{}]", names.join(", "))?;
        for t in &self.tuples {
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r2(name_a: &str, name_b: &str) -> Relation {
        Relation::new(RelSchema::of(&[(name_a, DataType::Int), (name_b, DataType::Text)]))
    }

    fn t(i: i64, s: &str) -> Tuple {
        Tuple::from([Value::Int(i), Value::text(s)])
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = r2("a", "b");
        assert!(r.insert(t(1, "x")));
        assert!(!r.insert(t(1, "x")));
        assert!(r.insert(t(2, "y")));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let mut r = r2("a", "b");
        r.insert(t(3, "c"));
        r.insert(t(1, "a"));
        r.insert(t(2, "b"));
        let firsts: Vec<i64> = r
            .iter()
            .map(|tp| match tp.get(0).unwrap() {
                Value::Int(i) => *i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(firsts, [3, 1, 2]);
    }

    #[test]
    fn remove_keeps_index_consistent() {
        let mut r = r2("a", "b");
        r.insert(t(1, "x"));
        r.insert(t(2, "y"));
        assert!(r.remove(&t(1, "x")));
        assert!(!r.remove(&t(1, "x")));
        assert!(!r.contains(&t(1, "x")));
        assert!(r.insert(t(1, "x"))); // can be re-inserted
    }

    #[test]
    fn set_equality_ignores_order() {
        let mut a = r2("a", "b");
        let mut b = r2("a", "b");
        a.insert(t(1, "x"));
        a.insert(t(2, "y"));
        b.insert(t(2, "y"));
        b.insert(t(1, "x"));
        assert!(a.set_eq(&b));
        b.insert(t(3, "z"));
        assert!(!a.set_eq(&b));
    }

    #[test]
    fn tuple_project_and_concat() {
        let tp = Tuple::from([Value::Int(1), Value::text("x"), Value::Bool(true)]);
        assert_eq!(tp.project(&[2, 0]), Tuple::from([Value::Bool(true), Value::Int(1)]));
        let q = Tuple::from([Value::Int(9)]);
        assert_eq!(
            tp.concat(&q),
            Tuple::new(vec![Value::Int(1), Value::text("x"), Value::Bool(true), Value::Int(9)])
        );
    }

    #[test]
    fn project_clamps_out_of_range_to_null() {
        let tp = Tuple::from([Value::Int(1), Value::text("x")]);
        assert_eq!(tp.project(&[0, 7]), Tuple::from([Value::Int(1), Value::Null]));
        assert_eq!(tp.try_project(&[0, 7]), None);
        assert_eq!(
            tp.try_project(&[1, 0]),
            Some(Tuple::from([Value::text("x"), Value::Int(1)]))
        );
    }

    #[test]
    fn index_probe_matches_filtered_scan_in_order() {
        let mut r = r2("a", "b");
        r.insert(t(1, "x"));
        r.insert(t(2, "y"));
        r.insert(t(1, "z"));
        let idx = r.index(&[0]);
        let hits = idx.probe(&[Value::Int(1)]);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0], (0, t(1, "x")));
        assert_eq!(hits[1], (2, t(1, "z")));
        assert!(idx.probe(&[Value::Int(9)]).is_empty());
    }

    #[test]
    fn index_is_maintained_incrementally_on_insert() {
        let mut r = r2("a", "b");
        r.insert(t(1, "x"));
        let _warm = r.index(&[0]); // build the cache, then insert more
        r.insert(t(1, "y"));
        r.insert(t(2, "z"));
        let idx = r.index(&[0]);
        assert_eq!(
            idx.probe(&[Value::Int(1)]),
            &[(0, t(1, "x")), (1, t(1, "y"))]
        );
        assert_eq!(idx.probe(&[Value::Int(2)]), &[(2, t(2, "z"))]);
    }

    #[test]
    fn index_invalidated_by_remove() {
        let mut r = r2("a", "b");
        r.insert(t(1, "x"));
        r.insert(t(2, "y"));
        r.insert(t(1, "z"));
        let _warm = r.index(&[0]);
        r.remove(&t(1, "x"));
        let idx = r.index(&[0]);
        // positions reflect the post-removal layout
        assert_eq!(idx.probe(&[Value::Int(1)]), &[(1, t(1, "z"))]);
        assert_eq!(idx.probe(&[Value::Int(2)]), &[(0, t(2, "y"))]);
    }

    #[test]
    fn multi_column_index_and_snapshot_semantics() {
        let mut r = r2("a", "b");
        r.insert(t(1, "x"));
        let snapshot = r.index(&[0, 1]);
        r.insert(t(1, "y"));
        // the old handle is a snapshot; a fresh probe sees the new tuple
        assert_eq!(snapshot.probe(&[Value::Int(1), Value::text("y")]).len(), 0);
        let fresh = r.index(&[0, 1]);
        assert_eq!(fresh.probe(&[Value::Int(1), Value::text("y")]).len(), 1);
        assert_eq!(fresh.positions(), &[0, 1]);
    }

    #[test]
    fn stats_are_maintained_incrementally_and_snapshot() {
        let mut r = r2("a", "b");
        r.insert(t(1, "x"));
        r.insert(t(1, "y"));
        let snap = r.stats(); // build the sketch, then insert more
        assert_eq!(snap.rows(), 2);
        assert_eq!(snap.col(0).unwrap().distinct(), 1);
        r.insert(t(2, "z"));
        // the old handle is a snapshot; a fresh one sees the new tuple
        assert_eq!(snap.rows(), 2);
        let fresh = r.stats();
        assert_eq!(fresh.rows(), 3);
        assert_eq!(fresh.col(0).unwrap().distinct(), 2);
        assert_eq!(fresh.col(0).unwrap().mcv(), Some((&Value::Int(1), 2)));
        // removal invalidates; the rebuilt sketch reflects the new state
        r.remove(&t(1, "x"));
        assert_eq!(r.stats().rows(), 2);
        assert_eq!(r.stats().col(0).unwrap().count(&Value::Int(1)), 1);
    }

    #[test]
    fn groundness() {
        assert!(t(1, "x").is_ground());
        assert!(!Tuple::from([Value::Int(1), Value::Null]).is_ground());
        assert!(!Tuple::from([Value::Labeled(3)]).is_ground());
    }

    #[test]
    fn schema_positions() {
        let s = RelSchema::of(&[("a", DataType::Int), ("b", DataType::Text)]);
        assert_eq!(s.position("b"), Some(1));
        assert_eq!(s.position("z"), None);
        assert!(s.has("a"));
    }
}
