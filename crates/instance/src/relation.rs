//! Tuples and set-semantics relations.
//!
//! The tuple layout is the engine's hot-path memory format (DESIGN.md
//! §16): small tuples store their values **inline** (no heap indirection),
//! wider ones spill to a shared `Arc<[Value]>` buffer, and every tuple
//! built under the compact data plane carries its hash, computed once at
//! construction and reused by every dedup check, index probe, and map
//! insertion afterwards. With compact mode off (the benchmarking
//! baseline, see [`crate::intern::set_compact`]) tuples always spill and
//! hash on demand — the pre-interning layout, bit-identical in results.

use crate::intern::{self, FxHasher};
use crate::stats::{RelStats, StatsSlot};
use crate::value::Value;
use mm_metamodel::{Attribute, DataType};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::sync::atomic::Ordering as AtomicOrdering;

/// Widest arity stored inline in a [`Tuple`]; wider tuples spill to a
/// shared heap buffer.
pub const INLINE_ARITY: usize = 4;

/// The canonical 64-bit hash of a value sequence: exactly what a
/// [`Tuple`] over the same values caches at construction, so slice-keyed
/// probes ([`RelIndex::probe`], [`Relation::contains_values`]) land in
/// the same buckets as stored tuples without building a tuple. Never 0
/// (0 is the "uncached" sentinel).
pub fn hash_values(values: &[Value]) -> u64 {
    let mut h = FxHasher::default();
    for v in values {
        v.hash(&mut h);
    }
    h.write_usize(values.len());
    let out = h.finish();
    if out == 0 { 1 } else { out }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Repr {
    /// Up to [`INLINE_ARITY`] values stored in place; slots past `len`
    /// are `Value::Null` padding and never observed.
    Inline { len: u8, vals: [Value; INLINE_ARITY] },
    /// Shared heap buffer for wider tuples (and for all tuples when
    /// compact mode is off — the baseline layout).
    Spilled(Arc<[Value]>),
}

/// A tuple: a fixed-arity row of values, hash-cached and inline up to
/// arity [`INLINE_ARITY`]. Cheap to clone (inline values memcpy; spilled
/// payloads bump an `Arc`), since evaluation and the chase pass tuples
/// around heavily.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tuple {
    /// Cached [`hash_values`] of the payload; 0 means "not cached,
    /// compute on demand" (the baseline mode).
    hash: u64,
    repr: Repr,
}

const NULL_PAD: Value = Value::Null;

impl Tuple {
    pub fn new(values: Vec<Value>) -> Self {
        if intern::compact_enabled() && values.len() <= INLINE_ARITY {
            let len = values.len() as u8;
            let mut it = values.into_iter();
            let vals = std::array::from_fn(|_| it.next().unwrap_or(NULL_PAD));
            let mut t = Tuple { hash: 0, repr: Repr::Inline { len, vals } };
            t.hash = hash_values(t.values());
            t
        } else {
            Tuple::spill(values.into())
        }
    }

    /// Build a tuple by cloning a value slice — the reusable-buffer entry
    /// point for the chase's firing scratch and eval's key buffers: the
    /// caller keeps refilling one `Vec` and never hands over ownership.
    pub fn from_slice(values: &[Value]) -> Self {
        if intern::compact_enabled() && values.len() <= INLINE_ARITY {
            let len = values.len() as u8;
            let vals = std::array::from_fn(|i| values.get(i).cloned().unwrap_or(NULL_PAD));
            Tuple { hash: hash_values(values), repr: Repr::Inline { len, vals } }
        } else {
            Tuple::spill(values.into())
        }
    }

    fn spill(buf: Arc<[Value]>) -> Self {
        intern::ALLOC_TUPLES.fetch_add(1, AtomicOrdering::Relaxed);
        let hash = if intern::compact_enabled() { hash_values(&buf) } else { 0 };
        Tuple { hash, repr: Repr::Spilled(buf) }
    }

    pub fn values(&self) -> &[Value] {
        match &self.repr {
            Repr::Inline { len, vals } => &vals[..*len as usize],
            Repr::Spilled(buf) => buf,
        }
    }

    /// The cached hash, or a fresh [`hash_values`] pass when this tuple
    /// was built without caching. Equal tuples always agree on this
    /// (both forms hash the same way).
    pub fn hash64(&self) -> u64 {
        if self.hash != 0 { self.hash } else { hash_values(self.values()) }
    }

    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values().get(i)
    }

    pub fn arity(&self) -> usize {
        self.values().len()
    }

    /// Project onto the given positions. Out-of-range positions yield
    /// [`Value::Null`] rather than panicking (the §7 no-panic guarantee on
    /// caller data): a NULL join key matches nothing under SQL semantics,
    /// so a malformed projection degrades to an empty join instead of
    /// aborting. Use [`Tuple::try_project`] where out-of-range positions
    /// must be detected instead of absorbed.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        if intern::compact_enabled() && positions.len() <= INLINE_ARITY {
            let len = positions.len() as u8;
            let vals = std::array::from_fn(|i| {
                positions
                    .get(i)
                    .and_then(|&p| self.get(p).cloned())
                    .unwrap_or(NULL_PAD)
            });
            let mut t = Tuple { hash: 0, repr: Repr::Inline { len, vals } };
            t.hash = hash_values(t.values());
            t
        } else {
            Tuple::spill(
                positions
                    .iter()
                    .map(|&i| self.get(i).cloned().unwrap_or(Value::Null))
                    .collect(),
            )
        }
    }

    /// Strict projection: `None` if any position is out of range.
    pub fn try_project(&self, positions: &[usize]) -> Option<Tuple> {
        if positions.iter().any(|&i| i >= self.arity()) {
            return None;
        }
        Some(self.project(positions))
    }

    /// Concatenate with another tuple.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let (a, b) = (self.values(), other.values());
        if intern::compact_enabled() && a.len() + b.len() <= INLINE_ARITY {
            let len = (a.len() + b.len()) as u8;
            let vals = std::array::from_fn(|i| {
                if i < a.len() {
                    a[i].clone()
                } else {
                    b.get(i - a.len()).cloned().unwrap_or(NULL_PAD)
                }
            });
            let mut t = Tuple { hash: 0, repr: Repr::Inline { len, vals } };
            t.hash = hash_values(t.values());
            t
        } else {
            Tuple::spill(a.iter().chain(b).cloned().collect())
        }
    }

    /// Whether every value is a constant (no NULLs, no labeled nulls).
    pub fn is_ground(&self) -> bool {
        self.values().iter().all(Value::is_constant)
    }
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Self) -> bool {
        // cached hashes disagree => payloads disagree (same hash fn);
        // an uncached side falls through to the value comparison
        if self.hash != 0 && other.hash != 0 && self.hash != other.hash {
            return false;
        }
        self.values() == other.values()
    }
}

impl Eq for Tuple {}

impl Hash for Tuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash64());
    }
}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.values().cmp(other.values())
    }
}

impl<const N: usize> From<[Value; N]> for Tuple {
    fn from(vs: [Value; N]) -> Self {
        Tuple::new(vs.into())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values().iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// The column layout of a relation instance: ordered attribute list.
///
/// This is the instance-level schema; it is derived from (and checked
/// against) the metamodel-level [`mm_metamodel::Element`] but carried on
/// the relation so algebra evaluation is self-contained.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelSchema {
    pub attributes: Vec<Attribute>,
}

impl RelSchema {
    pub fn new(attributes: Vec<Attribute>) -> Self {
        RelSchema { attributes }
    }

    pub fn of(pairs: &[(&str, DataType)]) -> Self {
        RelSchema {
            attributes: pairs.iter().map(|(n, t)| Attribute::new(*n, *t)).collect(),
        }
    }

    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Position of attribute `name`.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.attributes.iter().map(|a| a.name.as_str())
    }

    pub fn has(&self, name: &str) -> bool {
        self.position(name).is_some()
    }
}

/// One distinct key of a [`RelIndex`]: the projected key tuple (hash
/// cached like any tuple) plus the insertion positions of every tuple
/// carrying it, in insertion order.
#[derive(Debug, Clone)]
struct Bucket {
    key: Tuple,
    rows: Vec<u32>,
}

/// A hash index over one bound-position pattern of a relation.
///
/// Buckets are keyed by the **cached hash** of the projected key values
/// and store insertion positions only — probing hashes the key slice once
/// (no allocation, no tuple construction) and resolves rows through
/// [`Relation::tuples`]. Bucket rows preserve relation insertion order,
/// so an index probe enumerates exactly the subsequence a full scan with
/// a filter would — evaluation results are order-identical either way,
/// and the positions let semi-naive consumers restrict a probe to delta
/// tuples (`pos >= watermark`) without touching the rest of the bucket.
#[derive(Debug, Clone, Default)]
pub struct RelIndex {
    positions: Vec<usize>,
    buckets: HashMap<u64, Vec<Bucket>>,
}

impl RelIndex {
    fn build(positions: &[usize], tuples: &[Tuple]) -> Self {
        let mut idx = RelIndex { positions: positions.to_vec(), buckets: HashMap::new() };
        for (i, t) in tuples.iter().enumerate() {
            idx.add(i as u32, t);
        }
        idx
    }

    fn add(&mut self, pos: u32, tuple: &Tuple) {
        let key = tuple.project(&self.positions);
        let group = self.buckets.entry(key.hash64()).or_default();
        match group.iter_mut().find(|b| b.key == key) {
            Some(b) => b.rows.push(pos),
            None => group.push(Bucket { key, rows: vec![pos] }),
        }
    }

    /// The bound-position pattern this index covers.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Insertion positions of every tuple whose projection onto the index
    /// pattern equals `key`, in insertion order; empty when none match.
    /// Allocation-free: the key slice is hashed once ([`hash_values`],
    /// matching the cached tuple hashes in the buckets) and compared only
    /// within its hash group.
    pub fn probe(&self, key: &[Value]) -> &[u32] {
        self.buckets
            .get(&hash_values(key))
            .and_then(|group| group.iter().find(|b| b.key.values() == key))
            .map_or(&[], |b| b.rows.as_slice())
    }
}

/// A set-semantics relation instance: dedup on insert, deterministic
/// (insertion-order) iteration.
///
/// Set semantics matches the paper's formal treatment of mappings
/// (instance-level semantics over sets of tuples); bag behaviour where it
/// matters (UNION ALL in generated queries, Fig 3) is handled by the
/// evaluator before tuples land in a relation.
///
/// Relations also carry a cache of [`RelIndex`]es keyed by bound-position
/// pattern, built lazily on first probe and maintained incrementally on
/// insert (removal invalidates the cache — deletions are rare relative to
/// probes in this engine). The cache lives behind a lock so probing works
/// through `&Relation`; it is never serialized or compared.
///
/// Dedup reuses the cached tuple hashes: `seen` maps each tuple hash to
/// the insertion positions carrying it, so membership checks compare
/// against stored tuples in place instead of keeping a second cloned copy
/// of every tuple in a `HashSet`.
#[derive(Debug, Serialize, Deserialize)]
pub struct Relation {
    pub schema: RelSchema,
    tuples: Vec<Tuple>,
    #[serde(skip)]
    seen: HashMap<u64, Vec<u32>>,
    #[serde(skip)]
    indexes: RwLock<HashMap<Vec<usize>, Arc<RelIndex>>>,
    #[serde(skip)]
    stats: RwLock<StatsSlot>,
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        // index and stats caches are rebuilt lazily on the clone's first use
        Relation {
            schema: self.schema.clone(),
            tuples: self.tuples.clone(),
            seen: self.seen.clone(),
            indexes: RwLock::default(),
            stats: RwLock::default(),
        }
    }
}

impl Relation {
    pub fn new(schema: RelSchema) -> Self {
        Relation {
            schema,
            tuples: Vec::new(),
            seen: HashMap::new(),
            indexes: RwLock::default(),
            stats: RwLock::default(),
        }
    }

    pub fn with_tuples(schema: RelSchema, tuples: impl IntoIterator<Item = Tuple>) -> Self {
        let mut r = Relation::new(schema);
        for t in tuples {
            r.insert(t);
        }
        r
    }

    /// Insert a tuple; returns `true` if it was new. Panics in debug builds
    /// on arity mismatch (an arity mismatch is always an engine bug, not a
    /// data error).
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        debug_assert_eq!(
            tuple.arity(),
            self.schema.arity(),
            "arity mismatch inserting into relation"
        );
        self.insert_unchecked(tuple)
    }

    /// Insert without the arity debug-check. Only for tests that exercise
    /// the instance validator's handling of malformed data.
    pub fn insert_unchecked(&mut self, tuple: Tuple) -> bool {
        let h = tuple.hash64();
        let group = self.seen.entry(h).or_default();
        if group.iter().any(|&p| self.tuples[p as usize] == tuple) {
            return false;
        }
        let pos = self.tuples.len() as u32;
        group.push(pos);
        for idx in self.indexes.get_mut().values_mut() {
            Arc::make_mut(idx).add(pos, &tuple);
        }
        if let Some(stats) = self.stats.get_mut().as_mut() {
            Arc::make_mut(stats).note(&tuple);
        }
        self.tuples.push(tuple);
        true
    }

    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.seen
            .get(&tuple.hash64())
            .is_some_and(|g| g.iter().any(|&p| self.tuples[p as usize] == *tuple))
    }

    /// Membership check against a value slice without building a tuple —
    /// the chase's head-satisfaction fast path fills one reusable buffer
    /// per candidate firing and asks this instead of allocating.
    pub fn contains_values(&self, values: &[Value]) -> bool {
        self.seen
            .get(&hash_values(values))
            .is_some_and(|g| g.iter().any(|&p| self.tuples[p as usize].values() == values))
    }

    /// Remove a tuple; returns `true` if it was present.
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        let h = tuple.hash64();
        let present = self
            .seen
            .get(&h)
            .is_some_and(|g| g.iter().any(|&p| self.tuples[p as usize] == *tuple));
        if !present {
            return false;
        }
        // O(n); deletions are rare relative to scans in this engine
        if let Some(pos) = self.tuples.iter().position(|t| t == tuple) {
            self.tuples.remove(pos);
        }
        // removal shifts insertion positions: rebuild the dedup map and
        // drop the index/stats caches rather than patching every bucket
        self.rebuild_seen();
        self.indexes.get_mut().clear();
        *self.stats.get_mut() = None;
        true
    }

    fn rebuild_seen(&mut self) {
        self.seen.clear();
        for (i, t) in self.tuples.iter().enumerate() {
            self.seen.entry(t.hash64()).or_default().push(i as u32);
        }
    }

    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// The tuples in insertion order. Position `i` in this slice is the
    /// insertion position reported by [`RelIndex::probe`], and the slice
    /// tail from a recorded length watermark is exactly the delta since
    /// that watermark (as long as no removal happened in between).
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// The hash index for the bound-position pattern `positions`, built
    /// on first request and cached; subsequent inserts maintain it
    /// incrementally, removals invalidate it. The returned handle stays
    /// valid (a snapshot) even if the relation changes afterwards.
    pub fn index(&self, positions: &[usize]) -> Arc<RelIndex> {
        if let Some(idx) = self.indexes.read().get(positions) {
            return Arc::clone(idx);
        }
        let mut cache = self.indexes.write();
        // re-check under the write lock: another thread may have built it
        Arc::clone(
            cache
                .entry(positions.to_vec())
                .or_insert_with(|| Arc::new(RelIndex::build(positions, &self.tuples))),
        )
    }

    /// Cardinality statistics for this relation: tuple count plus
    /// per-column distinct-count and most-common-value sketches, built on
    /// first request and cached; subsequent inserts maintain the sketch
    /// incrementally, removals invalidate it. Like [`Relation::index`],
    /// the returned handle is a consistent snapshot even if the relation
    /// changes afterwards.
    pub fn stats(&self) -> Arc<RelStats> {
        if let Some(s) = self.stats.read().as_ref() {
            return Arc::clone(s);
        }
        let mut slot = self.stats.write();
        // re-check under the write lock: another thread may have built it
        Arc::clone(slot.get_or_insert_with(|| {
            Arc::new(RelStats::build(self.schema.arity(), &self.tuples))
        }))
    }

    /// Sorted copy of the tuples — canonical form for equality checks in
    /// tests and roundtripping verification.
    pub fn sorted_tuples(&self) -> Vec<Tuple> {
        let mut v = self.tuples.clone();
        v.sort();
        v
    }

    /// Set equality with another relation (ignores column names; positions
    /// must agree).
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.len() == other.len() && self.tuples.iter().all(|t| other.contains(t))
    }

    /// Rebuild the dedup index (needed after deserialization, where the
    /// `seen` map is skipped) and drop any stale hash-index cache.
    pub fn rebuild_index(&mut self) {
        self.rebuild_seen();
        self.indexes.get_mut().clear();
        *self.stats.get_mut() = None;
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.set_eq(other)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.schema.names().collect();
        writeln!(f, "[{}]", names.join(", "))?;
        for t in &self.tuples {
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r2(name_a: &str, name_b: &str) -> Relation {
        Relation::new(RelSchema::of(&[(name_a, DataType::Int), (name_b, DataType::Text)]))
    }

    fn t(i: i64, s: &str) -> Tuple {
        Tuple::from([Value::Int(i), Value::text(s)])
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = r2("a", "b");
        assert!(r.insert(t(1, "x")));
        assert!(!r.insert(t(1, "x")));
        assert!(r.insert(t(2, "y")));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn compact_and_baseline_tuples_are_interchangeable() {
        let compact = intern::with_compact(true, || t(1, "x"));
        let baseline = intern::with_compact(false, || t(1, "x"));
        assert_eq!(compact, baseline);
        assert_eq!(compact.hash64(), baseline.hash64());
        assert_eq!(compact.cmp(&baseline), std::cmp::Ordering::Equal);
        assert_eq!(compact.to_string(), baseline.to_string());
        let mut r = r2("a", "b");
        assert!(r.insert(compact));
        assert!(!r.insert(baseline)); // dedup sees through the layouts
        assert!(r.contains(&intern::with_compact(false, || t(1, "x"))));
    }

    #[test]
    fn wide_tuples_spill_and_still_roundtrip() {
        let wide = Tuple::new((0..7).map(Value::Int).collect());
        assert_eq!(wide.arity(), 7);
        assert_eq!(wide.get(6), Some(&Value::Int(6)));
        assert_eq!(wide, Tuple::from_slice(wide.values()));
        let narrow = Tuple::from_slice(&[Value::Int(0)]);
        assert_eq!(narrow.arity(), 1);
        assert_ne!(wide, narrow);
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let mut r = r2("a", "b");
        r.insert(t(3, "c"));
        r.insert(t(1, "a"));
        r.insert(t(2, "b"));
        let firsts: Vec<i64> = r
            .iter()
            .map(|tp| match tp.get(0).unwrap() {
                Value::Int(i) => *i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(firsts, [3, 1, 2]);
    }

    #[test]
    fn remove_keeps_index_consistent() {
        let mut r = r2("a", "b");
        r.insert(t(1, "x"));
        r.insert(t(2, "y"));
        assert!(r.remove(&t(1, "x")));
        assert!(!r.remove(&t(1, "x")));
        assert!(!r.contains(&t(1, "x")));
        assert!(r.insert(t(1, "x"))); // can be re-inserted
    }

    #[test]
    fn set_equality_ignores_order() {
        let mut a = r2("a", "b");
        let mut b = r2("a", "b");
        a.insert(t(1, "x"));
        a.insert(t(2, "y"));
        b.insert(t(2, "y"));
        b.insert(t(1, "x"));
        assert!(a.set_eq(&b));
        b.insert(t(3, "z"));
        assert!(!a.set_eq(&b));
    }

    #[test]
    fn tuple_project_and_concat() {
        let tp = Tuple::from([Value::Int(1), Value::text("x"), Value::Bool(true)]);
        assert_eq!(tp.project(&[2, 0]), Tuple::from([Value::Bool(true), Value::Int(1)]));
        let q = Tuple::from([Value::Int(9)]);
        assert_eq!(
            tp.concat(&q),
            Tuple::new(vec![Value::Int(1), Value::text("x"), Value::Bool(true), Value::Int(9)])
        );
        // concat across the inline/spill boundary
        let wide = tp.concat(&tp);
        assert_eq!(wide.arity(), 6);
        assert_eq!(wide.get(4), Some(&Value::text("x")));
    }

    #[test]
    fn project_clamps_out_of_range_to_null() {
        let tp = Tuple::from([Value::Int(1), Value::text("x")]);
        assert_eq!(tp.project(&[0, 7]), Tuple::from([Value::Int(1), Value::Null]));
        assert_eq!(tp.try_project(&[0, 7]), None);
        assert_eq!(
            tp.try_project(&[1, 0]),
            Some(Tuple::from([Value::text("x"), Value::Int(1)]))
        );
    }

    #[test]
    fn hash_values_matches_cached_tuple_hash() {
        let vals = [Value::Int(7), Value::text("k")];
        let tp = Tuple::from_slice(&vals);
        assert_eq!(tp.hash64(), hash_values(&vals));
        let uncached = intern::with_compact(false, || Tuple::from_slice(&vals));
        assert_eq!(uncached.hash64(), hash_values(&vals));
    }

    #[test]
    fn contains_values_matches_contains() {
        let mut r = r2("a", "b");
        r.insert(t(1, "x"));
        assert!(r.contains_values(&[Value::Int(1), Value::text("x")]));
        assert!(r.contains_values(&[Value::Int(1), Value::Text("x".into())]));
        assert!(!r.contains_values(&[Value::Int(2), Value::text("x")]));
        assert!(!r.contains_values(&[Value::Int(1)]));
    }

    #[test]
    fn index_probe_matches_filtered_scan_in_order() {
        let mut r = r2("a", "b");
        r.insert(t(1, "x"));
        r.insert(t(2, "y"));
        r.insert(t(1, "z"));
        let idx = r.index(&[0]);
        assert_eq!(idx.probe(&[Value::Int(1)]), &[0, 2]);
        assert_eq!(r.tuples()[0], t(1, "x"));
        assert_eq!(r.tuples()[2], t(1, "z"));
        assert!(idx.probe(&[Value::Int(9)]).is_empty());
    }

    #[test]
    fn index_is_maintained_incrementally_on_insert() {
        let mut r = r2("a", "b");
        r.insert(t(1, "x"));
        let _warm = r.index(&[0]); // build the cache, then insert more
        r.insert(t(1, "y"));
        r.insert(t(2, "z"));
        let idx = r.index(&[0]);
        assert_eq!(idx.probe(&[Value::Int(1)]), &[0, 1]);
        assert_eq!(idx.probe(&[Value::Int(2)]), &[2]);
    }

    #[test]
    fn index_invalidated_by_remove() {
        let mut r = r2("a", "b");
        r.insert(t(1, "x"));
        r.insert(t(2, "y"));
        r.insert(t(1, "z"));
        let _warm = r.index(&[0]);
        r.remove(&t(1, "x"));
        let idx = r.index(&[0]);
        // positions reflect the post-removal layout
        assert_eq!(idx.probe(&[Value::Int(1)]), &[1]);
        assert_eq!(idx.probe(&[Value::Int(2)]), &[0]);
    }

    #[test]
    fn multi_column_index_and_snapshot_semantics() {
        let mut r = r2("a", "b");
        r.insert(t(1, "x"));
        let snapshot = r.index(&[0, 1]);
        r.insert(t(1, "y"));
        // the old handle is a snapshot; a fresh probe sees the new tuple
        assert_eq!(snapshot.probe(&[Value::Int(1), Value::text("y")]).len(), 0);
        let fresh = r.index(&[0, 1]);
        assert_eq!(fresh.probe(&[Value::Int(1), Value::text("y")]).len(), 1);
        assert_eq!(fresh.positions(), &[0, 1]);
    }

    #[test]
    fn stats_are_maintained_incrementally_and_snapshot() {
        let mut r = r2("a", "b");
        r.insert(t(1, "x"));
        r.insert(t(1, "y"));
        let snap = r.stats(); // build the sketch, then insert more
        assert_eq!(snap.rows(), 2);
        assert_eq!(snap.col(0).unwrap().distinct(), 1);
        r.insert(t(2, "z"));
        // the old handle is a snapshot; a fresh one sees the new tuple
        assert_eq!(snap.rows(), 2);
        let fresh = r.stats();
        assert_eq!(fresh.rows(), 3);
        assert_eq!(fresh.col(0).unwrap().distinct(), 2);
        assert_eq!(fresh.col(0).unwrap().mcv(), Some((&Value::Int(1), 2)));
        // removal invalidates; the rebuilt sketch reflects the new state
        r.remove(&t(1, "x"));
        assert_eq!(r.stats().rows(), 2);
        assert_eq!(r.stats().col(0).unwrap().count(&Value::Int(1)), 1);
    }

    #[test]
    fn groundness() {
        assert!(t(1, "x").is_ground());
        assert!(!Tuple::from([Value::Int(1), Value::Null]).is_ground());
        assert!(!Tuple::from([Value::Labeled(3)]).is_ground());
    }

    #[test]
    fn schema_positions() {
        let s = RelSchema::of(&[("a", DataType::Int), ("b", DataType::Text)]);
        assert_eq!(s.position("b"), Some(1));
        assert_eq!(s.position("z"), None);
        assert!(s.has("a"));
    }
}
