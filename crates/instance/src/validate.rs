//! Validation of database instances against schemas and their integrity
//! constraints.
//!
//! §5 of the paper lists integrity-constraint checking as a runtime
//! service whose work is split between design time and runtime; this
//! module is the runtime half — the checker the mapping runtime invokes on
//! target databases after update propagation or data exchange.

use crate::database::Database;
use crate::relation::Tuple;
use crate::value::Value;
use mm_metamodel::{Constraint, ElementKind, Schema, TYPE_ATTR};
use std::collections::HashSet;
use std::fmt;

/// A violation of a schema or constraint by an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceViolation {
    /// A relation required by the schema is missing from the database.
    MissingRelation(String),
    /// A tuple's arity does not match the element's instance schema.
    ArityMismatch { element: String, expected: usize, actual: usize },
    /// A value does not conform to the attribute's declared type.
    TypeMismatch { element: String, attribute: String, value: String },
    /// NULL in a non-nullable attribute.
    NullViolation { element: String, attribute: String },
    /// Key constraint violated by two distinct tuples.
    KeyViolation { element: String, key: Vec<String> },
    /// Foreign key / inclusion dependency dangling.
    InclusionViolation { from: String, to: String, tuple: String },
    /// An entity's `$type` tag names a type that is not a subtype of its
    /// entity set.
    BadEntityType { set: String, ty: String },
    /// Disjointness violated: an entity key appears in both sets with
    /// most-derived types under both sides.
    DisjointViolation { left: String, right: String },
    /// Covering violated: an instance of `parent` belongs to no child.
    CoveringViolation { parent: String },
}

impl fmt::Display for InstanceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceViolation::MissingRelation(n) => write!(f, "missing relation `{n}`"),
            InstanceViolation::ArityMismatch { element, expected, actual } => {
                write!(f, "arity mismatch in `{element}`: expected {expected}, got {actual}")
            }
            InstanceViolation::TypeMismatch { element, attribute, value } => {
                write!(f, "type mismatch in `{element}.{attribute}`: {value}")
            }
            InstanceViolation::NullViolation { element, attribute } => {
                write!(f, "null in non-nullable `{element}.{attribute}`")
            }
            InstanceViolation::KeyViolation { element, key } => {
                write!(f, "key violation on `{element}`({})", key.join(", "))
            }
            InstanceViolation::InclusionViolation { from, to, tuple } => {
                write!(f, "dangling reference from `{from}` to `{to}`: {tuple}")
            }
            InstanceViolation::BadEntityType { set, ty } => {
                write!(f, "entity in `{set}` tagged with non-subtype `{ty}`")
            }
            InstanceViolation::DisjointViolation { left, right } => {
                write!(f, "disjointness of `{left}`/`{right}` violated")
            }
            InstanceViolation::CoveringViolation { parent } => {
                write!(f, "covering of `{parent}` violated")
            }
        }
    }
}

/// Validate `db` against `schema`. Collects all violations (no fail-fast):
/// callers such as the runtime's error-translation service want the full
/// list.
pub fn validate(schema: &Schema, db: &Database) -> Vec<InstanceViolation> {
    let mut out = Vec::new();
    for elem in schema.elements() {
        let Some(rel) = db.relation(&elem.name) else {
            out.push(InstanceViolation::MissingRelation(elem.name.clone()));
            continue;
        };
        let Some(expected) = Database::instance_schema(schema, &elem.name) else {
            continue;
        };
        for tuple in rel.iter() {
            if tuple.arity() != expected.arity() {
                out.push(InstanceViolation::ArityMismatch {
                    element: elem.name.clone(),
                    expected: expected.arity(),
                    actual: tuple.arity(),
                });
                continue;
            }
            for (i, attr) in expected.attributes.iter().enumerate() {
                let v = &tuple.values()[i];
                if !v.conforms_to(attr.ty) {
                    out.push(InstanceViolation::TypeMismatch {
                        element: elem.name.clone(),
                        attribute: attr.name.clone(),
                        value: v.to_string(),
                    });
                }
                if v.is_null() && !attr.nullable && attr.name != TYPE_ATTR {
                    out.push(InstanceViolation::NullViolation {
                        element: elem.name.clone(),
                        attribute: attr.name.clone(),
                    });
                }
            }
            // entity sets: the $type tag must be a subtype of the set
            if matches!(elem.kind, ElementKind::EntityType { .. }) {
                if let Some(ty) = tuple.get(0).and_then(Value::as_text) {
                    if !schema.is_subtype(ty, &elem.name) {
                        out.push(InstanceViolation::BadEntityType {
                            set: elem.name.clone(),
                            ty: ty.to_string(),
                        });
                    }
                }
            }
        }
    }
    for c in &schema.constraints {
        check_constraint(schema, db, c, &mut out);
    }
    out
}

fn key_projection(
    schema: &Schema,
    db: &Database,
    element: &str,
    attrs: &[String],
) -> Option<Vec<Tuple>> {
    let rel = db.relation(element)?;
    let layout = Database::instance_schema(schema, element)?;
    let positions: Vec<usize> =
        attrs.iter().map(|a| layout.position(a)).collect::<Option<_>>()?;
    Some(rel.iter().map(|t| t.project(&positions)).collect())
}

fn check_constraint(
    schema: &Schema,
    db: &Database,
    c: &Constraint,
    out: &mut Vec<InstanceViolation>,
) {
    match c {
        Constraint::Key(k) => {
            if let Some(proj) = key_projection(schema, db, &k.element, &k.attributes) {
                let mut seen = HashSet::with_capacity(proj.len());
                for t in proj {
                    if !seen.insert(t) {
                        out.push(InstanceViolation::KeyViolation {
                            element: k.element.clone(),
                            key: k.attributes.clone(),
                        });
                        break;
                    }
                }
            }
        }
        Constraint::ForeignKey(fk) => check_inclusion(
            schema,
            db,
            (&fk.from, &fk.from_attrs),
            (&fk.to, &fk.to_attrs),
            out,
        ),
        Constraint::Inclusion(i) => {
            check_inclusion(schema, db, (&i.from, &i.from_attrs), (&i.to, &i.to_attrs), out)
        }
        Constraint::Disjoint { left, right } => {
            // Entities are identified by their non-$type columns shared
            // via the common ancestor: compare the full flattened key-less
            // tuples is too strict, so we compare on the first attribute
            // after $type, which by convention is the identity. For
            // relations, compare whole tuples.
            let l = entity_ids(schema, db, left);
            let r = entity_ids(schema, db, right);
            if let (Some(l), Some(r)) = (l, r) {
                if l.iter().any(|t| r.contains(t)) {
                    out.push(InstanceViolation::DisjointViolation {
                        left: left.clone(),
                        right: right.clone(),
                    });
                }
            }
        }
        Constraint::Covering { parent, children } => {
            // every entity in `parent`'s set whose most-derived type is
            // exactly `parent` violates a total covering
            if let Some(rel) = db.relation(parent) {
                let violated = rel.iter().any(|t| match t.get(0).and_then(Value::as_text) {
                    Some(ty) => {
                        ty == parent && !children.iter().any(|c| schema.is_subtype(ty, c))
                    }
                    None => false,
                });
                if violated {
                    out.push(InstanceViolation::CoveringViolation { parent: parent.clone() });
                }
            }
        }
        Constraint::NotNull { element, attribute } => {
            if let (Some(rel), Some(layout)) =
                (db.relation(element), Database::instance_schema(schema, element))
            {
                if let Some(pos) = layout.position(attribute) {
                    if rel.iter().any(|t| t.values()[pos].is_null()) {
                        out.push(InstanceViolation::NullViolation {
                            element: element.clone(),
                            attribute: attribute.clone(),
                        });
                    }
                }
            }
        }
    }
}

/// Identity projection for disjointness: the first attribute after the
/// `$type` tag for entity sets (by convention the key), whole tuples for
/// relations.
fn entity_ids(schema: &Schema, db: &Database, element: &str) -> Option<HashSet<Tuple>> {
    let rel = db.relation(element)?;
    let is_entity = schema.element(element)?.is_entity_type();
    Some(
        rel.iter()
            .map(|t| if is_entity && t.arity() > 1 { t.project(&[1]) } else { t.clone() })
            .collect(),
    )
}

fn check_inclusion(
    schema: &Schema,
    db: &Database,
    from: (&str, &[String]),
    to: (&str, &[String]),
    out: &mut Vec<InstanceViolation>,
) {
    let Some(from_proj) = key_projection(schema, db, from.0, from.1) else { return };
    let Some(to_proj) = key_projection(schema, db, to.0, to.1) else { return };
    let target: HashSet<Tuple> = to_proj.into_iter().collect();
    for t in from_proj {
        // SQL semantics: rows with NULL in the referencing columns are
        // exempt from the foreign key
        if t.values().iter().any(Value::is_null) {
            continue;
        }
        if !target.contains(&t) {
            out.push(InstanceViolation::InclusionViolation {
                from: from.0.to_string(),
                to: to.0.to_string(),
                tuple: t.to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_metamodel::{DataType, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new("S")
            .relation("Orders", &[("id", DataType::Int), ("cust", DataType::Int)])
            .relation("Customers", &[("id", DataType::Int), ("name", DataType::Text)])
            .key("Orders", &["id"])
            .foreign_key("Orders", &["cust"], "Customers", &["id"])
            .build()
            .unwrap()
    }

    fn tt(vs: Vec<Value>) -> Tuple {
        Tuple::new(vs)
    }

    #[test]
    fn valid_instance_has_no_violations() {
        let s = schema();
        let mut db = Database::empty_of(&s);
        db.insert("Customers", tt(vec![Value::Int(1), Value::text("ann")]));
        db.insert("Orders", tt(vec![Value::Int(10), Value::Int(1)]));
        assert!(validate(&s, &db).is_empty());
    }

    #[test]
    fn dangling_fk_detected() {
        let s = schema();
        let mut db = Database::empty_of(&s);
        db.insert("Orders", tt(vec![Value::Int(10), Value::Int(99)]));
        let v = validate(&s, &db);
        assert!(v.iter().any(|x| matches!(x, InstanceViolation::InclusionViolation { .. })));
    }

    #[test]
    fn key_violation_detected() {
        let s = schema();
        let mut db = Database::empty_of(&s);
        db.insert("Customers", tt(vec![Value::Int(1), Value::text("a")]));
        db.insert("Orders", tt(vec![Value::Int(10), Value::Int(1)]));
        db.insert("Orders", tt(vec![Value::Int(10), Value::Int(1)])); // dup, set-dedup'd
        db.insert("Orders", tt(vec![Value::Int(10), Value::Int(2)])); // same key, diff tuple
        let v = validate(&s, &db);
        assert!(v.iter().any(|x| matches!(x, InstanceViolation::KeyViolation { .. })));
    }

    #[test]
    fn type_mismatch_detected() {
        let s = schema();
        let mut db = Database::empty_of(&s);
        db.insert("Customers", tt(vec![Value::text("oops"), Value::text("a")]));
        let v = validate(&s, &db);
        assert!(v.iter().any(|x| matches!(x, InstanceViolation::TypeMismatch { .. })));
    }

    #[test]
    fn arity_mismatch_detected() {
        let s = schema();
        let mut db = Database::empty_of(&s);
        let mut r = crate::relation::Relation::new(
            Database::instance_schema(&s, "Customers").unwrap(),
        );
        r.insert_unchecked(tt(vec![Value::Int(1)])); // too narrow
        db.insert_relation("Customers", r);
        let v = validate(&s, &db);
        assert!(v.iter().any(|x| matches!(x, InstanceViolation::ArityMismatch { .. })));
    }

    #[test]
    fn missing_relation_detected() {
        let s = schema();
        let db = Database::new("D");
        let v = validate(&s, &db);
        assert!(v.iter().any(|x| matches!(x, InstanceViolation::MissingRelation(_))));
    }

    #[test]
    fn null_in_fk_is_exempt() {
        let s = SchemaBuilder::new("S")
            .relation("Customers", &[("id", DataType::Int)])
            .relation_nullable("Orders", &[("id", DataType::Int, false), ("cust", DataType::Int, true)])
            .foreign_key("Orders", &["cust"], "Customers", &["id"])
            .build()
            .unwrap();
        let mut db = Database::empty_of(&s);
        db.insert("Orders", tt(vec![Value::Int(1), Value::Null]));
        assert!(validate(&s, &db).is_empty());
    }

    #[test]
    fn covering_violation_detected() {
        let s = SchemaBuilder::new("ER")
            .entity("P", &[("Id", DataType::Int)])
            .entity_sub("E", "P", &[])
            .constraint(Constraint::Covering { parent: "P".into(), children: vec!["E".into()] })
            .build()
            .unwrap();
        let mut db = Database::empty_of(&s);
        db.insert_entity("P", "P", vec![Value::Int(1)]); // most-derived type P: violates
        let v = validate(&s, &db);
        assert!(v.iter().any(|x| matches!(x, InstanceViolation::CoveringViolation { .. })));
    }

    #[test]
    fn disjoint_violation_detected() {
        let s = SchemaBuilder::new("ER")
            .entity("P", &[("Id", DataType::Int)])
            .entity_sub("E", "P", &[])
            .entity_sub("C", "P", &[])
            .constraint(Constraint::Disjoint { left: "E".into(), right: "C".into() })
            .build()
            .unwrap();
        let mut db = Database::empty_of(&s);
        db.insert_entity("E", "E", vec![Value::Int(1)]);
        db.insert_entity("C", "C", vec![Value::Int(1)]);
        let v = validate(&s, &db);
        assert!(v.iter().any(|x| matches!(x, InstanceViolation::DisjointViolation { .. })));
    }

    #[test]
    fn bad_entity_type_tag_detected() {
        let s = SchemaBuilder::new("ER")
            .entity("P", &[("Id", DataType::Int)])
            .entity("Q", &[("Id", DataType::Int)])
            .build()
            .unwrap();
        let mut db = Database::empty_of(&s);
        db.insert_entity("P", "Q", vec![Value::Int(1)]);
        let v = validate(&s, &db);
        assert!(v.iter().any(|x| matches!(x, InstanceViolation::BadEntityType { .. })));
    }
}
