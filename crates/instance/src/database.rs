//! Databases: named collections of relation instances.

use crate::relation::{RelSchema, Relation, Tuple};
use crate::value::Value;
use mm_metamodel::Schema;
#[cfg(test)]
use mm_metamodel::TYPE_ATTR;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An instance of a schema: one relation per element.
///
/// Entity sets are stored as relations whose first column is the reserved
/// [`mm_metamodel::TYPE_ATTR`] column carrying the entity's most-derived type, followed
/// by the flattened (inherited-first) attribute list — exactly the layout
/// the paper's Figure 3 query constructs with its `CASE WHEN ... THEN
/// Employee(...)` branches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Database {
    pub name: String,
    relations: BTreeMap<String, Relation>,
    /// Next fresh labeled-null id (monotone; shared across relations so
    /// labels are unique database-wide).
    next_label: u64,
}

impl Database {
    pub fn new(name: impl Into<String>) -> Self {
        Database { name: name.into(), relations: BTreeMap::new(), next_label: 0 }
    }

    #[allow(clippy::expect_used)] // invariant-backed: see expect messages
    /// Create an empty instance of `schema`: one empty relation per
    /// relation/entity-type/nested element (associations become link
    /// relations).
    pub fn empty_of(schema: &Schema) -> Self {
        let mut db = Database::new(schema.name.clone());
        for e in schema.elements() {
            let rel_schema = Self::instance_schema(schema, &e.name)
                .expect("element of schema must have an instance schema");
            db.relations.insert(e.name.clone(), Relation::new(rel_schema));
        }
        db
    }

    /// The instance-level column layout for element `name` of `schema`.
    /// Delegates to [`Schema::instance_layout`].
    pub fn instance_schema(schema: &Schema, name: &str) -> Option<RelSchema> {
        schema.instance_layout(name).map(RelSchema::new)
    }

    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    pub fn relation_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.relations.get_mut(name)
    }

    pub fn insert_relation(&mut self, name: impl Into<String>, relation: Relation) {
        self.relations.insert(name.into(), relation);
    }

    /// Insert a tuple into relation `name`; the relation must exist.
    /// Returns whether the tuple was new.
    pub fn insert(&mut self, name: &str, tuple: Tuple) -> bool {
        self.relations
            .get_mut(name)
            .unwrap_or_else(|| panic!("no relation `{name}` in database `{}`", self.name))
            .insert(tuple)
    }

    /// Insert an entity of most-derived type `ty` into entity set `set`
    /// with the flattened attribute values `values`.
    pub fn insert_entity(&mut self, set: &str, ty: &str, values: Vec<Value>) -> bool {
        let mut row = Vec::with_capacity(values.len() + 1);
        row.push(Value::text(ty));
        row.extend(values);
        self.insert(set, Tuple::new(row))
    }

    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    pub fn relations(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.relations.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total tuple count across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Mint a fresh labeled null.
    pub fn fresh_labeled(&mut self) -> Value {
        let v = Value::Labeled(self.next_label);
        self.next_label += 1;
        v
    }

    /// The largest labeled-null id in use plus one (used when merging
    /// databases so fresh labels stay unique).
    pub fn label_watermark(&self) -> u64 {
        self.next_label
    }

    pub fn set_label_watermark(&mut self, w: u64) {
        self.next_label = self.next_label.max(w);
    }

    /// Whether every tuple in every relation is ground (no nulls of either
    /// kind) — true of source databases in data exchange.
    pub fn is_ground(&self) -> bool {
        self.relations.values().all(|r| r.iter().all(Tuple::is_ground))
    }

    /// Rebuild all dedup indexes after deserialization.
    pub fn rebuild_indexes(&mut self) {
        for r in self.relations.values_mut() {
            r.rebuild_index();
        }
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "database {} {{", self.name)?;
        for (name, rel) in &self.relations {
            writeln!(f, "{name} ({} tuples)", rel.len())?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_metamodel::{DataType, SchemaBuilder};

    fn er_schema() -> Schema {
        SchemaBuilder::new("ER")
            .entity("Person", &[("Id", DataType::Int), ("Name", DataType::Text)])
            .entity_sub("Employee", "Person", &[("Dept", DataType::Text)])
            .build()
            .unwrap()
    }

    #[test]
    fn empty_of_creates_relation_per_element() {
        let s = er_schema();
        let db = Database::empty_of(&s);
        assert!(db.relation("Person").is_some());
        assert!(db.relation("Employee").is_some());
        assert_eq!(db.total_tuples(), 0);
    }

    #[test]
    fn entity_set_layout_has_type_column_then_flattened_attrs() {
        let s = er_schema();
        let rs = Database::instance_schema(&s, "Employee").unwrap();
        let names: Vec<&str> = rs.names().collect();
        assert_eq!(names, [TYPE_ATTR, "Id", "Name", "Dept"]);
    }

    #[test]
    fn insert_entity_prepends_type() {
        let s = er_schema();
        let mut db = Database::empty_of(&s);
        db.insert_entity("Person", "Person", vec![Value::Int(1), Value::text("ann")]);
        let t = db.relation("Person").unwrap().iter().next().unwrap().clone();
        assert_eq!(t.get(0), Some(&Value::text("Person")));
        assert_eq!(t.get(1), Some(&Value::Int(1)));
    }

    #[test]
    fn fresh_labels_are_unique_and_watermark_moves() {
        let mut db = Database::new("D");
        let a = db.fresh_labeled();
        let b = db.fresh_labeled();
        assert_ne!(a, b);
        assert_eq!(db.label_watermark(), 2);
        db.set_label_watermark(10);
        assert_eq!(db.fresh_labeled(), Value::Labeled(10));
    }

    #[test]
    fn groundness_detects_labeled_nulls() {
        let s = er_schema();
        let mut db = Database::empty_of(&s);
        db.insert_entity("Person", "Person", vec![Value::Int(1), Value::text("a")]);
        assert!(db.is_ground());
        let n = db.fresh_labeled();
        db.insert_entity("Person", "Person", vec![Value::Int(2), n]);
        assert!(!db.is_ground());
    }

    #[test]
    #[should_panic(expected = "no relation")]
    fn insert_into_missing_relation_panics() {
        let mut db = Database::new("D");
        db.insert("nope", Tuple::from([Value::Int(1)]));
    }
}
