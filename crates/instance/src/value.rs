//! Typed atomic values, including labeled nulls and interned text.

use crate::intern::{self, Symbol};
use mm_metamodel::DataType;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// An atomic value in an instance.
///
/// `Labeled` is a *labeled null* (marked null): a placeholder invented by
/// the chase when an st-tgd's existential variable must be witnessed. Two
/// labeled nulls are equal iff their labels are equal; they are never equal
/// to constants. Certain-answer evaluation (§4, "semantics of certain
/// answers") filters them from query results.
///
/// Text has two physical forms with one logical meaning: `Text` owns its
/// string; `Sym` is a `u32` handle into the global interning pool
/// ([`crate::intern`]). The two are indistinguishable through `Eq`,
/// `Ord`, `Hash`, `Display`, and the wire codec — which form a value
/// takes is a layout choice (the [`Value::text`] constructor interns when
/// the compact data plane is on), never a semantic one.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    Int(i64),
    /// Stored as raw bits wrapped in a total order (NaN sorts last); the
    /// public constructors/accessors speak `f64`.
    Double(f64),
    Bool(bool),
    Text(String),
    /// Interned text: semantically identical to `Text` of the resolved
    /// string, but hashes from a precomputed digest and compares by id
    /// against other symbols.
    Sym(Symbol),
    /// Days since epoch.
    Date(i32),
    /// SQL NULL (unknown / inapplicable).
    Null,
    /// Labeled null `N<id>` for universal instances.
    Labeled(u64),
}

impl Value {
    /// Construct a text value, interning into the symbol pool when the
    /// compact data plane is enabled on this thread (and the string is
    /// poolable — short enough, pool not full).
    pub fn text(s: impl Into<String>) -> Self {
        let s = s.into();
        if intern::compact_enabled() {
            if let Some(sym) = intern::intern(&s) {
                return Value::Sym(sym);
            }
        }
        Value::Text(s)
    }

    /// The string content if this is a text value (either form).
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            Value::Sym(sym) => Some(sym.as_str()),
            _ => None,
        }
    }

    /// The data type of the value, if it is a typed constant.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Text(_) | Value::Sym(_) => Some(DataType::Text),
            Value::Date(_) => Some(DataType::Date),
            Value::Null | Value::Labeled(_) => None,
        }
    }

    /// Whether the value is a constant (not NULL and not a labeled null).
    pub fn is_constant(&self) -> bool {
        !matches!(self, Value::Null | Value::Labeled(_))
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn is_labeled(&self) -> bool {
        matches!(self, Value::Labeled(_))
    }

    /// Whether the value conforms to the attribute type `ty`
    /// (`Int` is accepted where `Double` is expected).
    pub fn conforms_to(&self, ty: DataType) -> bool {
        match self.data_type() {
            Some(t) => t.compatible_with(ty),
            None => true, // nulls conform to any type; nullability is checked separately
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Labeled(_) => 1,
            Value::Bool(_) => 2,
            Value::Int(_) => 3,
            Value::Double(_) => 4,
            Value::Date(_) => 5,
            Value::Text(_) | Value::Sym(_) => 6,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Double(a), Value::Double(b)) => a.to_bits() == b.to_bits(),
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Text(a), Value::Text(b)) => a == b,
            // same pool, so id equality is string equality
            (Value::Sym(a), Value::Sym(b)) => a == b,
            (Value::Text(a), Value::Sym(b)) | (Value::Sym(b), Value::Text(a)) => {
                a == b.as_str()
            }
            (Value::Date(a), Value::Date(b)) => a == b,
            (Value::Null, Value::Null) => true,
            (Value::Labeled(a), Value::Labeled(b)) => a == b,
            // cross-type numeric equality so `1 = 1.0` holds in predicates
            (Value::Int(a), Value::Double(b)) | (Value::Double(b), Value::Int(a)) => {
                (*a as f64).to_bits() == b.to_bits()
            }
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            // hash ints and int-valued doubles identically, matching Eq
            Value::Int(a) => {
                state.write_u8(3);
                state.write_u64((*a as f64).to_bits());
            }
            Value::Double(d) => {
                state.write_u8(3);
                state.write_u64(d.to_bits());
            }
            Value::Bool(b) => {
                state.write_u8(2);
                state.write_u8(*b as u8);
            }
            // both text forms hash the same string digest, matching Eq;
            // a symbol reads its digest off the pool entry (no byte walk)
            Value::Text(s) => {
                state.write_u8(6);
                state.write_u64(intern::str_hash(s));
            }
            Value::Sym(sym) => {
                state.write_u8(6);
                state.write_u64(sym.hash64());
            }
            Value::Date(d) => {
                state.write_u8(5);
                state.write_i32(*d);
            }
            Value::Null => state.write_u8(0),
            Value::Labeled(l) => {
                state.write_u8(1);
                state.write_u64(*l);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Double(a), Value::Double(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Double(b)) => (*a as f64).total_cmp(b),
            (Value::Double(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (
                a @ (Value::Text(_) | Value::Sym(_)),
                b @ (Value::Text(_) | Value::Sym(_)),
            ) => a.as_text().cmp(&b.as_text()),
            (Value::Date(a), Value::Date(b)) => a.cmp(b),
            (Value::Labeled(a), Value::Labeled(b)) => a.cmp(b),
            (Value::Null, Value::Null) => Ordering::Equal,
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Text(v) => write!(f, "'{v}'"),
            Value::Sym(v) => write!(f, "'{}'", v.as_str()),
            Value::Date(v) => write!(f, "date({v})"),
            Value::Null => f.write_str("NULL"),
            Value::Labeled(l) => write!(f, "N{l}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn labeled_nulls_equal_only_by_label() {
        assert_eq!(Value::Labeled(1), Value::Labeled(1));
        assert_ne!(Value::Labeled(1), Value::Labeled(2));
        assert_ne!(Value::Labeled(1), Value::Null);
        assert_ne!(Value::Labeled(1), Value::Int(1));
    }

    #[test]
    fn numeric_cross_type_equality_and_hash_agree() {
        let a = Value::Int(3);
        let b = Value::Double(3.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_ne!(Value::Int(3), Value::Double(3.5));
    }

    #[test]
    fn interned_and_owned_text_are_indistinguishable() {
        let owned = Value::Text("sym-test".to_string());
        let interned = intern::with_compact(true, || Value::text("sym-test"));
        assert!(matches!(interned, Value::Sym(_)));
        assert_eq!(owned, interned);
        assert_eq!(hash_of(&owned), hash_of(&interned));
        assert_eq!(owned.cmp(&interned), Ordering::Equal);
        assert_eq!(owned.to_string(), interned.to_string());
        assert_eq!(owned.data_type(), interned.data_type());
        assert_eq!(owned.as_text(), interned.as_text());
        assert_ne!(interned, Value::text("sym-test-other"));
    }

    #[test]
    fn compact_off_builds_owned_text() {
        let v = intern::with_compact(false, || Value::text("plain"));
        assert!(matches!(v, Value::Text(_)));
    }

    #[test]
    fn oversized_text_stays_owned_under_compact() {
        let long = "z".repeat(intern::MAX_INTERN_LEN + 1);
        let v = intern::with_compact(true, || Value::text(long.clone()));
        assert!(matches!(v, Value::Text(_)));
        assert_eq!(v.as_text(), Some(long.as_str()));
    }

    #[test]
    fn null_is_not_a_constant() {
        assert!(!Value::Null.is_constant());
        assert!(!Value::Labeled(7).is_constant());
        assert!(Value::Int(0).is_constant());
    }

    #[test]
    fn conformance_follows_type_compatibility() {
        assert!(Value::Int(1).conforms_to(DataType::Int));
        assert!(Value::Int(1).conforms_to(DataType::Double));
        assert!(!Value::text("x").conforms_to(DataType::Int));
        assert!(Value::Null.conforms_to(DataType::Int));
        assert!(Value::Labeled(1).conforms_to(DataType::Text));
    }

    #[test]
    fn ordering_is_total_and_groups_by_rank() {
        let mut vs = [Value::text("b"),
            Value::Int(2),
            Value::Null,
            Value::Labeled(0),
            Value::text("a"),
            Value::Int(1),
            Value::Bool(true)];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Labeled(0));
        assert_eq!(vs.last().unwrap(), &Value::text("b"));
    }

    #[test]
    fn mixed_form_text_ordering_matches_string_ordering() {
        let mut vs = [
            Value::Text("delta".into()),
            intern::with_compact(true, || Value::text("alpha")),
            Value::Text("bravo".into()),
            intern::with_compact(true, || Value::text("charlie")),
        ];
        vs.sort();
        let texts: Vec<&str> = vs.iter().filter_map(Value::as_text).collect();
        assert_eq!(texts, ["alpha", "bravo", "charlie", "delta"]);
    }

    #[test]
    fn nan_double_ordering_is_total() {
        let mut vs = [Value::Double(f64::NAN), Value::Double(1.0), Value::Double(-1.0)];
        vs.sort(); // must not panic
        assert_eq!(vs[0], Value::Double(-1.0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::text("hi").to_string(), "'hi'");
        assert_eq!(Value::Labeled(4).to_string(), "N4");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
