//! Cardinality statistics for relations: per-relation tuple counts plus
//! per-column distinct-count and most-common-value sketches.
//!
//! The cost-based planner (mm-eval) estimates join selectivities from
//! these. They follow the same lifecycle as the lazy [`crate::RelIndex`]
//! cache: built on first request, maintained incrementally on insert
//! behind an Arc copy-on-write snapshot (readers never block and never
//! see a half-updated sketch), invalidated wholesale on removal, and
//! never serialized or compared.

use crate::intern;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Per-column sketch: exact value counts (the relation already holds the
/// values; the map costs O(distinct) extra), the derived distinct count,
/// and an incrementally tracked most-common value.
///
/// Text keys are stored as interned symbols (4-byte ids, no `String`
/// clone per distinct value) when the compact data plane is on; lookups
/// with either text form still hit, since `Value`'s `Eq`/`Hash` see
/// through the representation.
#[derive(Debug, Clone, Default)]
pub struct ColSketch {
    counts: HashMap<Value, u32>,
    mcv: Option<(Value, u32)>,
}

impl ColSketch {
    /// The map-key form of `v`: owned text becomes a symbol instead of a
    /// cloned `String` (when compact mode is on and the pool takes it).
    fn key_of(v: &Value) -> Value {
        match v {
            Value::Text(s) if intern::compact_enabled() => {
                intern::intern(s).map_or_else(|| v.clone(), Value::Sym)
            }
            _ => v.clone(),
        }
    }

    fn note(&mut self, v: &Value) {
        let c = self.counts.entry(Self::key_of(v)).or_insert(0);
        *c += 1;
        let c = *c;
        match &self.mcv {
            Some((_, best)) if *best >= c => {}
            _ => self.mcv = Some((Self::key_of(v), c)),
        }
    }

    /// Number of distinct values observed in this column.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Exact number of rows carrying `v` in this column.
    pub fn count(&self, v: &Value) -> u32 {
        self.counts.get(v).copied().unwrap_or(0)
    }

    /// The most common value and its row count, if any rows exist.
    pub fn mcv(&self) -> Option<(&Value, u32)> {
        self.mcv.as_ref().map(|(v, c)| (v, *c))
    }
}

/// Statistics snapshot for one relation. Obtained from
/// [`crate::Relation::stats`]; the handle stays internally consistent even
/// if the relation changes afterwards (copy-on-write).
#[derive(Debug, Clone, Default)]
pub struct RelStats {
    rows: u32,
    cols: Vec<ColSketch>,
}

impl RelStats {
    pub(crate) fn build(arity: usize, tuples: &[crate::relation::Tuple]) -> Self {
        let mut s = RelStats { rows: 0, cols: vec![ColSketch::default(); arity] };
        for t in tuples {
            s.note(t);
        }
        s
    }

    pub(crate) fn note(&mut self, tuple: &crate::relation::Tuple) {
        self.rows += 1;
        for (col, v) in self.cols.iter_mut().zip(tuple.values()) {
            col.note(v);
        }
    }

    /// Total row count at snapshot time.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// The sketch for column `i`, if in range.
    pub fn col(&self, i: usize) -> Option<&ColSketch> {
        self.cols.get(i)
    }

    /// Estimated fraction of rows where column `i` equals `v`
    /// (exact under these sketches). 0.0 on an empty relation or
    /// out-of-range column.
    pub fn eq_selectivity(&self, i: usize, v: &Value) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        match self.cols.get(i) {
            Some(c) => f64::from(c.count(v)) / f64::from(self.rows),
            None => 0.0,
        }
    }

    /// Estimated fraction of rows matching an equality on column `i`
    /// against an unknown (already-bound) value: `1 / distinct`, the
    /// uniform-within-distinct assumption. 1.0 when nothing is known.
    pub fn join_selectivity(&self, i: usize) -> f64 {
        match self.cols.get(i) {
            Some(c) if c.distinct() > 0 => 1.0 / c.distinct() as f64,
            _ => 1.0,
        }
    }
}

/// Shared snapshot handle, as stored in the relation's stats slot.
pub(crate) type StatsSlot = Option<Arc<RelStats>>;

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::relation::Tuple;

    fn tup(a: i64, b: i64) -> Tuple {
        Tuple::from([Value::Int(a), Value::Int(b)])
    }

    #[test]
    fn build_counts_distincts_and_mcv() {
        let tuples = vec![tup(1, 10), tup(1, 20), tup(2, 30)];
        let s = RelStats::build(2, &tuples);
        assert_eq!(s.rows(), 3);
        let c0 = s.col(0).unwrap();
        assert_eq!(c0.distinct(), 2);
        assert_eq!(c0.count(&Value::Int(1)), 2);
        assert_eq!(c0.mcv(), Some((&Value::Int(1), 2)));
        let c1 = s.col(1).unwrap();
        assert_eq!(c1.distinct(), 3);
        assert_eq!(c1.mcv().map(|(_, n)| n), Some(1));
    }

    #[test]
    fn selectivities() {
        let tuples = vec![tup(1, 10), tup(1, 20), tup(1, 30), tup(2, 40)];
        let s = RelStats::build(2, &tuples);
        assert!((s.eq_selectivity(0, &Value::Int(1)) - 0.75).abs() < 1e-9);
        assert_eq!(s.eq_selectivity(0, &Value::Int(9)), 0.0);
        assert!((s.join_selectivity(0) - 0.5).abs() < 1e-9);
        assert!((s.join_selectivity(1) - 0.25).abs() < 1e-9);
        // out of range / empty degrade safely
        assert_eq!(s.eq_selectivity(7, &Value::Int(1)), 0.0);
        assert_eq!(RelStats::build(2, &[]).eq_selectivity(0, &Value::Int(1)), 0.0);
        assert_eq!(RelStats::build(2, &[]).join_selectivity(0), 1.0);
    }

    #[test]
    fn text_columns_sketch_by_symbol_and_answer_both_forms() {
        let tuples: Vec<Tuple> = ["a", "a", "b"]
            .iter()
            .map(|s| Tuple::from([Value::text(*s)]))
            .collect();
        let s = intern::with_compact(true, || RelStats::build(1, &tuples));
        let c = s.col(0).unwrap();
        assert_eq!(c.distinct(), 2);
        // stored keys are symbols, not cloned strings
        assert!(matches!(c.mcv(), Some((Value::Sym(_), 2))));
        // lookups hit with either text form
        assert_eq!(c.count(&Value::Text("a".into())), 2);
        assert_eq!(c.count(&Value::text("a")), 2);
        assert_eq!(c.count(&Value::text("c")), 0);
    }

    #[test]
    fn incremental_note_matches_batch_build() {
        let tuples = vec![tup(5, 1), tup(5, 2), tup(6, 1), tup(5, 3)];
        let batch = RelStats::build(2, &tuples);
        let mut inc = RelStats::build(2, &tuples[..1]);
        for t in &tuples[1..] {
            inc.note(t);
        }
        assert_eq!(inc.rows(), batch.rows());
        for i in 0..2 {
            assert_eq!(inc.col(i).unwrap().distinct(), batch.col(i).unwrap().distinct());
            assert_eq!(inc.col(i).unwrap().mcv(), batch.col(i).unwrap().mcv());
        }
    }
}
