//! Merge (§6.3): combine two schemas given a mapping describing their
//! overlap.
//!
//! The algorithm follows the Pottinger–Bernstein "merging models based on
//! given correspondences" recipe at the granularity this engine needs:
//! element-level correspondences collapse elements (first input wins the
//! name), attribute-level correspondences collapse attributes, everything
//! else is unioned. The result carries mappings from the merged schema
//! back to each input.

use mm_expr::{Correspondence, CorrespondenceSet, PathRef};
use mm_metamodel::{Attribute, DataType, Element, Schema};
use std::collections::BTreeMap;

/// Output of Merge: the merged schema and the two projections (as
/// correspondence sets — one per input, from merged paths to input
/// paths).
#[derive(Debug, Clone)]
pub struct MergeResult {
    pub schema: Schema,
    pub to_left: CorrespondenceSet,
    pub to_right: CorrespondenceSet,
}

/// Reconcile the types of two corresponding attributes: equal types keep,
/// Int/Double widens, anything else falls back to `Any`.
fn reconcile(a: DataType, b: DataType) -> DataType {
    if a == b {
        a
    } else if a.compatible_with(b) {
        b
    } else if b.compatible_with(a) {
        a
    } else {
        DataType::Any
    }
}

#[allow(clippy::expect_used)] // invariant-backed: see expect messages
/// Merge two schemas modulo `corrs` (correspondences from `left` paths to
/// `right` paths). Elements/attributes relating the two sides are
/// collapsed; the left input's names win.
pub fn merge(left: &Schema, right: &Schema, corrs: &CorrespondenceSet) -> MergeResult {
    // element-level matches: right elem -> left elem
    let mut elem_match: BTreeMap<&str, &str> = BTreeMap::new();
    // attribute-level matches: (right elem, right attr) -> (left elem, left attr)
    let mut attr_match: BTreeMap<(&str, &str), (&str, &str)> = BTreeMap::new();
    for c in &corrs.correspondences {
        match (&c.source.attribute, &c.target.attribute) {
            (None, None) => {
                elem_match.insert(c.target.element.as_str(), c.source.element.as_str());
            }
            (Some(sa), Some(ta)) => {
                attr_match.insert(
                    (c.target.element.as_str(), ta.as_str()),
                    (c.source.element.as_str(), sa.as_str()),
                );
                // an attribute correspondence implies its elements match
                elem_match
                    .entry(c.target.element.as_str())
                    .or_insert(c.source.element.as_str());
            }
            _ => {}
        }
    }

    let mut merged = Schema::new(format!("{}+{}", left.name, right.name));
    let mut to_left = CorrespondenceSet::new(merged.name.clone(), left.name.clone());
    let mut to_right = CorrespondenceSet::new(merged.name.clone(), right.name.clone());

    // all left elements go in as-is
    for e in left.elements() {
        merged.add_element(e.clone()).expect("left elements unique");
        to_left.push(Correspondence::new(
            PathRef::element(e.name.clone()),
            PathRef::element(e.name.clone()),
            1.0,
        ));
        for a in &e.attributes {
            to_left.push(Correspondence::new(
                PathRef::attr(e.name.clone(), a.name.clone()),
                PathRef::attr(e.name.clone(), a.name.clone()),
                1.0,
            ));
        }
    }

    // right elements: collapse matched ones, add the rest
    for e in right.elements() {
        if let Some(l_name) = elem_match.get(e.name.as_str()) {
            to_right.push(Correspondence::new(
                PathRef::element((*l_name).to_string()),
                PathRef::element(e.name.clone()),
                1.0,
            ));
            for a in &e.attributes {
                if let Some((le, la)) = attr_match.get(&(e.name.as_str(), a.name.as_str())) {
                    // collapse onto the left attribute; reconcile types
                    if let Some(elem) = merged.element_mut(le) {
                        if let Some(ma) = elem.attributes.iter_mut().find(|x| &x.name == la)
                        {
                            ma.ty = reconcile(ma.ty, a.ty);
                            ma.nullable |= a.nullable;
                        }
                    }
                    to_right.push(Correspondence::new(
                        PathRef::attr((*le).to_string(), (*la).to_string()),
                        PathRef::attr(e.name.clone(), a.name.clone()),
                        1.0,
                    ));
                } else {
                    // unmatched attribute of a matched element: append to
                    // the collapsed element (renamed on clash)
                    let target = merged.element_mut(l_name).expect("matched element");
                    let name = if target.attributes.iter().any(|x| x.name == a.name) {
                        format!("{}_{}", e.name, a.name)
                    } else {
                        a.name.clone()
                    };
                    target.attributes.push(Attribute {
                        name: name.clone(),
                        ty: a.ty,
                        nullable: true, // left instances lack it
                    });
                    to_right.push(Correspondence::new(
                        PathRef::attr((*l_name).to_string(), name),
                        PathRef::attr(e.name.clone(), a.name.clone()),
                        1.0,
                    ));
                }
            }
        } else {
            // unmatched element: carried over, renamed on clash
            let name = if merged.contains(&e.name) {
                format!("{}_{}", right.name, e.name)
            } else {
                e.name.clone()
            };
            let mut elem = e.clone();
            elem.name = name.clone();
            // parent/association references into collapsed elements stay
            // valid only if those elements kept their names; drop edges we
            // cannot re-target
            // a second collision after qualification is ignored: the
            // element is dropped rather than aborting the merge
            let _ = merged.add_element(Element {
                name: name.clone(),
                kind: mm_metamodel::ElementKind::Relation,
                attributes: elem.attributes.clone(),
            });
            to_right.push(Correspondence::new(
                PathRef::element(name.clone()),
                PathRef::element(e.name.clone()),
                1.0,
            ));
            for a in &e.attributes {
                to_right.push(Correspondence::new(
                    PathRef::attr(name.clone(), a.name.clone()),
                    PathRef::attr(e.name.clone(), a.name.clone()),
                    1.0,
                ));
            }
        }
    }

    // constraints from the left carry over when still well-formed
    for c in &left.constraints {
        let _ = merged.add_constraint(c.clone());
    }

    MergeResult { schema: merged, to_left, to_right }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_metamodel::SchemaBuilder;

    fn left() -> Schema {
        SchemaBuilder::new("L")
            .relation("Empl", &[("EID", DataType::Int), ("Name", DataType::Text)])
            .relation("Proj", &[("PID", DataType::Int)])
            .key("Empl", &["EID"])
            .build()
            .unwrap()
    }

    fn right() -> Schema {
        SchemaBuilder::new("R")
            .relation("Staff", &[
                ("SID", DataType::Int),
                ("Name", DataType::Text),
                ("City", DataType::Text),
            ])
            .relation("Budget", &[("amount", DataType::Double)])
            .build()
            .unwrap()
    }

    fn corrs() -> CorrespondenceSet {
        let mut cs = CorrespondenceSet::new("L", "R");
        cs.push(Correspondence::new(
            PathRef::element("Empl"),
            PathRef::element("Staff"),
            1.0,
        ));
        cs.push(Correspondence::new(
            PathRef::attr("Empl", "EID"),
            PathRef::attr("Staff", "SID"),
            1.0,
        ));
        cs.push(Correspondence::new(
            PathRef::attr("Empl", "Name"),
            PathRef::attr("Staff", "Name"),
            1.0,
        ));
        cs
    }

    #[test]
    fn matched_elements_collapse_with_union_of_attributes() {
        let m = merge(&left(), &right(), &corrs());
        let empl = m.schema.element("Empl").unwrap();
        let names: Vec<&str> = empl.attribute_names().collect();
        // EID/Name collapsed, City appended (nullable)
        assert_eq!(names, ["EID", "Name", "City"]);
        assert!(empl.attribute("City").unwrap().nullable);
        assert!(m.schema.element("Staff").is_none());
    }

    #[test]
    fn unmatched_elements_carried_over() {
        let m = merge(&left(), &right(), &corrs());
        assert!(m.schema.element("Proj").is_some());
        assert!(m.schema.element("Budget").is_some());
        assert_eq!(m.schema.len(), 3);
    }

    #[test]
    fn projections_track_both_inputs() {
        let m = merge(&left(), &right(), &corrs());
        // merged Empl.EID maps to right Staff.SID
        assert!(m.to_right.correspondences.iter().any(|c| {
            c.source == PathRef::attr("Empl", "EID") && c.target == PathRef::attr("Staff", "SID")
        }));
        // and to left Empl.EID
        assert!(m.to_left.correspondences.iter().any(|c| {
            c.source == PathRef::attr("Empl", "EID") && c.target == PathRef::attr("Empl", "EID")
        }));
    }

    #[test]
    fn type_conflicts_reconcile() {
        assert_eq!(reconcile(DataType::Int, DataType::Int), DataType::Int);
        assert_eq!(reconcile(DataType::Int, DataType::Double), DataType::Double);
        assert_eq!(reconcile(DataType::Text, DataType::Bool), DataType::Any);
    }

    #[test]
    fn attribute_name_clash_gets_qualified() {
        let l = SchemaBuilder::new("L")
            .relation("T", &[("x", DataType::Int), ("note", DataType::Text)])
            .build()
            .unwrap();
        let r = SchemaBuilder::new("R")
            .relation("U", &[("y", DataType::Int), ("note", DataType::Bool)])
            .build()
            .unwrap();
        let mut cs = CorrespondenceSet::new("L", "R");
        cs.push(Correspondence::new(PathRef::element("T"), PathRef::element("U"), 1.0));
        cs.push(Correspondence::new(
            PathRef::attr("T", "x"),
            PathRef::attr("U", "y"),
            1.0,
        ));
        // U.note is unmatched and clashes with T.note -> qualified name
        let m = merge(&l, &r, &cs);
        let t = m.schema.element("T").unwrap();
        let names: Vec<&str> = t.attribute_names().collect();
        assert_eq!(names, ["x", "note", "U_note"]);
    }

    #[test]
    fn empty_correspondences_mean_disjoint_union() {
        let m = merge(&left(), &right(), &CorrespondenceSet::new("L", "R"));
        assert_eq!(m.schema.len(), 4);
        assert!(m.schema.element("Staff").is_some());
    }

    #[test]
    fn merge_is_idempotent_on_identical_schema_with_identity_corrs() {
        let l = left();
        let mut cs = CorrespondenceSet::new("L", "L");
        for e in l.elements() {
            cs.push(Correspondence::new(
                PathRef::element(e.name.clone()),
                PathRef::element(e.name.clone()),
                1.0,
            ));
            for a in &e.attributes {
                cs.push(Correspondence::new(
                    PathRef::attr(e.name.clone(), a.name.clone()),
                    PathRef::attr(e.name.clone(), a.name.clone()),
                    1.0,
                ));
            }
        }
        let m = merge(&l, &l, &cs);
        assert_eq!(m.schema.len(), l.len());
        for e in l.elements() {
            let me = m.schema.element(&e.name).unwrap();
            assert_eq!(me.attributes.len(), e.attributes.len());
        }
    }
}
