//! Computing and checking inverses of view-defined transformations
//! (§6.4).
//!
//! The paper distinguishes the syntactic `Invert` (swap source/target
//! roles, `mm_expr::Mapping::inverted`) from the semantic `Inverse`: a
//! transformation that actually reproduces the source instance —
//! "roundtripping". [`invert_views`] computes an inverse for the
//! invertible class this engine generates (per-relation
//! projection/rename/selection partitions that jointly retain every
//! column and a key); [`verify_inverse`] classifies a candidate pair as
//! exact inverse, quasi-inverse (Fagin et al.'s relaxation, checked here
//! as mapping-equivalence: `f(g(f(D))) = f(D)`), or neither.

// Translator-internal lookups are guarded by construction (schemas and
// view sets built in this module); `expect` here documents invariants,
// not caller-facing failure modes (DESIGN.md §7).
#![allow(clippy::expect_used)]

use mm_eval::materialize_views;
use mm_expr::{Expr, ViewDef, ViewSet};
use mm_instance::Database;
use mm_metamodel::Schema;
use std::collections::BTreeMap;
use std::fmt;

/// Classification of a candidate inverse on a sample instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InverseKind {
    /// `g(f(D)) = D`: exact roundtrip.
    Exact,
    /// Not exact, but `f(g(f(D))) = f(D)`: the inverse recovers a source
    /// equivalent under the forward mapping (quasi-inverse behaviour).
    Quasi,
    /// Neither.
    NotInverse,
}

impl fmt::Display for InverseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InverseKind::Exact => "exact inverse",
            InverseKind::Quasi => "quasi-inverse",
            InverseKind::NotInverse => "not an inverse",
        })
    }
}

/// Errors from inverse computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InverseError {
    /// A view reads more than one base relation; out of the invertible
    /// class.
    MultiRelationView(String),
    /// The views over a relation do not jointly cover its columns.
    LostColumns { relation: String, missing: Vec<String> },
    /// The views over a relation do not share key columns to rejoin on.
    NoKey(String),
    /// A view's shape is outside the invertible class (set operators,
    /// computed columns).
    Unsupported(String),
}

impl fmt::Display for InverseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InverseError::MultiRelationView(v) => {
                write!(f, "view `{v}` reads multiple relations")
            }
            InverseError::LostColumns { relation, missing } => {
                write!(f, "columns of `{relation}` lost: {}", missing.join(", "))
            }
            InverseError::NoKey(r) => write!(f, "no key to rejoin `{r}`"),
            InverseError::Unsupported(v) => write!(f, "view `{v}` outside invertible class"),
        }
    }
}

impl std::error::Error for InverseError {}

/// The shape of a single invertible view: a selection/projection/rename
/// over one base relation.
struct SimpleView<'a> {
    view_name: &'a str,
    base: String,
    /// base column -> view column
    renames: Vec<(String, String)>,
    /// Whether any selection occurs in the pipeline.
    has_selection: bool,
    /// Column equalities implied by the selections (`col = lit` conjuncts
    /// over base column names). A projected-away column whose value the
    /// selection pins down can be reconstructed — the Figure 6
    /// `Local × {'US'}` pattern.
    implied: Vec<(String, mm_expr::Lit)>,
}

enum PeelOp {
    Project(Vec<String>),
    Rename(Vec<(String, String)>),
}

/// Collect `col = lit` conjuncts from a predicate (top-level ANDs only).
fn implied_equalities(p: &mm_expr::Predicate, out: &mut Vec<(String, mm_expr::Lit)>) {
    use mm_expr::{CmpOp, Predicate, Scalar};
    match p {
        Predicate::And(a, b) => {
            implied_equalities(a, out);
            implied_equalities(b, out);
        }
        Predicate::Cmp { op: CmpOp::Eq, left, right } => match (left, right) {
            (Scalar::Col(c), Scalar::Lit(l)) | (Scalar::Lit(l), Scalar::Col(c)) => {
                out.push((c.clone(), l.clone()));
            }
            _ => {}
        },
        _ => {}
    }
}

fn analyze_view<'a>(
    v: &'a ViewDef,
    source: &Schema,
) -> Result<SimpleView<'a>, InverseError> {
    // peel: Project / Rename / Select / Distinct over Base, recording the
    // pipeline outer-first, then replay it inner-to-outer from the base
    let mut ops: Vec<PeelOp> = Vec::new();
    let mut has_selection = false;
    let mut implied: Vec<(String, mm_expr::Lit)> = Vec::new();
    let mut cur = &v.expr;
    let base = loop {
        match cur {
            Expr::Base(b) => break b.clone(),
            Expr::Project { input, columns } => {
                ops.push(PeelOp::Project(columns.clone()));
                cur = input;
            }
            Expr::Rename { input, renames: rs } => {
                ops.push(PeelOp::Rename(rs.clone()));
                cur = input;
            }
            Expr::Select { input, predicate } => {
                has_selection = true;
                implied_equalities(predicate, &mut implied);
                cur = input;
            }
            Expr::Distinct { input } => cur = input,
            Expr::Join { .. } | Expr::LeftJoin { .. } | Expr::Product { .. } => {
                return Err(InverseError::MultiRelationView(v.name.clone()))
            }
            _ => return Err(InverseError::Unsupported(v.name.clone())),
        }
    };
    let layout = source
        .instance_layout(&base)
        .ok_or_else(|| InverseError::Unsupported(v.name.clone()))?;
    // base column -> Some(current name) if still alive
    let mut alive: Vec<(String, Option<String>)> = layout
        .iter()
        .map(|a| (a.name.clone(), Some(a.name.clone())))
        .collect();
    for op in ops.iter().rev() {
        match op {
            PeelOp::Project(cols) => {
                for (_, cur_name) in alive.iter_mut() {
                    if let Some(n) = cur_name {
                        if !cols.contains(n) {
                            *cur_name = None;
                        }
                    }
                }
            }
            PeelOp::Rename(rs) => {
                // simultaneous: match against a snapshot of current names
                for (_, cur_name) in alive.iter_mut() {
                    if let Some(n) = cur_name.clone() {
                        if let Some((_, new)) = rs.iter().find(|(old, _)| old == &n) {
                            *cur_name = Some(new.clone());
                        }
                    }
                }
            }
        }
    }
    let kept: Vec<(String, String)> = alive
        .into_iter()
        .filter_map(|(b, n)| n.map(|n| (b, n)))
        .collect();
    // keep only implied equalities over base column names (selections
    // below all renames — the common generated shape)
    let layout_names: Vec<&str> = layout.iter().map(|a| a.name.as_str()).collect();
    implied.retain(|(c, _)| layout_names.contains(&c.as_str()));
    Ok(SimpleView { view_name: &v.name, base, renames: kept, has_selection, implied })
}

/// Compute an inverse view set for `views : source → target` when every
/// view is a projection/rename (optionally selection) of a single source
/// relation, and the views over each relation jointly retain all columns
/// and share the relation's key.
pub fn invert_views(views: &ViewSet, source: &Schema) -> Result<ViewSet, InverseError> {
    let mut by_base: BTreeMap<String, Vec<SimpleView<'_>>> = BTreeMap::new();
    for v in &views.views {
        let sv = analyze_view(v, source)?;
        by_base.entry(sv.base.clone()).or_default().push(sv);
    }
    let mut out = ViewSet::new(views.view_schema.clone(), views.base_schema.clone());
    for (base, svs) in &by_base {
        let layout = source.instance_layout(base).expect("validated");
        let order: Vec<String> = layout.iter().map(|a| a.name.clone()).collect();

        // Strategy 1 — horizontal reconstruction: every fragment is
        // width-complete (each base column either kept or pinned by a
        // selection equality); inverse = union of the re-widened
        // fragments. This is the Figure 6 `Local × {'US'} ∪ Foreign`
        // pattern.
        let width_complete = svs.iter().all(|s| {
            order.iter().all(|col| {
                s.renames.iter().any(|(b, _)| b == col)
                    || s.implied.iter().any(|(c, _)| c == col)
            })
        });
        if width_complete {
            let mut expr: Option<Expr> = None;
            for s in svs {
                let mut e = widen_fragment(s, &order);
                e = e.project_owned(order.clone());
                expr = Some(match expr {
                    None => e,
                    Some(acc) => acc.union(e),
                });
            }
            out.push(ViewDef::new(base.clone(), expr.expect("non-empty group")));
            continue;
        }

        // Strategy 2 — vertical reconstruction: projection fragments
        // rejoined on the key. Selections here would lose rows silently,
        // so they are rejected into the error.
        if svs.iter().any(|s| s.has_selection) {
            return Err(InverseError::Unsupported(format!(
                "mixed selection/projection fragments over `{base}`"
            )));
        }
        let key: Vec<String> = match source.declared_key(base) {
            Some(k) => k.to_vec(),
            None => vec![layout
                .first()
                .ok_or_else(|| InverseError::NoKey(base.clone()))?
                .name
                .clone()],
        };
        // column coverage
        let missing: Vec<String> = layout
            .iter()
            .filter(|a| !svs.iter().any(|s| s.renames.iter().any(|(b, _)| b == &a.name)))
            .map(|a| a.name.clone())
            .collect();
        if !missing.is_empty() {
            return Err(InverseError::LostColumns { relation: base.clone(), missing });
        }
        // every fragment must retain the key
        for s in svs {
            for k in &key {
                if !s.renames.iter().any(|(b, _)| b == k) {
                    return Err(InverseError::NoKey(base.clone()));
                }
            }
        }
        // assemble: join the fragments on the key, project columns back
        let mut expr: Option<Expr> = None;
        let mut have: Vec<String> = Vec::new();
        for s in svs {
            // rename view columns back to base names, keeping only new ones
            let back: Vec<(String, String)> = s
                .renames
                .iter()
                .filter(|(b, v)| b != v)
                .map(|(b, v)| (v.clone(), b.clone()))
                .collect();
            let mut e = Expr::base(s.view_name);
            if !back.is_empty() {
                e = Expr::Rename { input: Box::new(e), renames: back };
            }
            let cols: Vec<String> = s
                .renames
                .iter()
                .map(|(b, _)| b.clone())
                .filter(|c| key.contains(c) || !have.contains(c))
                .collect();
            e = e.project_owned(cols.clone());
            expr = Some(match expr {
                None => {
                    have.extend(cols);
                    e
                }
                Some(acc) => {
                    have.extend(cols.iter().filter(|c| !key.contains(c)).cloned());
                    let on: Vec<(String, String)> =
                        key.iter().map(|k| (k.clone(), k.clone())).collect();
                    Expr::Join { left: Box::new(acc), right: Box::new(e), on }
                }
            });
        }
        out.push(ViewDef::new(
            base.clone(),
            expr.expect("at least one view").project_owned(order),
        ));
    }
    Ok(out)
}

/// Rename a fragment's columns back to base names and re-attach
/// selection-pinned columns as literal extensions.
fn widen_fragment(s: &SimpleView<'_>, order: &[String]) -> Expr {
    let back: Vec<(String, String)> = s
        .renames
        .iter()
        .filter(|(b, v)| b != v)
        .map(|(b, v)| (v.clone(), b.clone()))
        .collect();
    let mut e = Expr::base(s.view_name);
    if !back.is_empty() {
        e = Expr::Rename { input: Box::new(e), renames: back };
    }
    for col in order {
        if s.renames.iter().any(|(b, _)| b == col) {
            continue;
        }
        let lit = s
            .implied
            .iter()
            .find(|(c, _)| c == col)
            .map(|(_, l)| l.clone())
            .expect("width-completeness checked");
        e = e.extend(col, mm_expr::Scalar::Lit(lit));
    }
    e
}

/// Classify `inverse` against `forward` on a sample instance.
pub fn verify_inverse(
    forward: &ViewSet,
    inverse: &ViewSet,
    source_schema: &Schema,
    target_schema: &Schema,
    sample: &Database,
) -> InverseKind {
    let Ok(t) = materialize_views(forward, source_schema, sample) else {
        return InverseKind::NotInverse;
    };
    let Ok(back) = materialize_views(inverse, target_schema, &t) else {
        return InverseKind::NotInverse;
    };
    let exact = source_schema.elements().all(|e| {
        match (sample.relation(&e.name), back.relation(&e.name)) {
            (Some(a), Some(b)) => a.set_eq(b),
            (None, None) => true,
            (Some(a), None) => a.is_empty(),
            (None, Some(b)) => b.is_empty(),
        }
    });
    if exact {
        return InverseKind::Exact;
    }
    // quasi: f(g(f(D))) = f(D)
    let Ok(t2) = materialize_views(forward, source_schema, &back) else {
        return InverseKind::NotInverse;
    };
    let quasi = t
        .relations()
        .all(|(name, rel)| t2.relation(name).map(|r| rel.set_eq(r)).unwrap_or(false));
    if quasi {
        InverseKind::Quasi
    } else {
        InverseKind::NotInverse
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_instance::{Tuple, Value};
    use mm_metamodel::{DataType, SchemaBuilder};

    fn source() -> Schema {
        SchemaBuilder::new("S")
            .relation("Names", &[("SID", DataType::Int), ("Name", DataType::Text)])
            .relation("Addresses", &[
                ("SID", DataType::Int),
                ("Address", DataType::Text),
                ("Country", DataType::Text),
            ])
            .key("Names", &["SID"])
            .key("Addresses", &["SID"])
            .build()
            .unwrap()
    }

    fn sample() -> Database {
        let mut db = Database::empty_of(&source());
        db.insert("Names", Tuple::from([Value::Int(1), Value::text("ann")]));
        db.insert("Names", Tuple::from([Value::Int(2), Value::text("bob")]));
        db.insert(
            "Addresses",
            Tuple::from([Value::Int(1), Value::text("5 Rue"), Value::text("FR")]),
        );
        db.insert(
            "Addresses",
            Tuple::from([Value::Int(2), Value::text("9 Ave"), Value::text("US")]),
        );
        db
    }

    /// A lossless vertical split of Addresses into two fragments.
    fn split_views() -> ViewSet {
        let mut vs = ViewSet::new("S", "T");
        vs.push(ViewDef::new("Names2", Expr::base("Names")));
        vs.push(ViewDef::new(
            "AddrCore",
            Expr::base("Addresses").project(&["SID", "Address"]),
        ));
        vs.push(ViewDef::new(
            "AddrGeo",
            Expr::base("Addresses")
                .project(&["SID", "Country"])
                .rename(&[("Country", "Land")]),
        ));
        vs
    }

    fn target_of_split() -> Schema {
        SchemaBuilder::new("T")
            .relation("Names2", &[("SID", DataType::Int), ("Name", DataType::Text)])
            .relation("AddrCore", &[("SID", DataType::Int), ("Address", DataType::Text)])
            .relation("AddrGeo", &[("SID", DataType::Int), ("Land", DataType::Text)])
            .build()
            .unwrap()
    }

    #[test]
    fn lossless_split_inverts_exactly() {
        let fwd = split_views();
        let inv = invert_views(&fwd, &source()).unwrap();
        assert_eq!(inv.len(), 2); // Names, Addresses
        let kind = verify_inverse(&fwd, &inv, &source(), &target_of_split(), &sample());
        assert_eq!(kind, InverseKind::Exact);
    }

    #[test]
    fn lossy_projection_detected() {
        let mut vs = ViewSet::new("S", "T");
        vs.push(ViewDef::new("N", Expr::base("Names").project(&["SID"])));
        let err = invert_views(&vs, &source()).unwrap_err();
        assert!(matches!(err, InverseError::LostColumns { .. }));
    }

    #[test]
    fn join_view_is_outside_class() {
        let mut vs = ViewSet::new("S", "T");
        vs.push(ViewDef::new(
            "J",
            Expr::base("Names").join(Expr::base("Addresses"), &[("SID", "SID")]),
        ));
        assert!(matches!(
            invert_views(&vs, &source()),
            Err(InverseError::MultiRelationView(_))
        ));
    }

    #[test]
    fn selection_makes_inverse_quasi_at_best() {
        use mm_expr::Predicate;
        // forward drops FR rows; the computed inverse cannot resurrect
        // them, but re-applying the forward map agrees: quasi-inverse
        let mut fwd = ViewSet::new("S", "T");
        fwd.push(ViewDef::new("Names2", Expr::base("Names")));
        fwd.push(ViewDef::new(
            "AddrUS",
            Expr::base("Addresses").select(Predicate::col_eq_lit("Country", "US")),
        ));
        let tgt = SchemaBuilder::new("T")
            .relation("Names2", &[("SID", DataType::Int), ("Name", DataType::Text)])
            .relation("AddrUS", &[
                ("SID", DataType::Int),
                ("Address", DataType::Text),
                ("Country", DataType::Text),
            ])
            .build()
            .unwrap();
        let inv = invert_views(&fwd, &source()).unwrap();
        let kind = verify_inverse(&fwd, &inv, &source(), &tgt, &sample());
        assert_eq!(kind, InverseKind::Quasi);
    }

    #[test]
    fn fragment_without_key_rejected() {
        let mut vs = ViewSet::new("S", "T");
        vs.push(ViewDef::new("A1", Expr::base("Addresses").project(&["SID", "Address"])));
        vs.push(ViewDef::new("A2", Expr::base("Addresses").project(&["Country"])));
        assert!(matches!(invert_views(&vs, &source()), Err(InverseError::NoKey(_))));
    }
}
