//! Schema evolution operators: Extract, Diff, Merge, Inverse (§6 of the
//! paper).
//!
//! When a schema changes, dependent artifacts — views, queries,
//! constraints, instances — must be repaired. The paper abstracts the
//! repairs as sequences of model management operations; this crate
//! supplies the operators beyond Compose (which lives in `mm-compose`):
//!
//! * [`diff::extract`] — the maximal sub-schema reachable through a
//!   mapping, with its embedding;
//! * [`diff::diff`] — Extract's complement: "the parts of S′ that do not
//!   participate in the mapping" (§6.2), keeping keys so the complement
//!   can be re-joined;
//! * [`merge::merge`] — combine two schemas modulo a correspondence
//!   mapping (Pottinger–Bernstein style, §6.3);
//! * [`inverse::invert_views`] / [`inverse::verify_inverse`] — compute
//!   and check (quasi-)inverses of view-defined transformations (§6.4,
//!   after Fagin);
//! * [`scenario`] — the paper's Figure 5 end-to-end evolution script.

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod diff;
pub mod inverse;
pub mod merge;
pub mod scenario;

pub use diff::{diff, extract, ExtractResult, Side};
pub use inverse::{invert_views, verify_inverse, InverseError, InverseKind};
pub use merge::{merge, MergeResult};
pub use scenario::{evolve_view, EvolutionOutcome};
