//! The paper's Figure 5 schema-evolution scenario, end to end.
//!
//! Given schema S with instance D and a view V over S, S evolves into S′.
//! The script: (1) migrate D through the forward mapping into D′;
//! (2) repair V by composing mapV-S with mapS-S′ (Figure 6) so it reads
//! from S′ directly.

use mm_compose::compose_views;
use mm_eval::{materialize_views, EvalError};
use mm_expr::ViewSet;
use mm_instance::Database;
use mm_metamodel::Schema;

/// Result of the evolution script.
#[derive(Debug, Clone)]
pub struct EvolutionOutcome {
    /// D′: the database migrated to the evolved schema.
    pub migrated: Database,
    /// mapV-S′: the view repaired to read from the evolved schema.
    pub repaired_views: ViewSet,
}

/// Run the Figure 5 script.
///
/// * `migration` — mapS-S′ as forward views (S′ relations over S), used
///   to migrate `d`;
/// * `old_over_new` — mapS-S′ in the substitutable direction (S relations
///   over S′), used to repair `v_views` by composition;
/// * `v_views` — mapV-S (the view definitions over S).
pub fn evolve_view(
    s: &Schema,
    migration: &ViewSet,
    old_over_new: &ViewSet,
    v_views: &ViewSet,
    d: &Database,
) -> Result<EvolutionOutcome, EvalError> {
    let migrated = materialize_views(migration, s, d)?;
    let repaired_views = compose_views(old_over_new, v_views);
    Ok(EvolutionOutcome { migrated, repaired_views })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_eval::eval;
    use mm_expr::{Expr, Lit, Predicate, ViewDef};
    use mm_instance::{Tuple, Value};
    use mm_metamodel::{DataType, SchemaBuilder};

    fn s() -> Schema {
        SchemaBuilder::new("S")
            .relation("Names", &[("SID", DataType::Int), ("Name", DataType::Text)])
            .relation("Addresses", &[
                ("SID", DataType::Int),
                ("Address", DataType::Text),
                ("Country", DataType::Text),
            ])
            .build()
            .unwrap()
    }

    fn s_prime() -> Schema {
        SchemaBuilder::new("Sprime")
            .relation("NamesP", &[("SID", DataType::Int), ("Name", DataType::Text)])
            .relation("Local", &[("SID", DataType::Int), ("Address", DataType::Text)])
            .relation("Foreign", &[
                ("SID", DataType::Int),
                ("Address", DataType::Text),
                ("Country", DataType::Text),
            ])
            .build()
            .unwrap()
    }

    /// mapS-S′ forward: the evolved relations defined over S.
    fn migration() -> ViewSet {
        let mut v = ViewSet::new("S", "Sprime");
        v.push(ViewDef::new("NamesP", Expr::base("Names")));
        v.push(ViewDef::new(
            "Local",
            Expr::base("Addresses")
                .select(Predicate::col_eq_lit("Country", "US"))
                .project(&["SID", "Address"]),
        ));
        v.push(ViewDef::new(
            "Foreign",
            Expr::base("Addresses")
                .select(Predicate::col_eq_lit("Country", "US").negate()),
        ));
        v
    }

    /// mapS-S′ substitutable: the old relations defined over S′ (the form
    /// Figure 6 composes with).
    fn old_over_new() -> ViewSet {
        let mut v = ViewSet::new("Sprime", "S");
        v.push(ViewDef::new("Names", Expr::base("NamesP")));
        v.push(ViewDef::new(
            "Addresses",
            Expr::base("Local")
                .product(Expr::literal_row(&["Country"], vec![Lit::text("US")]))
                .union(Expr::base("Foreign")),
        ));
        v
    }

    /// mapV-S: the Students view of Figure 6.
    fn v_views() -> ViewSet {
        let mut v = ViewSet::new("S", "V");
        v.push(ViewDef::new(
            "Students",
            Expr::base("Names")
                .join(Expr::base("Addresses"), &[("SID", "SID")])
                .project(&["Name", "Address", "Country"]),
        ));
        v
    }

    fn d() -> Database {
        let mut db = Database::empty_of(&s());
        db.insert("Names", Tuple::from([Value::Int(1), Value::text("ann")]));
        db.insert("Names", Tuple::from([Value::Int(2), Value::text("bob")]));
        db.insert(
            "Addresses",
            Tuple::from([Value::Int(1), Value::text("9 Ave"), Value::text("US")]),
        );
        db.insert(
            "Addresses",
            Tuple::from([Value::Int(2), Value::text("5 Rue"), Value::text("FR")]),
        );
        db
    }

    #[test]
    fn fig5_script_migrates_and_repairs() {
        let outcome = evolve_view(&s(), &migration(), &old_over_new(), &v_views(), &d()).unwrap();
        // D′ has the split address relations
        assert_eq!(outcome.migrated.relation("Local").unwrap().len(), 1);
        assert_eq!(outcome.migrated.relation("Foreign").unwrap().len(), 1);
        assert_eq!(outcome.migrated.relation("NamesP").unwrap().len(), 2);

        // the repaired view evaluated on D′ equals the old view on D
        let old_students = eval(&v_views().view("Students").unwrap().expr, &s(), &d()).unwrap();
        let new_students = eval(
            &outcome.repaired_views.view("Students").unwrap().expr,
            &s_prime(),
            &outcome.migrated,
        )
        .unwrap();
        assert!(old_students.set_eq(&new_students), "old:\n{old_students}\nnew:\n{new_students}");
        assert_eq!(new_students.len(), 2);
    }

    #[test]
    fn repaired_view_reads_only_evolved_relations() {
        let outcome = evolve_view(&s(), &migration(), &old_over_new(), &v_views(), &d()).unwrap();
        let bases =
            mm_expr::analyze::base_relations(&outcome.repaired_views.view("Students").unwrap().expr);
        assert!(bases.iter().all(|b| ["NamesP", "Local", "Foreign"].contains(b)), "{bases:?}");
    }
}
