//! Extract and Diff (§6.2).
//!
//! `Extract(S, map)` returns the maximal sub-schema of `S` that
//! participates in `map`, with an embedding mapping. `Diff(S, map)` is its
//! complement: the sub-schema covering what the mapping loses. Keys are
//! retained on both sides ("the complement must be re-joinable" — the
//! view-complement reading of Bancilhon & Spyratos the paper cites).
//!
//! Participation is computed syntactically from the mapping constraints:
//! an attribute participates if a constraint's expression on the relevant
//! side mentions it (in a projection, predicate, join key, or scalar) for
//! its element — a sound approximation for the SPJRU expressions the
//! engine generates.

use mm_expr::{Expr, Mapping, MappingConstraint, Predicate, Scalar, ViewDef, ViewSet};
use mm_metamodel::{Element, Schema};
use std::collections::{BTreeMap, BTreeSet};

/// Output of Extract/Diff: the sub-schema plus its embedding views (each
/// retained element defined as a projection of the original element).
#[derive(Debug, Clone)]
pub struct ExtractResult {
    pub schema: Schema,
    /// Views defining the sub-schema's relations over the original schema.
    pub embedding: ViewSet,
}

/// Collect, per base relation of `schema`, the attribute names an
/// expression mentions.
fn collect_used(expr: &Expr, schema: &Schema, used: &mut BTreeMap<String, BTreeSet<String>>) {
    // attribute names mentioned anywhere in the expression
    let mut names: BTreeSet<String> = BTreeSet::new();
    walk_names(expr, &mut names);
    for base in mm_expr::analyze::base_relations(expr) {
        if let Some(elem) = schema.element(base) {
            let entry = used.entry(base.to_string()).or_default();
            for a in &elem.attributes {
                if names.contains(&a.name) {
                    entry.insert(a.name.clone());
                }
            }
        }
    }
}

fn walk_names(expr: &Expr, out: &mut BTreeSet<String>) {
    match expr {
        Expr::Base(_) => {}
        Expr::Literal { columns, .. } => out.extend(columns.iter().cloned()),
        Expr::Project { input, columns } => {
            out.extend(columns.iter().cloned());
            walk_names(input, out);
        }
        Expr::Select { input, predicate } => {
            pred_names(predicate, out);
            walk_names(input, out);
        }
        Expr::Join { left, right, on } | Expr::LeftJoin { left, right, on } => {
            for (a, b) in on {
                out.insert(a.clone());
                out.insert(b.clone());
            }
            walk_names(left, out);
            walk_names(right, out);
        }
        Expr::Product { left, right }
        | Expr::Union { left, right, .. }
        | Expr::Diff { left, right } => {
            walk_names(left, out);
            walk_names(right, out);
        }
        Expr::Rename { input, renames } => {
            for (a, b) in renames {
                out.insert(a.clone());
                out.insert(b.clone());
            }
            walk_names(input, out);
        }
        Expr::Extend { input, column, scalar } => {
            out.insert(column.clone());
            scalar_names(scalar, out);
            walk_names(input, out);
        }
        Expr::Distinct { input } => walk_names(input, out),
        Expr::Aggregate { input, group_by, aggregates } => {
            out.extend(group_by.iter().cloned());
            for a in aggregates {
                if let Some(c) = &a.column {
                    out.insert(c.clone());
                }
                out.insert(a.output.clone());
            }
            walk_names(input, out);
        }
    }
}

fn scalar_names(s: &Scalar, out: &mut BTreeSet<String>) {
    match s {
        Scalar::Col(c) => {
            out.insert(c.clone());
        }
        Scalar::Lit(_) => {}
        Scalar::Func(_, args) => {
            for a in args {
                scalar_names(a, out);
            }
        }
        Scalar::Case { branches, otherwise } => {
            for (p, v) in branches {
                pred_names(p, out);
                scalar_names(v, out);
            }
            scalar_names(otherwise, out);
        }
    }
}

fn pred_names(p: &Predicate, out: &mut BTreeSet<String>) {
    match p {
        Predicate::Cmp { left, right, .. } => {
            scalar_names(left, out);
            scalar_names(right, out);
        }
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            pred_names(a, out);
            pred_names(b, out);
        }
        Predicate::Not(q) => pred_names(q, out),
        Predicate::IsNull(s) => scalar_names(s, out),
        Predicate::IsOf { .. } | Predicate::True | Predicate::False => {}
    }
}

/// Which side of the mapping refers to `schema`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    Source,
    Target,
}

/// Attributes of `schema` participating in the mapping, per element.
fn participation(
    schema: &Schema,
    mapping: &Mapping,
    side: Side,
) -> BTreeMap<String, BTreeSet<String>> {
    let mut used: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for c in &mapping.constraints {
        match c {
            MappingConstraint::ExprEq { source, target } => {
                let e = match side {
                    Side::Source => source,
                    Side::Target => target,
                };
                collect_used(e, schema, &mut used);
            }
            MappingConstraint::Tgd(tgd) => {
                let atoms = match side {
                    Side::Source => &tgd.body,
                    Side::Target => &tgd.head,
                };
                for a in atoms {
                    if let Some(layout) = schema.instance_layout(&a.relation) {
                        let entry = used.entry(a.relation.clone()).or_default();
                        // positions bound by non-fresh terms participate;
                        // a tgd atom binds every position, so all columns
                        // participate
                        for attr in layout {
                            entry.insert(attr.name);
                        }
                    }
                }
            }
            MappingConstraint::SoTgd(so) => {
                for cl in &so.clauses {
                    let atoms = match side {
                        Side::Source => &cl.body,
                        Side::Target => &cl.head,
                    };
                    for a in atoms {
                        if let Some(layout) = schema.instance_layout(&a.relation) {
                            let entry = used.entry(a.relation.clone()).or_default();
                            for attr in layout {
                                entry.insert(attr.name);
                            }
                        }
                    }
                }
            }
        }
    }
    used
}

fn key_names(schema: &Schema, element: &str) -> Vec<String> {
    match schema.declared_key(element) {
        Some(k) => k.to_vec(),
        None => schema
            .element(element)
            .and_then(|e| e.attributes.first())
            .map(|a| vec![a.name.clone()])
            .unwrap_or_default(),
    }
}

#[allow(clippy::expect_used)] // invariant-backed: see expect messages
fn build_subschema(
    schema: &Schema,
    name: String,
    keep: &BTreeMap<String, Vec<String>>, // element -> retained attrs (ordered)
) -> ExtractResult {
    let mut sub = Schema::new(name.clone());
    let mut embedding = ViewSet::new(schema.name.clone(), name);
    for elem in schema.elements() {
        let Some(cols) = keep.get(&elem.name) else { continue };
        if cols.is_empty() {
            continue;
        }
        let attrs: Vec<_> = elem
            .attributes
            .iter()
            .filter(|a| cols.contains(&a.name))
            .cloned()
            .collect();
        sub.add_element(Element {
            name: elem.name.clone(),
            kind: elem.kind.clone(),
            attributes: attrs.clone(),
        })
        .expect("sub-schema element unique");
        let col_names: Vec<String> = attrs.iter().map(|a| a.name.clone()).collect();
        embedding.push(ViewDef::new(
            elem.name.clone(),
            Expr::base(elem.name.clone()).project_owned(col_names),
        ));
    }
    // constraints that still type-check are carried over
    for c in &schema.constraints {
        let _ = sub.add_constraint(c.clone());
    }
    ExtractResult { schema: sub, embedding }
}

/// Extract: the maximal sub-schema of `schema` participating in `mapping`
/// (on the given side), with its embedding views. Keys of participating
/// elements are always retained.
pub fn extract(schema: &Schema, mapping: &Mapping, side: Side) -> ExtractResult {
    let used = participation(schema, mapping, side);
    let mut keep: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for elem in schema.elements() {
        let Some(attrs) = used.get(&elem.name) else { continue };
        let mut cols: Vec<String> = Vec::new();
        for k in key_names(schema, &elem.name) {
            if elem.attributes.iter().any(|a| a.name == k) && !cols.contains(&k) {
                cols.push(k);
            }
        }
        for a in &elem.attributes {
            if attrs.contains(&a.name) && !cols.contains(&a.name) {
                cols.push(a.name.clone());
            }
        }
        keep.insert(elem.name.clone(), cols);
    }
    build_subschema(schema, format!("{}_extract", schema.name), &keep)
}

/// Diff: the complement of Extract — elements and attributes *not*
/// participating in the mapping, with keys retained for re-joinability.
/// Fully covered elements disappear entirely (they lose nothing).
pub fn diff(schema: &Schema, mapping: &Mapping, side: Side) -> ExtractResult {
    let used = participation(schema, mapping, side);
    let mut keep: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for elem in schema.elements() {
        let covered = used.get(&elem.name);
        let uncovered: Vec<String> = elem
            .attributes
            .iter()
            .filter(|a| covered.map(|c| !c.contains(&a.name)).unwrap_or(true))
            .map(|a| a.name.clone())
            .collect();
        if uncovered.is_empty() {
            continue; // fully covered: nothing lost
        }
        let mut cols: Vec<String> = Vec::new();
        for k in key_names(schema, &elem.name) {
            if elem.attributes.iter().any(|a| a.name == k) && !cols.contains(&k) {
                cols.push(k);
            }
        }
        for u in uncovered {
            if !cols.contains(&u) {
                cols.push(u);
            }
        }
        keep.insert(elem.name.clone(), cols);
    }
    build_subschema(schema, format!("{}_diff", schema.name), &keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_metamodel::{DataType, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new("S")
            .relation("Empl", &[
                ("EID", DataType::Int),
                ("Name", DataType::Text),
                ("Tel", DataType::Text),
                ("AID", DataType::Int),
            ])
            .relation("Addr", &[
                ("AID", DataType::Int),
                ("City", DataType::Text),
                ("Zip", DataType::Text),
            ])
            .relation("Audit", &[("ts", DataType::Date), ("what", DataType::Text)])
            .key("Empl", &["EID"])
            .build()
            .unwrap()
    }

    fn mapping() -> Mapping {
        // uses Empl.EID, Empl.Name, Empl.AID (join), Addr.AID, Addr.City
        Mapping::with_constraints(
            "S",
            "T",
            vec![MappingConstraint::ExprEq {
                source: Expr::base("Empl")
                    .join(Expr::base("Addr"), &[("AID", "AID")])
                    .project(&["EID", "Name", "City"]),
                target: Expr::base("Staff"),
            }],
        )
    }

    #[test]
    fn extract_keeps_participating_attributes_plus_key() {
        let r = extract(&schema(), &mapping(), Side::Source);
        let empl = r.schema.element("Empl").unwrap();
        let names: Vec<&str> = empl.attribute_names().collect();
        assert_eq!(names, ["EID", "Name", "AID"]);
        let addr = r.schema.element("Addr").unwrap();
        let names: Vec<&str> = addr.attribute_names().collect();
        assert_eq!(names, ["AID", "City"]);
        // Audit does not participate at all
        assert!(r.schema.element("Audit").is_none());
        // embedding views project the originals
        assert_eq!(r.embedding.len(), 2);
    }

    #[test]
    fn diff_keeps_lost_attributes_plus_key() {
        let r = diff(&schema(), &mapping(), Side::Source);
        let empl = r.schema.element("Empl").unwrap();
        let names: Vec<&str> = empl.attribute_names().collect();
        // key EID + lost Tel
        assert_eq!(names, ["EID", "Tel"]);
        let addr = r.schema.element("Addr").unwrap();
        let names: Vec<&str> = addr.attribute_names().collect();
        assert_eq!(names, ["AID", "Zip"]);
        // Audit is entirely lost
        let audit = r.schema.element("Audit").unwrap();
        assert_eq!(audit.attributes.len(), 2);
    }

    #[test]
    fn extract_and_diff_cover_the_schema() {
        // every attribute is in extract or diff (keys may be in both)
        let s = schema();
        let e = extract(&s, &mapping(), Side::Source);
        let d = diff(&s, &mapping(), Side::Source);
        for elem in s.elements() {
            for a in &elem.attributes {
                let in_e = e
                    .schema
                    .element(&elem.name)
                    .map(|x| x.attribute(&a.name).is_some())
                    .unwrap_or(false);
                let in_d = d
                    .schema
                    .element(&elem.name)
                    .map(|x| x.attribute(&a.name).is_some())
                    .unwrap_or(false);
                assert!(in_e || in_d, "{}.{} lost by both", elem.name, a.name);
            }
        }
    }

    #[test]
    fn fully_covered_schema_has_empty_diff() {
        let s = SchemaBuilder::new("S")
            .relation("R", &[("a", DataType::Int), ("b", DataType::Text)])
            .build()
            .unwrap();
        let m = Mapping::with_constraints(
            "S",
            "T",
            vec![MappingConstraint::ExprEq {
                source: Expr::base("R").project(&["a", "b"]),
                target: Expr::base("T"),
            }],
        );
        let d = diff(&s, &m, Side::Source);
        assert!(d.schema.is_empty());
    }

    #[test]
    fn tgd_constraints_cover_all_atom_columns() {
        use mm_expr::{Atom, Tgd};
        let s = SchemaBuilder::new("S")
            .relation("R", &[("a", DataType::Int), ("b", DataType::Text)])
            .relation("Z", &[("c", DataType::Int)])
            .build()
            .unwrap();
        let mut m = Mapping::new("S", "T");
        m.push_tgd(Tgd::new(vec![Atom::vars("R", &["x", "y"])], vec![Atom::vars("T", &["x"])]));
        let e = extract(&s, &m, Side::Source);
        assert!(e.schema.element("R").is_some());
        assert!(e.schema.element("Z").is_none());
        let d = diff(&s, &m, Side::Source);
        assert!(d.schema.element("R").is_none());
        assert!(d.schema.element("Z").is_some());
    }
}
