//! Algebraic optimization: predicate pushdown and column pruning.
//!
//! §4 of the paper: "it must be possible to generate efficient
//! transformations … which is likely to expose a wealth of optimization
//! opportunities." The unfolded/composed expressions the engine produces
//! (Figure 3 reconstructions, Figure 6 compositions, mediator chains) are
//! deeply nested; this pass rewrites them so the materializing evaluator
//! touches less data:
//!
//! * **predicate pushdown** — selections move through projections,
//!   renames, extends, set operations, and into the inputs of joins and
//!   products (conjunct by conjunct);
//! * **column pruning** — projections are replicated below joins, unions,
//!   and products so intermediates carry only needed columns;
//! * plus the [`crate::rewrite::simplify_fix`] clean-ups.
//!
//! All rewrites are semantics-preserving under the evaluator's semantics
//! (verified by property tests and the EQ9 ablation).

use crate::algebra::{Expr, Predicate, Scalar};
use crate::analyze::{output_schema, ExprError};
use mm_metamodel::Schema;
use std::collections::BTreeSet;

/// Fully optimize an expression against `schema`.
pub fn optimize(expr: &Expr, schema: &Schema) -> Result<Expr, ExprError> {
    // validate up front so the passes can assume well-typedness
    output_schema(expr, schema)?;
    let mut cur = crate::rewrite::simplify_fix(expr);
    for _ in 0..8 {
        let pushed = push_predicates(&cur, schema)?;
        let pruned = prune_columns(&pushed, schema)?;
        let next = crate::rewrite::simplify_fix(&pruned);
        if next == cur {
            break;
        }
        cur = next;
    }
    Ok(cur)
}

// ---------------------------------------------------------------------------
// predicate pushdown

fn columns_of(expr: &Expr, schema: &Schema) -> Result<Vec<String>, ExprError> {
    Ok(output_schema(expr, schema)?.into_iter().map(|a| a.name).collect())
}

fn pred_columns(p: &Predicate, out: &mut BTreeSet<String>) {
    match p {
        Predicate::Cmp { left, right, .. } => {
            scalar_columns(left, out);
            scalar_columns(right, out);
        }
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            pred_columns(a, out);
            pred_columns(b, out);
        }
        Predicate::Not(q) => pred_columns(q, out),
        Predicate::IsNull(s) => scalar_columns(s, out),
        Predicate::IsOf { .. } => {
            out.insert(mm_metamodel::TYPE_ATTR.to_string());
        }
        Predicate::True | Predicate::False => {}
    }
}

fn scalar_columns(s: &Scalar, out: &mut BTreeSet<String>) {
    match s {
        Scalar::Col(c) => {
            out.insert(c.clone());
        }
        Scalar::Lit(_) => {}
        Scalar::Func(_, args) => {
            for a in args {
                scalar_columns(a, out);
            }
        }
        Scalar::Case { branches, otherwise } => {
            for (p, v) in branches {
                pred_columns(p, out);
                scalar_columns(v, out);
            }
            scalar_columns(otherwise, out);
        }
    }
}

fn split_conjuncts(p: Predicate, out: &mut Vec<Predicate>) {
    match p {
        Predicate::And(a, b) => {
            split_conjuncts(*a, out);
            split_conjuncts(*b, out);
        }
        Predicate::True => {}
        other => out.push(other),
    }
}

fn conjoin(preds: Vec<Predicate>) -> Predicate {
    preds.into_iter().fold(Predicate::True, |acc, p| acc.and(p))
}

fn rename_in_scalar(s: &Scalar, map: &dyn Fn(&str) -> Option<String>) -> Scalar {
    match s {
        Scalar::Col(c) => Scalar::Col(map(c).unwrap_or_else(|| c.clone())),
        Scalar::Lit(_) => s.clone(),
        Scalar::Func(f, args) => {
            Scalar::Func(*f, args.iter().map(|a| rename_in_scalar(a, map)).collect())
        }
        Scalar::Case { branches, otherwise } => Scalar::Case {
            branches: branches
                .iter()
                .map(|(p, v)| (rename_in_pred(p, map), rename_in_scalar(v, map)))
                .collect(),
            otherwise: Box::new(rename_in_scalar(otherwise, map)),
        },
    }
}

fn rename_in_pred(p: &Predicate, map: &dyn Fn(&str) -> Option<String>) -> Predicate {
    match p {
        Predicate::Cmp { op, left, right } => Predicate::Cmp {
            op: *op,
            left: rename_in_scalar(left, map),
            right: rename_in_scalar(right, map),
        },
        Predicate::And(a, b) => Predicate::And(
            Box::new(rename_in_pred(a, map)),
            Box::new(rename_in_pred(b, map)),
        ),
        Predicate::Or(a, b) => Predicate::Or(
            Box::new(rename_in_pred(a, map)),
            Box::new(rename_in_pred(b, map)),
        ),
        Predicate::Not(q) => Predicate::Not(Box::new(rename_in_pred(q, map))),
        Predicate::IsNull(s) => Predicate::IsNull(rename_in_scalar(s, map)),
        other => other.clone(),
    }
}

/// One bottom-up pass moving selections as deep as possible.
fn push_predicates(expr: &Expr, schema: &Schema) -> Result<Expr, ExprError> {
    let e = match expr {
        Expr::Base(_) | Expr::Literal { .. } => expr.clone(),
        Expr::Project { input, columns } => Expr::Project {
            input: Box::new(push_predicates(input, schema)?),
            columns: columns.clone(),
        },
        Expr::Select { input, predicate } => {
            let inner = push_predicates(input, schema)?;
            return push_select(predicate.clone(), inner, schema);
        }
        Expr::Join { left, right, on } => Expr::Join {
            left: Box::new(push_predicates(left, schema)?),
            right: Box::new(push_predicates(right, schema)?),
            on: on.clone(),
        },
        Expr::LeftJoin { left, right, on } => Expr::LeftJoin {
            left: Box::new(push_predicates(left, schema)?),
            right: Box::new(push_predicates(right, schema)?),
            on: on.clone(),
        },
        Expr::Product { left, right } => Expr::Product {
            left: Box::new(push_predicates(left, schema)?),
            right: Box::new(push_predicates(right, schema)?),
        },
        Expr::Union { left, right, all } => Expr::Union {
            left: Box::new(push_predicates(left, schema)?),
            right: Box::new(push_predicates(right, schema)?),
            all: *all,
        },
        Expr::Diff { left, right } => Expr::Diff {
            left: Box::new(push_predicates(left, schema)?),
            right: Box::new(push_predicates(right, schema)?),
        },
        Expr::Rename { input, renames } => Expr::Rename {
            input: Box::new(push_predicates(input, schema)?),
            renames: renames.clone(),
        },
        Expr::Extend { input, column, scalar } => Expr::Extend {
            input: Box::new(push_predicates(input, schema)?),
            column: column.clone(),
            scalar: scalar.clone(),
        },
        Expr::Distinct { input } => {
            Expr::Distinct { input: Box::new(push_predicates(input, schema)?) }
        }
        Expr::Aggregate { input, group_by, aggregates } => Expr::Aggregate {
            input: Box::new(push_predicates(input, schema)?),
            group_by: group_by.clone(),
            aggregates: aggregates.clone(),
        },
    };
    Ok(e)
}

/// Push a selection predicate into `input` where possible.
fn push_select(pred: Predicate, input: Expr, schema: &Schema) -> Result<Expr, ExprError> {
    match input {
        Expr::Project { input: inner, columns } => {
            // predicate only sees projected columns, all present below
            let pushed = push_select(pred, *inner, schema)?;
            Ok(Expr::Project { input: Box::new(pushed), columns })
        }
        Expr::Rename { input: inner, renames } => {
            // rewrite predicate columns new -> old, push below the rename
            let back = |c: &str| {
                renames
                    .iter()
                    .find(|(_, new)| new == c)
                    .map(|(old, _)| old.clone())
            };
            let renamed = rename_in_pred(&pred, &back);
            let pushed = push_select(renamed, *inner, schema)?;
            Ok(Expr::Rename { input: Box::new(pushed), renames })
        }
        Expr::Distinct { input: inner } => {
            let pushed = push_select(pred, *inner, schema)?;
            Ok(Expr::Distinct { input: Box::new(pushed) })
        }
        Expr::Extend { input: inner, column, scalar } => {
            // conjuncts not touching the computed column move below
            let mut conjuncts = Vec::new();
            split_conjuncts(pred, &mut conjuncts);
            let (below, above): (Vec<_>, Vec<_>) = conjuncts.into_iter().partition(|c| {
                let mut cols = BTreeSet::new();
                pred_columns(c, &mut cols);
                !cols.contains(&column)
            });
            let mut e = push_select(conjoin(below), *inner, schema)?;
            e = Expr::Extend { input: Box::new(e), column, scalar };
            Ok(wrap_select(e, conjoin(above)))
        }
        Expr::Union { left, right, all } => {
            // left keeps names; the right side is positional — translate
            let l_cols = columns_of(&left, schema)?;
            let r_cols = columns_of(&right, schema)?;
            let to_right = |c: &str| {
                l_cols
                    .iter()
                    .position(|x| x == c)
                    .and_then(|i| r_cols.get(i).cloned())
            };
            let r_pred = rename_in_pred(&pred, &to_right);
            let l = push_select(pred, *left, schema)?;
            let r = push_select(r_pred, *right, schema)?;
            Ok(Expr::Union { left: Box::new(l), right: Box::new(r), all })
        }
        Expr::Join { left, right, on } => {
            push_into_join(pred, *left, *right, on, schema, JoinKind::Inner)
        }
        Expr::Product { left, right } => {
            push_into_join(pred, *left, *right, Vec::new(), schema, JoinKind::Inner)
        }
        Expr::Aggregate { input, group_by, aggregates } => {
            // conjuncts over group-by columns commute with grouping;
            // conjuncts over aggregate outputs (HAVING-style) stay above
            let mut conjuncts = Vec::new();
            split_conjuncts(pred, &mut conjuncts);
            let (below, above): (Vec<_>, Vec<_>) = conjuncts.into_iter().partition(|c| {
                let mut cols = BTreeSet::new();
                pred_columns(c, &mut cols);
                cols.iter().all(|x| group_by.contains(x))
            });
            let inner = push_select(conjoin(below), *input, schema)?;
            let e = Expr::Aggregate { input: Box::new(inner), group_by, aggregates };
            Ok(wrap_select(e, conjoin(above)))
        }
        Expr::LeftJoin { left, right, on } => {
            // only left-side conjuncts are safe to push (right side
            // filtering changes NULL padding)
            let l_cols: BTreeSet<String> =
                columns_of(&left, schema)?.into_iter().collect();
            let mut conjuncts = Vec::new();
            split_conjuncts(pred, &mut conjuncts);
            let (l_push, above): (Vec<_>, Vec<_>) = conjuncts.into_iter().partition(|c| {
                let mut cols = BTreeSet::new();
                pred_columns(c, &mut cols);
                cols.iter().all(|x| l_cols.contains(x))
            });
            let l = push_select(conjoin(l_push), *left, schema)?;
            let e = Expr::LeftJoin { left: Box::new(l), right, on };
            Ok(wrap_select(e, conjoin(above)))
        }
        other => Ok(wrap_select(other, pred)),
    }
}

enum JoinKind {
    Inner,
}

fn push_into_join(
    pred: Predicate,
    left: Expr,
    right: Expr,
    on: Vec<(String, String)>,
    schema: &Schema,
    _kind: JoinKind,
) -> Result<Expr, ExprError> {
    let l_cols: BTreeSet<String> = columns_of(&left, schema)?.into_iter().collect();
    let r_cols: BTreeSet<String> = columns_of(&right, schema)?.into_iter().collect();
    let mut conjuncts = Vec::new();
    split_conjuncts(pred, &mut conjuncts);
    let mut l_push = Vec::new();
    let mut r_push = Vec::new();
    let mut above = Vec::new();
    for c in conjuncts {
        let mut cols = BTreeSet::new();
        pred_columns(&c, &mut cols);
        if cols.iter().all(|x| l_cols.contains(x)) {
            // a conjunct over left columns can also mirror to the right
            // when every column is a join key (filter both build sides)
            l_push.push(c);
        } else if cols.iter().all(|x| r_cols.contains(x)) {
            r_push.push(c);
        } else {
            // mixed: a conjunct on a (left-named) join key column can be
            // rewritten to the right name; otherwise stay above
            let to_right = |col: &str| {
                on.iter().find(|(l, _)| l == col).map(|(_, r)| r.clone())
            };
            let rewritten = rename_in_pred(&c, &to_right);
            let mut rcols = BTreeSet::new();
            pred_columns(&rewritten, &mut rcols);
            if rcols.iter().all(|x| r_cols.contains(x)) {
                r_push.push(rewritten);
            } else {
                above.push(c);
            }
        }
    }
    let l = push_select(conjoin(l_push), left, schema)?;
    let r = push_select(conjoin(r_push), right, schema)?;
    let joined = if on.is_empty() {
        Expr::Product { left: Box::new(l), right: Box::new(r) }
    } else {
        Expr::Join { left: Box::new(l), right: Box::new(r), on }
    };
    Ok(wrap_select(joined, conjoin(above)))
}

fn wrap_select(e: Expr, pred: Predicate) -> Expr {
    match pred {
        Predicate::True => e,
        p => Expr::Select { input: Box::new(e), predicate: p },
    }
}

// ---------------------------------------------------------------------------
// column pruning

/// One top-down pass inserting projections below joins/unions/products so
/// intermediates only carry needed columns.
fn prune_columns(expr: &Expr, schema: &Schema) -> Result<Expr, ExprError> {
    let all: Vec<String> = columns_of(expr, schema)?;
    prune_needed(expr, &all.into_iter().collect::<BTreeSet<_>>(), schema)
}

fn prune_needed(
    expr: &Expr,
    needed: &BTreeSet<String>,
    schema: &Schema,
) -> Result<Expr, ExprError> {
    match expr {
        Expr::Base(_) | Expr::Literal { .. } => Ok(expr.clone()),
        Expr::Project { input, columns } => {
            let mut want: BTreeSet<String> = columns.iter().cloned().collect();
            // keep only the projected columns that are needed upstream,
            // preserving order — but a projection's output IS its column
            // list; upstream needs are a subset
            want.retain(|c| needed.contains(c) || needed.is_empty());
            let cols: Vec<String> = if want.is_empty() {
                columns.clone()
            } else {
                columns.iter().filter(|c| want.contains(*c)).cloned().collect()
            };
            let inner_needed: BTreeSet<String> = cols.iter().cloned().collect();
            Ok(Expr::Project {
                input: Box::new(prune_needed(input, &inner_needed, schema)?),
                columns: cols,
            })
        }
        Expr::Select { input, predicate } => {
            let mut want = needed.clone();
            pred_columns(predicate, &mut want);
            Ok(Expr::Select {
                input: Box::new(prune_needed(input, &want, schema)?),
                predicate: predicate.clone(),
            })
        }
        Expr::Join { left, right, on } => {
            let l_cols = columns_of(left, schema)?;
            let r_cols = columns_of(right, schema)?;
            let mut l_want: Vec<String> = l_cols
                .iter()
                .filter(|c| needed.contains(*c) || on.iter().any(|(a, _)| a == *c))
                .cloned()
                .collect();
            let mut r_want: Vec<String> = r_cols
                .iter()
                .filter(|c| needed.contains(*c) || on.iter().any(|(_, b)| b == *c))
                .cloned()
                .collect();
            if l_want.is_empty() {
                l_want = l_cols.clone();
            }
            if r_want.is_empty() {
                r_want = r_cols.clone();
            }
            let l_set: BTreeSet<String> = l_want.iter().cloned().collect();
            let r_set: BTreeSet<String> = r_want.iter().cloned().collect();
            let l = maybe_project(prune_needed(left, &l_set, schema)?, &l_cols, l_want);
            let r = maybe_project(prune_needed(right, &r_set, schema)?, &r_cols, r_want);
            Ok(Expr::Join { left: Box::new(l), right: Box::new(r), on: on.clone() })
        }
        Expr::LeftJoin { left, right, on } => Ok(Expr::LeftJoin {
            left: Box::new(prune_needed(left, needed, schema)?),
            right: Box::new(prune_needed(right, needed, schema)?),
            on: on.clone(),
        }),
        Expr::Product { left, right } => Ok(Expr::Product {
            left: Box::new(prune_needed(left, needed, schema)?),
            right: Box::new(prune_needed(right, needed, schema)?),
        }),
        Expr::Union { left, right, all } => {
            // positional: translate needed left names to right names
            let l_cols = columns_of(left, schema)?;
            let r_cols = columns_of(right, schema)?;
            let keep: Vec<usize> = (0..l_cols.len())
                .filter(|i| needed.contains(&l_cols[*i]))
                .collect();
            if keep.is_empty() || keep.len() == l_cols.len() {
                return Ok(Expr::Union {
                    left: Box::new(prune_needed(
                        left,
                        &l_cols.iter().cloned().collect(),
                        schema,
                    )?),
                    right: Box::new(prune_needed(
                        right,
                        &r_cols.iter().cloned().collect(),
                        schema,
                    )?),
                    all: *all,
                });
            }
            let l_keep: Vec<String> = keep.iter().map(|&i| l_cols[i].clone()).collect();
            let r_keep: Vec<String> = keep.iter().map(|&i| r_cols[i].clone()).collect();
            let l = prune_needed(left, &l_keep.iter().cloned().collect(), schema)?
                .project_owned(l_keep);
            let r = prune_needed(right, &r_keep.iter().cloned().collect(), schema)?
                .project_owned(r_keep);
            Ok(Expr::Union { left: Box::new(l), right: Box::new(r), all: *all })
        }
        Expr::Diff { left, right } => Ok(Expr::Diff {
            left: Box::new(prune_needed(
                left,
                &columns_of(left, schema)?.into_iter().collect(),
                schema,
            )?),
            right: Box::new(prune_needed(
                right,
                &columns_of(right, schema)?.into_iter().collect(),
                schema,
            )?),
        }),
        Expr::Rename { input, renames } => {
            let back: BTreeSet<String> = needed
                .iter()
                .map(|c| {
                    renames
                        .iter()
                        .find(|(_, new)| new == c)
                        .map(|(old, _)| old.clone())
                        .unwrap_or_else(|| c.clone())
                })
                .collect();
            Ok(Expr::Rename {
                input: Box::new(prune_needed(input, &back, schema)?),
                renames: renames.clone(),
            })
        }
        Expr::Extend { input, column, scalar } => {
            let mut want = needed.clone();
            want.remove(column);
            scalar_columns(scalar, &mut want);
            // inputs must still provide everything needed plus scalar deps
            Ok(Expr::Extend {
                input: Box::new(prune_needed(input, &want, schema)?),
                column: column.clone(),
                scalar: scalar.clone(),
            })
        }
        Expr::Distinct { input } => Ok(Expr::Distinct {
            input: Box::new(prune_needed(input, needed, schema)?),
        }),
        Expr::Aggregate { input, group_by, aggregates } => {
            // the aggregate needs its grouping and aggregated columns
            let mut want: BTreeSet<String> = group_by.iter().cloned().collect();
            for a in aggregates {
                if let Some(c) = &a.column {
                    want.insert(c.clone());
                }
            }
            Ok(Expr::Aggregate {
                input: Box::new(prune_needed(input, &want, schema)?),
                group_by: group_by.clone(),
                aggregates: aggregates.clone(),
            })
        }
    }
}

/// Wrap `e` in a projection when it would strictly reduce its columns.
fn maybe_project(e: Expr, have: &[String], want: Vec<String>) -> Expr {
    if want.len() < have.len() {
        e.project_owned(want)
    } else {
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::CmpOp;
    use mm_metamodel::{DataType, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new("S")
            .relation("Empl", &[
                ("EID", DataType::Int),
                ("Name", DataType::Text),
                ("Tel", DataType::Text),
                ("AID", DataType::Int),
            ])
            .relation("Addr", &[
                ("AID", DataType::Int),
                ("City", DataType::Text),
                ("Zip", DataType::Text),
            ])
            .build()
            .unwrap()
    }

    fn count_selects_above_joins(e: &Expr) -> usize {
        // selections sitting directly on a join = not pushed
        match e {
            Expr::Select { input, .. } => {
                let own = usize::from(matches!(
                    **input,
                    Expr::Join { .. } | Expr::Product { .. }
                ));
                own + count_selects_above_joins(input)
            }
            Expr::Project { input, .. }
            | Expr::Rename { input, .. }
            | Expr::Extend { input, .. }
            | Expr::Distinct { input } => count_selects_above_joins(input),
            Expr::Join { left, right, .. }
            | Expr::LeftJoin { left, right, .. }
            | Expr::Product { left, right }
            | Expr::Union { left, right, .. }
            | Expr::Diff { left, right } => {
                count_selects_above_joins(left) + count_selects_above_joins(right)
            }
            _ => 0,
        }
    }

    #[test]
    fn selection_pushes_through_join_to_the_right_side() {
        let s = schema();
        let e = Expr::base("Empl")
            .join(Expr::base("Addr"), &[("AID", "AID")])
            .select(Predicate::col_eq_lit("City", "rome"));
        let opt = optimize(&e, &s).unwrap();
        assert_eq!(count_selects_above_joins(&opt), 0, "{opt}");
        // the selection now sits on Addr
        assert!(opt.to_string().contains("(Addr) WHERE City = 'rome'"), "{opt}");
    }

    #[test]
    fn mixed_conjunction_splits_across_join() {
        let s = schema();
        let e = Expr::base("Empl")
            .join(Expr::base("Addr"), &[("AID", "AID")])
            .select(
                Predicate::col_eq_lit("Name", "ann").and(Predicate::col_eq_lit("City", "rome")),
            );
        let opt = optimize(&e, &s).unwrap();
        let text = opt.to_string();
        assert!(text.contains("(Empl) WHERE Name = 'ann'"), "{text}");
        assert!(text.contains("(Addr) WHERE City = 'rome'"), "{text}");
    }

    #[test]
    fn join_key_predicate_mirrors_to_the_right_name() {
        let s = schema();
        // AID is the left name of the join key; the conjunct can filter
        // the right side too (rewritten to its AID)
        let e = Expr::base("Empl")
            .join(Expr::base("Addr"), &[("AID", "AID")])
            .select(Predicate::col_eq_lit("AID", 10i64));
        let opt = optimize(&e, &s).unwrap();
        assert_eq!(count_selects_above_joins(&opt), 0, "{opt}");
    }

    #[test]
    fn selection_pushes_through_union_with_positional_rename() {
        let s = schema();
        let left = Expr::base("Empl").project(&["EID", "Name"]);
        let right = Expr::base("Addr")
            .project(&["AID", "City"]); // positional: EID<->AID, Name<->City
        let e = left.union(right).select(Predicate::col_eq_lit("Name", "x"));
        let opt = optimize(&e, &s).unwrap();
        let text = opt.to_string();
        // right branch filters City (the positional twin of Name)
        assert!(text.contains("City = 'x'"), "{text}");
        assert!(!matches!(opt, Expr::Select { .. }), "selection not pushed: {text}");
    }

    #[test]
    fn left_join_only_pushes_left_conjuncts() {
        let s = schema();
        let e = Expr::base("Empl")
            .left_join(Expr::base("Addr"), &[("AID", "AID")])
            .select(
                Predicate::col_eq_lit("Name", "ann")
                    .and(Predicate::IsNull(Scalar::col("City"))),
            );
        let opt = optimize(&e, &s).unwrap();
        let text = opt.to_string();
        // Name filter moved to Empl; City IS NULL stayed above the outer join
        assert!(text.contains("(Empl) WHERE Name = 'ann'"), "{text}");
        assert!(text.contains("LEFT OUTER JOIN"), "{text}");
        assert!(
            matches!(&opt, Expr::Select { predicate, .. }
                if predicate.to_string().contains("City IS NULL")),
            "{text}"
        );
    }

    #[test]
    fn column_pruning_inserts_projections_below_joins() {
        let s = schema();
        let e = Expr::base("Empl")
            .join(Expr::base("Addr"), &[("AID", "AID")])
            .project(&["Name", "City"]);
        let opt = optimize(&e, &s).unwrap();
        let text = opt.to_string();
        // Tel and Zip are never carried through the join
        assert!(!needed_in_join(&opt, "Tel"), "{text}");
        assert!(!needed_in_join(&opt, "Zip"), "{text}");
    }

    fn needed_in_join(e: &Expr, col: &str) -> bool {
        match e {
            Expr::Join { left, right, .. } => {
                let l = crate::analyze::output_schema(left, &schema()).unwrap();
                let r = crate::analyze::output_schema(right, &schema()).unwrap();
                l.iter().chain(r.iter()).any(|a| a.name == col)
            }
            Expr::Project { input, .. }
            | Expr::Select { input, .. }
            | Expr::Rename { input, .. }
            | Expr::Extend { input, .. }
            | Expr::Distinct { input } => needed_in_join(input, col),
            _ => false,
        }
    }

    #[test]
    fn extend_pushdown_skips_computed_column() {
        let s = schema();
        let e = Expr::base("Empl")
            .extend("Flag", Scalar::lit(true))
            .select(
                Predicate::col_eq_lit("Flag", true).and(Predicate::col_eq_lit("Name", "ann")),
            );
        let opt = optimize(&e, &s).unwrap();
        let text = opt.to_string();
        assert!(text.contains("(Empl) WHERE Name = 'ann'"), "{text}");
        assert!(text.contains("Flag = TRUE"), "{text}");
    }

    #[test]
    fn optimizer_is_idempotent() {
        let s = schema();
        let e = Expr::base("Empl")
            .join(Expr::base("Addr"), &[("AID", "AID")])
            .select(Predicate::col_eq_lit("City", "rome"))
            .project(&["Name"]);
        let once = optimize(&e, &s).unwrap();
        let twice = optimize(&once, &s).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn groupby_conjuncts_push_below_aggregates_having_stays() {
        use crate::algebra::AggSpec;
        let s = schema();
        let e = Expr::base("Empl")
            .aggregate(&["AID"], vec![AggSpec::count("n")])
            .select(
                Predicate::col_eq_lit("AID", 10i64).and(Predicate::Cmp {
                    op: CmpOp::Gt,
                    left: Scalar::col("n"),
                    right: Scalar::lit(1i64),
                }),
            );
        let opt = optimize(&e, &s).unwrap();
        let text = opt.to_string();
        // AID filter reached the Empl scan; the HAVING-style n filter
        // remains above the aggregate
        assert!(text.contains("(Empl) WHERE AID = 10"), "{text}");
        assert!(
            matches!(&opt, Expr::Select { predicate, .. } if predicate.to_string().contains("n > 1")),
            "{text}"
        );
    }

    #[test]
    fn comparison_operators_push_too() {
        let s = schema();
        let e = Expr::base("Empl")
            .join(Expr::base("Addr"), &[("AID", "AID")])
            .select(Predicate::Cmp {
                op: CmpOp::Gt,
                left: Scalar::col("EID"),
                right: Scalar::lit(5i64),
            });
        let opt = optimize(&e, &s).unwrap();
        assert_eq!(count_selects_above_joins(&opt), 0);
    }
}
