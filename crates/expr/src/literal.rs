//! Literal constants appearing in expressions.
//!
//! Mirrors the constant part of `mm_instance::Value` without the
//! instance-only variants (labeled nulls), so the expression layer stays
//! independent of the instance layer.

use mm_metamodel::DataType;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A literal constant in a query, predicate, or logic term.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Lit {
    Int(i64),
    Double(f64),
    Bool(bool),
    Text(String),
    Date(i32),
    Null,
}

impl Lit {
    pub fn text(s: impl Into<String>) -> Self {
        Lit::Text(s.into())
    }

    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Lit::Int(_) => Some(DataType::Int),
            Lit::Double(_) => Some(DataType::Double),
            Lit::Bool(_) => Some(DataType::Bool),
            Lit::Text(_) => Some(DataType::Text),
            Lit::Date(_) => Some(DataType::Date),
            Lit::Null => None,
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Lit::Null => 0,
            Lit::Bool(_) => 1,
            Lit::Int(_) => 2,
            Lit::Double(_) => 3,
            Lit::Date(_) => 4,
            Lit::Text(_) => 5,
        }
    }
}

impl PartialEq for Lit {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Lit::Int(a), Lit::Int(b)) => a == b,
            (Lit::Double(a), Lit::Double(b)) => a.to_bits() == b.to_bits(),
            (Lit::Bool(a), Lit::Bool(b)) => a == b,
            (Lit::Text(a), Lit::Text(b)) => a == b,
            (Lit::Date(a), Lit::Date(b)) => a == b,
            (Lit::Null, Lit::Null) => true,
            (Lit::Int(a), Lit::Double(b)) | (Lit::Double(b), Lit::Int(a)) => {
                (*a as f64).to_bits() == b.to_bits()
            }
            _ => false,
        }
    }
}

impl Eq for Lit {}

impl std::hash::Hash for Lit {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Lit::Int(a) => {
                state.write_u8(2);
                state.write_u64((*a as f64).to_bits());
            }
            Lit::Double(d) => {
                state.write_u8(2);
                state.write_u64(d.to_bits());
            }
            Lit::Bool(b) => {
                state.write_u8(1);
                state.write_u8(*b as u8);
            }
            Lit::Text(s) => {
                state.write_u8(5);
                s.hash(state);
            }
            Lit::Date(d) => {
                state.write_u8(4);
                state.write_i32(*d);
            }
            Lit::Null => state.write_u8(0),
        }
    }
}

impl PartialOrd for Lit {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Lit {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Lit::Int(a), Lit::Int(b)) => a.cmp(b),
            (Lit::Double(a), Lit::Double(b)) => a.total_cmp(b),
            (Lit::Int(a), Lit::Double(b)) => (*a as f64).total_cmp(b),
            (Lit::Double(a), Lit::Int(b)) => a.total_cmp(&(*b as f64)),
            (Lit::Bool(a), Lit::Bool(b)) => a.cmp(b),
            (Lit::Text(a), Lit::Text(b)) => a.cmp(b),
            (Lit::Date(a), Lit::Date(b)) => a.cmp(b),
            (Lit::Null, Lit::Null) => Ordering::Equal,
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Int(v) => write!(f, "{v}"),
            Lit::Double(v) => write!(f, "{v}"),
            Lit::Bool(v) => write!(f, "{}", if *v { "TRUE" } else { "FALSE" }),
            Lit::Text(v) => write!(f, "'{v}'"),
            Lit::Date(v) => write!(f, "DATE({v})"),
            Lit::Null => f.write_str("NULL"),
        }
    }
}

impl From<i64> for Lit {
    fn from(v: i64) -> Self {
        Lit::Int(v)
    }
}

impl From<&str> for Lit {
    fn from(v: &str) -> Self {
        Lit::Text(v.to_string())
    }
}

impl From<bool> for Lit {
    fn from(v: bool) -> Self {
        Lit::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_numeric_equality() {
        assert_eq!(Lit::Int(2), Lit::Double(2.0));
        assert_ne!(Lit::Int(2), Lit::Double(2.5));
    }

    #[test]
    fn null_equals_null_syntactically() {
        // This is *syntactic* equality for expression manipulation, not
        // SQL three-valued logic (the evaluator handles that).
        assert_eq!(Lit::Null, Lit::Null);
    }

    #[test]
    fn ordering_total_over_mixed() {
        let mut v = [Lit::text("z"), Lit::Null, Lit::Int(5), Lit::Bool(false)];
        v.sort();
        assert_eq!(v[0], Lit::Null);
        assert_eq!(v[3], Lit::text("z"));
    }

    #[test]
    fn display_sql_style() {
        assert_eq!(Lit::Bool(true).to_string(), "TRUE");
        assert_eq!(Lit::text("US").to_string(), "'US'");
    }
}
