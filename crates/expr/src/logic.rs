//! Logic-based mapping constraints: tgds, source-to-target tgds, and
//! second-order tgds.
//!
//! A tgd is a formula ∀x̄ (φ(x̄) → ∃ȳ ψ(x̄, ȳ)) where φ and ψ are
//! conjunctions of relational atoms (§6.1, footnote 2 of the paper). When
//! φ only uses source relations and ψ only target relations it is an
//! st-tgd — the GLAV constraints of data exchange. SO-tgds extend st-tgds
//! with existentially quantified *function* symbols; Fagin et al. showed
//! they are the closure of st-tgds under composition, which is exactly why
//! `mm-compose` produces them.

use crate::literal::Lit;
use mm_metamodel::Schema;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A term in an atom: variable, constant, or (SO-tgds only) a function
/// application `f(t1, …, tn)` of an existentially quantified function
/// symbol — i.e. a Skolem term.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Term {
    Var(String),
    Const(Lit),
    Func(String, Vec<Term>),
}

impl Term {
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// Collect the variables of the term into `out`.
    pub fn vars<'a>(&'a self, out: &mut BTreeSet<&'a str>) {
        match self {
            Term::Var(v) => {
                out.insert(v);
            }
            Term::Const(_) => {}
            Term::Func(_, args) => {
                for a in args {
                    a.vars(out);
                }
            }
        }
    }

    /// Collect the function symbols of the term into `out`.
    pub fn funcs<'a>(&'a self, out: &mut BTreeSet<&'a str>) {
        if let Term::Func(f, args) = self {
            out.insert(f);
            for a in args {
                a.funcs(out);
            }
        }
    }

    /// Whether the term contains any function application.
    pub fn has_func(&self) -> bool {
        matches!(self, Term::Func(..))
            || matches!(self, Term::Func(_, args) if args.iter().any(Term::has_func))
    }

    /// Simultaneously substitute variables using `subst` (variables not in
    /// the map are kept).
    pub fn substitute(&self, subst: &dyn Fn(&str) -> Option<Term>) -> Term {
        match self {
            Term::Var(v) => subst(v).unwrap_or_else(|| self.clone()),
            Term::Const(_) => self.clone(),
            Term::Func(f, args) => {
                Term::Func(f.clone(), args.iter().map(|a| a.substitute(subst)).collect())
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => f.write_str(v),
            Term::Const(c) => write!(f, "{c}"),
            Term::Func(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A relational atom `R(t1, …, tn)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Atom {
    pub relation: String,
    pub terms: Vec<Term>,
}

impl Atom {
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom { relation: relation.into(), terms }
    }

    /// Atom over plain variables, the common case: `R(x, y, z)`.
    pub fn vars(relation: impl Into<String>, vars: &[&str]) -> Self {
        Atom {
            relation: relation.into(),
            terms: vars.iter().map(|v| Term::var(*v)).collect(),
        }
    }

    pub fn variables(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        for t in &self.terms {
            t.vars(&mut out);
        }
        out
    }

    pub fn has_func(&self) -> bool {
        self.terms.iter().any(Term::has_func)
    }

    pub fn substitute(&self, subst: &dyn Fn(&str) -> Option<Term>) -> Atom {
        Atom {
            relation: self.relation.clone(),
            terms: self.terms.iter().map(|t| t.substitute(subst)).collect(),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A tuple-generating dependency ∀x̄ (body → ∃ȳ head).
///
/// The universally quantified variables are those occurring in the body;
/// the existential variables are the head variables that do not occur in
/// the body. Terms in a plain tgd must be function-free.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tgd {
    pub body: Vec<Atom>,
    pub head: Vec<Atom>,
}

/// Errors from tgd validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TgdError {
    EmptyBody,
    EmptyHead,
    FunctionInTgd,
    /// A body relation is not in the source schema (for st-tgd checks).
    BodyNotInSource(String),
    /// A head relation is not in the target schema.
    HeadNotInTarget(String),
    /// Atom arity disagrees with the relation's instance layout.
    ArityMismatch { relation: String, expected: usize, actual: usize },
}

impl fmt::Display for TgdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TgdError::EmptyBody => f.write_str("tgd with empty body"),
            TgdError::EmptyHead => f.write_str("tgd with empty head"),
            TgdError::FunctionInTgd => f.write_str("function symbol in first-order tgd"),
            TgdError::BodyNotInSource(r) => write!(f, "body relation `{r}` not in source"),
            TgdError::HeadNotInTarget(r) => write!(f, "head relation `{r}` not in target"),
            TgdError::ArityMismatch { relation, expected, actual } => {
                write!(f, "atom `{relation}` arity {actual}, relation has {expected}")
            }
        }
    }
}

impl std::error::Error for TgdError {}

impl Tgd {
    pub fn new(body: Vec<Atom>, head: Vec<Atom>) -> Self {
        Tgd { body, head }
    }

    /// Universally quantified variables: those of the body.
    pub fn universal_vars(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        for a in &self.body {
            for t in &a.terms {
                t.vars(&mut out);
            }
        }
        out
    }

    /// Existential variables: head variables not bound by the body.
    pub fn existential_vars(&self) -> BTreeSet<&str> {
        let uni = self.universal_vars();
        let mut out = BTreeSet::new();
        for a in &self.head {
            for t in &a.terms {
                t.vars(&mut out);
            }
        }
        out.retain(|v| !uni.contains(v));
        out
    }

    /// Whether the tgd is *full* (no existential variables). Full tgds
    /// compose trivially; existentials are what force SO-tgds.
    pub fn is_full(&self) -> bool {
        self.existential_vars().is_empty()
    }

    /// Basic well-formedness: non-empty body/head, no function symbols.
    pub fn validate(&self) -> Result<(), TgdError> {
        if self.body.is_empty() {
            return Err(TgdError::EmptyBody);
        }
        if self.head.is_empty() {
            return Err(TgdError::EmptyHead);
        }
        if self.body.iter().chain(&self.head).any(Atom::has_func) {
            return Err(TgdError::FunctionInTgd);
        }
        Ok(())
    }

    /// Validate as a *source-to-target* tgd: body over `source`, head over
    /// `target`, atom arities matching the relations' instance layouts.
    pub fn validate_st(&self, source: &Schema, target: &Schema) -> Result<(), TgdError> {
        self.validate()?;
        for a in &self.body {
            let layout = source
                .instance_layout(&a.relation)
                .ok_or_else(|| TgdError::BodyNotInSource(a.relation.clone()))?;
            if layout.len() != a.terms.len() {
                return Err(TgdError::ArityMismatch {
                    relation: a.relation.clone(),
                    expected: layout.len(),
                    actual: a.terms.len(),
                });
            }
        }
        for a in &self.head {
            let layout = target
                .instance_layout(&a.relation)
                .ok_or_else(|| TgdError::HeadNotInTarget(a.relation.clone()))?;
            if layout.len() != a.terms.len() {
                return Err(TgdError::ArityMismatch {
                    relation: a.relation.clone(),
                    expected: layout.len(),
                    actual: a.terms.len(),
                });
            }
        }
        Ok(())
    }

    /// Rename every variable with a prefix — used to keep variable scopes
    /// disjoint when combining tgds (composition, merge).
    pub fn prefixed(&self, prefix: &str) -> Tgd {
        let sub = |v: &str| Some(Term::Var(format!("{prefix}{v}")));
        Tgd {
            body: self.body.iter().map(|a| a.substitute(&sub)).collect(),
            head: self.head.iter().map(|a| a.substitute(&sub)).collect(),
        }
    }
}

impl fmt::Display for Tgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let body: Vec<String> = self.body.iter().map(Atom::to_string).collect();
        let head: Vec<String> = self.head.iter().map(Atom::to_string).collect();
        let ex = self.existential_vars();
        if ex.is_empty() {
            write!(f, "{} -> {}", body.join(" & "), head.join(" & "))
        } else {
            let exs: Vec<&str> = ex.into_iter().collect();
            write!(f, "{} -> exists {} . {}", body.join(" & "), exs.join(","), head.join(" & "))
        }
    }
}

/// One clause of an SO-tgd: ∀x̄ (body ∧ equalities → head), where terms may
/// use the SO-tgd's function symbols.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoClause {
    pub body: Vec<Atom>,
    /// Equalities between terms (e.g. `f(x) = g(y)`), as produced by
    /// composition.
    pub eqs: Vec<(Term, Term)>,
    pub head: Vec<Atom>,
}

impl SoClause {
    pub fn from_tgd_clause(body: Vec<Atom>, head: Vec<Atom>) -> Self {
        SoClause { body, eqs: Vec::new(), head }
    }
}

impl fmt::Display for SoClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = self.body.iter().map(Atom::to_string).collect();
        parts.extend(self.eqs.iter().map(|(a, b)| format!("{a} = {b}")));
        let head: Vec<String> = self.head.iter().map(Atom::to_string).collect();
        write!(f, "{} -> {}", parts.join(" & "), head.join(" & "))
    }
}

/// A second-order tgd: ∃f̄ ∧ᵢ ∀x̄ᵢ (φᵢ → ψᵢ).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoTgd {
    /// The existentially quantified function symbols.
    pub functions: Vec<String>,
    pub clauses: Vec<SoClause>,
}

impl SoTgd {
    /// Lift a set of st-tgds into an SO-tgd by Skolemizing each existential
    /// variable into a fresh function of the tgd's universal variables —
    /// the first step of the Fagin et al. composition algorithm.
    pub fn skolemize(tgds: &[Tgd], func_prefix: &str) -> SoTgd {
        let mut functions = Vec::new();
        let mut clauses = Vec::new();
        for (i, tgd) in tgds.iter().enumerate() {
            let uni: Vec<Term> =
                tgd.universal_vars().into_iter().map(Term::var).collect();
            let ex: Vec<String> =
                tgd.existential_vars().into_iter().map(String::from).collect();
            let mut subst_map = std::collections::BTreeMap::new();
            for (j, v) in ex.iter().enumerate() {
                let fname = format!("{func_prefix}{i}_{j}");
                functions.push(fname.clone());
                subst_map.insert(v.clone(), Term::Func(fname, uni.clone()));
            }
            let sub = |v: &str| subst_map.get(v).cloned();
            clauses.push(SoClause {
                body: tgd.body.clone(),
                eqs: Vec::new(),
                head: tgd.head.iter().map(|a| a.substitute(&sub)).collect(),
            });
        }
        SoTgd { functions, clauses }
    }

    /// Total number of atoms across clauses — the size metric reported by
    /// the composition benchmarks (EQ1).
    pub fn size(&self) -> usize {
        self.clauses.iter().map(|c| c.body.len() + c.head.len() + c.eqs.len()).sum()
    }
}

impl fmt::Display for SoTgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.functions.is_empty() {
            writeln!(f, "exists functions {}:", self.functions.join(", "))?;
        }
        for c in &self.clauses {
            writeln!(f, "  {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_metamodel::{DataType, SchemaBuilder};

    fn tgd_emp() -> Tgd {
        // Emp(e) -> exists m . Mgr(e, m)
        Tgd::new(vec![Atom::vars("Emp", &["e"])], vec![Atom::vars("Mgr", &["e", "m"])])
    }

    #[test]
    fn universal_and_existential_vars() {
        let t = tgd_emp();
        assert_eq!(t.universal_vars().into_iter().collect::<Vec<_>>(), ["e"]);
        assert_eq!(t.existential_vars().into_iter().collect::<Vec<_>>(), ["m"]);
        assert!(!t.is_full());
    }

    #[test]
    fn full_tgd_detected() {
        let t = Tgd::new(
            vec![Atom::vars("R", &["x", "y"])],
            vec![Atom::vars("S", &["y", "x"])],
        );
        assert!(t.is_full());
    }

    #[test]
    fn validation_rejects_empty_and_functions() {
        assert_eq!(Tgd::new(vec![], vec![Atom::vars("S", &["x"])]).validate(), Err(TgdError::EmptyBody));
        assert_eq!(Tgd::new(vec![Atom::vars("R", &["x"])], vec![]).validate(), Err(TgdError::EmptyHead));
        let t = Tgd::new(
            vec![Atom::vars("R", &["x"])],
            vec![Atom::new("S", vec![Term::Func("f".into(), vec![Term::var("x")])])],
        );
        assert_eq!(t.validate(), Err(TgdError::FunctionInTgd));
    }

    #[test]
    fn st_validation_checks_schema_membership_and_arity() {
        let src = SchemaBuilder::new("Src")
            .relation("Emp", &[("e", DataType::Int)])
            .build()
            .unwrap();
        let tgt = SchemaBuilder::new("Tgt")
            .relation("Mgr", &[("e", DataType::Int), ("m", DataType::Int)])
            .build()
            .unwrap();
        assert!(tgd_emp().validate_st(&src, &tgt).is_ok());
        // wrong direction
        assert!(matches!(
            tgd_emp().validate_st(&tgt, &src),
            Err(TgdError::BodyNotInSource(_))
        ));
        // wrong arity
        let bad = Tgd::new(vec![Atom::vars("Emp", &["e", "x"])], vec![Atom::vars("Mgr", &["e", "m"])]);
        assert!(matches!(
            bad.validate_st(&src, &tgt),
            Err(TgdError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn skolemization_replaces_existentials_with_functions() {
        let so = SoTgd::skolemize(&[tgd_emp()], "f");
        assert_eq!(so.functions.len(), 1);
        let head = &so.clauses[0].head[0];
        match &head.terms[1] {
            Term::Func(name, args) => {
                assert_eq!(name, "f0_0");
                assert_eq!(args, &[Term::var("e")]);
            }
            other => panic!("expected function term, got {other}"),
        }
        // body untouched
        assert_eq!(so.clauses[0].body, vec![Atom::vars("Emp", &["e"])]);
    }

    #[test]
    fn skolemization_of_full_tgd_adds_no_functions() {
        let t = Tgd::new(vec![Atom::vars("R", &["x"])], vec![Atom::vars("S", &["x"])]);
        let so = SoTgd::skolemize(&[t], "f");
        assert!(so.functions.is_empty());
    }

    #[test]
    fn prefixed_renames_all_vars() {
        let t = tgd_emp().prefixed("p_");
        assert_eq!(t.body[0].terms[0], Term::var("p_e"));
        assert_eq!(t.head[0].terms[1], Term::var("p_m"));
    }

    #[test]
    fn display_tgd() {
        assert_eq!(tgd_emp().to_string(), "Emp(e) -> exists m . Mgr(e, m)");
    }

    #[test]
    fn term_substitution_recurses_into_functions() {
        let t = Term::Func("f".into(), vec![Term::var("x"), Term::Const(Lit::Int(1))]);
        let r = t.substitute(&|v| (v == "x").then(|| Term::var("y")));
        assert_eq!(r, Term::Func("f".into(), vec![Term::var("y"), Term::Const(Lit::Int(1))]));
    }
}
