//! Mappings, mapping constraints, correspondences, and view definitions —
//! the artifacts model management operators consume and produce.

use crate::algebra::Expr;
use crate::logic::{SoTgd, Tgd};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A reference to a schema element or one of its attributes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PathRef {
    pub element: String,
    /// `None` refers to the element itself (e.g. a root correspondence in
    /// a snowflake mapping, Figure 4's ✱-edge).
    pub attribute: Option<String>,
}

impl PathRef {
    pub fn element(element: impl Into<String>) -> Self {
        PathRef { element: element.into(), attribute: None }
    }

    pub fn attr(element: impl Into<String>, attribute: impl Into<String>) -> Self {
        PathRef { element: element.into(), attribute: Some(attribute.into()) }
    }
}

impl fmt::Display for PathRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.attribute {
            Some(a) => write!(f, "{}.{a}", self.element),
            None => f.write_str(&self.element),
        }
    }
}

/// A correspondence: a pair of schema paths "believed to be related in
/// some unspecified way" (§3.1), with a matcher confidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Correspondence {
    pub source: PathRef,
    pub target: PathRef,
    pub confidence: f64,
}

impl Correspondence {
    pub fn new(source: PathRef, target: PathRef, confidence: f64) -> Self {
        Correspondence { source, target, confidence }
    }
}

impl fmt::Display for Correspondence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ~ {} ({:.2})", self.source, self.target, self.confidence)
    }
}

/// The output of Match: a ranked set of correspondences between a source
/// and a target schema.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CorrespondenceSet {
    pub source_schema: String,
    pub target_schema: String,
    pub correspondences: Vec<Correspondence>,
}

impl CorrespondenceSet {
    pub fn new(source_schema: impl Into<String>, target_schema: impl Into<String>) -> Self {
        CorrespondenceSet {
            source_schema: source_schema.into(),
            target_schema: target_schema.into(),
            correspondences: Vec::new(),
        }
    }

    pub fn push(&mut self, c: Correspondence) {
        self.correspondences.push(c);
    }

    /// Candidates for a given source path, best first — the "all viable
    /// candidates" presentation §3.1.1 argues matters more than top-1
    /// accuracy for engineered mappings.
    pub fn candidates_for(&self, source: &PathRef) -> Vec<&Correspondence> {
        let mut v: Vec<&Correspondence> =
            self.correspondences.iter().filter(|c| &c.source == source).collect();
        v.sort_by(|a, b| b.confidence.total_cmp(&a.confidence));
        v
    }

    /// Keep only the top-k candidates per source path.
    pub fn top_k(&self, k: usize) -> CorrespondenceSet {
        let mut sources: Vec<&PathRef> = Vec::new();
        for c in &self.correspondences {
            if !sources.contains(&&c.source) {
                sources.push(&c.source);
            }
        }
        let mut out = CorrespondenceSet::new(
            self.source_schema.clone(),
            self.target_schema.clone(),
        );
        for s in sources {
            for c in self.candidates_for(s).into_iter().take(k) {
                out.push(c.clone());
            }
        }
        out
    }

    pub fn len(&self) -> usize {
        self.correspondences.len()
    }

    pub fn is_empty(&self) -> bool {
        self.correspondences.is_empty()
    }
}

/// A single mapping constraint, in one of the engine's constraint
/// languages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MappingConstraint {
    /// A (source-to-target) tuple-generating dependency.
    Tgd(Tgd),
    /// A second-order tgd (typically produced by Compose).
    SoTgd(SoTgd),
    /// Equality of two algebra expressions, the left over the source and
    /// the right over the target — the paper's Figure 2 constraint style
    /// (ADO.NET mapping language).
    ExprEq { source: Expr, target: Expr },
}

impl fmt::Display for MappingConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingConstraint::Tgd(t) => write!(f, "{t}"),
            MappingConstraint::SoTgd(t) => write!(f, "{t}"),
            MappingConstraint::ExprEq { source, target } => {
                write!(f, "{source}\n  =\n{target}")
            }
        }
    }
}

/// A mapping between two schemas: a set of mapping constraints whose
/// instance-level semantics is the set of instance pairs ⟨D1, D2⟩
/// satisfying every constraint (§2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    pub source_schema: String,
    pub target_schema: String,
    pub constraints: Vec<MappingConstraint>,
}

impl Mapping {
    pub fn new(source_schema: impl Into<String>, target_schema: impl Into<String>) -> Self {
        Mapping {
            source_schema: source_schema.into(),
            target_schema: target_schema.into(),
            constraints: Vec::new(),
        }
    }

    pub fn with_constraints(
        source_schema: impl Into<String>,
        target_schema: impl Into<String>,
        constraints: Vec<MappingConstraint>,
    ) -> Self {
        Mapping {
            source_schema: source_schema.into(),
            target_schema: target_schema.into(),
            constraints,
        }
    }

    pub fn push(&mut self, c: MappingConstraint) {
        self.constraints.push(c);
    }

    pub fn push_tgd(&mut self, t: Tgd) {
        self.constraints.push(MappingConstraint::Tgd(t));
    }

    /// The tgd constraints, if *all* constraints are tgds (the precondition
    /// of the chase and of st-tgd composition).
    pub fn as_tgds(&self) -> Option<Vec<&Tgd>> {
        self.constraints
            .iter()
            .map(|c| match c {
                MappingConstraint::Tgd(t) => Some(t),
                _ => None,
            })
            .collect()
    }

    /// Syntactic inverse: swap source and target roles (the paper's §6.2
    /// `Invert` — "simply reverses the roles of the source and target",
    /// not the semantic `Inverse` of §6.4). Constraint formulas are kept;
    /// their orientation is interpreted by the consuming operator.
    pub fn inverted(&self) -> Mapping {
        Mapping {
            source_schema: self.target_schema.clone(),
            target_schema: self.source_schema.clone(),
            constraints: self
                .constraints
                .iter()
                .map(|c| match c {
                    MappingConstraint::ExprEq { source, target } => MappingConstraint::ExprEq {
                        source: target.clone(),
                        target: source.clone(),
                    },
                    other => other.clone(),
                })
                .collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "mapping {} -> {} {{", self.source_schema, self.target_schema)?;
        for c in &self.constraints {
            writeln!(f, "  {c}")?;
        }
        write!(f, "}}")
    }
}

/// A view definition: a named transformation (functional mapping
/// constraint, §2) expressed in the algebra.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViewDef {
    /// The relation (in the *view's* schema) that the expression defines.
    pub name: String,
    /// The defining query over the *base* schema.
    pub expr: Expr,
}

impl ViewDef {
    pub fn new(name: impl Into<String>, expr: Expr) -> Self {
        ViewDef { name: name.into(), expr }
    }
}

impl fmt::Display for ViewDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CREATE VIEW {} AS {}", self.name, self.expr)
    }
}

/// A set of view definitions over one base schema — TransGen's output
/// (query views or update views).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ViewSet {
    /// Schema the views read from.
    pub base_schema: String,
    /// Schema the views define.
    pub view_schema: String,
    pub views: Vec<ViewDef>,
}

impl ViewSet {
    pub fn new(base_schema: impl Into<String>, view_schema: impl Into<String>) -> Self {
        ViewSet {
            base_schema: base_schema.into(),
            view_schema: view_schema.into(),
            views: Vec::new(),
        }
    }

    pub fn push(&mut self, v: ViewDef) {
        self.views.push(v);
    }

    pub fn view(&self, name: &str) -> Option<&ViewDef> {
        self.views.iter().find(|v| v.name == name)
    }

    pub fn len(&self) -> usize {
        self.views.len()
    }

    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::Atom;

    #[test]
    fn candidates_sorted_by_confidence() {
        let mut cs = CorrespondenceSet::new("S", "T");
        let src = PathRef::attr("Empl", "Name");
        cs.push(Correspondence::new(src.clone(), PathRef::attr("Staff", "FullName"), 0.5));
        cs.push(Correspondence::new(src.clone(), PathRef::attr("Staff", "Name"), 0.9));
        cs.push(Correspondence::new(
            PathRef::attr("Empl", "EID"),
            PathRef::attr("Staff", "SID"),
            0.8,
        ));
        let cands = cs.candidates_for(&src);
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].target, PathRef::attr("Staff", "Name"));
    }

    #[test]
    fn top_k_limits_per_source() {
        let mut cs = CorrespondenceSet::new("S", "T");
        let src = PathRef::attr("A", "x");
        for (i, conf) in [(0, 0.9), (1, 0.8), (2, 0.7)] {
            cs.push(Correspondence::new(
                src.clone(),
                PathRef::attr("B", format!("y{i}")),
                conf,
            ));
        }
        let top = cs.top_k(2);
        assert_eq!(top.len(), 2);
        assert!(top.correspondences.iter().all(|c| c.confidence >= 0.8));
    }

    #[test]
    fn inverted_swaps_schemas_and_expr_sides() {
        let m = Mapping::with_constraints(
            "S",
            "T",
            vec![MappingConstraint::ExprEq {
                source: Expr::base("A"),
                target: Expr::base("B"),
            }],
        );
        let inv = m.inverted();
        assert_eq!(inv.source_schema, "T");
        assert_eq!(inv.target_schema, "S");
        match &inv.constraints[0] {
            MappingConstraint::ExprEq { source, target } => {
                assert_eq!(source, &Expr::base("B"));
                assert_eq!(target, &Expr::base("A"));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn as_tgds_requires_all_tgds() {
        let mut m = Mapping::new("S", "T");
        m.push_tgd(Tgd::new(vec![Atom::vars("R", &["x"])], vec![Atom::vars("S", &["x"])]));
        assert!(m.as_tgds().is_some());
        m.push(MappingConstraint::ExprEq {
            source: Expr::base("A"),
            target: Expr::base("B"),
        });
        assert!(m.as_tgds().is_none());
    }

    #[test]
    fn view_set_lookup() {
        let mut vs = ViewSet::new("S", "V");
        vs.push(ViewDef::new("Students", Expr::base("Names")));
        assert!(vs.view("Students").is_some());
        assert!(vs.view("Nope").is_none());
    }

    #[test]
    fn pathref_display() {
        assert_eq!(PathRef::attr("Empl", "EID").to_string(), "Empl.EID");
        assert_eq!(PathRef::element("Empl").to_string(), "Empl");
    }
}
