//! Static analysis of algebra expressions: output-schema inference, base
//! relation usage, scalar column references.
//!
//! TransGen and Compose both rely on schema inference to check that the
//! expressions they manufacture are well-typed before handing them to the
//! runtime — the design-time/runtime split §5 of the paper calls for.

use crate::algebra::{Expr, Func, Predicate, Scalar};
use mm_metamodel::{Attribute, DataType, Schema, TYPE_ATTR};
use std::collections::BTreeSet;
use std::fmt;

/// Errors raised by static analysis of an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    UnknownRelation(String),
    UnknownColumn { column: String, available: Vec<String> },
    DuplicateColumn(String),
    /// Union/diff operands with different arities.
    ArityMismatch { left: usize, right: usize },
    /// `IS OF` used against a schema element that is not an entity type,
    /// or over an input without a `$type` column.
    NotAnEntity(String),
    /// A literal relation whose rows disagree with its column list.
    MalformedLiteral,
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            ExprError::UnknownColumn { column, available } => {
                write!(f, "unknown column `{column}` (available: {})", available.join(", "))
            }
            ExprError::DuplicateColumn(c) => write!(f, "duplicate column `{c}`"),
            ExprError::ArityMismatch { left, right } => {
                write!(f, "arity mismatch: {left} vs {right}")
            }
            ExprError::NotAnEntity(e) => write!(f, "`{e}` is not an entity type"),
            ExprError::MalformedLiteral => f.write_str("malformed literal relation"),
        }
    }
}

impl std::error::Error for ExprError {}

fn dup_check(attrs: &[Attribute]) -> Result<(), ExprError> {
    let mut seen = BTreeSet::new();
    for a in attrs {
        if !seen.insert(a.name.as_str()) {
            return Err(ExprError::DuplicateColumn(a.name.clone()));
        }
    }
    Ok(())
}

fn require(attrs: &[Attribute], col: &str) -> Result<usize, ExprError> {
    attrs.iter().position(|a| a.name == col).ok_or_else(|| ExprError::UnknownColumn {
        column: col.to_string(),
        available: attrs.iter().map(|a| a.name.clone()).collect(),
    })
}

/// Infer the type of a scalar over the given input columns. `Any` is the
/// bottom for cases analysis cannot pin down (`Coalesce` over mixed types).
fn scalar_type(s: &Scalar, attrs: &[Attribute]) -> Result<DataType, ExprError> {
    match s {
        Scalar::Col(c) => Ok(attrs[require(attrs, c)?].ty),
        Scalar::Lit(l) => Ok(l.data_type().unwrap_or(DataType::Any)),
        Scalar::Func(f, args) => {
            for a in args {
                scalar_type(a, attrs)?;
            }
            Ok(match f {
                Func::Concat | Func::Upper | Func::Lower => DataType::Text,
                Func::Add | Func::Sub | Func::Mul => args
                    .first()
                    .map(|a| scalar_type(a, attrs))
                    .transpose()?
                    .unwrap_or(DataType::Int),
                Func::Coalesce => args
                    .first()
                    .map(|a| scalar_type(a, attrs))
                    .transpose()?
                    .unwrap_or(DataType::Any),
            })
        }
        Scalar::Case { branches, otherwise } => {
            for (p, v) in branches {
                check_predicate(p, attrs, None)?;
                scalar_type(v, attrs)?;
            }
            scalar_type(otherwise, attrs)
        }
    }
}

/// Check a predicate's column references. `schema` is needed for `IsOf`.
fn check_predicate(
    p: &Predicate,
    attrs: &[Attribute],
    schema: Option<&Schema>,
) -> Result<(), ExprError> {
    match p {
        Predicate::Cmp { left, right, .. } => {
            scalar_type(left, attrs)?;
            scalar_type(right, attrs)?;
            Ok(())
        }
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            check_predicate(a, attrs, schema)?;
            check_predicate(b, attrs, schema)
        }
        Predicate::Not(q) => check_predicate(q, attrs, schema),
        Predicate::IsNull(s) => scalar_type(s, attrs).map(|_| ()),
        Predicate::IsOf { ty, .. } => {
            if require(attrs, TYPE_ATTR).is_err() {
                return Err(ExprError::NotAnEntity(ty.clone()));
            }
            if let Some(sch) = schema {
                match sch.element(ty) {
                    Some(e) if e.is_entity_type() => Ok(()),
                    _ => Err(ExprError::NotAnEntity(ty.clone())),
                }
            } else {
                Ok(())
            }
        }
        Predicate::True | Predicate::False => Ok(()),
    }
}

/// Infer the output column layout of `expr` against `schema`.
pub fn output_schema(expr: &Expr, schema: &Schema) -> Result<Vec<Attribute>, ExprError> {
    match expr {
        Expr::Base(name) => schema
            .instance_layout(name)
            .ok_or_else(|| ExprError::UnknownRelation(name.clone())),
        Expr::Literal { columns, rows } => {
            if rows.iter().any(|r| r.len() != columns.len()) {
                return Err(ExprError::MalformedLiteral);
            }
            let attrs: Vec<Attribute> = columns
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let ty = rows
                        .iter()
                        .find_map(|r| r[i].data_type())
                        .unwrap_or(DataType::Any);
                    Attribute::nullable(c.clone(), ty)
                })
                .collect();
            dup_check(&attrs)?;
            Ok(attrs)
        }
        Expr::Project { input, columns } => {
            let inp = output_schema(input, schema)?;
            let mut out = Vec::with_capacity(columns.len());
            for c in columns {
                out.push(inp[require(&inp, c)?].clone());
            }
            dup_check(&out)?;
            Ok(out)
        }
        Expr::Select { input, predicate } => {
            let inp = output_schema(input, schema)?;
            check_predicate(predicate, &inp, Some(schema))?;
            Ok(inp)
        }
        Expr::Join { left, right, on } | Expr::LeftJoin { left, right, on } => {
            let l = output_schema(left, schema)?;
            let r = output_schema(right, schema)?;
            let mut drop_right = BTreeSet::new();
            for (lc, rc) in on {
                require(&l, lc)?;
                require(&r, rc)?;
                drop_right.insert(rc.as_str());
            }
            let outer = matches!(expr, Expr::LeftJoin { .. });
            let mut out = l;
            for a in &r {
                if !drop_right.contains(a.name.as_str()) {
                    let mut a = a.clone();
                    if outer {
                        a.nullable = true; // NULL padding on unmatched rows
                    }
                    out.push(a);
                }
            }
            dup_check(&out)?;
            Ok(out)
        }
        Expr::Product { left, right } => {
            let mut l = output_schema(left, schema)?;
            let r = output_schema(right, schema)?;
            l.extend(r);
            dup_check(&l)?;
            Ok(l)
        }
        Expr::Union { left, right, .. } | Expr::Diff { left, right } => {
            let l = output_schema(left, schema)?;
            let r = output_schema(right, schema)?;
            if l.len() != r.len() {
                return Err(ExprError::ArityMismatch { left: l.len(), right: r.len() });
            }
            Ok(l)
        }
        Expr::Rename { input, renames } => {
            // simultaneous semantics: every `old` refers to the *input*
            // column names, so swaps (`a→b, b→a`) behave as expected
            let inp = output_schema(input, schema)?;
            for (old, _) in renames {
                require(&inp, old)?;
            }
            let out: Vec<Attribute> = inp
                .into_iter()
                .map(|mut a| {
                    if let Some((_, new)) = renames.iter().find(|(old, _)| old == &a.name) {
                        a.name = new.clone();
                    }
                    a
                })
                .collect();
            dup_check(&out)?;
            Ok(out)
        }
        Expr::Extend { input, column, scalar } => {
            let mut out = output_schema(input, schema)?;
            let ty = scalar_type(scalar, &out)?;
            if out.iter().any(|a| &a.name == column) {
                return Err(ExprError::DuplicateColumn(column.clone()));
            }
            out.push(Attribute::nullable(column.clone(), ty));
            Ok(out)
        }
        Expr::Distinct { input } => output_schema(input, schema),
        Expr::Aggregate { input, group_by, aggregates } => {
            let inp = output_schema(input, schema)?;
            let mut out = Vec::with_capacity(group_by.len() + aggregates.len());
            for g in group_by {
                out.push(inp[require(&inp, g)?].clone());
            }
            for a in aggregates {
                let ty = match (&a.func, &a.column) {
                    (crate::algebra::AggFunc::Count, _) => DataType::Int,
                    (crate::algebra::AggFunc::Avg, _) => DataType::Double,
                    (_, Some(c)) => inp[require(&inp, c)?].ty,
                    (_, None) => {
                        return Err(ExprError::UnknownColumn {
                            column: format!("{}(*)", a.func),
                            available: inp.iter().map(|x| x.name.clone()).collect(),
                        })
                    }
                };
                out.push(Attribute::nullable(a.output.clone(), ty));
            }
            dup_check(&out)?;
            Ok(out)
        }
    }
}

#[allow(clippy::expect_used)] // invariant-backed: see expect messages
/// The *extent* of entity type `ty`: the union, over `ty` and all its
/// subtypes, of each subtype's entity set projected onto `ty`'s instance
/// layout (`$type` first). This is the algebraic reading of the paper's
/// single "Persons" entity set (Figures 2–3): entities live in the set of
/// their most-derived type; querying a supertype unions the subtree.
pub fn entity_extent(schema: &Schema, ty: &str) -> Result<Expr, ExprError> {
    let layout = schema
        .instance_layout(ty)
        .ok_or_else(|| ExprError::UnknownRelation(ty.to_string()))?;
    let cols: Vec<String> = layout.into_iter().map(|a| a.name).collect();
    let subtree = schema.subtree(ty);
    if subtree.is_empty() {
        return Err(ExprError::NotAnEntity(ty.to_string()));
    }
    let mut expr: Option<Expr> = None;
    for d in subtree {
        let branch = Expr::base(d).project_owned(cols.clone());
        expr = Some(match expr {
            None => branch,
            Some(e) => e.union(branch),
        });
    }
    Ok(expr.expect("subtree non-empty"))
}

/// All base relations referenced by the expression, deduplicated in first-
/// occurrence order.
pub fn base_relations(expr: &Expr) -> Vec<&str> {
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a str>) {
        match e {
            Expr::Base(n) => {
                if !out.contains(&n.as_str()) {
                    out.push(n);
                }
            }
            Expr::Literal { .. } => {}
            Expr::Project { input, .. }
            | Expr::Select { input, .. }
            | Expr::Rename { input, .. }
            | Expr::Extend { input, .. }
            | Expr::Distinct { input }
            | Expr::Aggregate { input, .. } => walk(input, out),
            Expr::Join { left, right, .. }
            | Expr::LeftJoin { left, right, .. }
            | Expr::Product { left, right }
            | Expr::Union { left, right, .. }
            | Expr::Diff { left, right } => {
                walk(left, out);
                walk(right, out);
            }
        }
    }
    let mut out = Vec::new();
    walk(expr, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::Expr;
    use crate::literal::Lit;
    use mm_metamodel::SchemaBuilder;

    fn schema() -> Schema {
        SchemaBuilder::new("S")
            .relation("Empl", &[("EID", DataType::Int), ("Name", DataType::Text), ("AID", DataType::Int)])
            .relation("Addr", &[("AID", DataType::Int), ("City", DataType::Text)])
            .entity("Person", &[("Id", DataType::Int), ("Name", DataType::Text)])
            .entity_sub("Employee", "Person", &[("Dept", DataType::Text)])
            .build()
            .unwrap()
    }

    fn names(attrs: &[Attribute]) -> Vec<&str> {
        attrs.iter().map(|a| a.name.as_str()).collect()
    }

    #[test]
    fn base_layout_for_relation_and_entity() {
        let s = schema();
        let e = Expr::base("Empl");
        assert_eq!(names(&output_schema(&e, &s).unwrap()), ["EID", "Name", "AID"]);
        let p = Expr::base("Employee");
        assert_eq!(
            names(&output_schema(&p, &s).unwrap()),
            [TYPE_ATTR, "Id", "Name", "Dept"]
        );
    }

    #[test]
    fn join_drops_right_join_columns() {
        let s = schema();
        let e = Expr::base("Empl").join(Expr::base("Addr"), &[("AID", "AID")]);
        assert_eq!(names(&output_schema(&e, &s).unwrap()), ["EID", "Name", "AID", "City"]);
    }

    #[test]
    fn left_join_makes_right_columns_nullable() {
        let s = schema();
        let e = Expr::base("Empl").left_join(Expr::base("Addr"), &[("AID", "AID")]);
        let out = output_schema(&e, &s).unwrap();
        assert!(out.iter().find(|a| a.name == "City").unwrap().nullable);
        assert!(!out.iter().find(|a| a.name == "EID").unwrap().nullable);
    }

    #[test]
    fn join_with_name_clash_rejected() {
        let s = schema();
        // joining Empl with itself on EID leaves duplicate Name/AID columns
        let e = Expr::base("Empl").join(Expr::base("Empl"), &[("EID", "EID")]);
        assert!(matches!(output_schema(&e, &s), Err(ExprError::DuplicateColumn(_))));
    }

    #[test]
    fn projection_unknown_column_reports_available() {
        let s = schema();
        let e = Expr::base("Addr").project(&["Nope"]);
        match output_schema(&e, &s) {
            Err(ExprError::UnknownColumn { column, available }) => {
                assert_eq!(column, "Nope");
                assert_eq!(available, ["AID", "City"]);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn union_arity_checked() {
        let s = schema();
        let e = Expr::base("Addr").union(Expr::base("Empl"));
        assert!(matches!(output_schema(&e, &s), Err(ExprError::ArityMismatch { .. })));
    }

    #[test]
    fn rename_changes_names() {
        let s = schema();
        let e = Expr::base("Addr").rename(&[("City", "Town")]);
        assert_eq!(names(&output_schema(&e, &s).unwrap()), ["AID", "Town"]);
    }

    #[test]
    fn swap_rename_is_simultaneous() {
        let s = schema();
        let e = Expr::base("Addr").rename(&[("AID", "City"), ("City", "AID")]);
        let out = output_schema(&e, &s).unwrap();
        // AID (int) became City, City (text) became AID — types follow
        assert_eq!(names(&out), ["City", "AID"]);
        assert_eq!(out[0].ty, DataType::Int);
        assert_eq!(out[1].ty, DataType::Text);
    }

    #[test]
    fn extend_appends_typed_column() {
        let s = schema();
        let e = Expr::base("Addr").extend("Country", Scalar::lit("US"));
        let out = output_schema(&e, &s).unwrap();
        assert_eq!(out.last().unwrap().name, "Country");
        assert_eq!(out.last().unwrap().ty, DataType::Text);
    }

    #[test]
    fn is_of_requires_type_column_and_entity() {
        let s = schema();
        let good = Expr::base("Person")
            .select(Predicate::IsOf { ty: "Employee".into(), only: false });
        assert!(output_schema(&good, &s).is_ok());
        let bad = Expr::base("Addr")
            .select(Predicate::IsOf { ty: "Employee".into(), only: false });
        assert!(matches!(output_schema(&bad, &s), Err(ExprError::NotAnEntity(_))));
        let bad2 = Expr::base("Person")
            .select(Predicate::IsOf { ty: "Addr".into(), only: false });
        assert!(matches!(output_schema(&bad2, &s), Err(ExprError::NotAnEntity(_))));
    }

    #[test]
    fn literal_relation_types_from_rows() {
        let s = schema();
        let e = Expr::literal_row(&["Country"], vec![Lit::text("US")]);
        let out = output_schema(&e, &s).unwrap();
        assert_eq!(out[0].ty, DataType::Text);
    }

    #[test]
    fn malformed_literal_rejected() {
        let s = schema();
        let e = Expr::Literal {
            columns: vec!["a".into(), "b".into()],
            rows: vec![vec![Lit::Int(1)]],
        };
        assert_eq!(output_schema(&e, &s), Err(ExprError::MalformedLiteral));
    }

    #[test]
    fn entity_extent_unions_subtree_on_supertype_layout() {
        let s = schema();
        let e = entity_extent(&s, "Person").unwrap();
        let out = output_schema(&e, &s).unwrap();
        assert_eq!(names(&out), [TYPE_ATTR, "Id", "Name"]);
        assert_eq!(base_relations(&e), ["Person", "Employee"]);
        // leaf type: no union, full layout
        let leaf = entity_extent(&s, "Employee").unwrap();
        assert_eq!(names(&output_schema(&leaf, &s).unwrap()), [TYPE_ATTR, "Id", "Name", "Dept"]);
        // non-entity rejected
        assert!(entity_extent(&s, "Empl").is_err());
    }

    #[test]
    fn base_relations_dedup_in_order() {
        let e = Expr::base("A")
            .join(Expr::base("B"), &[("x", "x")])
            .union(Expr::base("A").project(&["x"]));
        // union arity nonsense is fine; we only inspect base usage
        assert_eq!(base_relations(&e), ["A", "B"]);
    }
}
