//! Mapping and query expression languages.
//!
//! §2 of the paper: "Given the tension between the expressiveness of
//! mapping constraints and the tractability of manipulating them, choosing
//! the mapping language is a major design challenge." This crate carries
//! the three representations the paper's three-step mapping design process
//! produces (§3.1):
//!
//! 1. **Correspondences** ([`mapping::Correspondence`]) — pairs of schema
//!    elements believed to be related, the output of Match;
//! 2. **Mapping constraints** — either logic-style *tgds / st-tgds /
//!    SO-tgds* ([`logic`]) or *equalities of algebra expressions*
//!    ([`mapping::MappingConstraint::ExprEq`], the paper's Figure 2 style);
//! 3. **Transformations** — functional mappings, i.e. view definitions
//!    ([`mapping::ViewDef`]) in the relational algebra of [`algebra`].
//!
//! The algebra doubles as the execution language of the mapping runtime
//! (`mm-eval`) and as TransGen's output language.

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod algebra;
pub mod analyze;
pub mod literal;
pub mod logic;
pub mod mapping;
pub mod optimize;
pub mod rewrite;

pub use algebra::{AggFunc, AggSpec, CmpOp, Expr, Func, Predicate, Scalar};
pub use analyze::{entity_extent, output_schema, ExprError};
pub use literal::Lit;
pub use logic::{Atom, SoClause, SoTgd, Term, Tgd};
pub use optimize::optimize;
pub use mapping::{
    Correspondence, CorrespondenceSet, Mapping, MappingConstraint, PathRef, ViewDef, ViewSet,
};
