//! Expression rewriting: base-relation substitution (view unfolding) and
//! algebraic simplification.
//!
//! Substitution is the algebraic half of Compose (§6.1): composing a view
//! `V = e1(S)` with a view `W = e2(V)` is `W = e2[V ↦ e1](S)`. The runtime
//! uses the same rewrite to mediate queries through chains of mappings
//! (§5, "Peer-to-peer") and can then `simplify` the collapsed expression.

use crate::algebra::{Expr, Predicate};
use std::collections::HashMap;

/// Replace every `Base(name)` with `defs[name]` where defined.
pub fn substitute_bases(expr: &Expr, defs: &HashMap<String, Expr>) -> Expr {
    match expr {
        Expr::Base(n) => defs.get(n).cloned().unwrap_or_else(|| expr.clone()),
        Expr::Literal { .. } => expr.clone(),
        Expr::Project { input, columns } => Expr::Project {
            input: Box::new(substitute_bases(input, defs)),
            columns: columns.clone(),
        },
        Expr::Select { input, predicate } => Expr::Select {
            input: Box::new(substitute_bases(input, defs)),
            predicate: predicate.clone(),
        },
        Expr::Join { left, right, on } => Expr::Join {
            left: Box::new(substitute_bases(left, defs)),
            right: Box::new(substitute_bases(right, defs)),
            on: on.clone(),
        },
        Expr::LeftJoin { left, right, on } => Expr::LeftJoin {
            left: Box::new(substitute_bases(left, defs)),
            right: Box::new(substitute_bases(right, defs)),
            on: on.clone(),
        },
        Expr::Product { left, right } => Expr::Product {
            left: Box::new(substitute_bases(left, defs)),
            right: Box::new(substitute_bases(right, defs)),
        },
        Expr::Union { left, right, all } => Expr::Union {
            left: Box::new(substitute_bases(left, defs)),
            right: Box::new(substitute_bases(right, defs)),
            all: *all,
        },
        Expr::Diff { left, right } => Expr::Diff {
            left: Box::new(substitute_bases(left, defs)),
            right: Box::new(substitute_bases(right, defs)),
        },
        Expr::Rename { input, renames } => Expr::Rename {
            input: Box::new(substitute_bases(input, defs)),
            renames: renames.clone(),
        },
        Expr::Extend { input, column, scalar } => Expr::Extend {
            input: Box::new(substitute_bases(input, defs)),
            column: column.clone(),
            scalar: scalar.clone(),
        },
        Expr::Distinct { input } => {
            Expr::Distinct { input: Box::new(substitute_bases(input, defs)) }
        }
        Expr::Aggregate { input, group_by, aggregates } => Expr::Aggregate {
            input: Box::new(substitute_bases(input, defs)),
            group_by: group_by.clone(),
            aggregates: aggregates.clone(),
        },
    }
}

/// One bottom-up simplification pass:
///
/// * `σ_TRUE(e) → e`, `σ_p(σ_q(e)) → σ_{p∧q}(e)`;
/// * `π_cols(π_inner(e)) → π_cols(e)` (outer projection wins — its columns
///   are a subset of the inner's output by well-typedness);
/// * `DISTINCT(DISTINCT(e)) → DISTINCT(e)`, `DISTINCT(π(e)) → π(e)`
///   (projection already deduplicates under set semantics);
/// * identity renames dropped.
pub fn simplify(expr: &Expr) -> Expr {
    let e = map_children(expr, &simplify);
    match e {
        Expr::Select { input, predicate } => match (predicate, *input) {
            (Predicate::True, inner) => inner,
            (p, Expr::Select { input: inner, predicate: q }) => {
                Expr::Select { input: inner, predicate: q.and(p) }
            }
            (p, inner) => Expr::Select { input: Box::new(inner), predicate: p },
        },
        Expr::Project { input, columns } => match *input {
            Expr::Project { input: inner, .. } => {
                Expr::Project { input: inner, columns }
            }
            inner => Expr::Project { input: Box::new(inner), columns },
        },
        Expr::Distinct { input } => match *input {
            d @ Expr::Distinct { .. } => d,
            p @ Expr::Project { .. } => p,
            inner => Expr::Distinct { input: Box::new(inner) },
        },
        Expr::Rename { input, renames } => {
            let renames: Vec<(String, String)> =
                renames.into_iter().filter(|(a, b)| a != b).collect();
            if renames.is_empty() {
                *input
            } else {
                Expr::Rename { input, renames }
            }
        }
        other => other,
    }
}

/// Simplify to a fixpoint (bounded; each pass strictly shrinks or the loop
/// stops).
pub fn simplify_fix(expr: &Expr) -> Expr {
    let mut cur = simplify(expr);
    loop {
        let next = simplify(&cur);
        if next == cur {
            return cur;
        }
        cur = next;
    }
}

fn map_children(expr: &Expr, f: &dyn Fn(&Expr) -> Expr) -> Expr {
    match expr {
        Expr::Base(_) | Expr::Literal { .. } => expr.clone(),
        Expr::Project { input, columns } => {
            Expr::Project { input: Box::new(f(input)), columns: columns.clone() }
        }
        Expr::Select { input, predicate } => {
            Expr::Select { input: Box::new(f(input)), predicate: predicate.clone() }
        }
        Expr::Join { left, right, on } => Expr::Join {
            left: Box::new(f(left)),
            right: Box::new(f(right)),
            on: on.clone(),
        },
        Expr::LeftJoin { left, right, on } => Expr::LeftJoin {
            left: Box::new(f(left)),
            right: Box::new(f(right)),
            on: on.clone(),
        },
        Expr::Product { left, right } => {
            Expr::Product { left: Box::new(f(left)), right: Box::new(f(right)) }
        }
        Expr::Union { left, right, all } => Expr::Union {
            left: Box::new(f(left)),
            right: Box::new(f(right)),
            all: *all,
        },
        Expr::Diff { left, right } => {
            Expr::Diff { left: Box::new(f(left)), right: Box::new(f(right)) }
        }
        Expr::Rename { input, renames } => {
            Expr::Rename { input: Box::new(f(input)), renames: renames.clone() }
        }
        Expr::Extend { input, column, scalar } => Expr::Extend {
            input: Box::new(f(input)),
            column: column.clone(),
            scalar: scalar.clone(),
        },
        Expr::Distinct { input } => Expr::Distinct { input: Box::new(f(input)) },
        Expr::Aggregate { input, group_by, aggregates } => Expr::Aggregate {
            input: Box::new(f(input)),
            group_by: group_by.clone(),
            aggregates: aggregates.clone(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{Predicate, Scalar};

    #[test]
    fn substitution_unfolds_views() {
        let view = Expr::base("Names").join(Expr::base("Addresses"), &[("SID", "SID")]);
        let query = Expr::base("Students").project(&["Name"]);
        let mut defs = HashMap::new();
        defs.insert("Students".to_string(), view.clone());
        let unfolded = substitute_bases(&query, &defs);
        match unfolded {
            Expr::Project { input, .. } => assert_eq!(*input, view),
            _ => panic!(),
        }
    }

    #[test]
    fn substitution_leaves_unknown_bases() {
        let q = Expr::base("Other");
        let unfolded = substitute_bases(&q, &HashMap::new());
        assert_eq!(unfolded, q);
    }

    #[test]
    fn select_true_eliminated() {
        let e = Expr::base("R").select(Predicate::True);
        assert_eq!(simplify(&e), Expr::base("R"));
    }

    #[test]
    fn nested_selects_merge() {
        let e = Expr::base("R")
            .select(Predicate::col_eq_lit("a", 1i64))
            .select(Predicate::col_eq_lit("b", 2i64));
        match simplify(&e) {
            Expr::Select { input, predicate } => {
                assert_eq!(*input, Expr::base("R"));
                assert!(matches!(predicate, Predicate::And(_, _)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn projection_of_projection_collapses() {
        let e = Expr::base("R").project(&["a", "b"]).project(&["a"]);
        match simplify(&e) {
            Expr::Project { input, columns } => {
                assert_eq!(*input, Expr::base("R"));
                assert_eq!(columns, ["a"]);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn distinct_of_projection_dropped() {
        let e = Expr::base("R").project(&["a"]).distinct();
        assert_eq!(simplify(&e), Expr::base("R").project(&["a"]));
    }

    #[test]
    fn identity_rename_dropped() {
        let e = Expr::base("R").rename(&[("a", "a")]);
        assert_eq!(simplify(&e), Expr::base("R"));
    }

    #[test]
    fn simplify_fix_reaches_fixpoint_through_layers() {
        let e = Expr::base("R")
            .select(Predicate::True)
            .project(&["a", "b"])
            .select(Predicate::True)
            .project(&["a"])
            .distinct();
        let s = simplify_fix(&e);
        assert_eq!(s, Expr::base("R").project(&["a"]));
    }

    #[test]
    fn extend_children_simplified() {
        let e = Expr::base("R").select(Predicate::True).extend("c", Scalar::lit(1i64));
        let s = simplify(&e);
        match s {
            Expr::Extend { input, .. } => assert_eq!(*input, Expr::base("R")),
            _ => panic!(),
        }
    }
}
