//! Relational algebra over the universal metamodel.
//!
//! This is the engine's transformation language: TransGen emits it, the
//! runtime (`mm-eval`) executes it, Compose substitutes through it, and the
//! pretty printer renders it in a SQL-like surface syntax for humans (the
//! paper's Figure 3 is exactly such a rendering).
//!
//! The algebra is *named* (columns are addressed by name, not position);
//! joins keep the left operand's columns and drop the right operand's join
//! columns, which makes `R.join(S, &[("k","k")])` behave like the natural
//! join `R ⋈ S` used throughout the paper's figures.

use crate::literal::Lit;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Scalar expressions over a row.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scalar {
    /// A named column of the input row.
    Col(String),
    /// A literal constant.
    Lit(Lit),
    /// Built-in function application.
    Func(Func, Vec<Scalar>),
    /// `CASE WHEN p THEN a ELSE b END` — needed for the type-case queries
    /// TransGen generates for inheritance mappings (Figure 3).
    Case {
        branches: Vec<(Predicate, Scalar)>,
        otherwise: Box<Scalar>,
    },
}

impl Scalar {
    pub fn col(name: impl Into<String>) -> Self {
        Scalar::Col(name.into())
    }

    pub fn lit(l: impl Into<Lit>) -> Self {
        Scalar::Lit(l.into())
    }
}

/// Built-in scalar functions. A deliberately small set: the paper asks for
/// "user-defined functions" in the limit; the engine's extension point is
/// adding variants here plus one line in the evaluator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Func {
    /// String concatenation of all arguments.
    Concat,
    Add,
    Sub,
    Mul,
    /// First non-null argument.
    Coalesce,
    /// Uppercase a string.
    Upper,
    /// Lowercase a string.
    Lower,
}

impl fmt::Display for Func {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Func::Concat => "CONCAT",
            Func::Add => "ADD",
            Func::Sub => "SUB",
            Func::Mul => "MUL",
            Func::Coalesce => "COALESCE",
            Func::Upper => "UPPER",
            Func::Lower => "LOWER",
        };
        f.write_str(s)
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Row predicates.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Predicate {
    /// Comparison of two scalars (SQL three-valued: NULL operands make the
    /// comparison false).
    Cmp { op: CmpOp, left: Scalar, right: Scalar },
    And(Box<Predicate>, Box<Predicate>),
    Or(Box<Predicate>, Box<Predicate>),
    Not(Box<Predicate>),
    IsNull(Scalar),
    /// Entity SQL's `x IS OF (type)` / `IS OF (ONLY type)`: tests the
    /// reserved `$type` column against an entity type and (transitively)
    /// its subtypes, resolved against the schema at evaluation time.
    IsOf { ty: String, only: bool },
    /// Constant truth — identity for predicate folds.
    True,
    False,
}

impl Predicate {
    pub fn eq(left: Scalar, right: Scalar) -> Self {
        Predicate::Cmp { op: CmpOp::Eq, left, right }
    }

    pub fn col_eq_lit(col: &str, lit: impl Into<Lit>) -> Self {
        Predicate::eq(Scalar::col(col), Scalar::lit(lit))
    }

    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (Predicate::False, _) | (_, Predicate::False) => Predicate::False,
            (a, b) => Predicate::And(Box::new(a), Box::new(b)),
        }
    }

    pub fn or(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::False, p) | (p, Predicate::False) => p,
            (Predicate::True, _) | (_, Predicate::True) => Predicate::True,
            (a, b) => Predicate::Or(Box::new(a), Box::new(b)),
        }
    }

    pub fn negate(self) -> Predicate {
        match self {
            Predicate::True => Predicate::False,
            Predicate::False => Predicate::True,
            Predicate::Not(p) => *p,
            Predicate::Cmp { op, left, right } => {
                Predicate::Cmp { op: op.negate(), left, right }
            }
            p => Predicate::Not(Box::new(p)),
        }
    }
}

/// Relational algebra expressions.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// A base relation / entity set of the schema in scope.
    Base(String),
    /// A constant relation with named, ordered columns.
    Literal { columns: Vec<String>, rows: Vec<Vec<Lit>> },
    /// π — keep exactly `columns`, in order (set semantics: output is
    /// deduplicated by the evaluator).
    Project { input: Box<Expr>, columns: Vec<String> },
    /// σ — keep rows satisfying the predicate.
    Select { input: Box<Expr>, predicate: Predicate },
    /// Equi-join; output columns are left's columns followed by right's
    /// columns minus right's join columns (natural-join behaviour when the
    /// join column names coincide).
    Join { left: Box<Expr>, right: Box<Expr>, on: Vec<(String, String)> },
    /// Left outer join; unmatched left rows are padded with NULLs on the
    /// right's columns.
    LeftJoin { left: Box<Expr>, right: Box<Expr>, on: Vec<(String, String)> },
    /// × — cross product; column names must be disjoint.
    Product { left: Box<Expr>, right: Box<Expr> },
    /// ∪ — set union (`all = true` gives UNION ALL bag behaviour inside a
    /// pipeline; materialization into a relation deduplicates). Schemas
    /// must be positionally compatible; output uses left's names.
    Union { left: Box<Expr>, right: Box<Expr>, all: bool },
    /// ∖ — set difference.
    Diff { left: Box<Expr>, right: Box<Expr> },
    /// ρ — rename columns (old → new).
    Rename { input: Box<Expr>, renames: Vec<(String, String)> },
    /// Append a computed column.
    Extend { input: Box<Expr>, column: String, scalar: Scalar },
    /// Explicit duplicate elimination.
    Distinct { input: Box<Expr> },
    /// γ — grouping and aggregation: group rows by `group_by` (kept, in
    /// order, as the leading output columns) and append one column per
    /// aggregate. "If tractability were not a consideration, one would
    /// want a mapping language that includes first-order logic **with
    /// aggregation**" (§2) — report writers and OLAP tools (§1.1) need it.
    Aggregate {
        input: Box<Expr>,
        group_by: Vec<String>,
        aggregates: Vec<AggSpec>,
    },
}

/// One aggregate column of an [`Expr::Aggregate`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AggSpec {
    pub func: AggFunc,
    /// Input column; `None` only for `Count` (count of rows).
    pub column: Option<String>,
    /// Output column name.
    pub output: String,
}

impl AggSpec {
    pub fn count(output: impl Into<String>) -> Self {
        AggSpec { func: AggFunc::Count, column: None, output: output.into() }
    }

    pub fn of(func: AggFunc, column: impl Into<String>, output: impl Into<String>) -> Self {
        AggSpec { func, column: Some(column.into()), output: output.into() }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        })
    }
}

impl Expr {
    pub fn base(name: impl Into<String>) -> Expr {
        Expr::Base(name.into())
    }

    pub fn project(self, columns: &[&str]) -> Expr {
        Expr::Project {
            input: Box::new(self),
            columns: columns.iter().map(|s| (*s).into()).collect(),
        }
    }

    pub fn project_owned(self, columns: Vec<String>) -> Expr {
        Expr::Project { input: Box::new(self), columns }
    }

    pub fn select(self, predicate: Predicate) -> Expr {
        Expr::Select { input: Box::new(self), predicate }
    }

    pub fn join(self, right: Expr, on: &[(&str, &str)]) -> Expr {
        Expr::Join {
            left: Box::new(self),
            right: Box::new(right),
            on: on.iter().map(|(a, b)| ((*a).into(), (*b).into())).collect(),
        }
    }

    pub fn left_join(self, right: Expr, on: &[(&str, &str)]) -> Expr {
        Expr::LeftJoin {
            left: Box::new(self),
            right: Box::new(right),
            on: on.iter().map(|(a, b)| ((*a).into(), (*b).into())).collect(),
        }
    }

    pub fn product(self, right: Expr) -> Expr {
        Expr::Product { left: Box::new(self), right: Box::new(right) }
    }

    pub fn union(self, right: Expr) -> Expr {
        Expr::Union { left: Box::new(self), right: Box::new(right), all: false }
    }

    pub fn union_all(self, right: Expr) -> Expr {
        Expr::Union { left: Box::new(self), right: Box::new(right), all: true }
    }

    pub fn diff(self, right: Expr) -> Expr {
        Expr::Diff { left: Box::new(self), right: Box::new(right) }
    }

    pub fn rename(self, renames: &[(&str, &str)]) -> Expr {
        Expr::Rename {
            input: Box::new(self),
            renames: renames.iter().map(|(a, b)| ((*a).into(), (*b).into())).collect(),
        }
    }

    pub fn extend(self, column: &str, scalar: Scalar) -> Expr {
        Expr::Extend { input: Box::new(self), column: column.into(), scalar }
    }

    pub fn distinct(self) -> Expr {
        Expr::Distinct { input: Box::new(self) }
    }

    pub fn aggregate(self, group_by: &[&str], aggregates: Vec<AggSpec>) -> Expr {
        Expr::Aggregate {
            input: Box::new(self),
            group_by: group_by.iter().map(|s| (*s).into()).collect(),
            aggregates,
        }
    }

    /// A one-row constant relation, e.g. `{("Country", 'US')}` as used in
    /// Figure 6's `Local × {"US"}`.
    pub fn literal_row(columns: &[&str], row: Vec<Lit>) -> Expr {
        Expr::Literal {
            columns: columns.iter().map(|s| (*s).into()).collect(),
            rows: vec![row],
        }
    }

    /// Number of operators in the expression tree (a size metric for
    /// benchmarks and optimizer sanity checks).
    pub fn size(&self) -> usize {
        1 + match self {
            Expr::Base(_) | Expr::Literal { .. } => 0,
            Expr::Project { input, .. }
            | Expr::Select { input, .. }
            | Expr::Rename { input, .. }
            | Expr::Extend { input, .. }
            | Expr::Distinct { input }
            | Expr::Aggregate { input, .. } => input.size(),
            Expr::Join { left, right, .. }
            | Expr::LeftJoin { left, right, .. }
            | Expr::Product { left, right }
            | Expr::Union { left, right, .. }
            | Expr::Diff { left, right } => left.size() + right.size(),
        }
    }

    /// Depth of the expression tree.
    pub fn depth(&self) -> usize {
        1 + match self {
            Expr::Base(_) | Expr::Literal { .. } => 0,
            Expr::Project { input, .. }
            | Expr::Select { input, .. }
            | Expr::Rename { input, .. }
            | Expr::Extend { input, .. }
            | Expr::Distinct { input }
            | Expr::Aggregate { input, .. } => input.depth(),
            Expr::Join { left, right, .. }
            | Expr::LeftJoin { left, right, .. }
            | Expr::Product { left, right }
            | Expr::Union { left, right, .. }
            | Expr::Diff { left, right } => left.depth().max(right.depth()),
        }
    }
}

// ---------------------------------------------------------------------------
// SQL-like pretty printing

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Col(c) => f.write_str(c),
            Scalar::Lit(l) => write!(f, "{l}"),
            Scalar::Func(func, args) => {
                write!(f, "{func}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Scalar::Case { branches, otherwise } => {
                f.write_str("CASE")?;
                for (p, s) in branches {
                    write!(f, " WHEN {p} THEN {s}")?;
                }
                write!(f, " ELSE {otherwise} END")
            }
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Cmp { op, left, right } => write!(f, "{left} {op} {right}"),
            Predicate::And(a, b) => write!(f, "({a} AND {b})"),
            Predicate::Or(a, b) => write!(f, "({a} OR {b})"),
            Predicate::Not(p) => write!(f, "NOT ({p})"),
            Predicate::IsNull(s) => write!(f, "{s} IS NULL"),
            Predicate::IsOf { ty, only } => {
                if *only {
                    write!(f, "IS OF (ONLY {ty})")
                } else {
                    write!(f, "IS OF ({ty})")
                }
            }
            Predicate::True => f.write_str("TRUE"),
            Predicate::False => f.write_str("FALSE"),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Base(n) => f.write_str(n),
            Expr::Literal { columns, rows } => {
                write!(f, "VALUES[{}](", columns.join(", "))?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        f.write_str("; ")?;
                    }
                    let cells: Vec<String> = row.iter().map(Lit::to_string).collect();
                    write!(f, "{}", cells.join(", "))?;
                }
                write!(f, ")")
            }
            Expr::Project { input, columns } => {
                write!(f, "SELECT {} FROM ({input})", columns.join(", "))
            }
            Expr::Select { input, predicate } => {
                write!(f, "({input}) WHERE {predicate}")
            }
            Expr::Join { left, right, on } => {
                write!(f, "({left}) JOIN ({right}) ON {}", on_list(on))
            }
            Expr::LeftJoin { left, right, on } => {
                write!(f, "({left}) LEFT OUTER JOIN ({right}) ON {}", on_list(on))
            }
            Expr::Product { left, right } => write!(f, "({left}) CROSS JOIN ({right})"),
            Expr::Union { left, right, all } => {
                write!(f, "({left}) UNION{} ({right})", if *all { " ALL" } else { "" })
            }
            Expr::Diff { left, right } => write!(f, "({left}) EXCEPT ({right})"),
            Expr::Rename { input, renames } => {
                let rs: Vec<String> =
                    renames.iter().map(|(a, b)| format!("{a} AS {b}")).collect();
                write!(f, "({input}) RENAME {}", rs.join(", "))
            }
            Expr::Extend { input, column, scalar } => {
                write!(f, "({input}) EXTEND {column} := {scalar}")
            }
            Expr::Distinct { input } => write!(f, "DISTINCT ({input})"),
            Expr::Aggregate { input, group_by, aggregates } => {
                let aggs: Vec<String> = aggregates
                    .iter()
                    .map(|a| match &a.column {
                        Some(c) => format!("{}({c}) AS {}", a.func, a.output),
                        None => format!("{}(*) AS {}", a.func, a.output),
                    })
                    .collect();
                write!(
                    f,
                    "SELECT {}{} FROM ({input}) GROUP BY {}",
                    if group_by.is_empty() { String::new() } else { format!("{}, ", group_by.join(", ")) },
                    aggs.join(", "),
                    if group_by.is_empty() { "()".to_string() } else { group_by.join(", ") }
                )
            }
        }
    }
}

fn on_list(on: &[(String, String)]) -> String {
    on.iter()
        .map(|(a, b)| format!("{a} = {b}"))
        .collect::<Vec<_>>()
        .join(" AND ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_shapes() {
        let e = Expr::base("Empl")
            .join(Expr::base("Addr"), &[("AID", "AID")])
            .project(&["EID", "City"]);
        assert_eq!(e.size(), 4);
        assert_eq!(e.depth(), 3);
        match &e {
            Expr::Project { columns, .. } => assert_eq!(columns, &["EID", "City"]),
            _ => panic!("expected projection"),
        }
    }

    #[test]
    fn predicate_and_or_identities() {
        let p = Predicate::col_eq_lit("a", 1i64);
        assert_eq!(Predicate::True.and(p.clone()), p);
        assert_eq!(Predicate::False.or(p.clone()), p);
        assert_eq!(Predicate::False.and(p.clone()), Predicate::False);
        assert_eq!(Predicate::True.or(p), Predicate::True);
    }

    #[test]
    fn negation_flips_comparisons_and_cancels() {
        let p = Predicate::Cmp {
            op: CmpOp::Lt,
            left: Scalar::col("x"),
            right: Scalar::lit(5i64),
        };
        match p.clone().negate() {
            Predicate::Cmp { op, .. } => assert_eq!(op, CmpOp::Ge),
            _ => panic!(),
        }
        let q = Predicate::IsNull(Scalar::col("x"));
        assert_eq!(q.clone().negate().negate(), q);
    }

    #[test]
    fn display_reads_like_sql() {
        let e = Expr::base("Names")
            .select(Predicate::col_eq_lit("Country", "US"))
            .project(&["Name"]);
        let s = e.to_string();
        assert!(s.contains("WHERE Country = 'US'"), "{s}");
        assert!(s.starts_with("SELECT Name"), "{s}");
    }

    #[test]
    fn is_of_displays_entity_sql_style() {
        let p = Predicate::IsOf { ty: "Employee".into(), only: true };
        assert_eq!(p.to_string(), "IS OF (ONLY Employee)");
    }

    #[test]
    fn literal_row_displays_values() {
        let e = Expr::literal_row(&["Country"], vec![Lit::text("US")]);
        assert_eq!(e.to_string(), "VALUES[Country]('US')");
    }

    #[test]
    fn case_scalar_displays() {
        let s = Scalar::Case {
            branches: vec![(Predicate::col_eq_lit("t", "E"), Scalar::lit("emp"))],
            otherwise: Box::new(Scalar::lit("other")),
        };
        assert_eq!(s.to_string(), "CASE WHEN t = 'E' THEN 'emp' ELSE 'other' END");
    }
}
