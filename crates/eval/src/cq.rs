//! Conjunctive-query evaluation via homomorphism search.
//!
//! A conjunctive query is a list of atoms over variables and constants.
//! Evaluating it means finding every *binding* (homomorphism) of the
//! variables into the database that makes all atoms hold — the primitive
//! the chase (`mm-chase`), tgd satisfaction checking, and certain-answer
//! evaluation are built on.

use crate::plan::{lit_to_value, CqPlan, ExecOptions, VarTable};
use mm_expr::{Atom, Term};
use mm_guard::{ExecBudget, ExecError, Governor};
use mm_instance::{Database, Tuple, Value};
use std::collections::HashMap;

/// A variable binding: variable name → value.
pub type Binding = HashMap<String, Value>;

/// Try to extend `binding` so that `atom` maps onto `tuple`.
/// Returns `None` on conflict. Function terms never match (they only occur
/// in SO-tgd heads, which are not chased directly).
fn match_atom(atom: &Atom, tuple: &Tuple, binding: &Binding) -> Option<Binding> {
    if atom.terms.len() != tuple.arity() {
        return None;
    }
    let mut b = binding.clone();
    for (term, value) in atom.terms.iter().zip(tuple.values()) {
        match term {
            Term::Var(v) => match b.get(v) {
                Some(bound) if bound != value => return None,
                Some(_) => {}
                None => {
                    b.insert(v.clone(), value.clone());
                }
            },
            Term::Const(l) => {
                if &lit_to_value(l) != value {
                    return None;
                }
            }
            Term::Func(..) => return None,
        }
    }
    Some(b)
}

/// Order atoms so that atoms sharing variables with already-placed atoms
/// come early (greedy bound-variable heuristic) — the join-ordering step
/// of the naive CQ evaluator, and the heuristic [`CqPlan`] replicates so
/// both paths enumerate identically. Deterministic for reproducibility.
fn order_atoms<'a>(atoms: &'a [Atom], db: &Database) -> Vec<&'a Atom> {
    let mut remaining: Vec<(usize, &Atom)> = atoms.iter().enumerate().collect();
    let mut ordered: Vec<&Atom> = Vec::with_capacity(atoms.len());
    let mut bound: std::collections::HashSet<&str> = std::collections::HashSet::new();
    // pick the atom with the most bound variables; tie-break on the
    // smallest relation, then on the *original* atom index — the same
    // key [`CqPlan::compile`] uses, so the naive oracle and the compiled
    // plan provably pick identical orders (tie-breaking on the position
    // inside the shrinking `remaining` list happened to agree, but only
    // because removals preserve relative order; keying on the original
    // index makes the equivalence unconditional). The loop ends when
    // `remaining` is drained and `min_by_key` has nothing to yield.
    while let Some((idx, _)) = remaining
        .iter()
        .enumerate()
        .map(|(i, (ai, a))| {
            let bound_vars = a.variables().iter().filter(|v| bound.contains(**v)).count();
            let size = db.relation(&a.relation).map(|r| r.len()).unwrap_or(0);
            (i, (std::cmp::Reverse(bound_vars), size, *ai))
        })
        .min_by_key(|(_, k)| *k)
    {
        let (_, atom) = remaining.remove(idx);
        for v in atom.variables() {
            bound.insert(v);
        }
        ordered.push(atom);
    }
    ordered
}

/// Find all homomorphisms from the conjunction `atoms` into `db`.
///
/// Atoms over relations missing from the database yield no bindings (an
/// empty relation, not an error — the chase routinely queries targets
/// whose relations are not yet populated).
pub fn find_homomorphisms(atoms: &[Atom], db: &Database) -> Vec<Binding> {
    find_homomorphisms_seeded(atoms, db, &Binding::new())
}

/// Like [`find_homomorphisms`], but variables pre-bound in `seed` are
/// fixed. Used by the chase to test whether a tgd head is already
/// satisfied under the body binding (labeled nulls in the seed must match
/// themselves, not re-map).
pub fn find_homomorphisms_seeded(
    atoms: &[Atom],
    db: &Database,
    seed: &Binding,
) -> Vec<Binding> {
    let mut gov = Governor::new(&ExecBudget::unbounded());
    // an unbounded governor with a private token cannot fail
    find_homomorphisms_governed(atoms, db, seed, &mut gov).unwrap_or_default()
}

/// Governed homomorphism search: every join probe is metered as one
/// budget step, so an exponential join trips `BudgetExhausted` (or
/// observes cancellation) instead of running unbounded. The governor is
/// borrowed, not owned, so a pipeline (e.g. one chase round firing many
/// tgds) accumulates work against a single budget.
///
/// Since PR 2 this compiles the conjunction into a [`CqPlan`] (slot
/// bindings, index probes) and executes that; results — including their
/// order — are identical to [`find_homomorphisms_naive`], which is kept
/// as the differential-testing oracle. Callers that evaluate the same
/// conjunction repeatedly should compile a [`CqPlan`] once instead.
pub fn find_homomorphisms_governed(
    atoms: &[Atom],
    db: &Database,
    seed: &Binding,
    gov: &mut Governor,
) -> Result<Vec<Binding>, ExecError> {
    gov.check_now()?;
    let mut table = VarTable::new();
    // intern seed vars first so they get slots (and flow into the output
    // bindings) even when they never occur in the atoms — the naive path
    // carries every seed entry through to every result
    let seed_slots: Vec<(usize, Value)> =
        seed.iter().map(|(k, v)| (table.intern(k), v.clone())).collect();
    let prebound: Vec<usize> = seed_slots.iter().map(|(s, _)| *s).collect();
    let plan = CqPlan::compile(atoms, &mut table, db, &prebound);
    let mut scratch = vec![None; table.len()];
    for (s, v) in &seed_slots {
        scratch[*s] = Some(v.clone());
    }
    let mut matches = Vec::new();
    plan.execute_governed(db, &mut scratch, &ExecOptions::default(), gov, &mut matches)?;
    Ok(matches
        .into_iter()
        .map(|m| {
            m.binding
                .into_iter()
                .enumerate()
                .filter_map(|(s, v)| Some((table.name(s)?.to_string(), v?)))
                .collect()
        })
        .collect())
}

/// [`find_homomorphisms_governed`] through the cost-based planner:
/// compiles with [`CqPlan::compile_costed`] (selectivity-estimated join
/// order from relation statistics) instead of the greedy heuristic, then
/// sorts the matches by their canonical position vectors so results —
/// including their order — are still identical to
/// [`find_homomorphisms_naive`]. This is the planner's differential
/// entry point: same contract, different (hopefully cheaper) walk.
pub fn find_homomorphisms_costed(
    atoms: &[Atom],
    db: &Database,
    seed: &Binding,
    gov: &mut Governor,
) -> Result<Vec<Binding>, ExecError> {
    gov.check_now()?;
    let mut table = VarTable::new();
    let seed_slots: Vec<(usize, Value)> =
        seed.iter().map(|(k, v)| (table.intern(k), v.clone())).collect();
    let prebound: Vec<usize> = seed_slots.iter().map(|(s, _)| *s).collect();
    let plan = CqPlan::compile_costed(atoms, &mut table, db, &prebound);
    let mut scratch = vec![None; table.len()];
    for (s, v) in &seed_slots {
        scratch[*s] = Some(v.clone());
    }
    let mut matches = Vec::new();
    plan.execute_governed(db, &mut scratch, &ExecOptions::default(), gov, &mut matches)?;
    // positions are emitted in canonical order; sorting recovers the
    // naive enumeration sequence under any walk order (skipped when the
    // chosen order already is the canonical one)
    if plan.is_reordered() {
        matches.sort_by(|a, b| a.positions.cmp(&b.positions));
    }
    Ok(matches
        .into_iter()
        .map(|m| {
            m.binding
                .into_iter()
                .enumerate()
                .filter_map(|(s, v)| Some((table.name(s)?.to_string(), v?)))
                .collect()
        })
        .collect())
}

/// [`find_homomorphisms_governed`] with the driver atom's tuple range
/// split across up to `threads` workers
/// ([`CqPlan::execute_parallel`]). Results — including their order —
/// are identical to the sequential path; `threads <= 1` or a small
/// driver relation degrade to it outright. Returns the bindings plus
/// the pool statistics (workers, steals, tasks) for telemetry.
pub fn find_homomorphisms_parallel(
    atoms: &[Atom],
    db: &Database,
    seed: &Binding,
    threads: usize,
    gov: &mut Governor,
) -> Result<(Vec<Binding>, mm_parallel::PoolRun), ExecError> {
    gov.check_now()?;
    let mut table = VarTable::new();
    let seed_slots: Vec<(usize, Value)> =
        seed.iter().map(|(k, v)| (table.intern(k), v.clone())).collect();
    let prebound: Vec<usize> = seed_slots.iter().map(|(s, _)| *s).collect();
    let plan = CqPlan::compile(atoms, &mut table, db, &prebound);
    let mut scratch = vec![None; table.len()];
    for (s, v) in &seed_slots {
        scratch[*s] = Some(v.clone());
    }
    let mut matches = Vec::new();
    let run = plan.execute_parallel(
        db,
        &mut scratch,
        &ExecOptions::default(),
        threads,
        gov,
        &mut matches,
    )?;
    let bindings = matches
        .into_iter()
        .map(|m| {
            m.binding
                .into_iter()
                .enumerate()
                .filter_map(|(s, v)| Some((table.name(s)?.to_string(), v?)))
                .collect()
        })
        .collect();
    Ok((bindings, run))
}

/// [`find_homomorphisms_governed`] with telemetry: wraps the search in
/// an `eval.homomorphisms` span and feeds the found/pruned counters
/// (probes that bound a full match vs. probes the join rejected). With
/// disabled telemetry this is exactly the governed call — one branch.
pub fn find_homomorphisms_traced(
    atoms: &[Atom],
    db: &Database,
    seed: &Binding,
    gov: &mut Governor,
    tel: &mm_telemetry::Telemetry,
) -> Result<Vec<Binding>, ExecError> {
    if !tel.is_enabled() {
        return find_homomorphisms_governed(atoms, db, seed, gov);
    }
    let mut span = mm_telemetry::Span::enter(tel, "eval.homomorphisms", "");
    let steps_before = gov.steps_consumed();
    let result = find_homomorphisms_governed(atoms, db, seed, gov);
    let probes = gov.steps_consumed() - steps_before;
    match &result {
        Ok(out) => {
            let found = out.len() as u64;
            let pruned = probes.saturating_sub(found);
            if let Some(m) = tel.metrics() {
                m.add(mm_telemetry::Counter::HomFound, found);
                m.add(mm_telemetry::Counter::HomPruned, pruned);
            }
            span.field("atoms", atoms.len() as u64);
            span.field("found", found);
            span.field("pruned", pruned);
        }
        Err(e) => {
            span.field("atoms", atoms.len() as u64);
            span.field("error", e.to_string());
        }
    }
    span.finish();
    result
}

/// The naive nested-loop evaluator: scans every relation per atom and
/// clones a string-keyed binding per probe. Kept as the reference oracle
/// the compiled-plan path is property-tested against (and as the scan
/// baseline in the eval bench); new code should call
/// [`find_homomorphisms_governed`].
pub fn find_homomorphisms_naive(
    atoms: &[Atom],
    db: &Database,
    seed: &Binding,
    gov: &mut Governor,
) -> Result<Vec<Binding>, ExecError> {
    gov.check_now()?;
    if atoms.is_empty() {
        return Ok(vec![seed.clone()]);
    }
    let ordered = order_atoms(atoms, db);
    let mut bindings = vec![seed.clone()];
    for atom in ordered {
        let Some(rel) = db.relation(&atom.relation) else {
            return Ok(Vec::new());
        };
        let mut next = Vec::new();
        for b in &bindings {
            for t in rel.iter() {
                gov.step()?;
                if let Some(b2) = match_atom(atom, t, b) {
                    next.push(b2);
                }
            }
        }
        if next.is_empty() {
            return Ok(Vec::new());
        }
        bindings = next;
    }
    Ok(bindings)
}

/// Instantiate a (function-free, fully bound) atom under a binding,
/// producing a tuple. Existential variables absent from the binding are
/// filled by `fresh`, which must return a new labeled null per call per
/// variable (the caller memoizes per-variable if needed).
///
/// Function terms are not first-order instantiable (they only occur in
/// SO-tgd heads, which go through `apply_sotgd`) and yield a typed
/// [`ExecError::Unsupported`] instead of a panic.
pub fn instantiate_atom(
    atom: &Atom,
    binding: &Binding,
    fresh: &mut dyn FnMut(&str) -> Value,
) -> Result<Tuple, ExecError> {
    let mut values = Vec::with_capacity(atom.terms.len());
    for t in &atom.terms {
        values.push(match t {
            Term::Var(v) => match binding.get(v) {
                Some(val) => val.clone(),
                None => fresh(v),
            },
            Term::Const(l) => lit_to_value(l),
            Term::Func(name, _) => {
                return Err(ExecError::unsupported(format!(
                    "function term '{name}' in first-order instantiation of atom '{}'",
                    atom.relation
                )))
            }
        });
    }
    Ok(Tuple::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_expr::Lit;
    use mm_instance::RelSchema;
    use mm_metamodel::DataType;

    fn db() -> Database {
        let mut db = Database::new("D");
        let mut r = mm_instance::Relation::new(RelSchema::of(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
        ]));
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            r.insert(Tuple::from([Value::Int(a), Value::Int(b)]));
        }
        db.insert_relation("E", r);
        db
    }

    #[test]
    fn single_atom_binds_all_tuples() {
        let hs = find_homomorphisms(&[Atom::vars("E", &["x", "y"])], &db());
        assert_eq!(hs.len(), 3);
    }

    #[test]
    fn join_via_shared_variable() {
        // E(x,y) & E(y,z): paths of length 2
        let hs = find_homomorphisms(
            &[Atom::vars("E", &["x", "y"]), Atom::vars("E", &["y", "z"])],
            &db(),
        );
        assert_eq!(hs.len(), 2); // 1-2-3 and 2-3-4
        for h in &hs {
            let x = &h["x"];
            let z = &h["z"];
            assert_ne!(x, z);
        }
    }

    #[test]
    fn repeated_variable_forces_equality() {
        // E(x,x): no loops in this graph
        let hs = find_homomorphisms(&[Atom::vars("E", &["x", "x"])], &db());
        assert!(hs.is_empty());
    }

    #[test]
    fn constants_filter() {
        let atom = Atom::new(
            "E",
            vec![Term::Const(Lit::Int(2)), Term::var("y")],
        );
        let hs = find_homomorphisms(&[atom], &db());
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0]["y"], Value::Int(3));
    }

    #[test]
    fn missing_relation_yields_no_bindings() {
        let hs = find_homomorphisms(&[Atom::vars("Nope", &["x"])], &db());
        assert!(hs.is_empty());
    }

    #[test]
    fn empty_query_has_one_empty_binding() {
        let hs = find_homomorphisms(&[], &db());
        assert_eq!(hs.len(), 1);
        assert!(hs[0].is_empty());
    }

    #[test]
    fn arity_mismatch_never_matches() {
        let hs = find_homomorphisms(&[Atom::vars("E", &["x"])], &db());
        assert!(hs.is_empty());
    }

    #[test]
    fn instantiate_with_fresh_nulls_memoized_by_caller() {
        let atom = Atom::vars("T", &["x", "n", "n"]);
        let mut binding = Binding::new();
        binding.insert("x".into(), Value::Int(1));
        let mut memo: HashMap<String, Value> = HashMap::new();
        let mut counter = 0u64;
        let t = instantiate_atom(&atom, &binding, &mut |v| {
            memo.entry(v.to_string())
                .or_insert_with(|| {
                    let val = Value::Labeled(counter);
                    counter += 1;
                    val
                })
                .clone()
        })
        .unwrap();
        assert_eq!(t.values()[0], Value::Int(1));
        assert_eq!(t.values()[1], t.values()[2]); // same existential var, same null
        assert!(t.values()[1].is_labeled());
    }

    #[test]
    fn compiled_path_agrees_with_naive_oracle_including_order() {
        let db = db();
        let cases: Vec<Vec<Atom>> = vec![
            vec![Atom::vars("E", &["x", "y"]), Atom::vars("E", &["y", "z"])],
            vec![Atom::vars("E", &["x", "x"])],
            vec![
                Atom::new("E", vec![Term::Const(Lit::Int(2)), Term::var("y")]),
                Atom::vars("E", &["y", "z"]),
            ],
            vec![],
        ];
        for atoms in cases {
            let mut g1 = Governor::new(&ExecBudget::unbounded());
            let mut g2 = Governor::new(&ExecBudget::unbounded());
            let seed = Binding::from([("w".to_string(), Value::Int(7))]);
            let fast = find_homomorphisms_governed(&atoms, &db, &seed, &mut g1).unwrap();
            let slow = find_homomorphisms_naive(&atoms, &db, &seed, &mut g2).unwrap();
            assert_eq!(fast, slow, "atoms: {atoms:?}");
        }
    }

    #[test]
    fn labeled_nulls_participate_in_joins_by_label() {
        let mut db = Database::new("D");
        let mut r = mm_instance::Relation::new(RelSchema::of(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
        ]));
        r.insert(Tuple::from([Value::Int(1), Value::Labeled(7)]));
        r.insert(Tuple::from([Value::Labeled(7), Value::Int(9)]));
        db.insert_relation("E", r);
        let hs = find_homomorphisms(
            &[Atom::vars("E", &["x", "y"]), Atom::vars("E", &["y", "z"])],
            &db,
        );
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0]["y"], Value::Labeled(7));
    }
}
