//! View materialization and query unfolding.
//!
//! The two runtime strategies for answering queries over a mapped schema:
//! *materialize* the views into a database (data-exchange style), or
//! *unfold* the query through the view definitions and run it directly on
//! the base database (mediation / virtual integration, §5 "Peer-to-peer").

use crate::engine::{eval, eval_governed, EvalError};
use mm_expr::rewrite::{simplify_fix, substitute_bases};
use mm_expr::{Expr, ViewSet};
use mm_guard::Governor;
use mm_instance::Database;
use mm_metamodel::Schema;
use std::collections::HashMap;

/// Materialize every view of `views` over `base_db` into a database named
/// after the view schema.
pub fn materialize_views(
    views: &ViewSet,
    base_schema: &Schema,
    base_db: &Database,
) -> Result<Database, EvalError> {
    let mut out = Database::new(views.view_schema.clone());
    for v in &views.views {
        let rel = eval(&v.expr, base_schema, base_db)?;
        out.insert_relation(v.name.clone(), rel);
    }
    Ok(out)
}

/// Budgeted variant of [`materialize_views`]: all views accrue against the
/// one governor, so the budget bounds the whole materialization pass.
pub fn materialize_views_governed(
    views: &ViewSet,
    base_schema: &Schema,
    base_db: &Database,
    gov: &mut Governor,
) -> Result<Database, EvalError> {
    let mut out = Database::new(views.view_schema.clone());
    for v in &views.views {
        let rel = eval_governed(&v.expr, base_schema, base_db, gov)?;
        out.insert_relation(v.name.clone(), rel);
    }
    Ok(out)
}

/// Rewrite `query` (over the view schema) into an equivalent query over
/// the base schema by substituting view definitions, then simplify.
pub fn unfold_query(query: &Expr, views: &ViewSet) -> Expr {
    let defs: HashMap<String, Expr> =
        views.views.iter().map(|v| (v.name.clone(), v.expr.clone())).collect();
    simplify_fix(&substitute_bases(query, &defs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_expr::{Predicate, ViewDef};
    use mm_instance::{Tuple, Value};
    use mm_metamodel::{DataType, SchemaBuilder};

    fn base() -> (Schema, Database) {
        let s = SchemaBuilder::new("S")
            .relation("Names", &[("SID", DataType::Int), ("Name", DataType::Text)])
            .relation("Addresses", &[("SID", DataType::Int), ("Address", DataType::Text), ("Country", DataType::Text)])
            .build()
            .unwrap();
        let mut db = Database::empty_of(&s);
        db.insert("Names", Tuple::from([Value::Int(1), Value::text("ann")]));
        db.insert("Names", Tuple::from([Value::Int(2), Value::text("bob")]));
        db.insert(
            "Addresses",
            Tuple::from([Value::Int(1), Value::text("5 Rue"), Value::text("FR")]),
        );
        db.insert(
            "Addresses",
            Tuple::from([Value::Int(2), Value::text("9 Ave"), Value::text("US")]),
        );
        (s, db)
    }

    fn students_views() -> ViewSet {
        let mut vs = ViewSet::new("S", "V");
        vs.push(ViewDef::new(
            "Students",
            Expr::base("Names")
                .join(Expr::base("Addresses"), &[("SID", "SID")])
                .project(&["Name", "Address", "Country"]),
        ));
        vs
    }

    #[test]
    fn materialization_populates_view_relations() {
        let (s, db) = base();
        let v = materialize_views(&students_views(), &s, &db).unwrap();
        let students = v.relation("Students").unwrap();
        assert_eq!(students.len(), 2);
        assert!(students.schema.has("Country"));
    }

    #[test]
    fn unfolded_query_equals_query_on_materialized_view() {
        let (s, db) = base();
        let views = students_views();
        let query = Expr::base("Students")
            .select(Predicate::col_eq_lit("Country", "US"))
            .project(&["Name"]);

        // route 1: materialize then query (pretend view schema has the
        // Students relation by evaluating over a schema that includes it)
        let vschema = SchemaBuilder::new("V")
            .relation("Students", &[("Name", DataType::Text), ("Address", DataType::Text), ("Country", DataType::Text)])
            .build()
            .unwrap();
        let vdb = materialize_views(&views, &s, &db).unwrap();
        let direct = eval(&query, &vschema, &vdb).unwrap();

        // route 2: unfold and run on base
        let unfolded = unfold_query(&query, &views);
        let via_unfold = eval(&unfolded, &s, &db).unwrap();

        assert!(direct.set_eq(&via_unfold));
        assert_eq!(direct.len(), 1);
    }

    #[test]
    fn unfolding_is_syntactic_so_unknown_views_pass_through() {
        let views = students_views();
        let q = Expr::base("Other");
        assert_eq!(unfold_query(&q, &views), Expr::base("Other"));
    }
}
