//! Compiled conjunctive-query plans.
//!
//! A [`CqPlan`] compiles a conjunction of atoms once — variables interned
//! to dense `usize` slots by a [`VarTable`], a greedy join order fixed up
//! front, per-atom index-probe patterns precomputed — so evaluation runs
//! as a backtracking join over a single flat `Vec<Option<Value>>` scratch
//! instead of cloning a string-keyed `HashMap` per probe. Atom matching
//! probes a [`mm_instance::RelIndex`] bucket when any column is bound and
//! falls back to a scan otherwise.
//!
//! Execution order is deliberately identical to the naive nested-loop
//! evaluator in [`crate::cq`]: the join order replicates its greedy
//! heuristic, and index buckets preserve relation insertion order, so the
//! compiled path enumerates matches in exactly the order the naive scan
//! would. Consumers that must be bit-identical to the naive path (the
//! chase, whose labeled-null ids depend on firing order) rely on this.
//!
//! [`CqPlan::compile_costed`] relaxes the *walk* order without giving up
//! that contract: it picks a selectivity-estimated join order from
//! [`mm_instance::RelStats`] cardinality sketches (exhaustive DP over
//! small atom sets, greedy-with-costs above `DP_MAX_ATOMS`), and emits
//! every [`PlanMatch`]'s position vector permuted into the *canonical*
//! greedy order — so sorting matches by positions recovers the exact
//! naive enumeration sequence no matter which order the walk ran in.

use mm_expr::{Atom, Lit, Term};
use mm_guard::{ExecError, Governor};
use mm_instance::{Database, RelIndex, Relation, Tuple, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Lower an expression-level literal to an instance-level value (shared
/// by the CQ matcher and the chase's head instantiation).
pub fn lit_to_value(l: &Lit) -> Value {
    match l {
        Lit::Int(v) => Value::Int(*v),
        Lit::Double(v) => Value::Double(*v),
        Lit::Bool(v) => Value::Bool(*v),
        Lit::Text(v) => Value::text(v.as_str()),
        Lit::Date(v) => Value::Date(*v),
        Lit::Null => Value::Null,
    }
}

/// Interner mapping variable names to dense slots. Shared across the
/// plans of one dependency (tgd body and head intern into the same table)
/// so a slot identifies a variable across both sides.
#[derive(Debug, Clone, Default)]
pub struct VarTable {
    names: Vec<String>,
    map: HashMap<String, usize>,
}

impl VarTable {
    pub fn new() -> Self {
        VarTable::default()
    }

    /// Slot of `name`, allocating the next dense slot on first sight.
    pub fn intern(&mut self, name: &str) -> usize {
        if let Some(&s) = self.map.get(name) {
            return s;
        }
        let s = self.names.len();
        self.names.push(name.to_string());
        self.map.insert(name.to_string(), s);
        s
    }

    pub fn slot(&self, name: &str) -> Option<usize> {
        self.map.get(name).copied()
    }

    pub fn name(&self, slot: usize) -> Option<&str> {
        self.names.get(slot).map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// One term of a compiled atom: an interned variable slot or a constant.
#[derive(Debug, Clone, PartialEq)]
pub enum SlotTerm {
    Var(usize),
    Const(Value),
}

/// One atom of a compiled plan, in join order.
#[derive(Debug, Clone)]
pub struct AtomPlan {
    pub relation: String,
    terms: Vec<SlotTerm>,
    /// Columns usable as an index-probe key when execution reaches this
    /// atom: constant columns plus variable columns whose slot is bound
    /// by an earlier plan atom or pre-bound by the caller's seed.
    probe_cols: Vec<usize>,
}

impl AtomPlan {
    pub fn terms(&self) -> &[SlotTerm] {
        &self.terms
    }
}

/// Per-atom tuple-range restriction for semi-naive evaluation, phrased
/// in relation insertion positions (watermarks recorded as `rel.len()`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomRange {
    /// All tuples.
    Full,
    /// Only tuples inserted before the watermark ("old" tuples).
    Below(u32),
    /// Only tuples at or after the watermark (the delta).
    AtOrAbove(u32),
    /// Only tuples in `[lo, hi)` — a chunk of another range, used by
    /// parallel execution to split a driver atom's interval across
    /// workers. Every other variant denotes a contiguous position
    /// interval, so chunks compose with any of them.
    Between(u32, u32),
}

impl AtomRange {
    fn admits(self, pos: u32) -> bool {
        match self {
            AtomRange::Full => true,
            AtomRange::Below(w) => pos < w,
            AtomRange::AtOrAbove(w) => pos >= w,
            AtomRange::Between(lo, hi) => pos >= lo && pos < hi,
        }
    }

    /// The contiguous `[start, end)` interval of insertion positions
    /// this range admits in a relation of `len` tuples.
    pub fn interval(self, len: usize) -> (usize, usize) {
        match self {
            AtomRange::Full => (0, len),
            AtomRange::Below(w) => (0, (w as usize).min(len)),
            AtomRange::AtOrAbove(w) => ((w as usize).min(len), len),
            AtomRange::Between(lo, hi) => {
                let lo = (lo as usize).min(len);
                (lo, (hi as usize).min(len).max(lo))
            }
        }
    }
}

/// One match of a plan: the slot values, plus the insertion position of
/// the tuple matched at each atom — in *canonical* (greedy) atom order,
/// which coincides with plan order except for cost-based plans, whose
/// walk order may differ. The position vector orders matches exactly as
/// the naive nested-loop enumeration would (lexicographic comparison),
/// which is what lets the semi-naive chase recover the naive firing
/// order after evaluating delta splits (or a reordered costed walk) out
/// of order.
#[derive(Debug, Clone)]
pub struct PlanMatch {
    pub binding: Vec<Option<Value>>,
    pub positions: Vec<u32>,
}

/// Knobs for one plan execution.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions<'r> {
    /// Per-plan-atom tuple ranges (plan order); `None` means all tuples.
    pub ranges: Option<&'r [AtomRange]>,
    /// Probe relation indexes where a bound column allows it; `false`
    /// forces the scan path (the benchmarked baseline).
    pub use_indexes: bool,
    /// Stop after this many matches (existence checks pass 1).
    pub limit: Option<usize>,
}

impl Default for ExecOptions<'_> {
    fn default() -> Self {
        ExecOptions { ranges: None, use_indexes: true, limit: None }
    }
}

/// A compiled conjunctive query. Compile once, execute many times.
#[derive(Debug, Clone)]
pub struct CqPlan {
    atoms: Vec<AtomPlan>,
    /// Plan position → index of the originating atom in the source list.
    source: Vec<usize>,
    num_slots: usize,
    /// A function term appeared somewhere: the query matches nothing
    /// (function terms only occur in SO-tgd heads, which are not chased
    /// directly — same semantics as the naive matcher).
    unsat: bool,
    /// Canonical-rank → plan-position permutation applied to emitted
    /// position vectors, present only when the walk order differs from
    /// the canonical greedy order (cost-based plans). `None` ⇒ identity.
    canon: Option<Vec<usize>>,
    /// Estimated cumulative match cardinality after each plan atom (plan
    /// order); empty unless compiled by [`CqPlan::compile_costed`].
    estimates: Vec<f64>,
}

impl CqPlan {
    /// Compile `atoms` against `table`, choosing a greedy join order
    /// (most already-bound variables first; ties broken by smallest
    /// relation in `db`, then source position — the exact heuristic of
    /// the naive evaluator, so both paths enumerate identically).
    ///
    /// `prebound` lists slots the caller promises to seed before
    /// executing; they widen index-probe patterns but deliberately do
    /// not influence the join order (the naive path ignores seeds when
    /// ordering). A promised slot left unseeded at execution time only
    /// costs the probe — execution falls back to a scan.
    pub fn compile(
        atoms: &[Atom],
        table: &mut VarTable,
        db: &Database,
        prebound: &[usize],
    ) -> CqPlan {
        let source = greedy_order(atoms, db);
        let (plans, unsat) = build_atom_plans(atoms, &source, table, prebound);
        CqPlan {
            atoms: plans,
            source,
            num_slots: table.len(),
            unsat,
            canon: None,
            estimates: Vec::new(),
        }
    }

    /// Compile `atoms` with a cost-based join order: per-step work is
    /// estimated from [`mm_instance::RelStats`] sketches (exact
    /// constant-equality counts, `1/distinct` join selectivity), the
    /// order minimizing total estimated work is found by exhaustive DP
    /// over subsets up to [`DP_MAX_ATOMS`] atoms and by greedy
    /// cheapest-next-atom above that, and the per-atom cumulative
    /// cardinality estimates are carried on the plan for EXPLAIN and for
    /// runtime misestimate detection.
    ///
    /// The result set is identical to [`CqPlan::compile`]'s, and emitted
    /// [`PlanMatch::positions`] are permuted into the canonical greedy
    /// order — sorting matches lexicographically by positions yields the
    /// exact naive enumeration sequence, preserving the chase's
    /// bit-identity contract under the reordered walk.
    pub fn compile_costed(
        atoms: &[Atom],
        table: &mut VarTable,
        db: &Database,
        prebound: &[usize],
    ) -> CqPlan {
        let canon_source = greedy_order(atoms, db);
        CqPlan::compile_costed_with_canon(atoms, table, db, prebound, &canon_source)
    }

    /// [`CqPlan::compile_costed`] with an explicit canonical source-atom
    /// order instead of deriving it from `db`'s current greedy order.
    /// Mid-run re-optimization uses this: the enumeration order a chase
    /// must reproduce is frozen when its reference plan is first
    /// compiled, so a re-planned body picks a *new* walk order from
    /// current statistics while emitting positions in the *old* canonical
    /// order.
    pub fn compile_costed_with_canon(
        atoms: &[Atom],
        table: &mut VarTable,
        db: &Database,
        prebound: &[usize],
        canon_source: &[usize],
    ) -> CqPlan {
        let prebound_names: HashSet<&str> = prebound
            .iter()
            .filter_map(|&s| table.name(s))
            .collect::<Vec<_>>()
            .into_iter()
            .collect();
        let (source, estimates) = cost_order(atoms, db, &prebound_names);
        let (plans, unsat) = build_atom_plans(atoms, &source, table, prebound);
        // canonical rank k is held by source atom canon_source[k]; find
        // where the cost order placed it
        let canon: Vec<usize> = canon_source
            .iter()
            .map(|ai| source.iter().position(|s| s == ai).unwrap_or(0))
            .collect();
        let identity = canon.iter().enumerate().all(|(k, &p)| k == p);
        CqPlan {
            atoms: plans,
            source,
            num_slots: table.len(),
            unsat,
            canon: (!identity).then_some(canon),
            estimates,
        }
    }

    /// Source-atom indexes in canonical (greedy-at-first-compile) rank
    /// order — the enumeration order emitted position vectors are
    /// expressed in. Equals [`CqPlan::source_order`] for greedy plans.
    pub fn canonical_source_order(&self) -> Vec<usize> {
        match &self.canon {
            Some(perm) => perm.iter().map(|&p| self.source[p]).collect(),
            None => self.source.clone(),
        }
    }

    /// Whether this plan walks atoms in a different order than the
    /// canonical enumeration — i.e. whether emitted position vectors
    /// need a sort to recover the naive sequence. Greedy plans and
    /// costed plans whose chosen order coincides with the canonical one
    /// emit in canonical order already.
    pub fn is_reordered(&self) -> bool {
        self.canon.is_some()
    }

    /// Number of slots the compiling table had seen when this plan was
    /// built; execution scratch must be at least this long.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    pub fn atoms(&self) -> &[AtomPlan] {
        &self.atoms
    }

    /// Plan position → source-atom index.
    pub fn source_order(&self) -> &[usize] {
        &self.source
    }

    /// Estimated cumulative match cardinality after each plan atom (plan
    /// order). Empty unless this plan was compiled by
    /// [`CqPlan::compile_costed`].
    pub fn estimates(&self) -> &[f64] {
        &self.estimates
    }

    /// Whether this plan was compiled by [`CqPlan::compile_costed`]
    /// (carries cardinality estimates; positions are emitted in
    /// canonical order).
    pub fn is_costed(&self) -> bool {
        !self.estimates.is_empty()
    }

    /// Estimated total number of matches this plan produces (the last
    /// cumulative estimate), if compiled with cost estimates.
    pub fn estimated_matches(&self) -> Option<f64> {
        self.estimates.last().copied()
    }

    /// Describe this plan against `db`: the chosen join order, and per
    /// plan atom the probe columns, relation cardinality, and how many
    /// tuples the (optional) per-atom [`AtomRange`]s admit. Purely
    /// observational — compiles nothing, executes nothing.
    pub fn explain(&self, db: &Database, ranges: Option<&[AtomRange]>) -> PlanExplain {
        let atoms = self
            .atoms
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let rows_total = db.relation(&a.relation).map(|r| r.len()).unwrap_or(0);
                let range = ranges.and_then(|rs| rs.get(i).copied()).unwrap_or(AtomRange::Full);
                let rows_admitted = {
                    let (start, end) = range.interval(rows_total);
                    end - start
                };
                let terms = a
                    .terms
                    .iter()
                    .map(|t| match t {
                        SlotTerm::Var(s) => format!("${s}"),
                        SlotTerm::Const(v) => v.to_string(),
                    })
                    .collect();
                AtomExplain {
                    relation: a.relation.clone(),
                    source_index: self.source[i],
                    terms,
                    probe_cols: a.probe_cols.clone(),
                    rows_total,
                    rows_admitted,
                    est_rows: self.estimates.get(i).map(|e| e.round() as u64),
                }
            })
            .collect();
        PlanExplain {
            join_order: self.atoms.iter().map(|a| a.relation.clone()).collect(),
            atoms,
            num_slots: self.num_slots,
            unsat: self.unsat,
        }
    }

    /// Execute over `db`. `scratch` carries the seed (pre-bound slots as
    /// `Some`) and is restored to exactly that seed state on return.
    /// Every candidate tuple examined is metered as one governor step;
    /// on a budget trip the error propagates with `scratch` restored.
    pub fn execute_governed(
        &self,
        db: &Database,
        scratch: &mut [Option<Value>],
        opts: &ExecOptions<'_>,
        gov: &mut Governor,
        out: &mut Vec<PlanMatch>,
    ) -> Result<(), ExecError> {
        if self.unsat {
            return Ok(());
        }
        debug_assert!(scratch.len() >= self.num_slots, "scratch shorter than plan slots");
        let ctx = ExecCtx::prepare(self, db, opts);
        let mut pos_acc = vec![0u32; self.atoms.len()];
        let mut walk = Walk { plan: self, ctx: &ctx, opts, out, key: Vec::new() };
        let result = walk.step(0, scratch, &mut pos_acc, gov);
        result.map(|_| ())
    }

    /// Execute over `db` with the driver (first) atom's range split into
    /// chunks fanned across up to `threads` workers.
    ///
    /// Bit-identical to [`CqPlan::execute_governed`]: every range variant
    /// admits one contiguous interval of the driver atom's insertion
    /// positions, chunks partition that interval in order, and within a
    /// chunk the walk enumerates exactly as the sequential walk would —
    /// so concatenating chunk outputs in chunk order *is* the sequential
    /// enumeration order, and the metered step count is identical too
    /// (range filtering happens before metering on both paths).
    ///
    /// A `limit` is honoured exactly: each chunk stops at `limit`
    /// locally, a shared counter of matches found in the *completed
    /// prefix* of chunks lets later chunks skip entirely once the prefix
    /// alone satisfies the limit (their matches could never displace
    /// prefix matches), and the merged output is truncated to the first
    /// `limit` matches — the same ones the sequential walk returns.
    ///
    /// Degrades to the sequential path (still via `gov`) when `threads
    /// <= 1`, the driver interval is too small to be worth splitting, or
    /// the plan has no drivable atom. `scratch` carries the seed exactly
    /// as in the sequential path and is never mutated here (workers copy
    /// it).
    pub fn execute_parallel(
        &self,
        db: &Database,
        scratch: &mut [Option<Value>],
        opts: &ExecOptions<'_>,
        threads: usize,
        gov: &mut Governor,
        out: &mut Vec<PlanMatch>,
    ) -> Result<mm_parallel::PoolRun, ExecError> {
        let driver_span = (threads > 1 && !self.unsat && !self.atoms.is_empty())
            .then(|| {
                let range = opts.ranges.map_or(AtomRange::Full, |r| r[0]);
                let len =
                    db.relation(&self.atoms[0].relation).map(|r| r.len()).unwrap_or(0);
                range.interval(len)
            })
            .filter(|(start, end)| end - start >= threads * MIN_DRIVER_ROWS_PER_WORKER);
        let Some((start, end)) = driver_span else {
            self.execute_governed(db, scratch, opts, gov, out)?;
            return Ok(mm_parallel::PoolRun { workers: 1, steals: 0, tasks: 1 });
        };

        // Pre-build every index snapshot on this thread so workers don't
        // race to construct the same index behind the relation's lock.
        let _prewarm = ExecCtx::prepare(self, db, opts);

        let span = end - start;
        let chunks = (threads * CHUNKS_PER_WORKER).min(span);
        let base_ranges: Vec<AtomRange> = match opts.ranges {
            Some(rs) => rs.to_vec(),
            None => vec![AtomRange::Full; self.atoms.len()],
        };
        let (_meter, govs) = gov.fork_shared(chunks);
        let govs: Vec<std::sync::Mutex<Governor>> =
            govs.into_iter().map(std::sync::Mutex::new).collect();
        let prefix = PrefixCount::new(chunks);
        let seed: Vec<Option<Value>> = scratch.to_vec();

        let (merged, run) = mm_parallel::map_indexed::<Vec<PlanMatch>, ExecError, _>(
            threads,
            chunks,
            |c, _ctx| {
                if opts.limit.is_some_and(|l| prefix.confirmed() >= l) {
                    return Ok(Vec::new());
                }
                let lo = (start + c * span / chunks) as u32;
                let hi = (start + (c + 1) * span / chunks) as u32;
                let mut ranges = base_ranges.clone();
                ranges[0] = AtomRange::Between(lo, hi);
                let chunk_opts = ExecOptions { ranges: Some(&ranges), ..*opts };
                let mut local_scratch = seed.clone();
                let mut local_out = Vec::new();
                let mut wg = match govs[c].lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                self.execute_governed(db, &mut local_scratch, &chunk_opts, &mut wg, &mut local_out)?;
                prefix.complete(c, local_out.len());
                Ok(local_out)
            },
        );
        for g in govs {
            let wg = match g.into_inner() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            gov.absorb(&wg.consumption())?;
        }
        let mut per_chunk = merged?;
        for chunk_out in &mut per_chunk {
            out.append(chunk_out);
        }
        if let Some(l) = opts.limit {
            out.truncate(l);
        }
        Ok(run)
    }
}

/// The greedy join order of the naive evaluator: most already-bound
/// variables first, ties broken by smallest relation, then source
/// position. This is the *canonical* order: the naive nested-loop scan
/// enumerates matches lexicographically in these atoms' tuple insertion
/// positions, and every plan — greedy or cost-based — expresses its
/// emitted [`PlanMatch::positions`] in it.
fn greedy_order(atoms: &[Atom], db: &Database) -> Vec<usize> {
    let mut remaining: Vec<usize> = (0..atoms.len()).collect();
    let mut source = Vec::with_capacity(atoms.len());
    let mut bound_names: HashSet<&str> = HashSet::new();
    while let Some((pick, _)) = remaining
        .iter()
        .enumerate()
        .map(|(i, &ai)| {
            let a = &atoms[ai];
            let bound_vars =
                a.variables().iter().filter(|v| bound_names.contains(**v)).count();
            let size = db.relation(&a.relation).map(|r| r.len()).unwrap_or(0);
            (i, (std::cmp::Reverse(bound_vars), size, ai))
        })
        .min_by_key(|(_, k)| *k)
    {
        let ai = remaining.remove(pick);
        for v in atoms[ai].variables() {
            bound_names.insert(v);
        }
        source.push(ai);
    }
    source
}

/// Build the per-atom plans for `atoms` taken in `order`, interning
/// variables into `table` and computing index-probe patterns from the
/// bound-slot frontier. Returns the plans and whether a function term
/// made the conjunction unsatisfiable.
fn build_atom_plans(
    atoms: &[Atom],
    order: &[usize],
    table: &mut VarTable,
    prebound: &[usize],
) -> (Vec<AtomPlan>, bool) {
    let mut unsat = false;
    let prebound: HashSet<usize> = prebound.iter().copied().collect();
    let mut bound_slots: HashSet<usize> = HashSet::new();
    let mut plans = Vec::with_capacity(order.len());
    for &ai in order {
        let atom = &atoms[ai];
        let mut terms = Vec::with_capacity(atom.terms.len());
        for t in &atom.terms {
            terms.push(match t {
                Term::Var(v) => SlotTerm::Var(table.intern(v)),
                Term::Const(l) => SlotTerm::Const(lit_to_value(l)),
                Term::Func(..) => {
                    unsat = true;
                    SlotTerm::Const(Value::Null)
                }
            });
        }
        let probe_cols: Vec<usize> = terms
            .iter()
            .enumerate()
            .filter(|(_, t)| match t {
                SlotTerm::Const(_) => true,
                SlotTerm::Var(s) => bound_slots.contains(s) || prebound.contains(s),
            })
            .map(|(c, _)| c)
            .collect();
        for t in &terms {
            if let SlotTerm::Var(s) = t {
                bound_slots.insert(*s);
            }
        }
        plans.push(AtomPlan { relation: atom.relation.clone(), terms, probe_cols });
    }
    (plans, unsat)
}

/// Exhaustive DP plan search is bounded to this many atoms (2^n subset
/// states); larger conjunctions fall back to greedy cheapest-next-atom.
pub const DP_MAX_ATOMS: usize = 10;

/// Per-step cost estimate for appending `atom` to a join prefix with
/// `bound` variable names: `(out_mult, work)` where `out_mult` is the
/// estimated matches produced per input binding and `work` the estimated
/// tuples examined per input binding (bucket size under an index probe,
/// full cardinality under a scan).
fn estimate_step(atom: &Atom, db: &Database, bound: &HashSet<&str>) -> (f64, f64) {
    let Some(rel) = db.relation(&atom.relation) else {
        return (0.0, 0.0);
    };
    let stats = rel.stats();
    let rows = f64::from(stats.rows());
    let mut sel = 1.0f64;
    let mut probe = false;
    let mut local: HashSet<&str> = HashSet::new();
    for (c, t) in atom.terms.iter().enumerate() {
        match t {
            Term::Const(l) => {
                sel *= stats.eq_selectivity(c, &lit_to_value(l));
                probe = true;
            }
            Term::Var(v) => {
                if bound.contains(v.as_str()) || local.contains(v.as_str()) {
                    sel *= stats.join_selectivity(c);
                    probe = true;
                } else {
                    local.insert(v);
                }
            }
            Term::Func(..) => return (0.0, 0.0),
        }
    }
    let out = rows * sel;
    let work = if probe { out.max(1.0) } else { rows.max(1.0) };
    (out, work)
}

/// Pick a cost-minimizing join order for `atoms` and return it together
/// with the cumulative cardinality estimate after each chosen atom.
/// Exhaustive subset DP up to [`DP_MAX_ATOMS`] atoms, greedy
/// cheapest-next-atom beyond; both are deterministic (ties keep the
/// earliest candidate).
fn cost_order(
    atoms: &[Atom],
    db: &Database,
    prebound: &HashSet<&str>,
) -> (Vec<usize>, Vec<f64>) {
    let n = atoms.len();
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    let order = if n <= DP_MAX_ATOMS { dp_order(atoms, db, prebound) } else {
        greedy_cost_order(atoms, db, prebound)
    };
    // replay the chosen order to record cumulative cardinality estimates
    let mut bound: HashSet<&str> = prebound.clone();
    let mut card = 1.0f64;
    let mut estimates = Vec::with_capacity(n);
    for &ai in &order {
        let (out, _) = estimate_step(&atoms[ai], db, &bound);
        card *= out;
        estimates.push(card);
        for v in atoms[ai].variables() {
            bound.insert(v);
        }
    }
    (order, estimates)
}

fn dp_order(atoms: &[Atom], db: &Database, prebound: &HashSet<&str>) -> Vec<usize> {
    let n = atoms.len();
    let full = (1usize << n) - 1;
    // per-subset: best (cost, cardinality, last atom, previous subset)
    let mut best: Vec<Option<(f64, f64, usize, usize)>> = vec![None; full + 1];
    best[0] = Some((0.0, 1.0, usize::MAX, 0));
    for mask in 0..=full {
        let Some((cost, card, ..)) = best[mask] else { continue };
        let mut bound: HashSet<&str> = prebound.clone();
        for (ai, atom) in atoms.iter().enumerate() {
            if mask & (1 << ai) != 0 {
                for v in atom.variables() {
                    bound.insert(v);
                }
            }
        }
        for (ai, atom) in atoms.iter().enumerate() {
            if mask & (1 << ai) != 0 {
                continue;
            }
            let (out, work) = estimate_step(atom, db, &bound);
            let next = mask | (1 << ai);
            let next_cost = cost + card.max(1.0) * work;
            let next_card = card * out;
            if best[next].is_none_or(|(c, ..)| next_cost < c) {
                best[next] = Some((next_cost, next_card, ai, mask));
            }
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut mask = full;
    while mask != 0 {
        let Some((_, _, last, prev)) = best[mask] else { break };
        order.push(last);
        mask = prev;
    }
    order.reverse();
    if order.len() != n {
        // unreachable in practice; fall back to source order defensively
        return (0..n).collect();
    }
    order
}

fn greedy_cost_order(atoms: &[Atom], db: &Database, prebound: &HashSet<&str>) -> Vec<usize> {
    let n = atoms.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    let mut bound: HashSet<&str> = prebound.clone();
    let mut card = 1.0f64;
    while !remaining.is_empty() {
        let mut pick = 0;
        let mut pick_cost = f64::INFINITY;
        let mut pick_out = 0.0;
        for (i, &ai) in remaining.iter().enumerate() {
            let (out, work) = estimate_step(&atoms[ai], db, &bound);
            let cost = card.max(1.0) * work;
            if cost < pick_cost {
                pick = i;
                pick_cost = cost;
                pick_out = out;
            }
        }
        let ai = remaining.remove(pick);
        card *= pick_out;
        for v in atoms[ai].variables() {
            bound.insert(v);
        }
        order.push(ai);
    }
    order
}

/// Driver intervals smaller than this per requested worker run
/// sequentially — the spawn/merge overhead would dominate.
const MIN_DRIVER_ROWS_PER_WORKER: usize = 8;
/// Chunks per worker: oversubscription so work stealing can smooth out
/// skewed chunks (one hot driver tuple fanning into a huge sub-join).
const CHUNKS_PER_WORKER: usize = 4;

/// Shared limit early-exit state: counts matches found in the completed
/// *prefix* of chunks. Once the prefix alone reaches the limit, chunks
/// after it can only produce matches that sort later than the limit-th
/// match, so workers skip them wholesale.
struct PrefixCount {
    inner: std::sync::Mutex<PrefixInner>,
    confirmed: std::sync::atomic::AtomicUsize,
}

struct PrefixInner {
    counts: Vec<Option<usize>>,
    next: usize,
    total: usize,
}

impl PrefixCount {
    fn new(chunks: usize) -> Self {
        PrefixCount {
            inner: std::sync::Mutex::new(PrefixInner {
                counts: vec![None; chunks],
                next: 0,
                total: 0,
            }),
            confirmed: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    fn confirmed(&self) -> usize {
        self.confirmed.load(std::sync::atomic::Ordering::Acquire)
    }

    fn complete(&self, chunk: usize, matches: usize) {
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        inner.counts[chunk] = Some(matches);
        while inner.next < inner.counts.len() {
            let Some(n) = inner.counts[inner.next] else { break };
            inner.total += n;
            inner.next += 1;
        }
        self.confirmed.store(inner.total, std::sync::atomic::Ordering::Release);
    }
}

/// Per-execution prefetched relation handles and index snapshots (one
/// `index()` cache lookup per atom instead of one per candidate binding).
struct ExecCtx<'a> {
    rels: Vec<Option<&'a Relation>>,
    indexes: Vec<Option<Arc<RelIndex>>>,
}

impl<'a> ExecCtx<'a> {
    fn prepare(plan: &CqPlan, db: &'a Database, opts: &ExecOptions<'_>) -> Self {
        let rels: Vec<Option<&Relation>> =
            plan.atoms.iter().map(|a| db.relation(&a.relation)).collect();
        let indexes = plan
            .atoms
            .iter()
            .zip(&rels)
            .map(|(a, rel)| match rel {
                Some(rel) if opts.use_indexes && !a.probe_cols.is_empty() => {
                    Some(rel.index(&a.probe_cols))
                }
                _ => None,
            })
            .collect();
        ExecCtx { rels, indexes }
    }
}

struct Walk<'p, 'c, 'o, 'r> {
    plan: &'p CqPlan,
    ctx: &'c ExecCtx<'c>,
    opts: &'o ExecOptions<'r>,
    out: &'o mut Vec<PlanMatch>,
    /// Reusable probe-key buffer: each depth clears and refills it right
    /// before its index probe (probes return positions borrowed from the
    /// index snapshot, so deeper recursion is free to reuse the buffer) —
    /// zero key allocations per candidate binding.
    key: Vec<Value>,
}

impl Walk<'_, '_, '_, '_> {
    /// Returns `Ok(true)` when the match limit was hit (stop unwinding).
    fn step(
        &mut self,
        depth: usize,
        scratch: &mut [Option<Value>],
        pos_acc: &mut Vec<u32>,
        gov: &mut Governor,
    ) -> Result<bool, ExecError> {
        if depth == self.plan.atoms.len() {
            let positions = match &self.plan.canon {
                Some(perm) => perm.iter().map(|&p| pos_acc[p]).collect(),
                None => pos_acc.clone(),
            };
            self.out.push(PlanMatch { binding: scratch.to_vec(), positions });
            return Ok(self.opts.limit.is_some_and(|l| self.out.len() >= l));
        }
        let ap = &self.plan.atoms[depth];
        let Some(rel) = self.ctx.rels[depth] else {
            return Ok(false);
        };
        let range = self.opts.ranges.map_or(AtomRange::Full, |r| r[depth]);
        let idx = self.ctx.indexes[depth].as_ref();
        let mut have_key = idx.is_some();
        if have_key {
            self.key.clear();
            for &c in &ap.probe_cols {
                match &ap.terms[c] {
                    SlotTerm::Const(v) => self.key.push(v.clone()),
                    SlotTerm::Var(s) => match &scratch[*s] {
                        Some(v) => self.key.push(v.clone()),
                        None => {
                            have_key = false;
                            break;
                        }
                    },
                }
            }
        }
        let mut trail: Vec<usize> = Vec::new();
        if let (true, Some(idx)) = (have_key, idx) {
            // positions-only probe against cached key hashes; tuples are
            // resolved through the backing relation's insertion-order slice
            let tuples = rel.tuples();
            for &pos in idx.probe(&self.key) {
                if !range.admits(pos) {
                    continue;
                }
                gov.step()?;
                let Some(tuple) = tuples.get(pos as usize) else {
                    continue;
                };
                let stop =
                    self.admit(ap, tuple, pos, depth, scratch, pos_acc, &mut trail, gov)?;
                if stop {
                    return Ok(true);
                }
            }
        } else {
            let tuples = rel.tuples();
            let (start, end) = range.interval(tuples.len());
            for (i, tuple) in tuples[start..end].iter().enumerate() {
                gov.step()?;
                let pos = (start + i) as u32;
                let stop =
                    self.admit(ap, tuple, pos, depth, scratch, pos_acc, &mut trail, gov)?;
                if stop {
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    /// Try to match `tuple` at `depth` and recurse; always unwinds the
    /// bindings this tuple introduced.
    #[allow(clippy::too_many_arguments)] // internal hot path, grouping would just re-spell the struct
    fn admit(
        &mut self,
        ap: &AtomPlan,
        tuple: &Tuple,
        pos: u32,
        depth: usize,
        scratch: &mut [Option<Value>],
        pos_acc: &mut Vec<u32>,
        trail: &mut Vec<usize>,
        gov: &mut Governor,
    ) -> Result<bool, ExecError> {
        let matched = try_match(ap, tuple, scratch, trail);
        let mut stop = false;
        if matched {
            pos_acc[depth] = pos;
            match self.step(depth + 1, scratch, pos_acc, gov) {
                Ok(s) => stop = s,
                Err(e) => {
                    for s in trail.drain(..) {
                        scratch[s] = None;
                    }
                    return Err(e);
                }
            }
        }
        for s in trail.drain(..) {
            scratch[s] = None;
        }
        Ok(stop)
    }
}

/// One plan atom, described: what [`CqPlan::explain`] reports per join
/// position.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomExplain {
    pub relation: String,
    /// Index of the originating atom in the caller's source list.
    pub source_index: usize,
    /// Terms in column order: `$n` for slot `n`, constants displayed.
    pub terms: Vec<String>,
    /// Columns bound (by constants or earlier atoms) when execution
    /// reaches this atom — the index-probe key.
    pub probe_cols: Vec<usize>,
    /// Relation cardinality in the database explained against.
    pub rows_total: usize,
    /// Tuples the per-atom [`AtomRange`] admits (equals `rows_total`
    /// without a range restriction).
    pub rows_admitted: usize,
    /// Planner estimate of the cumulative match cardinality after this
    /// atom — present only for cost-based plans. Comparing it against
    /// the observed cardinality is what drives adaptive re-optimization.
    pub est_rows: Option<u64>,
}

impl AtomExplain {
    /// Fraction of the relation the range restriction admits, in
    /// `[0, 1]`; `1.0` for an empty relation (nothing is excluded).
    pub fn selectivity(&self) -> f64 {
        if self.rows_total == 0 {
            1.0
        } else {
            self.rows_admitted as f64 / self.rows_total as f64
        }
    }
}

/// Structured description of a compiled plan: [`CqPlan::explain`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlanExplain {
    /// Relation names in chosen join order.
    pub join_order: Vec<String>,
    pub atoms: Vec<AtomExplain>,
    pub num_slots: usize,
    /// The conjunction contained a function term and matches nothing.
    pub unsat: bool,
}

impl PlanExplain {
    /// Render as a telemetry explain tree (stable field order).
    pub fn to_node(&self) -> mm_telemetry::ExplainNode {
        let mut node = mm_telemetry::ExplainNode::new("plan")
            .field("join_order", self.join_order.join(","))
            .field("num_slots", self.num_slots.to_string());
        if self.unsat {
            node.push_field("unsat", "true");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            let mut child =
                mm_telemetry::ExplainNode::new(format!("atom#{i}"))
                    .field("relation", a.relation.clone())
                    .field("source", a.source_index.to_string())
                    .field("terms", a.terms.join(","))
                    .field(
                        "probe_cols",
                        a.probe_cols
                            .iter()
                            .map(|c| c.to_string())
                            .collect::<Vec<_>>()
                            .join(","),
                    )
                    .field("rows", a.rows_total.to_string())
                    .field("admitted", a.rows_admitted.to_string());
            // appended only when present so plans without estimates
            // render byte-identically to the pre-planner text
            if let Some(est) = a.est_rows {
                child.push_field("est_rows", est.to_string());
            }
            node.push_child(child);
        }
        node
    }
}

/// Extend `scratch` so `ap` maps onto `tuple`; newly bound slots are
/// recorded on `trail` for the caller to unwind. Returns `false` on any
/// conflict (partial binds stay on the trail).
fn try_match(
    ap: &AtomPlan,
    tuple: &Tuple,
    scratch: &mut [Option<Value>],
    trail: &mut Vec<usize>,
) -> bool {
    let vals = tuple.values();
    if vals.len() != ap.terms.len() {
        return false;
    }
    for (c, term) in ap.terms.iter().enumerate() {
        match term {
            SlotTerm::Const(v) => {
                if v != &vals[c] {
                    return false;
                }
            }
            SlotTerm::Var(s) => match &scratch[*s] {
                Some(b) => {
                    if b != &vals[c] {
                        return false;
                    }
                }
                None => {
                    scratch[*s] = Some(vals[c].clone());
                    trail.push(*s);
                }
            },
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_guard::ExecBudget;
    use mm_instance::RelSchema;
    use mm_metamodel::DataType;

    fn db() -> Database {
        let mut db = Database::new("D");
        let mut r = mm_instance::Relation::new(RelSchema::of(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
        ]));
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            r.insert(Tuple::from([Value::Int(a), Value::Int(b)]));
        }
        db.insert_relation("E", r);
        db
    }

    fn run(plan: &CqPlan, table: &VarTable, db: &Database, opts: &ExecOptions<'_>) -> Vec<PlanMatch> {
        let mut gov = Governor::new(&ExecBudget::unbounded());
        let mut scratch = vec![None; table.len()];
        let mut out = Vec::new();
        plan.execute_governed(db, &mut scratch, opts, &mut gov, &mut out).unwrap();
        assert!(scratch.iter().all(Option::is_none), "scratch not restored");
        out
    }

    #[test]
    fn indexed_and_scan_paths_agree_including_order() {
        let db = db();
        let atoms = [Atom::vars("E", &["x", "y"]), Atom::vars("E", &["y", "z"])];
        let mut table = VarTable::new();
        let plan = CqPlan::compile(&atoms, &mut table, &db, &[]);
        let indexed = run(&plan, &table, &db, &ExecOptions::default());
        let scanned =
            run(&plan, &table, &db, &ExecOptions { use_indexes: false, ..Default::default() });
        assert_eq!(indexed.len(), 2);
        assert_eq!(indexed.len(), scanned.len());
        for (a, b) in indexed.iter().zip(&scanned) {
            assert_eq!(a.binding, b.binding);
            assert_eq!(a.positions, b.positions);
        }
    }

    #[test]
    fn ranges_restrict_to_delta_tuples() {
        let db = db();
        let atoms = [Atom::vars("E", &["x", "y"])];
        let mut table = VarTable::new();
        let plan = CqPlan::compile(&atoms, &mut table, &db, &[]);
        let delta = run(
            &plan,
            &table,
            &db,
            &ExecOptions { ranges: Some(&[AtomRange::AtOrAbove(2)]), ..Default::default() },
        );
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].positions, [2]);
        let old = run(
            &plan,
            &table,
            &db,
            &ExecOptions { ranges: Some(&[AtomRange::Below(2)]), ..Default::default() },
        );
        assert_eq!(old.len(), 2);
    }

    #[test]
    fn limit_short_circuits() {
        let db = db();
        let atoms = [Atom::vars("E", &["x", "y"])];
        let mut table = VarTable::new();
        let plan = CqPlan::compile(&atoms, &mut table, &db, &[]);
        let one = run(&plan, &table, &db, &ExecOptions { limit: Some(1), ..Default::default() });
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].positions, [0]);
    }

    #[test]
    fn prebound_slot_enables_probe_and_seeded_run() {
        let db = db();
        let atoms = [Atom::vars("E", &["x", "y"])];
        let mut table = VarTable::new();
        let x = table.intern("x");
        let plan = CqPlan::compile(&atoms, &mut table, &db, &[x]);
        let mut gov = Governor::new(&ExecBudget::unbounded());
        let mut scratch = vec![None; table.len()];
        scratch[x] = Some(Value::Int(2));
        let mut out = Vec::new();
        plan.execute_governed(&db, &mut scratch, &ExecOptions::default(), &mut gov, &mut out)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].binding[table.slot("y").unwrap()], Some(Value::Int(3)));
        // only the probed bucket was metered, not the whole relation
        assert_eq!(gov.steps_consumed(), 1);
        assert_eq!(scratch[x], Some(Value::Int(2)), "seed preserved");
    }

    fn chain_db(n: i64) -> Database {
        let mut db = Database::new("D");
        let mut r = mm_instance::Relation::new(RelSchema::of(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
        ]));
        for i in 0..n {
            r.insert(Tuple::from([Value::Int(i), Value::Int(i + 1)]));
        }
        db.insert_relation("E", r);
        db
    }

    #[test]
    fn parallel_execution_is_bit_identical_to_sequential() {
        let db = chain_db(256);
        let atoms = [Atom::vars("E", &["x", "y"]), Atom::vars("E", &["y", "z"])];
        let mut table = VarTable::new();
        let plan = CqPlan::compile(&atoms, &mut table, &db, &[]);
        for limit in [None, Some(1), Some(7), Some(10_000)] {
            let opts = ExecOptions { limit, ..Default::default() };
            let seq = run(&plan, &table, &db, &opts);
            for threads in [2, 4, 8] {
                let mut gov = Governor::new(&ExecBudget::unbounded());
                let mut scratch = vec![None; table.len()];
                let mut par = Vec::new();
                plan.execute_parallel(&db, &mut scratch, &opts, threads, &mut gov, &mut par)
                    .unwrap();
                assert_eq!(par.len(), seq.len(), "threads={threads} limit={limit:?}");
                for (a, b) in par.iter().zip(&seq) {
                    assert_eq!(a.binding, b.binding);
                    assert_eq!(a.positions, b.positions);
                }
            }
        }
    }

    #[test]
    fn parallel_step_totals_match_sequential_without_limit() {
        let db = chain_db(256);
        let atoms = [Atom::vars("E", &["x", "y"]), Atom::vars("E", &["y", "z"])];
        let mut table = VarTable::new();
        let plan = CqPlan::compile(&atoms, &mut table, &db, &[]);
        let opts = ExecOptions::default();
        let mut seq_gov = Governor::new(&ExecBudget::unbounded());
        let mut scratch = vec![None; table.len()];
        let mut seq = Vec::new();
        plan.execute_governed(&db, &mut scratch, &opts, &mut seq_gov, &mut seq).unwrap();
        let mut par_gov = Governor::new(&ExecBudget::unbounded());
        let mut par = Vec::new();
        plan.execute_parallel(&db, &mut scratch, &opts, 4, &mut par_gov, &mut par).unwrap();
        assert_eq!(par_gov.steps_consumed(), seq_gov.steps_consumed());
    }

    #[test]
    fn costed_plan_reorders_yet_matches_canonical_enumeration() {
        // Hub(h, x): h is a fat hub (one value covers most rows); Pick(h)
        // with a selective constant. Greedy (size-ordered) starts at Pick
        // only by luck of size — make Pick the *largest* so greedy starts
        // at Hub, while the cost model starts at the selective constant.
        let mut db = Database::new("D");
        let mut hub = mm_instance::Relation::new(RelSchema::of(&[
            ("h", DataType::Int),
            ("x", DataType::Int),
        ]));
        for i in 0..40 {
            hub.insert(Tuple::from([Value::Int(i % 2), Value::Int(i)]));
        }
        let mut pick = mm_instance::Relation::new(RelSchema::of(&[
            ("h", DataType::Int),
            ("k", DataType::Int),
        ]));
        for i in 0..50 {
            pick.insert(Tuple::from([Value::Int(i + 10), Value::Int(i)]));
        }
        pick.insert(Tuple::from([Value::Int(0), Value::Int(7)]));
        db.insert_relation("Hub", hub);
        db.insert_relation("Pick", pick);
        let atoms = [
            Atom::vars("Hub", &["h", "x"]),
            Atom::new("Pick", vec![Term::var("h"), Term::Const(Lit::Int(7))]),
        ];
        let mut gt = VarTable::new();
        let greedy = CqPlan::compile(&atoms, &mut gt, &db, &[]);
        let mut ct = VarTable::new();
        let costed = CqPlan::compile_costed(&atoms, &mut ct, &db, &[]);
        assert!(costed.is_costed());
        assert_eq!(greedy.source_order(), &[0, 1], "greedy starts at the smaller Hub");
        assert_eq!(costed.source_order(), &[1, 0], "cost model starts at the selective Pick");
        let base = run(&greedy, &gt, &db, &ExecOptions::default());
        let mut fast = run(&costed, &ct, &db, &ExecOptions::default());
        fast.sort_by(|a, b| a.positions.cmp(&b.positions));
        assert_eq!(base.len(), fast.len());
        // same var names intern to the same slots in both tables (atom
        // scan order differs but h/x cover both), so bindings compare
        for (a, b) in base.iter().zip(&fast) {
            assert_eq!(a.positions, b.positions);
            for v in ["h", "x"] {
                assert_eq!(a.binding[gt.slot(v).unwrap()], b.binding[ct.slot(v).unwrap()]);
            }
        }
    }

    #[test]
    fn function_terms_make_the_plan_unsatisfiable() {
        let db = db();
        let atoms = [Atom::new(
            "E",
            vec![Term::Func("f".into(), vec![]), Term::var("y")],
        )];
        let mut table = VarTable::new();
        let plan = CqPlan::compile(&atoms, &mut table, &db, &[]);
        assert!(run(&plan, &table, &db, &ExecOptions::default()).is_empty());
    }
}
