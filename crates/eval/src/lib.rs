//! The mapping-runtime substrate: executing algebra expressions and
//! conjunctive queries over databases.
//!
//! §5 of the paper promotes the runtime that executes mappings to a
//! first-class model management component. This crate is the execution
//! core every runtime service builds on: a materializing relational
//! algebra evaluator (with Entity SQL-style `IS OF` type tests), a
//! conjunctive-query/homomorphism engine used by the chase and by tgd
//! checking, and view materialization/unfolding.

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod cq;
pub mod engine;
pub mod plan;
pub mod view;

pub use cq::{
    find_homomorphisms, find_homomorphisms_costed, find_homomorphisms_governed,
    find_homomorphisms_naive, find_homomorphisms_parallel, find_homomorphisms_traced, Binding,
};
pub use plan::{
    AtomExplain, AtomRange, CqPlan, ExecOptions, PlanExplain, PlanMatch, SlotTerm, VarTable,
    DP_MAX_ATOMS,
};
pub use engine::{eval, eval_governed, EvalError};
pub use view::{materialize_views, materialize_views_governed, unfold_query};
