//! Materializing evaluator for the relational algebra.

use mm_expr::{CmpOp, Expr, ExprError, Func, Lit, Predicate, Scalar};
use mm_guard::{ExecBudget, ExecError, Governor};
use mm_instance::{Database, RelSchema, Relation, Tuple, Value};
use mm_metamodel::{Schema, TYPE_ATTR};
use std::collections::HashMap;
use std::fmt;

/// Errors raised during evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// Static analysis of the expression failed.
    Static(ExprError),
    /// The database lacks a relation the schema promises.
    MissingRelation(String),
    /// Governance failure (budget, cancellation) or malformed
    /// caller-supplied expression caught at runtime.
    Exec(ExecError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Static(e) => write!(f, "static error: {e}"),
            EvalError::MissingRelation(r) => write!(f, "missing relation `{r}`"),
            EvalError::Exec(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<ExprError> for EvalError {
    fn from(e: ExprError) -> Self {
        EvalError::Static(e)
    }
}

impl From<ExecError> for EvalError {
    fn from(e: ExecError) -> Self {
        EvalError::Exec(e)
    }
}

/// Resolve a column position or report the malformed reference as a
/// typed error (the static checker normally rules this out, but the
/// expression is caller-supplied data and must not panic the engine).
fn position_or_err(schema: &RelSchema, column: &str, context: &str) -> Result<usize, EvalError> {
    schema.position(column).ok_or_else(|| {
        EvalError::Exec(ExecError::malformed(format!(
            "column '{column}' not present in input of {context}"
        )))
    })
}

fn lit_to_value(l: &Lit) -> Value {
    match l {
        Lit::Int(v) => Value::Int(*v),
        Lit::Double(v) => Value::Double(*v),
        Lit::Bool(v) => Value::Bool(*v),
        Lit::Text(v) => Value::text(v.as_str()),
        Lit::Date(v) => Value::Date(*v),
        Lit::Null => Value::Null,
    }
}

/// A resolved row context: column positions by name.
struct Row<'a> {
    positions: &'a HashMap<String, usize>,
    tuple: &'a Tuple,
}

fn eval_scalar(s: &Scalar, row: &Row<'_>, schema: &Schema) -> Value {
    match s {
        Scalar::Col(c) => {
            let i = row.positions[c.as_str()];
            row.tuple.values()[i].clone()
        }
        Scalar::Lit(l) => lit_to_value(l),
        Scalar::Func(f, args) => {
            let vals: Vec<Value> = args.iter().map(|a| eval_scalar(a, row, schema)).collect();
            eval_func(*f, &vals)
        }
        Scalar::Case { branches, otherwise } => {
            for (p, v) in branches {
                if eval_predicate(p, row, schema) {
                    return eval_scalar(v, row, schema);
                }
            }
            eval_scalar(otherwise, row, schema)
        }
    }
}

fn eval_func(f: Func, vals: &[Value]) -> Value {
    match f {
        Func::Concat => {
            if vals.iter().any(|v| matches!(v, Value::Null)) {
                return Value::Null;
            }
            let mut s = String::new();
            for v in vals {
                match v.as_text() {
                    Some(t) => s.push_str(t),
                    None => s.push_str(&v.to_string()),
                }
            }
            Value::text(s)
        }
        Func::Add | Func::Sub | Func::Mul => {
            let op: fn(f64, f64) -> f64 = match f {
                Func::Add => |a, b| a + b,
                Func::Sub => |a, b| a - b,
                _ => |a, b| a * b,
            };
            let mut acc: Option<Value> = None;
            for v in vals {
                acc = Some(match (acc, v) {
                    (None, v) => v.clone(),
                    (Some(Value::Int(a)), Value::Int(b)) => {
                        Value::Int(op(a as f64, *b as f64) as i64)
                    }
                    (Some(a), b) => match (num(&a), num(b)) {
                        (Some(x), Some(y)) => Value::Double(op(x, y)),
                        _ => return Value::Null,
                    },
                });
            }
            acc.unwrap_or(Value::Null)
        }
        Func::Coalesce => vals
            .iter()
            .find(|v| !matches!(v, Value::Null))
            .cloned()
            .unwrap_or(Value::Null),
        Func::Upper | Func::Lower => match vals.first() {
            Some(Value::Null) | None => Value::Null,
            Some(v) => match v.as_text() {
                Some(t) => Value::text(if f == Func::Upper {
                    t.to_uppercase()
                } else {
                    t.to_lowercase()
                }),
                None => v.clone(),
            },
        },
    }
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Double(d) => Some(*d),
        _ => None,
    }
}

fn eval_predicate(p: &Predicate, row: &Row<'_>, schema: &Schema) -> bool {
    match p {
        Predicate::Cmp { op, left, right } => {
            let l = eval_scalar(left, row, schema);
            let r = eval_scalar(right, row, schema);
            // SQL-style: comparisons with NULL are not true. Labeled nulls
            // compare by label under Eq/Ne (chase semantics) but are
            // incomparable under order operators.
            if l.is_null() || r.is_null() {
                return false;
            }
            match op {
                CmpOp::Eq => l == r,
                CmpOp::Ne => l != r,
                _ if l.is_labeled() || r.is_labeled() => false,
                CmpOp::Lt => l < r,
                CmpOp::Le => l <= r,
                CmpOp::Gt => l > r,
                CmpOp::Ge => l >= r,
            }
        }
        Predicate::And(a, b) => {
            eval_predicate(a, row, schema) && eval_predicate(b, row, schema)
        }
        Predicate::Or(a, b) => {
            eval_predicate(a, row, schema) || eval_predicate(b, row, schema)
        }
        Predicate::Not(q) => !eval_predicate(q, row, schema),
        Predicate::IsNull(s) => eval_scalar(s, row, schema).is_null(),
        Predicate::IsOf { ty, only } => {
            let Some(&i) = row.positions.get(TYPE_ATTR) else { return false };
            match row.tuple.values()[i].as_text() {
                Some(actual) => {
                    if *only {
                        actual == ty
                    } else {
                        schema.is_subtype(actual, ty)
                    }
                }
                None => false,
            }
        }
        Predicate::True => true,
        Predicate::False => false,
    }
}

fn positions_of(schema: &RelSchema) -> HashMap<String, usize> {
    schema
        .attributes
        .iter()
        .enumerate()
        .map(|(i, a)| (a.name.clone(), i))
        .collect()
}

/// Evaluate `expr` against `db`, returning a materialized relation.
///
/// The expression is statically checked against `schema` first, so
/// evaluation itself can index by position without per-row checks.
/// Ungoverned: runs under an unbounded budget (still panic-free).
pub fn eval(expr: &Expr, schema: &Schema, db: &Database) -> Result<Relation, EvalError> {
    let mut gov = Governor::new(&ExecBudget::unbounded());
    eval_governed(expr, schema, db, &mut gov)
}

/// Evaluate `expr` under an execution governor: every produced tuple is
/// metered as a row and every processed input tuple as a step, so
/// runaway products/joins trip the budget (or observe cancellation)
/// instead of exhausting memory.
pub fn eval_governed(
    expr: &Expr,
    schema: &Schema,
    db: &Database,
    gov: &mut Governor,
) -> Result<Relation, EvalError> {
    // Entry safepoint: a pre-cancelled token or expired deadline trips
    // before any work, regardless of input size.
    gov.check_now()?;
    let out_attrs = mm_expr::output_schema(expr, schema)?;
    let out_schema = RelSchema::new(out_attrs);
    let tuples = eval_rows(expr, schema, db, gov)?;
    Ok(Relation::with_tuples(out_schema, tuples))
}

/// Internal: evaluate to a bag of tuples (dedup happens on
/// materialization, except where set semantics is required mid-pipeline).
fn eval_rows(
    expr: &Expr,
    schema: &Schema,
    db: &Database,
    gov: &mut Governor,
) -> Result<Vec<Tuple>, EvalError> {
    match expr {
        Expr::Base(name) => {
            let rel = db
                .relation(name)
                .ok_or_else(|| EvalError::MissingRelation(name.clone()))?;
            gov.steps_n(rel.len() as u64)?;
            Ok(rel.iter().cloned().collect())
        }
        Expr::Literal { rows, .. } => Ok(rows
            .iter()
            .map(|r| Tuple::new(r.iter().map(lit_to_value).collect()))
            .collect()),
        Expr::Project { input, columns } => {
            let in_attrs = mm_expr::output_schema(input, schema)?;
            let in_schema = RelSchema::new(in_attrs);
            let positions: Vec<usize> = columns
                .iter()
                .map(|c| position_or_err(&in_schema, c, "projection"))
                .collect::<Result<_, _>>()?;
            let rows = eval_rows(input, schema, db, gov)?;
            gov.steps_n(rows.len() as u64)?;
            Ok(rows.iter().map(|t| t.project(&positions)).collect())
        }
        Expr::Select { input, predicate } => {
            let in_attrs = mm_expr::output_schema(input, schema)?;
            let in_schema = RelSchema::new(in_attrs);
            let pos = positions_of(&in_schema);
            let rows = eval_rows(input, schema, db, gov)?;
            gov.steps_n(rows.len() as u64)?;
            Ok(rows
                .into_iter()
                .filter(|t| eval_predicate(predicate, &Row { positions: &pos, tuple: t }, schema))
                .collect())
        }
        Expr::Join { left, right, on } => {
            hash_join(expr, left, right, on, schema, db, false, gov)
        }
        Expr::LeftJoin { left, right, on } => {
            hash_join(expr, left, right, on, schema, db, true, gov)
        }
        Expr::Product { left, right } => {
            let l = eval_rows(left, schema, db, gov)?;
            let r = eval_rows(right, schema, db, gov)?;
            let mut out = Vec::with_capacity(l.len().saturating_mul(r.len()));
            for lt in &l {
                for rt in &r {
                    gov.row()?;
                    out.push(lt.concat(rt));
                }
            }
            Ok(out)
        }
        Expr::Union { left, right, all } => {
            let mut l = eval_rows(left, schema, db, gov)?;
            let r = eval_rows(right, schema, db, gov)?;
            l.extend(r);
            if !all {
                let mut seen = std::collections::HashSet::with_capacity(l.len());
                l.retain(|t| seen.insert(t.clone()));
            }
            Ok(l)
        }
        Expr::Diff { left, right } => {
            let l = eval_rows(left, schema, db, gov)?;
            let r: std::collections::HashSet<Tuple> =
                eval_rows(right, schema, db, gov)?.into_iter().collect();
            let mut seen = std::collections::HashSet::new();
            Ok(l.into_iter()
                .filter(|t| !r.contains(t) && seen.insert(t.clone()))
                .collect())
        }
        Expr::Rename { input, .. } => eval_rows(input, schema, db, gov),
        Expr::Extend { input, column: _, scalar } => {
            let in_attrs = mm_expr::output_schema(input, schema)?;
            let in_schema = RelSchema::new(in_attrs);
            let pos = positions_of(&in_schema);
            let rows = eval_rows(input, schema, db, gov)?;
            gov.steps_n(rows.len() as u64)?;
            Ok(rows
                .into_iter()
                .map(|t| {
                    let v = eval_scalar(scalar, &Row { positions: &pos, tuple: &t }, schema);
                    let mut vals = t.values().to_vec();
                    vals.push(v);
                    Tuple::new(vals)
                })
                .collect())
        }
        Expr::Distinct { input } => {
            let rows = eval_rows(input, schema, db, gov)?;
            let mut seen = std::collections::HashSet::with_capacity(rows.len());
            Ok(rows.into_iter().filter(|t| seen.insert(t.clone())).collect())
        }
        Expr::Aggregate { input, group_by, aggregates } => {
            let in_attrs = mm_expr::output_schema(input, schema)?;
            let in_schema = RelSchema::new(in_attrs);
            let group_pos: Vec<usize> = group_by
                .iter()
                .map(|c| position_or_err(&in_schema, c, "GROUP BY"))
                .collect::<Result<_, _>>()?;
            let agg_pos: Vec<Option<usize>> = aggregates
                .iter()
                .map(|a| {
                    a.column
                        .as_ref()
                        .map(|c| position_or_err(&in_schema, c, "aggregate"))
                        .transpose()
                })
                .collect::<Result<_, _>>()?;
            let rows = eval_rows(input, schema, db, gov)?;
            gov.steps_n(rows.len() as u64)?;
            // group preserving first-seen order
            let mut order: Vec<Tuple> = Vec::new();
            let mut groups: HashMap<Tuple, Vec<&Tuple>> = HashMap::new();
            for t in &rows {
                let key = t.project(&group_pos);
                if !groups.contains_key(&key) {
                    order.push(key.clone());
                }
                groups.entry(key).or_default().push(t);
            }
            let mut out = Vec::with_capacity(order.len());
            for key in order {
                let members = &groups[&key];
                let mut vals = key.values().to_vec();
                for (spec, pos) in aggregates.iter().zip(&agg_pos) {
                    vals.push(eval_aggregate(spec.func, *pos, members)?);
                }
                out.push(Tuple::new(vals));
            }
            Ok(out)
        }
    }
}

/// Compute one aggregate over a group. NULLs are skipped (SQL semantics);
/// an all-NULL (or empty) group yields NULL except for COUNT. A SUM /
/// AVG / MIN / MAX spec without a column is caller-supplied malformed
/// data and reports a typed error rather than panicking.
fn eval_aggregate(
    func: mm_expr::algebra::AggFunc,
    pos: Option<usize>,
    members: &[&Tuple],
) -> Result<Value, EvalError> {
    use mm_expr::algebra::AggFunc;
    let need_col = |pos: Option<usize>| {
        pos.ok_or_else(|| {
            EvalError::Exec(ExecError::malformed(format!(
                "aggregate {func:?} requires a column argument"
            )))
        })
    };
    Ok(match func {
        AggFunc::Count => match pos {
            None => Value::Int(members.len() as i64),
            Some(i) => Value::Int(
                members.iter().filter(|t| !t.values()[i].is_null()).count() as i64,
            ),
        },
        AggFunc::Sum | AggFunc::Avg => {
            let i = need_col(pos)?;
            let mut sum = 0f64;
            let mut n = 0usize;
            let mut all_int = true;
            for t in members {
                match &t.values()[i] {
                    Value::Int(v) => {
                        sum += *v as f64;
                        n += 1;
                    }
                    Value::Double(v) => {
                        sum += v;
                        n += 1;
                        all_int = false;
                    }
                    _ => {}
                }
            }
            if n == 0 {
                Value::Null
            } else if func == AggFunc::Avg {
                Value::Double(sum / n as f64)
            } else if all_int {
                Value::Int(sum as i64)
            } else {
                Value::Double(sum)
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let i = need_col(pos)?;
            let mut best: Option<Value> = None;
            for t in members {
                let v = &t.values()[i];
                if v.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => v.clone(),
                    Some(b) => {
                        let keep_new = if func == AggFunc::Min { v < &b } else { v > &b };
                        if keep_new {
                            v.clone()
                        } else {
                            b
                        }
                    }
                });
            }
            best.unwrap_or(Value::Null)
        }
    })
}

#[allow(clippy::too_many_arguments)]
fn hash_join(
    _expr: &Expr,
    left: &Expr,
    right: &Expr,
    on: &[(String, String)],
    schema: &Schema,
    db: &Database,
    outer: bool,
    gov: &mut Governor,
) -> Result<Vec<Tuple>, EvalError> {
    let l_schema = RelSchema::new(mm_expr::output_schema(left, schema)?);
    let r_schema = RelSchema::new(mm_expr::output_schema(right, schema)?);
    let l_keys: Vec<usize> = on
        .iter()
        .map(|(a, _)| position_or_err(&l_schema, a, "join (left side)"))
        .collect::<Result<_, _>>()?;
    let r_keys: Vec<usize> = on
        .iter()
        .map(|(_, b)| position_or_err(&r_schema, b, "join (right side)"))
        .collect::<Result<_, _>>()?;
    // columns of the right side that survive (non-join columns)
    let keep_right: Vec<usize> = (0..r_schema.arity())
        .filter(|i| !r_keys.contains(i))
        .collect();

    let l_rows = eval_rows(left, schema, db, gov)?;
    let r_rows = eval_rows(right, schema, db, gov)?;

    // build on the right side
    let mut table: HashMap<Tuple, Vec<&Tuple>> = HashMap::with_capacity(r_rows.len());
    for t in &r_rows {
        gov.step()?;
        let key = t.project(&r_keys);
        // SQL join semantics: NULL keys never match
        if key.values().iter().any(Value::is_null) {
            continue;
        }
        table.entry(key).or_default().push(t);
    }

    let mut out = Vec::new();
    for lt in &l_rows {
        gov.step()?;
        let key = lt.project(&l_keys);
        let probe = if key.values().iter().any(Value::is_null) {
            None
        } else {
            table.get(&key)
        };
        match probe {
            Some(matches) => {
                for rt in matches {
                    gov.row()?;
                    let mut vals = lt.values().to_vec();
                    for &i in &keep_right {
                        vals.push(rt.values()[i].clone());
                    }
                    out.push(Tuple::new(vals));
                }
            }
            None if outer => {
                let mut vals = lt.values().to_vec();
                vals.extend(std::iter::repeat_n(Value::Null, keep_right.len()));
                out.push(Tuple::new(vals));
            }
            None => {}
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_metamodel::{DataType, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new("S")
            .relation("Empl", &[("EID", DataType::Int), ("Name", DataType::Text), ("AID", DataType::Int)])
            .relation_nullable("Addr", &[("AID", DataType::Int, false), ("City", DataType::Text, true)])
            .entity("Person", &[("Id", DataType::Int), ("Name", DataType::Text)])
            .entity_sub("Employee", "Person", &[("Dept", DataType::Text)])
            .build()
            .unwrap()
    }

    fn db() -> Database {
        let s = schema();
        let mut db = Database::empty_of(&s);
        db.insert("Empl", Tuple::from([Value::Int(1), Value::text("ann"), Value::Int(10)]));
        db.insert("Empl", Tuple::from([Value::Int(2), Value::text("bob"), Value::Int(20)]));
        db.insert("Empl", Tuple::from([Value::Int(3), Value::text("cyd"), Value::Int(99)]));
        db.insert("Addr", Tuple::from([Value::Int(10), Value::text("rome")]));
        db.insert("Addr", Tuple::from([Value::Int(20), Value::text("oslo")]));
        db.insert_entity("Person", "Person", vec![Value::Int(7), Value::text("pat")]);
        db.insert_entity(
            "Employee",
            "Employee",
            vec![Value::Int(8), Value::text("eve"), Value::text("hr")],
        );
        // Employee also appears in Person's set with its full Person layout
        db.insert_entity("Person", "Employee", vec![Value::Int(8), Value::text("eve")]);
        db
    }

    fn ints(rel: &Relation, col: &str) -> Vec<i64> {
        let i = rel.schema.position(col).unwrap();
        let mut v: Vec<i64> = rel
            .iter()
            .map(|t| match &t.values()[i] {
                Value::Int(x) => *x,
                other => panic!("not an int: {other}"),
            })
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn base_scan() {
        let r = eval(&Expr::base("Empl"), &schema(), &db()).unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn select_with_predicate() {
        let e = Expr::base("Empl").select(Predicate::col_eq_lit("Name", "bob"));
        let r = eval(&e, &schema(), &db()).unwrap();
        assert_eq!(ints(&r, "EID"), [2]);
    }

    #[test]
    fn inner_join_drops_unmatched() {
        let e = Expr::base("Empl").join(Expr::base("Addr"), &[("AID", "AID")]);
        let r = eval(&e, &schema(), &db()).unwrap();
        assert_eq!(ints(&r, "EID"), [1, 2]);
        let names: Vec<&str> = r.schema.names().collect();
        assert_eq!(names, ["EID", "Name", "AID", "City"]);
    }

    #[test]
    fn left_join_pads_with_null() {
        let e = Expr::base("Empl").left_join(Expr::base("Addr"), &[("AID", "AID")]);
        let r = eval(&e, &schema(), &db()).unwrap();
        assert_eq!(r.len(), 3);
        let city = r.schema.position("City").unwrap();
        let eid = r.schema.position("EID").unwrap();
        let unmatched = r
            .iter()
            .find(|t| t.values()[eid] == Value::Int(3))
            .unwrap();
        assert_eq!(unmatched.values()[city], Value::Null);
    }

    #[test]
    fn null_join_keys_never_match() {
        let s = schema();
        let mut d = db();
        d.insert("Addr", Tuple::from([Value::Int(30), Value::Null]));
        // join Addr to itself on City: NULL city must not match NULL city
        let e = Expr::base("Addr")
            .rename(&[("AID", "A1")])
            .join(Expr::base("Addr").rename(&[("AID", "A2"), ("City", "City")]), &[("City", "City")]);
        let r = eval(&e, &s, &d).unwrap();
        // rome-rome and oslo-oslo only
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn projection_deduplicates_on_materialize() {
        let e = Expr::base("Addr").project(&["AID"]).union(Expr::base("Addr").project(&["AID"]));
        let r = eval(&e, &schema(), &db()).unwrap();
        assert_eq!(ints(&r, "AID"), [10, 20]);
    }

    #[test]
    fn union_all_is_deduped_only_at_materialization() {
        // internal bag semantics: union all of the same relation twice has
        // 4 rows mid-pipeline, but a materialized Relation is a set
        let e = Expr::base("Addr").union_all(Expr::base("Addr"));
        let mut gov = Governor::new(&ExecBudget::unbounded());
        let rows = eval_rows(&e, &schema(), &db(), &mut gov).unwrap();
        assert_eq!(rows.len(), 4);
        let r = eval(&e, &schema(), &db()).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn diff_removes_matching() {
        let all = Expr::base("Empl").project(&["EID"]);
        let some = Expr::base("Empl")
            .select(Predicate::col_eq_lit("EID", 1i64))
            .project(&["EID"]);
        let r = eval(&all.diff(some), &schema(), &db()).unwrap();
        assert_eq!(ints(&r, "EID"), [2, 3]);
    }

    #[test]
    fn product_with_literal_constant() {
        let e = Expr::base("Addr").product(Expr::literal_row(&["Country"], vec![Lit::text("US")]));
        let r = eval(&e, &schema(), &db()).unwrap();
        assert_eq!(r.len(), 2);
        let c = r.schema.position("Country").unwrap();
        assert!(r.iter().all(|t| t.values()[c] == Value::text("US")));
    }

    #[test]
    fn extend_computes_scalar() {
        let e = Expr::base("Empl").extend(
            "Tag",
            Scalar::Func(Func::Concat, vec![Scalar::col("Name"), Scalar::lit("!")]),
        );
        let r = eval(&e, &schema(), &db()).unwrap();
        let tag = r.schema.position("Tag").unwrap();
        assert!(r.iter().any(|t| t.values()[tag] == Value::text("ann!")));
    }

    #[test]
    fn is_of_respects_subtyping() {
        let s = schema();
        let d = db();
        let all = Expr::base("Person")
            .select(Predicate::IsOf { ty: "Person".into(), only: false });
        assert_eq!(eval(&all, &s, &d).unwrap().len(), 2);
        let only_person = Expr::base("Person")
            .select(Predicate::IsOf { ty: "Person".into(), only: true });
        assert_eq!(eval(&only_person, &s, &d).unwrap().len(), 1);
        let employees = Expr::base("Person")
            .select(Predicate::IsOf { ty: "Employee".into(), only: false });
        assert_eq!(eval(&employees, &s, &d).unwrap().len(), 1);
    }

    #[test]
    fn case_scalar_in_projection() {
        let e = Expr::base("Empl").extend(
            "Size",
            Scalar::Case {
                branches: vec![(
                    Predicate::Cmp {
                        op: CmpOp::Lt,
                        left: Scalar::col("EID"),
                        right: Scalar::lit(3i64),
                    },
                    Scalar::lit("small"),
                )],
                otherwise: Box::new(Scalar::lit("big")),
            },
        );
        let r = eval(&e, &schema(), &db()).unwrap();
        let sz = r.schema.position("Size").unwrap();
        let bigs = r.iter().filter(|t| t.values()[sz] == Value::text("big")).count();
        assert_eq!(bigs, 1);
    }

    #[test]
    fn null_comparisons_are_false() {
        let s = schema();
        let mut d = db();
        d.insert("Addr", Tuple::from([Value::Int(30), Value::Null]));
        let e = Expr::base("Addr").select(Predicate::col_eq_lit("City", "rome"));
        assert_eq!(eval(&e, &s, &d).unwrap().len(), 1);
        let ne = Expr::base("Addr").select(
            Predicate::col_eq_lit("City", "rome").negate(),
        );
        // NULL <> 'rome' is not true in SQL semantics
        assert_eq!(eval(&ne, &s, &d).unwrap().len(), 1);
    }

    #[test]
    fn is_null_predicate() {
        let s = schema();
        let mut d = db();
        d.insert("Addr", Tuple::from([Value::Int(30), Value::Null]));
        let e = Expr::base("Addr").select(Predicate::IsNull(Scalar::col("City")));
        assert_eq!(eval(&e, &s, &d).unwrap().len(), 1);
    }

    #[test]
    fn missing_relation_is_runtime_error() {
        let s = schema();
        let d = Database::new("empty");
        assert_eq!(
            eval(&Expr::base("Empl"), &s, &d),
            Err(EvalError::MissingRelation("Empl".into()))
        );
    }

    #[test]
    fn coalesce_and_arithmetic() {
        let e = Expr::base("Empl")
            .extend("E2", Scalar::Func(Func::Add, vec![Scalar::col("EID"), Scalar::lit(100i64)]));
        let r = eval(&e, &schema(), &db()).unwrap();
        assert_eq!(ints(&r, "E2"), [101, 102, 103]);
        let c = Scalar::Func(Func::Coalesce, vec![Scalar::Lit(Lit::Null), Scalar::lit(5i64)]);
        let e2 = Expr::base("Addr").extend("C", c);
        let r2 = eval(&e2, &schema(), &db()).unwrap();
        assert_eq!(ints(&r2, "C"), [5, 5]);
    }

    #[test]
    fn aggregate_groups_count_and_sum() {
        use mm_expr::{AggFunc, AggSpec};
        let s = schema();
        let d = db();
        // group employees by AID, count them and sum their EIDs
        let e = Expr::base("Empl").aggregate(
            &["AID"],
            vec![AggSpec::count("n"), AggSpec::of(AggFunc::Sum, "EID", "total")],
        );
        let r = eval(&e, &s, &d).unwrap();
        assert_eq!(r.len(), 3); // AIDs 10, 20, 99
        let names: Vec<&str> = r.schema.names().collect();
        assert_eq!(names, ["AID", "n", "total"]);
        let aid = r.schema.position("AID").unwrap();
        let n = r.schema.position("n").unwrap();
        for t in r.iter() {
            assert_eq!(t.values()[n], Value::Int(1), "each AID occurs once");
            assert!(matches!(t.values()[aid], Value::Int(_)));
        }
    }

    #[test]
    fn aggregate_min_max_avg_and_null_handling() {
        use mm_expr::{AggFunc, AggSpec};
        let s = schema();
        let mut d = db();
        d.insert("Addr", Tuple::from([Value::Int(30), Value::Null]));
        // global (no group-by) aggregates over Addr.AID
        let e = Expr::base("Addr").aggregate(
            &[],
            vec![
                AggSpec::of(AggFunc::Min, "AID", "lo"),
                AggSpec::of(AggFunc::Max, "AID", "hi"),
                AggSpec::of(AggFunc::Avg, "AID", "mean"),
                AggSpec::of(AggFunc::Count, "City", "cities"),
                AggSpec::count("rows"),
            ],
        );
        let r = eval(&e, &s, &d).unwrap();
        assert_eq!(r.len(), 1);
        let row = r.iter().next().unwrap();
        assert_eq!(row.values()[0], Value::Int(10));
        assert_eq!(row.values()[1], Value::Int(30));
        assert_eq!(row.values()[2], Value::Double(20.0));
        // COUNT(City) skips the NULL city; COUNT(*) does not
        assert_eq!(row.values()[3], Value::Int(2));
        assert_eq!(row.values()[4], Value::Int(3));
    }

    #[test]
    fn aggregate_over_empty_input() {
        use mm_expr::{AggFunc, AggSpec};
        let s = schema();
        let d = Database::empty_of(&s);
        // grouped: no groups at all
        let grouped = Expr::base("Empl").aggregate(&["AID"], vec![AggSpec::count("n")]);
        assert_eq!(eval(&grouped, &s, &d).unwrap().len(), 0);
        // global: SQL yields one row (COUNT = 0, others NULL)... this
        // engine follows the grouped-set reading: zero groups
        let global = Expr::base("Empl").aggregate(
            &[],
            vec![AggSpec::count("n"), AggSpec::of(AggFunc::Sum, "EID", "s")],
        );
        assert_eq!(eval(&global, &s, &d).unwrap().len(), 0);
    }

    #[test]
    fn aggregate_display_reads_like_sql() {
        use mm_expr::AggSpec;
        let e = Expr::base("Orders").aggregate(&["cust"], vec![AggSpec::count("n")]);
        assert_eq!(
            e.to_string(),
            "SELECT cust, COUNT(*) AS n FROM (Orders) GROUP BY cust"
        );
    }

    #[test]
    fn rename_only_changes_names() {
        let e = Expr::base("Addr").rename(&[("City", "Town")]);
        let r = eval(&e, &schema(), &db()).unwrap();
        assert!(r.schema.has("Town"));
        assert_eq!(r.len(), 2);
    }
}
