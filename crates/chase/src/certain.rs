//! Certain answers over universal instances.
//!
//! "A query over the target should return only those tuples that are in
//! the output of the query for every target database that satisfies the
//! constraints" (§4). For unions of conjunctive queries evaluated on a
//! universal instance, the certain answers are exactly the query's answers
//! with every tuple containing a labeled null removed.

use mm_eval::{eval, EvalError};
use mm_expr::Expr;
use mm_instance::{Database, Relation, Value};
use mm_metamodel::Schema;

/// Evaluate `query` on the universal instance `db` and keep only tuples
/// free of labeled nulls (the certain answers).
pub fn certain_answers(
    query: &Expr,
    schema: &Schema,
    db: &Database,
) -> Result<Relation, EvalError> {
    let raw = eval(query, schema, db)?;
    let mut out = Relation::new(raw.schema.clone());
    for t in raw.iter() {
        if !t.values().iter().any(Value::is_labeled) {
            out.insert(t.clone());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::chase_st;
    use mm_expr::{Atom, Tgd};
    use mm_instance::Tuple;
    use mm_metamodel::{DataType, SchemaBuilder};

    #[test]
    fn labeled_nulls_filtered_from_answers() {
        let src = SchemaBuilder::new("Src")
            .relation("Emp", &[("e", DataType::Text)])
            .build()
            .unwrap();
        let tgt = SchemaBuilder::new("Tgt")
            .relation("Mgr", &[("e", DataType::Text), ("m", DataType::Text)])
            .build()
            .unwrap();
        let mut sdb = Database::empty_of(&src);
        sdb.insert("Emp", Tuple::from([Value::text("ann")]));
        let tgd = Tgd::new(vec![Atom::vars("Emp", &["e"])], vec![Atom::vars("Mgr", &["e", "m"])]);
        let (tdb, _) = chase_st(&tgt, &[tgd], &sdb);

        // project the employee column: certain
        let q1 = Expr::base("Mgr").project(&["e"]);
        let r1 = certain_answers(&q1, &tgt, &tdb).unwrap();
        assert_eq!(r1.len(), 1);

        // project the manager column: a labeled null — not certain
        let q2 = Expr::base("Mgr").project(&["m"]);
        let r2 = certain_answers(&q2, &tgt, &tdb).unwrap();
        assert!(r2.is_empty());

        // but the join through the null still counts for the body — the
        // whole-row query is not certain either
        let q3 = Expr::base("Mgr");
        let r3 = certain_answers(&q3, &tgt, &tdb).unwrap();
        assert!(r3.is_empty());
    }
}
