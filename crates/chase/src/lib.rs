//! The chase: data exchange with universal instances.
//!
//! §4 of the paper describes the Clio/data-exchange approach to TransGen:
//! when mapping constraints are non-functional (GLAV / st-tgds), pick the
//! target instance with certain-answer semantics — a *universal instance*
//! containing labeled nulls "that are needed to compute the answers to
//! queries but are not allowed to be returned as part of the answer".
//! This crate implements that machinery:
//!
//! * [`chase::chase_st`] — the standard (restricted) chase of a source
//!   instance with st-tgds, producing a universal target instance;
//! * [`chase::chase_general`] — the bounded chase for arbitrary tgds
//!   (target tgds included), which may not terminate and is therefore
//!   step-bounded (composition of non-s-t tgds is undecidable, §6.1);
//! * [`certain::certain_answers`] — query evaluation with labeled-null
//!   filtering;
//! * [`core::core_of`] — greedy core minimization of a universal instance
//!   ("Data exchange: getting to the core").

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod certain;
pub mod chase;
pub mod core;
pub mod explain;
pub mod hom;
pub mod plan;

pub use crate::core::core_of;
pub use certain::certain_answers;
pub use chase::{
    chase_general, chase_general_adaptive, chase_general_adaptive_explained,
    chase_general_explained, chase_general_governed, chase_general_parallel,
    chase_general_parallel_traced, chase_general_prepared, chase_general_prepared_traced,
    chase_general_reference, chase_st, chase_st_explained, chase_st_governed, chase_st_parallel,
    chase_st_parallel_traced, chase_st_prepared, chase_st_prepared_governed,
    chase_st_prepared_traced, chase_st_reference, egds_from_keys, ChaseFailure, ChaseOutcome,
    ChaseStats, Egd,
};
pub use explain::{ChaseExplain, RoundExplain, TgdExplain};
pub use hom::{exists_hom, hom_equivalent};
pub use plan::{ChaseProgram, TgdPlan};
