//! Compiled tgd plans and the delta-driven (semi-naive) machinery the
//! chase executes on.
//!
//! A [`TgdPlan`] compiles one tgd once: body and head become
//! [`CqPlan`]s over a shared [`VarTable`] (so a slot names the same
//! variable on both sides), and the head additionally compiles to a
//! firing template of slot/constant terms. Satisfaction checks seed the
//! head plan with the body-bound head variables and probe target indexes
//! instead of scanning the whole (growing) target — the quadratic hot
//! spot of the naive source-to-target chase.
//!
//! For the general chase, [`TgdPlan::body_matches_delta`] evaluates a
//! body against per-relation *watermarks* (the relation length at this
//! tgd's previous evaluation): the candidate set is the union over delta
//! splits d of "atoms before d see only pre-watermark tuples, atom d
//! sees only the delta, atoms after d see everything" — disjoint splits
//! that together cover exactly the bindings touching at least one new
//! tuple. Sorting the union by per-atom tuple positions restores the
//! naive enumeration order, which keeps firing order — and therefore
//! labeled-null identities — bit-identical to the naive chase.

use crate::chase::ChaseStats;
use mm_eval::plan::{lit_to_value, AtomRange, CqPlan, ExecOptions, PlanMatch, SlotTerm, VarTable};
use mm_expr::{Term, Tgd};
use mm_guard::{ExecError, Governor};
use mm_instance::{Database, Tuple, Value};
use std::collections::{BTreeSet, HashMap, HashSet};

/// One term of a compiled tgd-head atom, ready for firing.
#[derive(Debug, Clone)]
enum HeadTerm {
    /// A variable slot: universally bound by the body, or existential
    /// (minted fresh per firing when the binding leaves it `None`).
    Slot(usize),
    Const(Value),
    /// Function terms are not first-order instantiable; firing one
    /// reports a typed [`ExecError::Unsupported`], like the naive path.
    Func(String),
}

/// A tgd compiled for repeated chase execution.
#[derive(Debug, Clone)]
pub struct TgdPlan {
    table: VarTable,
    body: CqPlan,
    head: CqPlan,
    /// Slots of head variables the body binds — the seed of the
    /// head-satisfaction check.
    head_seed_slots: Vec<usize>,
    /// Head atoms in source order, compiled for firing.
    head_inst: Vec<(String, Vec<HeadTerm>)>,
    /// Whether every head term is a constant or a body-bound slot (no
    /// existentials, no function terms). A ground head is satisfied iff
    /// each instantiated head tuple is already present, so the check is a
    /// hash-set containment per atom instead of a plan execution.
    head_ground: bool,
    /// Distinct body relation names (watermark domain).
    body_rels: Vec<String>,
    /// Per body relation, the cardinality observed at compile time — the
    /// statistics this plan's cost estimates were derived from. Adaptive
    /// re-optimization compares these against current cardinalities to
    /// detect stale plans.
    compile_rows: Vec<(String, u32)>,
    /// The source tgd, retained for costed plans so mid-run
    /// re-optimization can recompile ([`TgdPlan::recost`]).
    src: Option<Tgd>,
}

impl TgdPlan {
    /// Compile `tgd`, using `db` only for join-order selectivity hints.
    pub fn compile(tgd: &Tgd, db: &Database) -> TgdPlan {
        TgdPlan::compile_inner(tgd, db, false, None)
    }

    /// Compile `tgd` with a cost-based body join order
    /// ([`CqPlan::compile_costed`]): the body walk runs in the
    /// selectivity-estimated cheapest order while emitted matches still
    /// sort back into the canonical naive enumeration (so firing order
    /// and labeled-null identities are unchanged). The head keeps the
    /// greedy order — it only ever runs as a limit-1 existence probe.
    pub fn compile_costed(tgd: &Tgd, db: &Database) -> TgdPlan {
        TgdPlan::compile_inner(tgd, db, true, None)
    }

    /// Re-plan a costed tgd against `db`'s *current* statistics: a fresh
    /// cost-based walk order, fresh estimates, fresh compile-time
    /// cardinalities — but the canonical enumeration order stays frozen
    /// at this plan's, so a chase that swaps plans mid-run keeps firing
    /// in exactly the reference sequence. Returns `None` for plans not
    /// compiled by the cost-based planner.
    pub fn recost(&self, db: &Database) -> Option<TgdPlan> {
        let tgd = self.src.as_ref()?;
        let canon = self.body.canonical_source_order();
        Some(TgdPlan::compile_inner(tgd, db, true, Some(&canon)))
    }

    fn compile_inner(
        tgd: &Tgd,
        db: &Database,
        costed: bool,
        canon: Option<&[usize]>,
    ) -> TgdPlan {
        let mut table = VarTable::new();
        let body = match (costed, canon) {
            (true, Some(c)) => {
                CqPlan::compile_costed_with_canon(&tgd.body, &mut table, db, &[], c)
            }
            (true, None) => CqPlan::compile_costed(&tgd.body, &mut table, db, &[]),
            (false, _) => CqPlan::compile(&tgd.body, &mut table, db, &[]),
        };
        let body_slots: HashSet<usize> = body
            .atoms()
            .iter()
            .flat_map(|a| a.terms())
            .filter_map(|t| match t {
                SlotTerm::Var(s) => Some(*s),
                SlotTerm::Const(_) => None,
            })
            .collect();
        let mut head_vars: BTreeSet<&str> = BTreeSet::new();
        for a in &tgd.head {
            for t in &a.terms {
                t.vars(&mut head_vars);
            }
        }
        let head_seed_slots: Vec<usize> = head_vars
            .iter()
            .filter_map(|v| table.slot(v))
            .filter(|s| body_slots.contains(s))
            .collect();
        let head = CqPlan::compile(&tgd.head, &mut table, db, &head_seed_slots);
        let head_inst: Vec<(String, Vec<HeadTerm>)> = tgd
            .head
            .iter()
            .map(|a| {
                let terms = a
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => HeadTerm::Slot(table.intern(v)),
                        Term::Const(l) => HeadTerm::Const(lit_to_value(l)),
                        Term::Func(name, _) => HeadTerm::Func(name.clone()),
                    })
                    .collect();
                (a.relation.clone(), terms)
            })
            .collect();
        let head_ground = head_inst.iter().all(|(_, terms)| {
            terms.iter().all(|t| match t {
                HeadTerm::Const(_) => true,
                HeadTerm::Slot(s) => body_slots.contains(s),
                HeadTerm::Func(_) => false,
            })
        });
        let mut body_rels: Vec<String> = Vec::new();
        for a in &tgd.body {
            if !body_rels.contains(&a.relation) {
                body_rels.push(a.relation.clone());
            }
        }
        let compile_rows = body_rels
            .iter()
            .map(|r| (r.clone(), db.relation(r).map_or(0, |rel| rel.len() as u32)))
            .collect();
        TgdPlan {
            table,
            body,
            head,
            head_seed_slots,
            head_inst,
            head_ground,
            body_rels,
            compile_rows,
            src: costed.then(|| tgd.clone()),
        }
    }

    /// Distinct body relation names — the domain of this tgd's
    /// semi-naive watermarks.
    pub fn body_rels(&self) -> &[String] {
        &self.body_rels
    }

    /// The compiled body plan (join order, probe columns) — what
    /// [`crate::explain`] reports.
    pub fn body_plan(&self) -> &CqPlan {
        &self.body
    }

    /// Whether every head term is a constant or a body-bound slot (the
    /// hash-containment satisfaction fast path applies).
    pub fn head_is_ground(&self) -> bool {
        self.head_ground
    }

    /// Slot count of the shared variable table; every binding passed back
    /// into [`TgdPlan::head_satisfied`]/[`TgdPlan::fire`] has this length.
    pub fn num_slots(&self) -> usize {
        self.table.len()
    }

    /// Whether the body was compiled by the cost-based planner (carries
    /// cardinality estimates).
    pub fn is_costed(&self) -> bool {
        self.body.is_costed()
    }

    /// Planner estimate of the body's total match count, when costed.
    pub fn estimated_matches(&self) -> Option<f64> {
        self.body.estimated_matches()
    }

    /// Per body relation, the cardinality the plan was compiled (and its
    /// cost estimates derived) against.
    pub fn compile_rows(&self) -> &[(String, u32)] {
        &self.compile_rows
    }

    /// Whether any body relation's current cardinality in `db` has
    /// drifted from the compile-time cardinality by more than `ratio` in
    /// either direction (with +1 smoothing so empty relations compare
    /// sanely). A drifted plan's cost estimates — and hence its join
    /// order — may be arbitrarily wrong; the engine re-plans it.
    pub fn misestimated(&self, db: &Database, ratio: f64) -> bool {
        self.compile_rows.iter().any(|(rel, was)| {
            let now = db.relation(rel).map_or(0, |r| r.len() as u32);
            let (lo, hi) = if *was <= now { (*was, now) } else { (now, *was) };
            f64::from(hi + 1) / f64::from(lo + 1) > ratio
        })
    }

    /// Full body evaluation (every binding, naive-identical order).
    pub fn body_matches(
        &self,
        db: &Database,
        use_indexes: bool,
        gov: &mut Governor,
        out: &mut Vec<PlanMatch>,
    ) -> Result<(), ExecError> {
        let mut scratch = vec![None; self.table.len()];
        let opts = ExecOptions { use_indexes, ..Default::default() };
        let before = out.len();
        self.body.execute_governed(db, &mut scratch, &opts, gov, out)?;
        if self.body.is_costed() {
            // a costed walk may enumerate out of canonical order; the
            // emitted positions sort it back into the naive sequence
            out[before..].sort_by(|a, b| a.positions.cmp(&b.positions));
        }
        Ok(())
    }

    /// [`TgdPlan::body_matches`] with the driver atom's range fanned
    /// across up to `threads` workers. Same bindings, same order, same
    /// metered step totals ([`CqPlan::execute_parallel`]'s contract);
    /// degrades to the sequential path for small driver relations.
    pub fn body_matches_parallel(
        &self,
        db: &Database,
        use_indexes: bool,
        threads: usize,
        gov: &mut Governor,
        out: &mut Vec<PlanMatch>,
    ) -> Result<mm_parallel::PoolRun, ExecError> {
        let mut scratch = vec![None; self.table.len()];
        let opts = ExecOptions { use_indexes, ..Default::default() };
        let before = out.len();
        let run = self.body.execute_parallel(db, &mut scratch, &opts, threads, gov, out)?;
        if self.body.is_costed() {
            out[before..].sort_by(|a, b| a.positions.cmp(&b.positions));
        }
        Ok(run)
    }

    /// Semi-naive body evaluation: only bindings that touch at least one
    /// tuple inserted at or after its relation's watermark, in the exact
    /// order a full evaluation would have enumerated them.
    pub fn body_matches_delta(
        &self,
        db: &Database,
        watermarks: &HashMap<String, u32>,
        use_indexes: bool,
        gov: &mut Governor,
        out: &mut Vec<PlanMatch>,
    ) -> Result<(), ExecError> {
        let n = self.body.atoms().len();
        let wm_of = |relation: &str| watermarks.get(relation).copied().unwrap_or(0);
        let len_of =
            |relation: &str| db.relation(relation).map_or(0, |r| r.tuples().len() as u32);
        let mut scratch = vec![None; self.table.len()];
        let mut acc: Vec<PlanMatch> = Vec::new();
        for d in 0..n {
            let d_rel = &self.body.atoms()[d].relation;
            if len_of(d_rel) <= wm_of(d_rel) {
                continue; // this split's delta is empty
            }
            let ranges: Vec<AtomRange> = (0..n)
                .map(|i| {
                    let wm = wm_of(&self.body.atoms()[i].relation);
                    match i.cmp(&d) {
                        std::cmp::Ordering::Less => AtomRange::Below(wm),
                        std::cmp::Ordering::Equal => AtomRange::AtOrAbove(wm),
                        std::cmp::Ordering::Greater => AtomRange::Full,
                    }
                })
                .collect();
            let opts = ExecOptions { ranges: Some(&ranges), use_indexes, limit: None };
            self.body.execute_governed(db, &mut scratch, &opts, gov, &mut acc)?;
        }
        // splits are disjoint; position vectors sort them back into the
        // naive nested-loop enumeration order
        acc.sort_by(|a, b| a.positions.cmp(&b.positions));
        out.append(&mut acc);
        Ok(())
    }

    /// [`TgdPlan::body_matches_delta`] with each delta split's driver
    /// range fanned across up to `threads` workers. The final
    /// position-vector sort is what already restores the naive
    /// enumeration order for the sequential path, so chunked splits
    /// merge to the identical binding sequence.
    pub fn body_matches_delta_parallel(
        &self,
        db: &Database,
        watermarks: &HashMap<String, u32>,
        use_indexes: bool,
        threads: usize,
        gov: &mut Governor,
        out: &mut Vec<PlanMatch>,
    ) -> Result<mm_parallel::PoolRun, ExecError> {
        let n = self.body.atoms().len();
        let wm_of = |relation: &str| watermarks.get(relation).copied().unwrap_or(0);
        let len_of =
            |relation: &str| db.relation(relation).map_or(0, |r| r.tuples().len() as u32);
        let mut scratch = vec![None; self.table.len()];
        let mut acc: Vec<PlanMatch> = Vec::new();
        let mut run = mm_parallel::PoolRun::default();
        for d in 0..n {
            let d_rel = &self.body.atoms()[d].relation;
            if len_of(d_rel) <= wm_of(d_rel) {
                continue; // this split's delta is empty
            }
            let ranges: Vec<AtomRange> = (0..n)
                .map(|i| {
                    let wm = wm_of(&self.body.atoms()[i].relation);
                    match i.cmp(&d) {
                        std::cmp::Ordering::Less => AtomRange::Below(wm),
                        std::cmp::Ordering::Equal => AtomRange::AtOrAbove(wm),
                        std::cmp::Ordering::Greater => AtomRange::Full,
                    }
                })
                .collect();
            let opts = ExecOptions { ranges: Some(&ranges), use_indexes, limit: None };
            run.absorb(self.body.execute_parallel(db, &mut scratch, &opts, threads, gov, &mut acc)?);
        }
        acc.sort_by(|a, b| a.positions.cmp(&b.positions));
        out.append(&mut acc);
        Ok(run)
    }

    /// Whether the head is already satisfied in `db` under `binding`:
    /// does some extension of the body-bound head variables map every
    /// head atom into the database? Probes target indexes seeded with the
    /// universal head variables and stops at the first witness.
    pub fn head_satisfied(
        &self,
        binding: &[Option<Value>],
        db: &Database,
        use_indexes: bool,
        gov: &mut Governor,
    ) -> Result<bool, ExecError> {
        if use_indexes && self.head_ground {
            // No existentials: satisfaction is per-atom tuple containment,
            // checked against one reusable value buffer — no tuple (or
            // tuple buffer) is allocated per candidate firing.
            let mut values: Vec<Value> = Vec::new();
            for (relation, terms) in &self.head_inst {
                gov.step()?;
                let Some(rel) = db.relation(relation) else { return Ok(false) };
                values.clear();
                for t in terms {
                    match t {
                        HeadTerm::Const(v) => values.push(v.clone()),
                        HeadTerm::Slot(s) => match &binding[*s] {
                            Some(v) => values.push(v.clone()),
                            None => return Ok(false),
                        },
                        // unreachable under head_ground; defensive
                        HeadTerm::Func(_) => return Ok(false),
                    }
                }
                if !rel.contains_values(&values) {
                    return Ok(false);
                }
            }
            return Ok(true);
        }
        let mut scratch = vec![None; self.table.len()];
        for &s in &self.head_seed_slots {
            scratch[s] = binding[s].clone();
        }
        let opts = ExecOptions { use_indexes, limit: Some(1), ..Default::default() };
        let mut out = Vec::with_capacity(1);
        self.head.execute_governed(db, &mut scratch, &opts, gov, &mut out)?;
        Ok(!out.is_empty())
    }

    /// Fire the head under `binding`: instantiate every head atom —
    /// minting one fresh labeled null per existential slot per firing, in
    /// first-occurrence order (atom order, then left-to-right), exactly
    /// like the naive path — and insert the tuples.
    pub fn fire(
        &self,
        binding: &[Option<Value>],
        db: &mut Database,
        stats: &mut ChaseStats,
        gov: &mut Governor,
    ) -> Result<(), ExecError> {
        let mut memo: Vec<Option<Value>> = vec![None; self.table.len()];
        let mut minted = 0usize;
        // one firing buffer across head atoms: tuples are built from the
        // slice (inline small-tuple layout, hash cached at construction)
        let mut values: Vec<Value> = Vec::new();
        for (relation, terms) in &self.head_inst {
            gov.row()?;
            values.clear();
            for t in terms {
                values.push(match t {
                    HeadTerm::Const(v) => v.clone(),
                    HeadTerm::Func(name) => {
                        return Err(ExecError::unsupported(format!(
                            "function term '{name}' in first-order instantiation of atom '{relation}'"
                        )))
                    }
                    HeadTerm::Slot(s) => match (&binding[*s], &memo[*s]) {
                        (Some(v), _) => v.clone(),
                        (None, Some(v)) => v.clone(),
                        (None, None) => {
                            let v = db.fresh_labeled();
                            minted += 1;
                            memo[*s] = Some(v.clone());
                            v
                        }
                    },
                });
            }
            db.insert(relation, Tuple::from_slice(&values));
        }
        stats.nulls += minted;
        stats.fired += 1;
        Ok(())
    }
}

/// A set of tgds compiled for repeated chase execution — what the engine
/// plan cache stores per mapping and reuses across calls.
#[derive(Debug, Clone)]
pub struct ChaseProgram {
    plans: Vec<TgdPlan>,
}

impl ChaseProgram {
    /// Compile every tgd. `db` supplies join-order selectivity hints
    /// (typically the source instance of the first call; order only
    /// affects performance and enumeration order, never the result set).
    pub fn compile(tgds: &[Tgd], db: &Database) -> ChaseProgram {
        ChaseProgram { plans: tgds.iter().map(|t| TgdPlan::compile(t, db)).collect() }
    }

    /// Compile every tgd through the cost-based planner
    /// ([`TgdPlan::compile_costed`]): join orders are chosen from `db`'s
    /// cardinality statistics and the compiled plans carry their
    /// estimates for EXPLAIN and runtime misestimate detection. Results
    /// remain bit-identical to [`ChaseProgram::compile`]'s.
    pub fn compile_costed(tgds: &[Tgd], db: &Database) -> ChaseProgram {
        ChaseProgram { plans: tgds.iter().map(|t| TgdPlan::compile_costed(t, db)).collect() }
    }

    /// Whether any tgd plan's compile-time statistics have drifted from
    /// `db` beyond `ratio` ([`TgdPlan::misestimated`]).
    pub fn misestimated(&self, db: &Database, ratio: f64) -> bool {
        self.plans.iter().any(|p| p.misestimated(db, ratio))
    }

    pub fn plans(&self) -> &[TgdPlan] {
        &self.plans
    }

    pub fn len(&self) -> usize {
        self.plans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}
