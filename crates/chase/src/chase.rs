//! The chase procedure over tgds and egds.
//!
//! Since PR 2 the chase runs on compiled [`TgdPlan`]s (see
//! [`crate::plan`]): bodies and head-satisfaction checks execute as
//! indexed slot-binding joins, and the general chase is *semi-naive* —
//! after the first round each tgd body is only instantiated against
//! bindings touching at least one tuple inserted since that tgd's last
//! evaluation. Results are bit-identical (same tuples, same labeled-null
//! ids, same stats) to the naive full-reevaluation chase, which is kept
//! as [`chase_st_reference`]/[`chase_general_reference`] for
//! differential testing and benchmarking.

use crate::explain::{ChaseExplain, RoundExplain};
use crate::plan::{ChaseProgram, TgdPlan};
use mm_eval::plan::{CqPlan, ExecOptions, VarTable};
use mm_expr::{Atom, Tgd};
use mm_guard::{Consumption, ExecBudget, ExecError, Governor};
use mm_instance::{Database, Tuple, Value};
use mm_metamodel::Schema;
use mm_telemetry::{Counter, Hist, Span, Telemetry, Timer};
use std::collections::HashMap;
use std::fmt;

/// An equality-generating dependency: body → x = y for two body variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Egd {
    pub body: Vec<Atom>,
    pub left: String,
    pub right: String,
}

/// Derive the egds implied by a schema's key constraints: for a key on
/// columns K of relation R, two R-atoms agreeing on K must agree on every
/// other column. Chasing with these equates the labeled nulls that the
/// key forces together (the paper's §2 target-constraint reasoning).
pub fn egds_from_keys(schema: &Schema) -> Vec<Egd> {
    let mut out = Vec::new();
    for c in &schema.constraints {
        let mm_metamodel::Constraint::Key(k) = c else { continue };
        let Some(layout) = schema.instance_layout(&k.element) else { continue };
        // two atoms sharing variables on the key positions, distinct
        // variables elsewhere
        let mk_terms = |tag: &str| -> Vec<mm_expr::Term> {
            layout
                .iter()
                .map(|a| {
                    if k.attributes.contains(&a.name) {
                        mm_expr::Term::var(format!("k_{}", a.name))
                    } else {
                        mm_expr::Term::var(format!("{tag}_{}", a.name))
                    }
                })
                .collect()
        };
        for a in &layout {
            if k.attributes.contains(&a.name) {
                continue;
            }
            out.push(Egd {
                body: vec![
                    Atom::new(k.element.clone(), mk_terms("l")),
                    Atom::new(k.element.clone(), mk_terms("r")),
                ],
                left: format!("l_{}", a.name),
                right: format!("r_{}", a.name),
            });
        }
    }
    out
}

/// Statistics of a chase run (reported by the EQ7 bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaseStats {
    /// Number of tgd firings that inserted at least one tuple.
    pub fired: usize,
    /// Number of fixpoint rounds.
    pub rounds: usize,
    /// Labeled nulls minted.
    pub nulls: usize,
}

/// Outcome of a chase run.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaseOutcome {
    /// Fixpoint reached: the database satisfies all dependencies.
    Done(ChaseStats),
    /// Step bound exhausted before a fixpoint (possible for general tgds).
    BoundExceeded(ChaseStats),
    /// An egd tried to equate two distinct constants — no solution exists.
    Failed { egd_index: usize },
}

impl fmt::Display for ChaseOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseOutcome::Done(s) => {
                write!(f, "done: {} firings, {} rounds, {} nulls", s.fired, s.rounds, s.nulls)
            }
            ChaseOutcome::BoundExceeded(s) => {
                write!(f, "bound exceeded after {} firings", s.fired)
            }
            ChaseOutcome::Failed { egd_index } => write!(f, "failed at egd #{egd_index}"),
        }
    }
}

/// A governed chase that could not finish: the typed resource error plus
/// the statistics of the partial run (work done before the trip). For
/// `chase_general_governed` the partially chased database is left in
/// place, so callers can inspect or discard the partial instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaseFailure {
    pub error: ExecError,
    pub stats: ChaseStats,
}

impl fmt::Display for ChaseFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chase aborted after {} firings / {} rounds: {}",
            self.stats.fired, self.stats.rounds, self.error
        )
    }
}

impl std::error::Error for ChaseFailure {}

impl From<ChaseFailure> for ExecError {
    fn from(f: ChaseFailure) -> Self {
        f.error
    }
}

/// The standard chase for **source-to-target** tgds: bodies are evaluated
/// over `source_db`, heads asserted into a fresh target database. Because
/// target relations never feed tgd bodies, one pass over the tgds reaches
/// the fixpoint; the restricted chase still checks head satisfaction so
/// re-chasing an already-consistent pair adds nothing.
///
/// Returns the universal target instance and stats.
///
/// Legacy ungoverned entry point; panics on function terms in tgd heads
/// (use [`chase_st_governed`] for the typed-error path).
pub fn chase_st(
    target_schema: &Schema,
    tgds: &[Tgd],
    source_db: &Database,
) -> (Database, ChaseStats) {
    #[allow(clippy::expect_used)] // unbounded budget: only Unsupported inputs can fail
    chase_st_governed(target_schema, tgds, source_db, &ExecBudget::unbounded())
        .expect("chase_st on unsupported input; use chase_st_governed for a typed error")
}

/// Governed source-to-target chase: join probes, head-satisfaction
/// checks, and inserted tuples are metered against `budget`; on a trip
/// the typed error plus partial-run statistics come back as a
/// [`ChaseFailure`].
pub fn chase_st_governed(
    target_schema: &Schema,
    tgds: &[Tgd],
    source_db: &Database,
    budget: &ExecBudget,
) -> Result<(Database, ChaseStats), ChaseFailure> {
    let program = ChaseProgram::compile(tgds, source_db);
    chase_st_prepared(target_schema, &program, source_db, budget)
}

/// Source-to-target chase over a pre-compiled [`ChaseProgram`] — the
/// entry point the engine plan cache uses to amortize tgd compilation
/// across repeated exchanges of the same mapping.
pub fn chase_st_prepared(
    target_schema: &Schema,
    program: &ChaseProgram,
    source_db: &Database,
    budget: &ExecBudget,
) -> Result<(Database, ChaseStats), ChaseFailure> {
    chase_st_prepared_traced(target_schema, program, source_db, budget, &Telemetry::disabled())
}

/// [`chase_st_prepared`] with telemetry: wraps the run in a `chase.st`
/// span (with final [`Consumption`] fields on success), feeds the chase
/// counters and timer. With disabled telemetry this is the plain call.
pub fn chase_st_prepared_traced(
    target_schema: &Schema,
    program: &ChaseProgram,
    source_db: &Database,
    budget: &ExecBudget,
    tel: &Telemetry,
) -> Result<(Database, ChaseStats), ChaseFailure> {
    let mut gov = Governor::new(budget);
    run_st(target_schema, program, source_db, &mut gov, true, 1, tel, None)
}

/// [`chase_st_prepared`] with the body-matching phase of every tgd
/// fanned across up to `threads` workers. **Bit-identical** to the
/// sequential path — same tuples, same labeled-null ids, same
/// [`ChaseStats`]: workers probe copy-on-write index snapshots
/// read-only, their per-chunk match lists merge back in the sequential
/// enumeration order, and head-satisfaction checks plus firing (where
/// nulls are minted) stay sequential in that order. `threads <= 1` is
/// exactly [`chase_st_prepared`].
pub fn chase_st_parallel(
    target_schema: &Schema,
    program: &ChaseProgram,
    source_db: &Database,
    budget: &ExecBudget,
    threads: usize,
) -> Result<(Database, ChaseStats), ChaseFailure> {
    chase_st_parallel_traced(
        target_schema,
        program,
        source_db,
        budget,
        threads,
        &Telemetry::disabled(),
    )
}

/// [`chase_st_parallel`] with telemetry: the `chase.st` span
/// additionally carries `parallel.workers` / `parallel.steals` /
/// `parallel.tasks` fields and feeds the parallel counters.
pub fn chase_st_parallel_traced(
    target_schema: &Schema,
    program: &ChaseProgram,
    source_db: &Database,
    budget: &ExecBudget,
    threads: usize,
    tel: &Telemetry,
) -> Result<(Database, ChaseStats), ChaseFailure> {
    let mut gov = Governor::new(budget);
    run_st(target_schema, program, source_db, &mut gov, true, threads, tel, None)
}

/// Source-to-target chase metering against a caller-supplied
/// [`Governor`] — the batch-serving entry point: `Engine::exchange_batch`
/// forks one shared-meter governor per request so a budget spans the
/// whole batch and cancellation reaches every worker.
pub fn chase_st_prepared_governed(
    target_schema: &Schema,
    program: &ChaseProgram,
    source_db: &Database,
    gov: &mut Governor,
    threads: usize,
    tel: &Telemetry,
) -> Result<(Database, ChaseStats), ChaseFailure> {
    run_st(target_schema, program, source_db, gov, true, threads, tel, None)
}

/// [`chase_st_prepared`] plus a full [`ChaseExplain`] report: per-tgd
/// join orders (explained against `source_db` cardinalities), the
/// single round's deltas, and the degree of parallelism the chase was
/// asked to run with. Telemetry is optional and orthogonal.
pub fn chase_st_explained(
    target_schema: &Schema,
    program: &ChaseProgram,
    source_db: &Database,
    budget: &ExecBudget,
    threads: usize,
    tel: &Telemetry,
) -> Result<(Database, ChaseStats, ChaseExplain), ChaseFailure> {
    let tgds = program.explain(source_db);
    let mut rounds = Vec::new();
    let mut gov = Governor::new(budget);
    let (db, stats) = run_st(
        target_schema,
        program,
        source_db,
        &mut gov,
        true,
        threads,
        tel,
        Some(&mut rounds),
    )?;
    Ok((
        db,
        stats,
        ChaseExplain { mode: "st", stats, tgds, rounds, threads: threads.max(1), replans: 0 },
    ))
}

/// Reference (naive) source-to-target chase: identical structure but
/// every join and satisfaction check runs as a full scan, never an index
/// probe. Bit-identical to [`chase_st_governed`] by construction — kept
/// public as the differential-testing oracle and benchmark baseline.
pub fn chase_st_reference(
    target_schema: &Schema,
    tgds: &[Tgd],
    source_db: &Database,
    budget: &ExecBudget,
) -> Result<(Database, ChaseStats), ChaseFailure> {
    let program = ChaseProgram::compile(tgds, source_db);
    let mut gov = Governor::new(budget);
    chase_st_impl(target_schema, &program, source_db, &mut gov, false, 1, None)
        .map(|(db, stats, _)| (db, stats))
}

/// Telemetry shell around [`chase_st_impl`]: one branch when disabled.
#[allow(clippy::too_many_arguments)] // internal: the public wrappers curry
fn run_st(
    target_schema: &Schema,
    program: &ChaseProgram,
    source_db: &Database,
    gov: &mut Governor,
    use_indexes: bool,
    threads: usize,
    tel: &Telemetry,
    trace: Option<&mut Vec<RoundExplain>>,
) -> Result<(Database, ChaseStats), ChaseFailure> {
    if !tel.is_enabled() {
        return chase_st_impl(target_schema, program, source_db, gov, use_indexes, threads, trace)
            .map(|(db, stats, _)| (db, stats));
    }
    let started = mm_telemetry::clock::now();
    let steps_before = gov.steps_consumed();
    let rows_before = gov.rows_consumed();
    let mut span = Span::enter(tel, "chase.st", source_db.name.as_str());
    let result =
        chase_st_impl(target_schema, program, source_db, gov, use_indexes, threads, trace);
    let stats = match &result {
        Ok((_, s, _)) => *s,
        Err(f) => f.stats,
    };
    if let Some(m) = tel.metrics() {
        m.add(Counter::ChaseRounds, stats.rounds as u64);
        m.add(Counter::ChaseFirings, stats.fired as u64);
        m.add(Counter::ChaseNullsMinted, stats.nulls as u64);
        if let Ok((db, _, _)) = &result {
            m.add(Counter::ChaseDeltaTuples, db.total_tuples() as u64);
        }
        let elapsed = mm_telemetry::clock::elapsed_us(started);
        m.observe_us(Timer::Chase, elapsed);
        // the st chase is its single pass, so the run is the round
        m.observe_hist(Hist::ChaseRoundUs, elapsed);
    }
    span.field("tgds", program.len());
    span.field("rounds", stats.rounds);
    span.field("fired", stats.fired);
    span.field("nulls", stats.nulls);
    if let Ok((_, _, par)) = &result {
        record_parallel(tel, &mut span, threads, par);
    }
    match &result {
        Ok(_) => {
            let steps = gov.steps_consumed() - steps_before;
            let rows = gov.rows_consumed() - rows_before;
            tel.count(Counter::BudgetStepsConsumed, steps);
            tel.count(Counter::BudgetRowsConsumed, rows);
            span.field("steps", steps);
            span.field("rows", rows);
            span.field("wall_us", mm_telemetry::clock::elapsed_us(started));
        }
        Err(f) => span.field("error", f.error.to_string()),
    }
    span.finish();
    result.map(|(db, stats, _)| (db, stats))
}

/// Feed a finished parallel region's pool statistics into the span and
/// the engine counters. Only emitted when parallelism was requested, so
/// sequential spans keep their pre-PR-5 field set byte-for-byte.
fn record_parallel(
    tel: &Telemetry,
    span: &mut Span,
    threads: usize,
    par: &mm_parallel::PoolRun,
) {
    if threads <= 1 {
        return;
    }
    span.field("parallel.workers", par.workers);
    span.field("parallel.steals", par.steals);
    span.field("parallel.tasks", par.tasks);
    if let Some(m) = tel.metrics() {
        m.add(Counter::ParallelWorkers, par.workers as u64);
        m.add(Counter::ParallelSteals, par.steals);
        m.add(Counter::ParallelTasks, par.tasks);
    }
}

fn chase_st_impl(
    target_schema: &Schema,
    program: &ChaseProgram,
    source_db: &Database,
    gov: &mut Governor,
    use_indexes: bool,
    threads: usize,
    trace: Option<&mut Vec<RoundExplain>>,
) -> Result<(Database, ChaseStats, mm_parallel::PoolRun), ChaseFailure> {
    let mut target = Database::empty_of(target_schema);
    target.set_label_watermark(source_db.label_watermark());
    let mut stats = ChaseStats { rounds: 1, ..Default::default() };
    let mut par = mm_parallel::PoolRun::default();
    for plan in program.plans() {
        let mut run = |stats: &mut ChaseStats,
                       par: &mut mm_parallel::PoolRun|
         -> Result<(), ExecError> {
            let mut matches = Vec::new();
            if threads > 1 {
                par.absorb(plan.body_matches_parallel(
                    source_db,
                    use_indexes,
                    threads,
                    gov,
                    &mut matches,
                )?);
            } else {
                plan.body_matches(source_db, use_indexes, gov, &mut matches)?;
            }
            for m in matches {
                if plan.head_satisfied(&m.binding, &target, use_indexes, gov)? {
                    continue;
                }
                plan.fire(&m.binding, &mut target, stats, gov)?;
            }
            Ok(())
        };
        run(&mut stats, &mut par).map_err(|error| ChaseFailure { error, stats })?;
    }
    if let Some(t) = trace {
        t.push(RoundExplain {
            round: 1,
            fired: stats.fired,
            nulls: stats.nulls,
            new_tuples: target.total_tuples(),
        });
    }
    Ok((target, stats, par))
}

/// The bounded restricted chase for **general** tgds and egds over a
/// single database (source and target relations may coincide — schema
/// evolution scenarios chase views and bases together). `max_rounds`
/// bounds the fixpoint loop since general tgds need not terminate; an
/// exhausted bound comes back as [`ChaseOutcome::BoundExceeded`].
///
/// Legacy ungoverned entry point over [`chase_general_governed`].
pub fn chase_general(
    db: &mut Database,
    tgds: &[Tgd],
    egds: &[Egd],
    max_rounds: usize,
) -> ChaseOutcome {
    let budget = ExecBudget::unbounded().with_rounds(max_rounds as u64);
    match chase_general_governed(db, tgds, egds, &budget) {
        Ok(outcome) => outcome,
        Err(ChaseFailure { error: ExecError::Diverged { .. }, stats }) => {
            ChaseOutcome::BoundExceeded(stats)
        }
        #[allow(clippy::panic)] // unbounded except rounds: no other trip is reachable
        Err(f) => panic!("chase_general on unsupported input: {f}"),
    }
}

/// Governed general chase. The fixpoint loop runs until convergence or
/// until the budget trips:
///
/// * exceeding the budget's **round** cap without converging reports
///   [`ExecError::Diverged`] — the tgd set is divergent, or the cap is
///   too small; no more silent truncation,
/// * step / row / wall-clock caps and cancellation report their own
///   [`ExecError`] variants,
/// * an egd equating two distinct constants is a semantic answer, not a
///   resource failure: it stays `Ok(ChaseOutcome::Failed { .. })`.
///
/// On error the partially chased `db` is left in place (callers decide
/// whether a partial universal instance is useful) together with the
/// partial-run statistics in the [`ChaseFailure`].
pub fn chase_general_governed(
    db: &mut Database,
    tgds: &[Tgd],
    egds: &[Egd],
    budget: &ExecBudget,
) -> Result<ChaseOutcome, ChaseFailure> {
    let program = ChaseProgram::compile(tgds, db);
    chase_general_prepared(db, &program, egds, budget)
}

/// General chase over a pre-compiled [`ChaseProgram`] (semi-naive,
/// indexed) — the entry point for plan-cache reuse across calls.
pub fn chase_general_prepared(
    db: &mut Database,
    program: &ChaseProgram,
    egds: &[Egd],
    budget: &ExecBudget,
) -> Result<ChaseOutcome, ChaseFailure> {
    chase_general_prepared_traced(db, program, egds, budget, &Telemetry::disabled())
}

/// [`chase_general_prepared`] with telemetry: a `chase.general` span
/// (with final [`Consumption`] fields on success), chase counters, and
/// the chase timer. With disabled telemetry this is the plain call.
pub fn chase_general_prepared_traced(
    db: &mut Database,
    program: &ChaseProgram,
    egds: &[Egd],
    budget: &ExecBudget,
    tel: &Telemetry,
) -> Result<ChaseOutcome, ChaseFailure> {
    run_general(db, program, egds, budget, true, true, 1, None, tel, None).map(|(o, ..)| o)
}

/// [`chase_general_prepared`] with each round's body-matching fanned
/// across up to `threads` workers. **Bit-identical** to the sequential
/// path — same tuples, same labeled-null ids, same [`ChaseStats`]:
/// within a round, workers enumerate delta chunks against read-only
/// index snapshots, the per-chunk match lists merge back in the
/// sequential enumeration order, and firing plus the egd pass stay
/// sequential. `threads <= 1` is exactly [`chase_general_prepared`].
pub fn chase_general_parallel(
    db: &mut Database,
    program: &ChaseProgram,
    egds: &[Egd],
    budget: &ExecBudget,
    threads: usize,
) -> Result<ChaseOutcome, ChaseFailure> {
    chase_general_parallel_traced(db, program, egds, budget, threads, &Telemetry::disabled())
}

/// [`chase_general_parallel`] with telemetry: the `chase.general` span
/// additionally carries `parallel.workers` / `parallel.steals` /
/// `parallel.tasks` fields and feeds the parallel counters.
pub fn chase_general_parallel_traced(
    db: &mut Database,
    program: &ChaseProgram,
    egds: &[Egd],
    budget: &ExecBudget,
    threads: usize,
    tel: &Telemetry,
) -> Result<ChaseOutcome, ChaseFailure> {
    run_general(db, program, egds, budget, true, true, threads, None, tel, None).map(|(o, ..)| o)
}

/// [`chase_general_parallel_traced`] with **adaptive re-optimization**:
/// at each round boundary (a governor safepoint) every cost-compiled tgd
/// plan is checked against current relation statistics, and a plan whose
/// compile-time body cardinalities have drifted beyond `replan_ratio`
/// (in either direction, ratio-of-ratios with +1 smoothing) is
/// recompiled from the live statistics. Re-planning keeps the plan's
/// frozen canonical enumeration order, so results stay bit-identical to
/// the naive reference; only the walk order (and thus the work) changes.
/// Returns the number of re-plans performed alongside the outcome.
/// Greedy-compiled programs never re-plan: the check only fires for
/// [`ChaseProgram::compile_costed`] plans.
pub fn chase_general_adaptive(
    db: &mut Database,
    program: &ChaseProgram,
    egds: &[Egd],
    budget: &ExecBudget,
    threads: usize,
    tel: &Telemetry,
    replan_ratio: f64,
) -> Result<(ChaseOutcome, u32), ChaseFailure> {
    run_general(db, program, egds, budget, true, true, threads, Some(replan_ratio), tel, None)
        .map(|(o, _, r)| (o, r))
}

/// [`chase_general_prepared`] plus a full [`ChaseExplain`]: per-tgd join
/// orders (explained against the *pre-chase* database, so two identical
/// runs report identically) and per-round deltas.
pub fn chase_general_explained(
    db: &mut Database,
    program: &ChaseProgram,
    egds: &[Egd],
    budget: &ExecBudget,
    threads: usize,
    tel: &Telemetry,
) -> Result<(ChaseOutcome, ChaseExplain), ChaseFailure> {
    general_explained(db, program, egds, budget, threads, tel, None)
}

/// [`chase_general_adaptive`] plus a full [`ChaseExplain`]: the report's
/// `replans` field records how many mid-run re-optimizations fired, and
/// renders only when non-zero so non-adaptive reports stay byte-stable.
pub fn chase_general_adaptive_explained(
    db: &mut Database,
    program: &ChaseProgram,
    egds: &[Egd],
    budget: &ExecBudget,
    threads: usize,
    tel: &Telemetry,
    replan_ratio: f64,
) -> Result<(ChaseOutcome, ChaseExplain), ChaseFailure> {
    general_explained(db, program, egds, budget, threads, tel, Some(replan_ratio))
}

fn general_explained(
    db: &mut Database,
    program: &ChaseProgram,
    egds: &[Egd],
    budget: &ExecBudget,
    threads: usize,
    tel: &Telemetry,
    adapt: Option<f64>,
) -> Result<(ChaseOutcome, ChaseExplain), ChaseFailure> {
    let tgds = program.explain(db);
    let mut rounds = Vec::new();
    let (outcome, _, replans) =
        run_general(db, program, egds, budget, true, true, threads, adapt, tel, Some(&mut rounds))?;
    let stats = match &outcome {
        ChaseOutcome::Done(s) | ChaseOutcome::BoundExceeded(s) => *s,
        ChaseOutcome::Failed { .. } => ChaseStats::default(),
    };
    Ok((
        outcome,
        ChaseExplain { mode: "general", stats, tgds, rounds, threads: threads.max(1), replans },
    ))
}

/// Reference (naive) general chase: every round re-evaluates every tgd
/// body in full, by scan. Bit-identical to [`chase_general_governed`] —
/// same tuples, same labeled-null ids, same [`ChaseStats`] — kept public
/// as the differential-testing oracle and benchmark baseline.
pub fn chase_general_reference(
    db: &mut Database,
    tgds: &[Tgd],
    egds: &[Egd],
    budget: &ExecBudget,
) -> Result<ChaseOutcome, ChaseFailure> {
    let program = ChaseProgram::compile(tgds, db);
    chase_general_impl(db, &program, egds, budget, false, false, 1, None, &Telemetry::disabled(), None)
        .map(|(o, ..)| o)
}

/// Telemetry shell around [`chase_general_impl`].
#[allow(clippy::too_many_arguments)] // internal: the public wrappers curry
fn run_general(
    db: &mut Database,
    program: &ChaseProgram,
    egds: &[Egd],
    budget: &ExecBudget,
    semi_naive: bool,
    use_indexes: bool,
    threads: usize,
    adapt: Option<f64>,
    tel: &Telemetry,
    trace: Option<&mut Vec<RoundExplain>>,
) -> Result<(ChaseOutcome, Consumption, u32), ChaseFailure> {
    if !tel.is_enabled() {
        return chase_general_impl(
            db, program, egds, budget, semi_naive, use_indexes, threads, adapt, tel, trace,
        )
        .map(|(o, c, _, r)| (o, c, r));
    }
    let started = mm_telemetry::clock::now();
    let tuples_before = db.total_tuples();
    let mut span = Span::enter(tel, "chase.general", db.name.as_str());
    let result = chase_general_impl(
        db, program, egds, budget, semi_naive, use_indexes, threads, adapt, tel, trace,
    );
    let stats = match &result {
        Ok((ChaseOutcome::Done(s) | ChaseOutcome::BoundExceeded(s), ..)) => *s,
        Ok((ChaseOutcome::Failed { .. }, ..)) => ChaseStats::default(),
        Err(f) => f.stats,
    };
    if let Some(m) = tel.metrics() {
        m.add(Counter::ChaseRounds, stats.rounds as u64);
        m.add(Counter::ChaseFirings, stats.fired as u64);
        m.add(Counter::ChaseNullsMinted, stats.nulls as u64);
        m.add(
            Counter::ChaseDeltaTuples,
            db.total_tuples().saturating_sub(tuples_before) as u64,
        );
        m.observe_us(Timer::Chase, mm_telemetry::clock::elapsed_us(started));
    }
    span.field("tgds", program.len());
    span.field("egds", egds.len());
    span.field("rounds", stats.rounds);
    span.field("fired", stats.fired);
    span.field("nulls", stats.nulls);
    if let Ok((_, _, par, replans)) = &result {
        record_parallel(tel, &mut span, threads, par);
        if *replans > 0 {
            // only emitted when adaptive re-optimization fired, so
            // non-adaptive spans keep their field set byte-for-byte
            span.field("replans", *replans);
            tel.count(Counter::PlanMisestimates, *replans as u64);
            tel.count(Counter::PlanReplans, *replans as u64);
        }
    }
    match &result {
        Ok((_, c, _, _)) => {
            tel.count(Counter::BudgetStepsConsumed, c.steps);
            tel.count(Counter::BudgetRowsConsumed, c.rows);
            span.field("steps", c.steps);
            span.field("rows", c.rows);
            span.field("wall_us", c.wall_us);
        }
        Err(f) => span.field("error", f.error.to_string()),
    }
    span.finish();
    result.map(|(o, c, _, r)| (o, c, r))
}

#[allow(clippy::type_complexity)] // watermark alias would hide, not help
#[allow(clippy::too_many_arguments)] // internal: run_general is the only caller
fn chase_general_impl(
    db: &mut Database,
    program: &ChaseProgram,
    egds: &[Egd],
    budget: &ExecBudget,
    semi_naive: bool,
    use_indexes: bool,
    threads: usize,
    adapt: Option<f64>,
    tel: &Telemetry,
    mut trace: Option<&mut Vec<RoundExplain>>,
) -> Result<(ChaseOutcome, Consumption, mm_parallel::PoolRun, u32), ChaseFailure> {
    let mut gov = Governor::new(budget);
    let mut stats = ChaseStats::default();
    let mut par = mm_parallel::PoolRun::default();
    // per-tgd semi-naive watermarks: body-relation name → relation length
    // at this tgd's previous body evaluation. `None` = evaluate in full
    // (first round, or after an egd rewrite shifted insertion positions).
    let mut watermarks: Vec<Option<HashMap<String, u32>>> = vec![None; program.len()];
    // adaptive re-optimization: a re-costed plan shadows the program's
    // compiled plan for the rest of this run. Watermarks are keyed by
    // relation name, not plan state, so they survive the swap.
    let mut overrides: Vec<Option<TgdPlan>> = vec![None; program.len()];
    let mut replans = 0u32;
    loop {
        if let Some(limit) = budget.max_rounds() {
            if stats.rounds as u64 >= limit {
                return Err(ChaseFailure {
                    error: ExecError::Diverged { rounds: limit },
                    stats,
                });
            }
        }
        gov.check_now().map_err(|error| ChaseFailure { error, stats })?;
        if let Some(ratio) = adapt {
            // round boundaries are governor safepoints: compare each
            // costed plan's compile-time body cardinalities with the
            // live statistics; past the drift ratio, re-plan. recost()
            // keeps the frozen canonical enumeration order, so the swap
            // changes the walk (the work), never the results.
            for (slot, compiled) in overrides.iter_mut().zip(program.plans()) {
                let current = slot.as_ref().unwrap_or(compiled);
                if current.is_costed() && current.misestimated(db, ratio) {
                    if let Some(fresh) = current.recost(db) {
                        *slot = Some(fresh);
                        replans += 1;
                    }
                }
            }
        }
        stats.rounds += 1;
        // per-round latency: one clock read per round when enabled, and
        // clock reads never touch results, so bit-identity is preserved
        let round_started = tel.is_enabled().then(mm_telemetry::clock::now);
        let round_before = (stats.fired, stats.nulls, db.total_tuples());
        let mut changed = false;
        let mut round = |db: &mut Database,
                         stats: &mut ChaseStats,
                         changed: &mut bool,
                         watermarks: &mut Vec<Option<HashMap<String, u32>>>|
         -> Result<Option<ChaseOutcome>, ExecError> {
            for (ti, compiled) in program.plans().iter().enumerate() {
                let plan = overrides[ti].as_ref().unwrap_or(compiled);
                let rel_len =
                    |db: &Database, r: &str| db.relation(r).map_or(0, |rel| rel.tuples().len() as u32);
                let mut matches = Vec::new();
                match watermarks[ti].as_ref().filter(|_| semi_naive) {
                    Some(wm) => {
                        let grew = plan
                            .body_rels()
                            .iter()
                            .any(|r| rel_len(db, r) > wm.get(r).copied().unwrap_or(0));
                        if !grew {
                            // no delta: every body binding was already
                            // enumerated (and its head satisfied or
                            // fired) at this tgd's previous evaluation
                            continue;
                        }
                        if threads > 1 {
                            par.absorb(plan.body_matches_delta_parallel(
                                db,
                                wm,
                                use_indexes,
                                threads,
                                &mut gov,
                                &mut matches,
                            )?);
                        } else {
                            plan.body_matches_delta(db, wm, use_indexes, &mut gov, &mut matches)?;
                        }
                    }
                    None => {
                        if threads > 1 {
                            par.absorb(plan.body_matches_parallel(
                                db,
                                use_indexes,
                                threads,
                                &mut gov,
                                &mut matches,
                            )?);
                        } else {
                            plan.body_matches(db, use_indexes, &mut gov, &mut matches)?;
                        }
                    }
                }
                // record the watermark before firing, so this tgd's own
                // insertions count as next round's delta
                watermarks[ti] = Some(
                    plan.body_rels()
                        .iter()
                        .map(|r| (r.clone(), rel_len(db, r)))
                        .collect(),
                );
                for m in matches {
                    if plan.head_satisfied(&m.binding, db, use_indexes, &mut gov)? {
                        continue;
                    }
                    plan.fire(&m.binding, db, stats, &mut gov)?;
                    *changed = true;
                }
            }
            let mut egd_changed = false;
            if let Some(failed) = egd_pass(db, egds, use_indexes, &mut gov, &mut egd_changed)? {
                return Ok(Some(failed));
            }
            if egd_changed {
                *changed = true;
                // equate() removes and re-inserts tuples, shifting the
                // insertion positions the watermarks index — every body
                // must be evaluated in full next round
                for w in watermarks.iter_mut() {
                    *w = None;
                }
            }
            Ok(None)
        };
        let outcome = match round(db, &mut stats, &mut changed, &mut watermarks) {
            Ok(o) => o,
            Err(error) => return Err(ChaseFailure { error, stats }),
        };
        if let Some(t) = trace.as_deref_mut() {
            t.push(RoundExplain {
                round: stats.rounds,
                fired: stats.fired - round_before.0,
                nulls: stats.nulls - round_before.1,
                new_tuples: db.total_tuples().saturating_sub(round_before.2),
            });
        }
        if let (Some(started), Some(m)) = (round_started, tel.metrics()) {
            m.observe_hist(Hist::ChaseRoundUs, mm_telemetry::clock::elapsed_us(started));
        }
        if let Some(failed) = outcome {
            return Ok((failed, gov.consumption(), par, replans));
        }
        if !changed {
            return Ok((ChaseOutcome::Done(stats), gov.consumption(), par, replans));
        }
    }
}

/// One egd pass: evaluate every egd body and resolve violations by
/// equating labeled nulls (or failing on two distinct constants). Egd
/// bodies are compiled fresh each pass so the greedy join order tracks
/// current relation sizes, exactly like the per-call ordering of the
/// naive path — egd processing order decides which null survives, so it
/// must not drift between the reference and the indexed chase.
fn egd_pass(
    db: &mut Database,
    egds: &[Egd],
    use_indexes: bool,
    gov: &mut Governor,
    changed: &mut bool,
) -> Result<Option<ChaseOutcome>, ExecError> {
    for (i, egd) in egds.iter().enumerate() {
        let mut table = VarTable::new();
        let body = CqPlan::compile(&egd.body, &mut table, db, &[]);
        let mut scratch = vec![None; table.len()];
        let mut matches = Vec::new();
        let opts = ExecOptions { use_indexes, ..Default::default() };
        body.execute_governed(db, &mut scratch, &opts, gov, &mut matches)?;
        let lslot = table.slot(&egd.left);
        let rslot = table.slot(&egd.right);
        for m in matches {
            gov.step()?;
            let missing = |side: &str| {
                ExecError::malformed(format!(
                    "egd #{i} equates variable '{side}' not bound by its body"
                ))
            };
            let l = lslot
                .and_then(|s| m.binding[s].clone())
                .ok_or_else(|| missing(&egd.left))?;
            let r = rslot
                .and_then(|s| m.binding[s].clone())
                .ok_or_else(|| missing(&egd.right))?;
            if l == r {
                continue;
            }
            match (l.is_labeled(), r.is_labeled()) {
                (false, false) => return Ok(Some(ChaseOutcome::Failed { egd_index: i })),
                (true, _) => {
                    equate(db, l, r);
                    *changed = true;
                }
                (false, true) => {
                    equate(db, r, l);
                    *changed = true;
                }
            }
        }
    }
    Ok(None)
}

#[allow(clippy::expect_used)] // invariant-backed: see expect messages
/// Replace every occurrence of labeled null `from` with `to` across the
/// database (egd resolution).
fn equate(db: &mut Database, from: Value, to: Value) {
    debug_assert!(from.is_labeled());
    let names: Vec<String> = db.relation_names().map(String::from).collect();
    for name in names {
        let rel = db.relation(&name).expect("name enumerated");
        let mut replaced: Vec<(Tuple, Tuple)> = Vec::new();
        for t in rel.iter() {
            if t.values().contains(&from) {
                let new_vals: Vec<Value> = t
                    .values()
                    .iter()
                    .map(|v| if v == &from { to.clone() } else { v.clone() })
                    .collect();
                replaced.push((t.clone(), Tuple::new(new_vals)));
            }
        }
        if !replaced.is_empty() {
            let rel = db.relation_mut(&name).expect("name enumerated");
            for (old, new) in replaced {
                rel.remove(&old);
                rel.insert(new);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_metamodel::{DataType, SchemaBuilder};

    fn src_schema() -> Schema {
        SchemaBuilder::new("Src")
            .relation("Emp", &[("e", DataType::Text)])
            .build()
            .unwrap()
    }

    fn tgt_schema() -> Schema {
        SchemaBuilder::new("Tgt")
            .relation("Mgr", &[("e", DataType::Text), ("m", DataType::Text)])
            .relation("Person", &[("p", DataType::Text)])
            .build()
            .unwrap()
    }

    fn src_db() -> Database {
        let s = src_schema();
        let mut db = Database::empty_of(&s);
        db.insert("Emp", Tuple::from([Value::text("ann")]));
        db.insert("Emp", Tuple::from([Value::text("bob")]));
        db
    }

    #[test]
    fn st_chase_invents_nulls_for_existentials() {
        // Emp(e) -> exists m . Mgr(e, m) & Person(m)
        let tgd = Tgd::new(
            vec![Atom::vars("Emp", &["e"])],
            vec![Atom::vars("Mgr", &["e", "m"]), Atom::vars("Person", &["m"])],
        );
        let (tgt, stats) = chase_st(&tgt_schema(), &[tgd], &src_db());
        assert_eq!(stats.fired, 2);
        assert_eq!(stats.nulls, 2);
        let mgr = tgt.relation("Mgr").unwrap();
        assert_eq!(mgr.len(), 2);
        // each Mgr row's null also appears in Person (shared existential)
        let person = tgt.relation("Person").unwrap();
        for t in mgr.iter() {
            let m = &t.values()[1];
            assert!(m.is_labeled());
            assert!(person.contains(&Tuple::new(vec![m.clone()])));
        }
    }

    #[test]
    fn st_chase_skips_satisfied_heads() {
        // full tgd: Emp(e) -> Person(e), chased twice adds nothing new
        let tgd = Tgd::new(vec![Atom::vars("Emp", &["e"])], vec![Atom::vars("Person", &["e"])]);
        let (tgt, stats) = chase_st(&tgt_schema(), &[tgd.clone(), tgd], &src_db());
        assert_eq!(tgt.relation("Person").unwrap().len(), 2);
        // second copy of the tgd fires nothing
        assert_eq!(stats.fired, 2);
    }

    #[test]
    fn general_chase_reaches_fixpoint_with_target_tgds() {
        // copy + transitive closure on a cycle-free graph terminates
        let s = SchemaBuilder::new("S")
            .relation("E", &[("a", DataType::Int), ("b", DataType::Int)])
            .relation("T", &[("a", DataType::Int), ("b", DataType::Int)])
            .build()
            .unwrap();
        let mut db = Database::empty_of(&s);
        db.insert("E", Tuple::from([Value::Int(1), Value::Int(2)]));
        db.insert("E", Tuple::from([Value::Int(2), Value::Int(3)]));
        let copy = Tgd::new(vec![Atom::vars("E", &["x", "y"])], vec![Atom::vars("T", &["x", "y"])]);
        let trans = Tgd::new(
            vec![Atom::vars("T", &["x", "y"]), Atom::vars("T", &["y", "z"])],
            vec![Atom::vars("T", &["x", "z"])],
        );
        let out = chase_general(&mut db, &[copy, trans], &[], 10);
        assert!(matches!(out, ChaseOutcome::Done(_)), "{out}");
        assert_eq!(db.relation("T").unwrap().len(), 3); // 12, 23, 13
    }

    #[test]
    fn general_chase_bound_exceeded_on_nonterminating_tgd() {
        // R(x,y) -> exists z . R(y,z): grows forever
        let s = SchemaBuilder::new("S")
            .relation("R", &[("a", DataType::Int), ("b", DataType::Int)])
            .build()
            .unwrap();
        let mut db = Database::empty_of(&s);
        db.insert("R", Tuple::from([Value::Int(1), Value::Int(2)]));
        let t = Tgd::new(vec![Atom::vars("R", &["x", "y"])], vec![Atom::vars("R", &["y", "z"])]);
        let out = chase_general(&mut db, &[t], &[], 5);
        assert!(matches!(out, ChaseOutcome::BoundExceeded(_)));
    }

    #[test]
    fn egd_equates_labeled_null_with_constant() {
        let s = SchemaBuilder::new("S")
            .relation("R", &[("k", DataType::Int), ("v", DataType::Any)])
            .build()
            .unwrap();
        let mut db = Database::empty_of(&s);
        let n = db.fresh_labeled();
        db.insert("R", Tuple::from([Value::Int(1), n]));
        db.insert("R", Tuple::from([Value::Int(1), Value::text("x")]));
        // key egd: R(k, v1) & R(k, v2) -> v1 = v2
        let egd = Egd {
            body: vec![Atom::vars("R", &["k", "v1"]), Atom::vars("R", &["k", "v2"])],
            left: "v1".into(),
            right: "v2".into(),
        };
        let out = chase_general(&mut db, &[], &[egd], 10);
        assert!(matches!(out, ChaseOutcome::Done(_)));
        let r = db.relation("R").unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().next().unwrap().values()[1], Value::text("x"));
    }

    #[test]
    fn egd_on_two_constants_fails() {
        let s = SchemaBuilder::new("S")
            .relation("R", &[("k", DataType::Int), ("v", DataType::Text)])
            .build()
            .unwrap();
        let mut db = Database::empty_of(&s);
        db.insert("R", Tuple::from([Value::Int(1), Value::text("x")]));
        db.insert("R", Tuple::from([Value::Int(1), Value::text("y")]));
        let egd = Egd {
            body: vec![Atom::vars("R", &["k", "v1"]), Atom::vars("R", &["k", "v2"])],
            left: "v1".into(),
            right: "v2".into(),
        };
        let out = chase_general(&mut db, &[], &[egd], 10);
        assert_eq!(out, ChaseOutcome::Failed { egd_index: 0 });
    }

    #[test]
    fn key_egds_equate_nulls_forced_by_the_key() {
        let s = SchemaBuilder::new("S")
            .relation("R", &[("k", DataType::Int), ("v", DataType::Any), ("w", DataType::Any)])
            .key("R", &["k"])
            .build()
            .unwrap();
        let egds = egds_from_keys(&s);
        assert_eq!(egds.len(), 2); // one per non-key column
        let mut db = Database::empty_of(&s);
        let n1 = db.fresh_labeled();
        let n2 = db.fresh_labeled();
        db.insert("R", Tuple::from([Value::Int(1), n1, Value::text("x")]));
        db.insert("R", Tuple::from([Value::Int(1), Value::text("v!"), n2]));
        let out = chase_general(&mut db, &[], &egds, 10);
        assert!(matches!(out, ChaseOutcome::Done(_)), "{out}");
        let r = db.relation("R").unwrap();
        assert_eq!(r.len(), 1, "{r}");
        let t = r.iter().next().unwrap();
        assert_eq!(t.values()[1], Value::text("v!"));
        assert_eq!(t.values()[2], Value::text("x"));
    }

    #[test]
    fn key_egds_fail_on_true_key_conflicts() {
        let s = SchemaBuilder::new("S")
            .relation("R", &[("k", DataType::Int), ("v", DataType::Text)])
            .key("R", &["k"])
            .build()
            .unwrap();
        let egds = egds_from_keys(&s);
        let mut db = Database::empty_of(&s);
        db.insert("R", Tuple::from([Value::Int(1), Value::text("a")]));
        db.insert("R", Tuple::from([Value::Int(1), Value::text("b")]));
        assert!(matches!(
            chase_general(&mut db, &[], &egds, 10),
            ChaseOutcome::Failed { .. }
        ));
    }

    #[test]
    fn semi_naive_general_chase_is_bit_identical_to_reference() {
        // copy + transitive closure + existential invention: multiple
        // rounds of semi-naive deltas, null minting order must match
        let s = SchemaBuilder::new("S")
            .relation("E", &[("a", DataType::Int), ("b", DataType::Int)])
            .relation("T", &[("a", DataType::Int), ("b", DataType::Int)])
            .relation("W", &[("a", DataType::Int), ("w", DataType::Any)])
            .build()
            .unwrap();
        let mut db = Database::empty_of(&s);
        for i in 1..6 {
            db.insert("E", Tuple::from([Value::Int(i), Value::Int(i + 1)]));
        }
        let tgds = [
            Tgd::new(vec![Atom::vars("E", &["x", "y"])], vec![Atom::vars("T", &["x", "y"])]),
            Tgd::new(
                vec![Atom::vars("T", &["x", "y"]), Atom::vars("T", &["y", "z"])],
                vec![Atom::vars("T", &["x", "z"])],
            ),
            Tgd::new(vec![Atom::vars("T", &["x", "y"])], vec![Atom::vars("W", &["y", "w"])]),
        ];
        let budget = ExecBudget::unbounded().with_rounds(32);
        let mut fast = db.clone();
        let mut slow = db;
        let a = chase_general_governed(&mut fast, &tgds, &[], &budget).unwrap();
        let b = chase_general_reference(&mut slow, &tgds, &[], &budget).unwrap();
        assert_eq!(a, b, "outcome (incl. fired/rounds/nulls stats) must match");
        assert_eq!(fast, slow, "instances must match tuple-for-tuple incl. null ids");
    }

    #[test]
    fn semi_naive_with_egd_rewrites_is_bit_identical_to_reference() {
        // two tgds mint different nulls for the same key; the key egd
        // equates them mid-chase, which rewrites tuples and forces the
        // semi-naive watermarks to reset — results must still match
        let s = SchemaBuilder::new("S")
            .relation("Src", &[("k", DataType::Int)])
            .relation("R", &[("k", DataType::Int), ("v", DataType::Any)])
            .key("R", &["k"])
            .build()
            .unwrap();
        let mut db = Database::empty_of(&s);
        db.insert("Src", Tuple::from([Value::Int(1)]));
        db.insert("Src", Tuple::from([Value::Int(2)]));
        let tgds = [
            Tgd::new(vec![Atom::vars("Src", &["k"])], vec![Atom::vars("R", &["k", "v"])]),
            Tgd::new(vec![Atom::vars("Src", &["k"])], vec![Atom::vars("R", &["k", "w"])]),
        ];
        let egds = egds_from_keys(&s);
        let budget = ExecBudget::unbounded().with_rounds(32);
        let mut fast = db.clone();
        let mut slow = db;
        let a = chase_general_governed(&mut fast, &tgds, &egds, &budget).unwrap();
        let b = chase_general_reference(&mut slow, &tgds, &egds, &budget).unwrap();
        assert_eq!(a, b);
        assert_eq!(fast, slow);
        assert_eq!(fast.relation("R").unwrap().len(), 2);
    }

    #[test]
    fn st_chase_indexed_is_bit_identical_to_reference() {
        let tgd = Tgd::new(
            vec![Atom::vars("Emp", &["e"])],
            vec![Atom::vars("Mgr", &["e", "m"]), Atom::vars("Person", &["m"])],
        );
        let budget = ExecBudget::unbounded();
        let (fast, fs) =
            chase_st_governed(&tgt_schema(), std::slice::from_ref(&tgd), &src_db(), &budget)
                .unwrap();
        let (slow, ss) =
            chase_st_reference(&tgt_schema(), std::slice::from_ref(&tgd), &src_db(), &budget)
                .unwrap();
        assert_eq!(fs, ss);
        assert_eq!(fast, slow);
    }

    #[test]
    fn chase_is_idempotent_on_consistent_instance() {
        let tgd = Tgd::new(
            vec![Atom::vars("Emp", &["e"])],
            vec![Atom::vars("Person", &["e"])],
        );
        let (tgt, _) = chase_st(&tgt_schema(), std::slice::from_ref(&tgd), &src_db());
        // merge source+target and chase again: nothing fires
        let s2 = SchemaBuilder::new("Both")
            .relation("Emp", &[("e", DataType::Text)])
            .relation("Mgr", &[("e", DataType::Text), ("m", DataType::Text)])
            .relation("Person", &[("p", DataType::Text)])
            .build()
            .unwrap();
        let mut both = Database::empty_of(&s2);
        for (name, rel) in src_db().relations() {
            for t in rel.iter() {
                both.insert(name, t.clone());
            }
        }
        for (name, rel) in tgt.relations() {
            for t in rel.iter() {
                both.insert(name, t.clone());
            }
        }
        let before = both.total_tuples();
        let out = chase_general(&mut both, &[tgd], &[], 10);
        assert!(matches!(out, ChaseOutcome::Done(st) if st.fired == 0));
        assert_eq!(both.total_tuples(), before);
    }

    #[test]
    fn parallel_st_chase_is_bit_identical_to_sequential() {
        // 300-edge chain with a 2-atom join body and an existential head:
        // large enough that the parallel CQ path actually splits the
        // driver atom, existential so null-id minting order is exercised
        let src_s = SchemaBuilder::new("Src")
            .relation("E", &[("a", DataType::Int), ("b", DataType::Int)])
            .build()
            .unwrap();
        let tgt_s = SchemaBuilder::new("Tgt")
            .relation("M", &[("a", DataType::Int), ("b", DataType::Int), ("w", DataType::Any)])
            .build()
            .unwrap();
        let mut src = Database::empty_of(&src_s);
        for i in 0..300 {
            src.insert("E", Tuple::from([Value::Int(i), Value::Int(i + 1)]));
        }
        let tgd = Tgd::new(
            vec![Atom::vars("E", &["x", "y"]), Atom::vars("E", &["y", "z"])],
            vec![Atom::vars("M", &["x", "z", "w"])],
        );
        let program = ChaseProgram::compile(std::slice::from_ref(&tgd), &src);
        let budget = ExecBudget::unbounded();
        let (seq, seq_stats) = chase_st_prepared(&tgt_s, &program, &src, &budget).unwrap();
        assert_eq!(seq_stats.nulls, 299, "every join match mints a null");
        for threads in [2, 4, 8] {
            let (par, par_stats) =
                chase_st_parallel(&tgt_s, &program, &src, &budget, threads).unwrap();
            assert_eq!(par_stats, seq_stats, "stats must match at threads={threads}");
            assert_eq!(par, seq, "instances must match at threads={threads}");
        }
    }

    #[test]
    fn parallel_general_chase_is_bit_identical_to_sequential() {
        // copy + transitive closure + existential invention over a
        // 128-edge chain: several semi-naive rounds with real deltas,
        // each round's body matching fanned across workers
        let s = SchemaBuilder::new("S")
            .relation("E", &[("a", DataType::Int), ("b", DataType::Int)])
            .relation("T", &[("a", DataType::Int), ("b", DataType::Int)])
            .relation("W", &[("a", DataType::Int), ("w", DataType::Any)])
            .build()
            .unwrap();
        let mut db = Database::empty_of(&s);
        for i in 0..128 {
            db.insert("E", Tuple::from([Value::Int(i), Value::Int(i + 1)]));
        }
        let tgds = [
            Tgd::new(vec![Atom::vars("E", &["x", "y"])], vec![Atom::vars("T", &["x", "y"])]),
            Tgd::new(
                vec![Atom::vars("T", &["x", "y"]), Atom::vars("T", &["y", "z"])],
                vec![Atom::vars("T", &["x", "z"])],
            ),
            Tgd::new(vec![Atom::vars("T", &["x", "y"])], vec![Atom::vars("W", &["y", "w"])]),
        ];
        let program = ChaseProgram::compile(&tgds, &db);
        let budget = ExecBudget::unbounded().with_rounds(64);
        let mut seq = db.clone();
        let seq_out = chase_general_prepared(&mut seq, &program, &[], &budget).unwrap();
        for threads in [2, 4, 8] {
            let mut par = db.clone();
            let par_out =
                chase_general_parallel(&mut par, &program, &[], &budget, threads).unwrap();
            assert_eq!(par_out, seq_out, "outcome must match at threads={threads}");
            assert_eq!(par, seq, "instances must match at threads={threads}");
        }
    }

    #[test]
    fn governed_st_chase_shares_a_batch_budget() {
        // two exchanges forked off one shared meter: together they trip a
        // step cap that either alone stays well under. The source is
        // sized so each exchange crosses several governor safepoints
        // (every 1024 steps) and publishes its consumption.
        let tgd = Tgd::new(
            vec![Atom::vars("Emp", &["e"])],
            vec![Atom::vars("Mgr", &["e", "m"]), Atom::vars("Person", &["m"])],
        );
        let s = src_schema();
        let mut src = Database::empty_of(&s);
        for i in 0..4000 {
            src.insert("Emp", Tuple::from([Value::text(format!("e{i}"))]));
        }
        let program = ChaseProgram::compile(std::slice::from_ref(&tgd), &src);
        let solo_steps = {
            let budget = ExecBudget::unbounded();
            let mut gov = Governor::new(&budget);
            chase_st_prepared_governed(
                &tgt_schema(),
                &program,
                &src,
                &mut gov,
                1,
                &Telemetry::disabled(),
            )
            .unwrap();
            gov.steps_consumed()
        };
        assert!(solo_steps > 4096, "workload must span several safepoints: {solo_steps}");
        let budget = ExecBudget::unbounded().with_steps(solo_steps + solo_steps / 2);
        let lead = Governor::new(&budget);
        let (_, mut govs) = lead.fork_shared(2);
        let mut trips = 0;
        for g in govs.iter_mut() {
            let r = chase_st_prepared_governed(
                &tgt_schema(),
                &program,
                &src,
                g,
                1,
                &Telemetry::disabled(),
            );
            if let Err(f) = r {
                assert!(matches!(f.error, ExecError::BudgetExhausted { .. }), "{f}");
                trips += 1;
            }
        }
        assert!(trips >= 1, "a 1.5x-solo cap must trip across two exchanges");
    }
}
