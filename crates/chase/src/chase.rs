//! The chase procedure over tgds and egds.

use mm_eval::cq::{find_homomorphisms_governed, instantiate_atom, Binding};
use mm_expr::{Atom, Tgd};
use mm_guard::{ExecBudget, ExecError, Governor};
use mm_instance::{Database, Tuple, Value};
use mm_metamodel::Schema;
use std::collections::HashMap;
use std::fmt;

/// An equality-generating dependency: body → x = y for two body variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Egd {
    pub body: Vec<Atom>,
    pub left: String,
    pub right: String,
}

/// Derive the egds implied by a schema's key constraints: for a key on
/// columns K of relation R, two R-atoms agreeing on K must agree on every
/// other column. Chasing with these equates the labeled nulls that the
/// key forces together (the paper's §2 target-constraint reasoning).
pub fn egds_from_keys(schema: &Schema) -> Vec<Egd> {
    let mut out = Vec::new();
    for c in &schema.constraints {
        let mm_metamodel::Constraint::Key(k) = c else { continue };
        let Some(layout) = schema.instance_layout(&k.element) else { continue };
        // two atoms sharing variables on the key positions, distinct
        // variables elsewhere
        let mk_terms = |tag: &str| -> Vec<mm_expr::Term> {
            layout
                .iter()
                .map(|a| {
                    if k.attributes.contains(&a.name) {
                        mm_expr::Term::var(format!("k_{}", a.name))
                    } else {
                        mm_expr::Term::var(format!("{tag}_{}", a.name))
                    }
                })
                .collect()
        };
        for a in &layout {
            if k.attributes.contains(&a.name) {
                continue;
            }
            out.push(Egd {
                body: vec![
                    Atom::new(k.element.clone(), mk_terms("l")),
                    Atom::new(k.element.clone(), mk_terms("r")),
                ],
                left: format!("l_{}", a.name),
                right: format!("r_{}", a.name),
            });
        }
    }
    out
}

/// Statistics of a chase run (reported by the EQ7 bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaseStats {
    /// Number of tgd firings that inserted at least one tuple.
    pub fired: usize,
    /// Number of fixpoint rounds.
    pub rounds: usize,
    /// Labeled nulls minted.
    pub nulls: usize,
}

/// Outcome of a chase run.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaseOutcome {
    /// Fixpoint reached: the database satisfies all dependencies.
    Done(ChaseStats),
    /// Step bound exhausted before a fixpoint (possible for general tgds).
    BoundExceeded(ChaseStats),
    /// An egd tried to equate two distinct constants — no solution exists.
    Failed { egd_index: usize },
}

impl fmt::Display for ChaseOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseOutcome::Done(s) => {
                write!(f, "done: {} firings, {} rounds, {} nulls", s.fired, s.rounds, s.nulls)
            }
            ChaseOutcome::BoundExceeded(s) => {
                write!(f, "bound exceeded after {} firings", s.fired)
            }
            ChaseOutcome::Failed { egd_index } => write!(f, "failed at egd #{egd_index}"),
        }
    }
}

/// A governed chase that could not finish: the typed resource error plus
/// the statistics of the partial run (work done before the trip). For
/// `chase_general_governed` the partially chased database is left in
/// place, so callers can inspect or discard the partial instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaseFailure {
    pub error: ExecError,
    pub stats: ChaseStats,
}

impl fmt::Display for ChaseFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chase aborted after {} firings / {} rounds: {}",
            self.stats.fired, self.stats.rounds, self.error
        )
    }
}

impl std::error::Error for ChaseFailure {}

impl From<ChaseFailure> for ExecError {
    fn from(f: ChaseFailure) -> Self {
        f.error
    }
}

/// Check whether `head` (with existentials) is already satisfied in `db`
/// under `binding`: does some extension of the binding to the head's
/// existential variables map all head atoms into the database? Universal
/// bindings — including labeled nulls — stay fixed.
fn head_satisfied(
    head: &[Atom],
    binding: &Binding,
    db: &Database,
    gov: &mut Governor,
) -> Result<bool, ExecError> {
    let mut head_vars = std::collections::BTreeSet::new();
    for a in head {
        for t in &a.terms {
            t.vars(&mut head_vars);
        }
    }
    let seed: Binding = binding
        .iter()
        .filter(|(k, _)| head_vars.contains(k.as_str()))
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    Ok(!find_homomorphisms_governed(head, db, &seed, gov)?.is_empty())
}

/// Fire one tgd binding into `db`: instantiate every head atom (minting
/// memoized fresh nulls for existentials) and insert the tuples.
fn fire_head(
    tgd: &Tgd,
    b: &Binding,
    db: &mut Database,
    stats: &mut ChaseStats,
    gov: &mut Governor,
) -> Result<(), ExecError> {
    // one fresh null per existential variable per firing, shared
    // across the head atoms of this firing
    let mut memo: HashMap<String, Value> = HashMap::new();
    let mut minted = 0usize;
    for atom in &tgd.head {
        gov.row()?;
        let t = {
            let db_ref = &mut *db;
            let mut fresh = |v: &str| {
                memo.entry(v.to_string())
                    .or_insert_with(|| {
                        minted += 1;
                        db_ref.fresh_labeled()
                    })
                    .clone()
            };
            instantiate_atom(atom, b, &mut fresh)?
        };
        db.insert(&atom.relation, t);
    }
    stats.nulls += minted;
    stats.fired += 1;
    Ok(())
}

/// The standard chase for **source-to-target** tgds: bodies are evaluated
/// over `source_db`, heads asserted into a fresh target database. Because
/// target relations never feed tgd bodies, one pass over the tgds reaches
/// the fixpoint; the restricted chase still checks head satisfaction so
/// re-chasing an already-consistent pair adds nothing.
///
/// Returns the universal target instance and stats.
///
/// Legacy ungoverned entry point; panics on function terms in tgd heads
/// (use [`chase_st_governed`] for the typed-error path).
pub fn chase_st(
    target_schema: &Schema,
    tgds: &[Tgd],
    source_db: &Database,
) -> (Database, ChaseStats) {
    #[allow(clippy::expect_used)] // unbounded budget: only Unsupported inputs can fail
    chase_st_governed(target_schema, tgds, source_db, &ExecBudget::unbounded())
        .expect("chase_st on unsupported input; use chase_st_governed for a typed error")
}

/// Governed source-to-target chase: join probes, head-satisfaction
/// checks, and inserted tuples are metered against `budget`; on a trip
/// the typed error plus partial-run statistics come back as a
/// [`ChaseFailure`].
pub fn chase_st_governed(
    target_schema: &Schema,
    tgds: &[Tgd],
    source_db: &Database,
    budget: &ExecBudget,
) -> Result<(Database, ChaseStats), ChaseFailure> {
    let mut gov = Governor::new(budget);
    let mut target = Database::empty_of(target_schema);
    target.set_label_watermark(source_db.label_watermark());
    let mut stats = ChaseStats { rounds: 1, ..Default::default() };
    for tgd in tgds {
        let mut run = || -> Result<(), ExecError> {
            let bindings = find_homomorphisms_governed(&tgd.body, source_db, &Binding::new(), &mut gov)?;
            for b in bindings {
                if head_satisfied(&tgd.head, &b, &target, &mut gov)? {
                    continue;
                }
                fire_head(tgd, &b, &mut target, &mut stats, &mut gov)?;
            }
            Ok(())
        };
        run().map_err(|error| ChaseFailure { error, stats })?;
    }
    Ok((target, stats))
}

/// The bounded restricted chase for **general** tgds and egds over a
/// single database (source and target relations may coincide — schema
/// evolution scenarios chase views and bases together). `max_rounds`
/// bounds the fixpoint loop since general tgds need not terminate; an
/// exhausted bound comes back as [`ChaseOutcome::BoundExceeded`].
///
/// Legacy ungoverned entry point over [`chase_general_governed`].
pub fn chase_general(
    db: &mut Database,
    tgds: &[Tgd],
    egds: &[Egd],
    max_rounds: usize,
) -> ChaseOutcome {
    let budget = ExecBudget::unbounded().with_rounds(max_rounds as u64);
    match chase_general_governed(db, tgds, egds, &budget) {
        Ok(outcome) => outcome,
        Err(ChaseFailure { error: ExecError::Diverged { .. }, stats }) => {
            ChaseOutcome::BoundExceeded(stats)
        }
        #[allow(clippy::panic)] // unbounded except rounds: no other trip is reachable
        Err(f) => panic!("chase_general on unsupported input: {f}"),
    }
}

/// Governed general chase. The fixpoint loop runs until convergence or
/// until the budget trips:
///
/// * exceeding the budget's **round** cap without converging reports
///   [`ExecError::Diverged`] — the tgd set is divergent, or the cap is
///   too small; no more silent truncation,
/// * step / row / wall-clock caps and cancellation report their own
///   [`ExecError`] variants,
/// * an egd equating two distinct constants is a semantic answer, not a
///   resource failure: it stays `Ok(ChaseOutcome::Failed { .. })`.
///
/// On error the partially chased `db` is left in place (callers decide
/// whether a partial universal instance is useful) together with the
/// partial-run statistics in the [`ChaseFailure`].
pub fn chase_general_governed(
    db: &mut Database,
    tgds: &[Tgd],
    egds: &[Egd],
    budget: &ExecBudget,
) -> Result<ChaseOutcome, ChaseFailure> {
    let mut gov = Governor::new(budget);
    let mut stats = ChaseStats::default();
    loop {
        if let Some(limit) = budget.max_rounds() {
            if stats.rounds as u64 >= limit {
                return Err(ChaseFailure {
                    error: ExecError::Diverged { rounds: limit },
                    stats,
                });
            }
        }
        gov.check_now().map_err(|error| ChaseFailure { error, stats })?;
        stats.rounds += 1;
        let mut changed = false;
        let mut round = |db: &mut Database,
                         stats: &mut ChaseStats,
                         changed: &mut bool|
         -> Result<Option<ChaseOutcome>, ExecError> {
            for tgd in tgds {
                let bindings = find_homomorphisms_governed(&tgd.body, db, &Binding::new(), &mut gov)?;
                for b in bindings {
                    if head_satisfied(&tgd.head, &b, db, &mut gov)? {
                        continue;
                    }
                    fire_head(tgd, &b, db, stats, &mut gov)?;
                    *changed = true;
                }
            }
            for (i, egd) in egds.iter().enumerate() {
                let bindings = find_homomorphisms_governed(&egd.body, db, &Binding::new(), &mut gov)?;
                for b in bindings {
                    gov.step()?;
                    let missing = |side: &str| {
                        ExecError::malformed(format!(
                            "egd #{i} equates variable '{side}' not bound by its body"
                        ))
                    };
                    let l = b.get(&egd.left).ok_or_else(|| missing(&egd.left))?;
                    let r = b.get(&egd.right).ok_or_else(|| missing(&egd.right))?;
                    if l == r {
                        continue;
                    }
                    match (l.is_labeled(), r.is_labeled()) {
                        (false, false) => return Ok(Some(ChaseOutcome::Failed { egd_index: i })),
                        (true, _) => {
                            equate(db, l.clone(), r.clone());
                            *changed = true;
                        }
                        (false, true) => {
                            equate(db, r.clone(), l.clone());
                            *changed = true;
                        }
                    }
                }
            }
            Ok(None)
        };
        match round(db, &mut stats, &mut changed) {
            Ok(Some(failed)) => return Ok(failed),
            Ok(None) => {}
            Err(error) => return Err(ChaseFailure { error, stats }),
        }
        if !changed {
            return Ok(ChaseOutcome::Done(stats));
        }
    }
}

#[allow(clippy::expect_used)] // invariant-backed: see expect messages
/// Replace every occurrence of labeled null `from` with `to` across the
/// database (egd resolution).
fn equate(db: &mut Database, from: Value, to: Value) {
    debug_assert!(from.is_labeled());
    let names: Vec<String> = db.relation_names().map(String::from).collect();
    for name in names {
        let rel = db.relation(&name).expect("name enumerated");
        let mut replaced: Vec<(Tuple, Tuple)> = Vec::new();
        for t in rel.iter() {
            if t.values().contains(&from) {
                let new_vals: Vec<Value> = t
                    .values()
                    .iter()
                    .map(|v| if v == &from { to.clone() } else { v.clone() })
                    .collect();
                replaced.push((t.clone(), Tuple::new(new_vals)));
            }
        }
        if !replaced.is_empty() {
            let rel = db.relation_mut(&name).expect("name enumerated");
            for (old, new) in replaced {
                rel.remove(&old);
                rel.insert(new);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_metamodel::{DataType, SchemaBuilder};

    fn src_schema() -> Schema {
        SchemaBuilder::new("Src")
            .relation("Emp", &[("e", DataType::Text)])
            .build()
            .unwrap()
    }

    fn tgt_schema() -> Schema {
        SchemaBuilder::new("Tgt")
            .relation("Mgr", &[("e", DataType::Text), ("m", DataType::Text)])
            .relation("Person", &[("p", DataType::Text)])
            .build()
            .unwrap()
    }

    fn src_db() -> Database {
        let s = src_schema();
        let mut db = Database::empty_of(&s);
        db.insert("Emp", Tuple::from([Value::text("ann")]));
        db.insert("Emp", Tuple::from([Value::text("bob")]));
        db
    }

    #[test]
    fn st_chase_invents_nulls_for_existentials() {
        // Emp(e) -> exists m . Mgr(e, m) & Person(m)
        let tgd = Tgd::new(
            vec![Atom::vars("Emp", &["e"])],
            vec![Atom::vars("Mgr", &["e", "m"]), Atom::vars("Person", &["m"])],
        );
        let (tgt, stats) = chase_st(&tgt_schema(), &[tgd], &src_db());
        assert_eq!(stats.fired, 2);
        assert_eq!(stats.nulls, 2);
        let mgr = tgt.relation("Mgr").unwrap();
        assert_eq!(mgr.len(), 2);
        // each Mgr row's null also appears in Person (shared existential)
        let person = tgt.relation("Person").unwrap();
        for t in mgr.iter() {
            let m = &t.values()[1];
            assert!(m.is_labeled());
            assert!(person.contains(&Tuple::new(vec![m.clone()])));
        }
    }

    #[test]
    fn st_chase_skips_satisfied_heads() {
        // full tgd: Emp(e) -> Person(e), chased twice adds nothing new
        let tgd = Tgd::new(vec![Atom::vars("Emp", &["e"])], vec![Atom::vars("Person", &["e"])]);
        let (tgt, stats) = chase_st(&tgt_schema(), &[tgd.clone(), tgd], &src_db());
        assert_eq!(tgt.relation("Person").unwrap().len(), 2);
        // second copy of the tgd fires nothing
        assert_eq!(stats.fired, 2);
    }

    #[test]
    fn general_chase_reaches_fixpoint_with_target_tgds() {
        // copy + transitive closure on a cycle-free graph terminates
        let s = SchemaBuilder::new("S")
            .relation("E", &[("a", DataType::Int), ("b", DataType::Int)])
            .relation("T", &[("a", DataType::Int), ("b", DataType::Int)])
            .build()
            .unwrap();
        let mut db = Database::empty_of(&s);
        db.insert("E", Tuple::from([Value::Int(1), Value::Int(2)]));
        db.insert("E", Tuple::from([Value::Int(2), Value::Int(3)]));
        let copy = Tgd::new(vec![Atom::vars("E", &["x", "y"])], vec![Atom::vars("T", &["x", "y"])]);
        let trans = Tgd::new(
            vec![Atom::vars("T", &["x", "y"]), Atom::vars("T", &["y", "z"])],
            vec![Atom::vars("T", &["x", "z"])],
        );
        let out = chase_general(&mut db, &[copy, trans], &[], 10);
        assert!(matches!(out, ChaseOutcome::Done(_)), "{out}");
        assert_eq!(db.relation("T").unwrap().len(), 3); // 12, 23, 13
    }

    #[test]
    fn general_chase_bound_exceeded_on_nonterminating_tgd() {
        // R(x,y) -> exists z . R(y,z): grows forever
        let s = SchemaBuilder::new("S")
            .relation("R", &[("a", DataType::Int), ("b", DataType::Int)])
            .build()
            .unwrap();
        let mut db = Database::empty_of(&s);
        db.insert("R", Tuple::from([Value::Int(1), Value::Int(2)]));
        let t = Tgd::new(vec![Atom::vars("R", &["x", "y"])], vec![Atom::vars("R", &["y", "z"])]);
        let out = chase_general(&mut db, &[t], &[], 5);
        assert!(matches!(out, ChaseOutcome::BoundExceeded(_)));
    }

    #[test]
    fn egd_equates_labeled_null_with_constant() {
        let s = SchemaBuilder::new("S")
            .relation("R", &[("k", DataType::Int), ("v", DataType::Any)])
            .build()
            .unwrap();
        let mut db = Database::empty_of(&s);
        let n = db.fresh_labeled();
        db.insert("R", Tuple::from([Value::Int(1), n]));
        db.insert("R", Tuple::from([Value::Int(1), Value::text("x")]));
        // key egd: R(k, v1) & R(k, v2) -> v1 = v2
        let egd = Egd {
            body: vec![Atom::vars("R", &["k", "v1"]), Atom::vars("R", &["k", "v2"])],
            left: "v1".into(),
            right: "v2".into(),
        };
        let out = chase_general(&mut db, &[], &[egd], 10);
        assert!(matches!(out, ChaseOutcome::Done(_)));
        let r = db.relation("R").unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().next().unwrap().values()[1], Value::text("x"));
    }

    #[test]
    fn egd_on_two_constants_fails() {
        let s = SchemaBuilder::new("S")
            .relation("R", &[("k", DataType::Int), ("v", DataType::Text)])
            .build()
            .unwrap();
        let mut db = Database::empty_of(&s);
        db.insert("R", Tuple::from([Value::Int(1), Value::text("x")]));
        db.insert("R", Tuple::from([Value::Int(1), Value::text("y")]));
        let egd = Egd {
            body: vec![Atom::vars("R", &["k", "v1"]), Atom::vars("R", &["k", "v2"])],
            left: "v1".into(),
            right: "v2".into(),
        };
        let out = chase_general(&mut db, &[], &[egd], 10);
        assert_eq!(out, ChaseOutcome::Failed { egd_index: 0 });
    }

    #[test]
    fn key_egds_equate_nulls_forced_by_the_key() {
        let s = SchemaBuilder::new("S")
            .relation("R", &[("k", DataType::Int), ("v", DataType::Any), ("w", DataType::Any)])
            .key("R", &["k"])
            .build()
            .unwrap();
        let egds = egds_from_keys(&s);
        assert_eq!(egds.len(), 2); // one per non-key column
        let mut db = Database::empty_of(&s);
        let n1 = db.fresh_labeled();
        let n2 = db.fresh_labeled();
        db.insert("R", Tuple::from([Value::Int(1), n1, Value::text("x")]));
        db.insert("R", Tuple::from([Value::Int(1), Value::text("v!"), n2]));
        let out = chase_general(&mut db, &[], &egds, 10);
        assert!(matches!(out, ChaseOutcome::Done(_)), "{out}");
        let r = db.relation("R").unwrap();
        assert_eq!(r.len(), 1, "{r}");
        let t = r.iter().next().unwrap();
        assert_eq!(t.values()[1], Value::text("v!"));
        assert_eq!(t.values()[2], Value::text("x"));
    }

    #[test]
    fn key_egds_fail_on_true_key_conflicts() {
        let s = SchemaBuilder::new("S")
            .relation("R", &[("k", DataType::Int), ("v", DataType::Text)])
            .key("R", &["k"])
            .build()
            .unwrap();
        let egds = egds_from_keys(&s);
        let mut db = Database::empty_of(&s);
        db.insert("R", Tuple::from([Value::Int(1), Value::text("a")]));
        db.insert("R", Tuple::from([Value::Int(1), Value::text("b")]));
        assert!(matches!(
            chase_general(&mut db, &[], &egds, 10),
            ChaseOutcome::Failed { .. }
        ));
    }

    #[test]
    fn chase_is_idempotent_on_consistent_instance() {
        let tgd = Tgd::new(
            vec![Atom::vars("Emp", &["e"])],
            vec![Atom::vars("Person", &["e"])],
        );
        let (tgt, _) = chase_st(&tgt_schema(), std::slice::from_ref(&tgd), &src_db());
        // merge source+target and chase again: nothing fires
        let s2 = SchemaBuilder::new("Both")
            .relation("Emp", &[("e", DataType::Text)])
            .relation("Mgr", &[("e", DataType::Text), ("m", DataType::Text)])
            .relation("Person", &[("p", DataType::Text)])
            .build()
            .unwrap();
        let mut both = Database::empty_of(&s2);
        for (name, rel) in src_db().relations() {
            for t in rel.iter() {
                both.insert(name, t.clone());
            }
        }
        for (name, rel) in tgt.relations() {
            for t in rel.iter() {
                both.insert(name, t.clone());
            }
        }
        let before = both.total_tuples();
        let out = chase_general(&mut both, &[tgd], &[], 10);
        assert!(matches!(out, ChaseOutcome::Done(st) if st.fired == 0));
        assert_eq!(both.total_tuples(), before);
    }
}
