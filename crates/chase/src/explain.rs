//! Structured explain reports for chase runs.
//!
//! [`ChaseExplain`] captures what a chase *did* and what its compiled
//! program *looks like*: per-tgd join orders and probe columns (via
//! [`mm_eval::PlanExplain`]), and per-round deltas (firings, minted
//! nulls, net new tuples). The report renders as a typed value and as a
//! deterministic [`mm_telemetry::ExplainNode`] tree whose `Display` is
//! byte-identical across identical runs.

use crate::chase::ChaseStats;
use crate::plan::ChaseProgram;
use mm_eval::PlanExplain;
use mm_instance::Database;
use mm_telemetry::ExplainNode;
use std::fmt;

/// One compiled tgd, described.
#[derive(Debug, Clone, PartialEq)]
pub struct TgdExplain {
    /// Position in the program's tgd list.
    pub index: usize,
    /// The head-satisfaction fast path applies (no existentials or
    /// function terms in the head).
    pub head_ground: bool,
    /// Distinct body relations — the semi-naive watermark domain.
    pub body_rels: Vec<String>,
    /// The body's compiled plan: join order, probe columns, per-atom
    /// cardinalities against the database explained against.
    pub body: PlanExplain,
}

/// What one fixpoint round contributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundExplain {
    /// 1-based round number.
    pub round: usize,
    /// Tgd firings that inserted at least one tuple this round.
    pub fired: usize,
    /// Labeled nulls minted this round.
    pub nulls: usize,
    /// Net change in total tuple count over the round (egd rewrites can
    /// shrink relations, so this is clamped at zero).
    pub new_tuples: usize,
}

/// Full report of a chase run: program shape plus per-round history.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaseExplain {
    /// `"st"` (source-to-target, single pass) or `"general"` (fixpoint).
    pub mode: &'static str,
    /// Final run statistics.
    pub stats: ChaseStats,
    pub tgds: Vec<TgdExplain>,
    pub rounds: Vec<RoundExplain>,
    /// Degree of parallelism the chase was asked to run with (1 =
    /// sequential). The *request*, not the achieved worker count: small
    /// inputs degrade to sequential without changing this field, so the
    /// report stays byte-identical across machines.
    pub threads: usize,
    /// Mid-run adaptive re-optimizations performed (see
    /// [`crate::chase_general_adaptive`]). Zero for non-adaptive runs and
    /// rendered only when non-zero, keeping pre-existing reports
    /// byte-identical.
    pub replans: u32,
}

impl ChaseExplain {
    /// Render as a telemetry explain tree (stable field order).
    pub fn to_node(&self) -> ExplainNode {
        let mut node = ExplainNode::new("chase")
            .field("mode", self.mode)
            .field("threads", self.threads)
            .field("rounds", self.stats.rounds)
            .field("fired", self.stats.fired)
            .field("nulls", self.stats.nulls);
        if self.replans > 0 {
            node = node.field("replans", self.replans);
        }
        for t in &self.tgds {
            node.push_child(
                ExplainNode::new(format!("tgd#{}", t.index))
                    .field("head_ground", t.head_ground)
                    .field("join_order", t.body.join_order.join(","))
                    .field("body_rels", t.body_rels.join(","))
                    .child(t.body.to_node()),
            );
        }
        for r in &self.rounds {
            node.push_child(
                ExplainNode::new(format!("round#{}", r.round))
                    .field("fired", r.fired)
                    .field("nulls", r.nulls)
                    .field("new_tuples", r.new_tuples),
            );
        }
        node
    }
}

impl fmt::Display for ChaseExplain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.to_node().fmt(f)
    }
}

impl ChaseProgram {
    /// Describe every compiled tgd against `db` (cardinalities and
    /// range selectivities are read from `db`; nothing executes).
    pub fn explain(&self, db: &Database) -> Vec<TgdExplain> {
        self.plans()
            .iter()
            .enumerate()
            .map(|(i, p)| TgdExplain {
                index: i,
                head_ground: p.head_is_ground(),
                body_rels: p.body_rels().to_vec(),
                body: p.body_plan().explain(db, None),
            })
            .collect()
    }
}
