//! Homomorphisms between database instances.
//!
//! Two universal instances are interchangeable for certain-answer
//! purposes iff they are homomorphically equivalent (constants fixed,
//! labeled nulls free). This is the equivalence used to validate that a
//! composed mapping produces "the same" target as chasing through the
//! intermediate schema.

use mm_eval::cq::find_homomorphisms;
use mm_expr::{Atom, Lit, Term};
use mm_instance::{Database, Value};

fn value_to_term(v: &Value) -> Term {
    match v {
        Value::Int(i) => Term::Const(Lit::Int(*i)),
        Value::Double(d) => Term::Const(Lit::Double(*d)),
        Value::Bool(b) => Term::Const(Lit::Bool(*b)),
        Value::Text(s) => Term::Const(Lit::Text(s.clone())),
        Value::Sym(s) => Term::Const(Lit::Text(s.as_str().to_string())),
        Value::Date(d) => Term::Const(Lit::Date(*d)),
        Value::Null => Term::Const(Lit::Null),
        // nulls become variables: free to map anywhere, consistently
        Value::Labeled(l) => Term::Var(format!("$N{l}")),
    }
}

/// Does a homomorphism `from → to` exist? Constants map to themselves,
/// labeled nulls may map to any value (consistently across tuples).
pub fn exists_hom(from: &Database, to: &Database) -> bool {
    let atoms: Vec<Atom> = from
        .relations()
        .flat_map(|(name, rel)| {
            rel.iter().map(move |t| Atom {
                relation: name.to_string(),
                terms: t.values().iter().map(value_to_term).collect(),
            })
        })
        .collect();
    if atoms.is_empty() {
        return true;
    }
    !find_homomorphisms(&atoms, to).is_empty()
}

/// Homomorphic equivalence of two instances.
pub fn hom_equivalent(a: &Database, b: &Database) -> bool {
    exists_hom(a, b) && exists_hom(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_instance::{RelSchema, Relation, Tuple};
    use mm_metamodel::DataType;

    fn db(pairs: &[(i64, Value)]) -> Database {
        let mut d = Database::new("D");
        let mut r = Relation::new(RelSchema::of(&[("a", DataType::Int), ("b", DataType::Any)]));
        for (a, b) in pairs {
            r.insert(Tuple::from([Value::Int(*a), b.clone()]));
        }
        d.insert_relation("R", r);
        d
    }

    #[test]
    fn instance_with_null_maps_into_ground_superset() {
        let a = db(&[(1, Value::Labeled(0))]);
        let b = db(&[(1, Value::Int(5)), (2, Value::Int(6))]);
        assert!(exists_hom(&a, &b));
        assert!(!exists_hom(&b, &a)); // constant 5 has nowhere to go
    }

    #[test]
    fn equivalence_of_renamed_nulls() {
        let a = db(&[(1, Value::Labeled(0))]);
        let b = db(&[(1, Value::Labeled(42))]);
        assert!(hom_equivalent(&a, &b));
    }

    #[test]
    fn shared_null_must_map_consistently() {
        // a: R(1, N0), R(2, N0)  — same null both rows
        // b: R(1, 7), R(2, 8)    — would need N0 ↦ 7 and N0 ↦ 8
        let a = db(&[(1, Value::Labeled(0)), (2, Value::Labeled(0))]);
        let b = db(&[(1, Value::Int(7)), (2, Value::Int(8))]);
        assert!(!exists_hom(&a, &b));
        let c = db(&[(1, Value::Int(7)), (2, Value::Int(7))]);
        assert!(exists_hom(&a, &c));
    }

    #[test]
    fn empty_instance_maps_anywhere() {
        let a = Database::new("empty");
        let b = db(&[(1, Value::Int(1))]);
        assert!(exists_hom(&a, &b));
    }
}
