//! Core minimization of universal instances.
//!
//! Among the universal solutions of a data-exchange problem, the *core* is
//! the smallest one (Fagin, Kolaitis, Popa: "Data exchange: getting to the
//! core", cited in §4). This module computes it by folding: repeatedly
//! look for an endomorphism of the instance (constants fixed, labeled
//! nulls may map to anything) that is not surjective, and quotient the
//! instance by it.
//!
//! Exact core computation is exponential in the number of nulls per block;
//! the search below is complete for the small-to-medium instances the
//! engine produces but bounds its backtracking, falling back to the
//! (still universal, just non-minimal) input when the bound trips.

use mm_instance::{Database, Tuple, Value};
use std::collections::HashMap;

/// Result of core minimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreStats {
    pub tuples_before: usize,
    pub tuples_after: usize,
    /// True if the backtracking bound was hit (result may not be minimal).
    pub bounded: bool,
}

const SEARCH_BUDGET: usize = 200_000;

/// Compute the core of `db` (in place on a clone), returning the reduced
/// database and stats.
pub fn core_of(db: &Database) -> (Database, CoreStats) {
    let mut cur = db.clone();
    let before = cur.total_tuples();
    let mut bounded = false;
    loop {
        match find_proper_endomorphism(&cur) {
            Search::Found(h) => {
                cur = apply_endomorphism(&cur, &h);
            }
            Search::None => break,
            Search::Bounded => {
                bounded = true;
                break;
            }
        }
    }
    let after = cur.total_tuples();
    (cur, CoreStats { tuples_before: before, tuples_after: after, bounded })
}

enum Search {
    Found(HashMap<u64, Value>),
    None,
    Bounded,
}

/// Look for an endomorphism h (identity on constants, arbitrary on
/// labeled nulls) such that h(db) ⊆ db and h is not injective on the
/// tuples (i.e. the image has strictly fewer tuples).
fn find_proper_endomorphism(db: &Database) -> Search {
    // collect all labeled nulls
    let mut nulls: Vec<u64> = Vec::new();
    for (_, rel) in db.relations() {
        for t in rel.iter() {
            for v in t.values() {
                if let Value::Labeled(l) = v {
                    if !nulls.contains(l) {
                        nulls.push(*l);
                    }
                }
            }
        }
    }
    if nulls.is_empty() {
        return Search::None;
    }
    // candidate images per null: any value occurring in the same column of
    // the same relation
    let mut candidates: HashMap<u64, Vec<Value>> = HashMap::new();
    for (_, rel) in db.relations() {
        for t in rel.iter() {
            for (i, v) in t.values().iter().enumerate() {
                if let Value::Labeled(l) = v {
                    let entry = candidates.entry(*l).or_default();
                    for t2 in rel.iter() {
                        let cand = &t2.values()[i];
                        if !entry.contains(cand) {
                            entry.push(cand.clone());
                        }
                    }
                }
            }
        }
    }
    // backtracking over null assignments; prune: every tuple's image must
    // stay in the database.
    let tuples: Vec<(String, Tuple)> = db
        .relations()
        .flat_map(|(n, r)| r.iter().map(move |t| (n.to_string(), t.clone())))
        .collect();
    let mut assign: HashMap<u64, Value> = HashMap::new();
    let mut budget = SEARCH_BUDGET;
    if search(db, &tuples, &nulls, 0, &candidates, &mut assign, &mut budget) {
        Search::Found(assign)
    } else if budget == 0 {
        Search::Bounded
    } else {
        Search::None
    }
}

#[allow(clippy::expect_used)] // invariant-backed: see expect messages
fn search(
    db: &Database,
    tuples: &[(String, Tuple)],
    nulls: &[u64],
    idx: usize,
    candidates: &HashMap<u64, Vec<Value>>,
    assign: &mut HashMap<u64, Value>,
    budget: &mut usize,
) -> bool {
    if *budget == 0 {
        return false;
    }
    *budget -= 1;
    if idx == nulls.len() {
        // full assignment: is the image consistent and strictly smaller?
        let mut image_count = 0usize;
        let mut seen: HashMap<&str, std::collections::HashSet<Tuple>> = HashMap::new();
        for (name, t) in tuples {
            let img = map_tuple(t, assign);
            let rel = db.relation(name).expect("relation exists");
            if !rel.contains(&img) {
                return false;
            }
            if seen.entry(name.as_str()).or_default().insert(img) {
                image_count += 1;
            }
        }
        return image_count < tuples.len();
    }
    let n = nulls[idx];
    for cand in &candidates[&n] {
        // skip self-loops early only if identity; identity is allowed per
        // null (just not for all of them, enforced by the final check)
        assign.insert(n, cand.clone());
        // prune: every tuple fully mapped so far must be in db
        let ok = tuples.iter().all(|(name, t)| {
            let Some(img) = try_map_tuple(t, assign) else { return true };
            db.relation(name).expect("relation exists").contains(&img)
        });
        if ok && search(db, tuples, nulls, idx + 1, candidates, assign, budget) {
            return true;
        }
        assign.remove(&n);
    }
    false
}

fn map_tuple(t: &Tuple, assign: &HashMap<u64, Value>) -> Tuple {
    Tuple::new(
        t.values()
            .iter()
            .map(|v| match v {
                Value::Labeled(l) => assign.get(l).cloned().unwrap_or_else(|| v.clone()),
                _ => v.clone(),
            })
            .collect(),
    )
}

/// Map a tuple only if all its nulls are assigned; `None` = not yet fully
/// determined.
fn try_map_tuple(t: &Tuple, assign: &HashMap<u64, Value>) -> Option<Tuple> {
    let mut vals = Vec::with_capacity(t.arity());
    for v in t.values() {
        match v {
            Value::Labeled(l) => vals.push(assign.get(l)?.clone()),
            _ => vals.push(v.clone()),
        }
    }
    Some(Tuple::new(vals))
}

fn apply_endomorphism(db: &Database, h: &HashMap<u64, Value>) -> Database {
    let mut out = Database::new(db.name.clone());
    out.set_label_watermark(db.label_watermark());
    for (name, rel) in db.relations() {
        let mut nr = mm_instance::Relation::new(rel.schema.clone());
        for t in rel.iter() {
            nr.insert(map_tuple(t, h));
        }
        out.insert_relation(name, nr);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_instance::RelSchema;
    use mm_metamodel::DataType;

    fn rel2() -> RelSchema {
        RelSchema::of(&[("a", DataType::Any), ("b", DataType::Any)])
    }

    #[test]
    fn redundant_null_tuple_folds_away() {
        // R(1, 2) and R(1, N0): N0 ↦ 2 folds the second tuple into the first
        let mut db = Database::new("U");
        let mut r = mm_instance::Relation::new(rel2());
        r.insert(Tuple::from([Value::Int(1), Value::Int(2)]));
        r.insert(Tuple::from([Value::Int(1), Value::Labeled(0)]));
        db.insert_relation("R", r);
        let (core, stats) = core_of(&db);
        assert_eq!(stats.tuples_before, 2);
        assert_eq!(stats.tuples_after, 1);
        assert!(!stats.bounded);
        assert!(core.relation("R").unwrap().contains(&Tuple::from([Value::Int(1), Value::Int(2)])));
    }

    #[test]
    fn non_redundant_nulls_survive() {
        // R(1, N0) alone: nothing to fold into
        let mut db = Database::new("U");
        let mut r = mm_instance::Relation::new(rel2());
        r.insert(Tuple::from([Value::Int(1), Value::Labeled(0)]));
        db.insert_relation("R", r);
        let (core, stats) = core_of(&db);
        assert_eq!(stats.tuples_after, 1);
        assert!(core.relation("R").unwrap().iter().next().unwrap().values()[1].is_labeled());
    }

    #[test]
    fn chained_nulls_fold_consistently() {
        // R(1, N0), R(N0, 2)  plus  R(1, 5), R(5, 2):
        // N0 ↦ 5 folds both null tuples simultaneously
        let mut db = Database::new("U");
        let mut r = mm_instance::Relation::new(rel2());
        r.insert(Tuple::from([Value::Int(1), Value::Labeled(0)]));
        r.insert(Tuple::from([Value::Labeled(0), Value::Int(2)]));
        r.insert(Tuple::from([Value::Int(1), Value::Int(5)]));
        r.insert(Tuple::from([Value::Int(5), Value::Int(2)]));
        db.insert_relation("R", r);
        let (core, stats) = core_of(&db);
        assert_eq!(stats.tuples_after, 2);
        assert!(core.is_ground());
    }

    #[test]
    fn ground_database_is_its_own_core() {
        let mut db = Database::new("U");
        let mut r = mm_instance::Relation::new(rel2());
        r.insert(Tuple::from([Value::Int(1), Value::Int(2)]));
        r.insert(Tuple::from([Value::Int(3), Value::Int(4)]));
        db.insert_relation("R", r);
        let (core, stats) = core_of(&db);
        assert_eq!(stats.tuples_before, stats.tuples_after);
        assert_eq!(core.total_tuples(), 2);
    }

    #[test]
    fn two_independent_redundant_nulls() {
        let mut db = Database::new("U");
        let mut r = mm_instance::Relation::new(rel2());
        r.insert(Tuple::from([Value::Int(1), Value::Int(2)]));
        r.insert(Tuple::from([Value::Int(1), Value::Labeled(0)]));
        r.insert(Tuple::from([Value::Int(3), Value::Int(4)]));
        r.insert(Tuple::from([Value::Int(3), Value::Labeled(1)]));
        db.insert_relation("R", r);
        let (core, _) = core_of(&db);
        assert_eq!(core.total_tuples(), 2);
        assert!(core.is_ground());
    }
}
