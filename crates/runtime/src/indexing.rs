//! Index advice for mapped schemas (§5, "Indexing"): "it is probably
//! best to index the data sources and derive a mapping that enables the
//! index to be accessed via T."
//!
//! The advisor takes a workload of *target-level* queries, unfolds each
//! through the mapping down to the base schema, and mines the unfolded
//! plans for index opportunities: join keys (hash-join build/probe
//! columns) and equality-selection columns. Recommendations are ranked by
//! how many workload queries would use them.

use mm_expr::{Expr, Predicate, Scalar, ViewSet};
use mm_metamodel::Schema;
use std::collections::BTreeMap;
use std::fmt;

/// Why an index helps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IndexUse {
    JoinKey,
    EqualitySelection,
}

impl fmt::Display for IndexUse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IndexUse::JoinKey => "join key",
            IndexUse::EqualitySelection => "equality selection",
        })
    }
}

/// One recommendation: an index on `relation(column)` of the base schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexRecommendation {
    pub relation: String,
    pub column: String,
    pub uses: Vec<IndexUse>,
    /// How many workload queries touch this (relation, column) this way.
    pub demand: usize,
}

impl fmt::Display for IndexRecommendation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let uses: Vec<String> = self.uses.iter().map(IndexUse::to_string).collect();
        write!(
            f,
            "CREATE INDEX ON {}({})  -- {} ({} queries)",
            self.relation,
            self.column,
            uses.join(" + "),
            self.demand
        )
    }
}

/// Advise base-relation indexes for a workload of target-level queries
/// mediated through `views`.
pub fn advise_indexes(
    workload: &[Expr],
    views: &ViewSet,
    base_schema: &Schema,
) -> Vec<IndexRecommendation> {
    let mut demand: BTreeMap<(String, String), BTreeMap<IndexUse, usize>> = BTreeMap::new();
    for q in workload {
        let unfolded = mm_eval::unfold_query(q, views);
        // optimize so selections sit against their base relations
        let plan = mm_expr::optimize(&unfolded, base_schema).unwrap_or(unfolded);
        let mut seen: Vec<((String, String), IndexUse)> = Vec::new();
        mine(&plan, base_schema, &mut seen);
        seen.sort();
        seen.dedup();
        for (key, use_) in seen {
            *demand.entry(key).or_default().entry(use_).or_default() += 1;
        }
    }
    let mut out: Vec<IndexRecommendation> = demand
        .into_iter()
        .map(|((relation, column), uses)| {
            let total = uses.values().sum();
            IndexRecommendation {
                relation,
                column,
                uses: uses.into_keys().collect(),
                demand: total,
            }
        })
        .collect();
    out.sort_by(|a, b| b.demand.cmp(&a.demand).then_with(|| a.relation.cmp(&b.relation)));
    out
}

/// Collect (relation, column, use) facts from a plan. A column is
/// attributed to a base relation when the subplan beneath the join /
/// selection is a scan (optionally selected/projected) of that relation
/// still exposing the column under its base name.
fn mine(e: &Expr, schema: &Schema, out: &mut Vec<((String, String), IndexUse)>) {
    match e {
        Expr::Join { left, right, on } | Expr::LeftJoin { left, right, on } => {
            for (l, r) in on {
                if let Some(rel) = scan_of(left, l, schema) {
                    out.push(((rel, l.clone()), IndexUse::JoinKey));
                }
                if let Some(rel) = scan_of(right, r, schema) {
                    out.push(((rel, r.clone()), IndexUse::JoinKey));
                }
            }
            mine(left, schema, out);
            mine(right, schema, out);
        }
        Expr::Select { input, predicate } => {
            let mut cols = Vec::new();
            equality_columns(predicate, &mut cols);
            for c in cols {
                if let Some(rel) = scan_of(input, &c, schema) {
                    out.push(((rel, c), IndexUse::EqualitySelection));
                }
            }
            mine(input, schema, out);
        }
        Expr::Project { input, .. }
        | Expr::Rename { input, .. }
        | Expr::Extend { input, .. }
        | Expr::Distinct { input } => mine(input, schema, out),
        Expr::Product { left, right }
        | Expr::Union { left, right, .. }
        | Expr::Diff { left, right } => {
            mine(left, schema, out);
            mine(right, schema, out);
        }
        Expr::Aggregate { input, .. } => mine(input, schema, out),
        Expr::Base(_) | Expr::Literal { .. } => {}
    }
}

/// If `e` is (a selection/projection/distinct over) a base scan that still
/// exposes `col` under its base name, return the relation.
fn scan_of(e: &Expr, col: &str, schema: &Schema) -> Option<String> {
    match e {
        Expr::Base(n) => {
            let layout = schema.instance_layout(n)?;
            layout.iter().any(|a| a.name == col).then(|| n.clone())
        }
        Expr::Select { input, .. } | Expr::Distinct { input } => scan_of(input, col, schema),
        Expr::Project { input, columns } => {
            if !columns.iter().any(|c| c == col) {
                return None;
            }
            scan_of(input, col, schema)
        }
        Expr::Rename { input, renames } => {
            // translate the column back through the rename
            let below = renames
                .iter()
                .find(|(_, new)| new == col)
                .map(|(old, _)| old.as_str())
                .unwrap_or(col);
            // a rename *onto* this name shadows the original
            if below == col && renames.iter().any(|(old, _)| old == col) {
                return None;
            }
            scan_of(input, below, schema)
        }
        Expr::Extend { input, column, .. } => {
            if column == col {
                return None; // computed, not indexable at the base
            }
            scan_of(input, col, schema)
        }
        _ => None,
    }
}

fn equality_columns(p: &Predicate, out: &mut Vec<String>) {
    match p {
        Predicate::Cmp { op: mm_expr::CmpOp::Eq, left, right } => match (left, right) {
            (Scalar::Col(c), Scalar::Lit(_)) | (Scalar::Lit(_), Scalar::Col(c)) => {
                out.push(c.clone());
            }
            _ => {}
        },
        Predicate::And(a, b) => {
            equality_columns(a, out);
            equality_columns(b, out);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_expr::{Predicate, ViewDef};
    use mm_metamodel::{DataType, SchemaBuilder};

    fn setup() -> (Schema, ViewSet) {
        let s = SchemaBuilder::new("Ops")
            .relation("Empl", &[
                ("EID", DataType::Int),
                ("Name", DataType::Text),
                ("AID", DataType::Int),
            ])
            .relation("Addr", &[("AID", DataType::Int), ("City", DataType::Text)])
            .build()
            .unwrap();
        let mut views = ViewSet::new("Ops", "Portal");
        views.push(ViewDef::new(
            "Staff",
            Expr::base("Empl")
                .join(Expr::base("Addr"), &[("AID", "AID")])
                .project(&["EID", "Name", "City"]),
        ));
        (s, views)
    }

    #[test]
    fn join_keys_and_selection_columns_recommended() {
        let (s, views) = setup();
        let workload = vec![
            Expr::base("Staff").select(Predicate::col_eq_lit("City", "rome")),
            Expr::base("Staff").select(Predicate::col_eq_lit("City", "oslo")),
            Expr::base("Staff").project(&["Name"]),
        ];
        let recs = advise_indexes(&workload, &views, &s);
        // Addr.City: equality selections pushed down by the optimizer
        let city = recs
            .iter()
            .find(|r| r.relation == "Addr" && r.column == "City")
            .expect("city index recommended");
        assert!(city.uses.contains(&IndexUse::EqualitySelection));
        assert_eq!(city.demand, 2);
        // join keys on both sides of the view's join
        assert!(recs.iter().any(|r| r.relation == "Empl" && r.column == "AID"));
        assert!(recs.iter().any(|r| r.relation == "Addr" && r.column == "AID"));
        // ranked by demand: the join keys appear in all three queries
        assert!(recs[0].demand >= city.demand);
    }

    #[test]
    fn empty_workload_no_recommendations() {
        let (s, views) = setup();
        assert!(advise_indexes(&[], &views, &s).is_empty());
    }

    #[test]
    fn recommendation_renders_as_ddl_comment() {
        let rec = IndexRecommendation {
            relation: "Addr".into(),
            column: "City".into(),
            uses: vec![IndexUse::EqualitySelection],
            demand: 2,
        };
        assert_eq!(
            rec.to_string(),
            "CREATE INDEX ON Addr(City)  -- equality selection (2 queries)"
        );
    }
}
