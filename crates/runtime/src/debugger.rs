//! Mapping debugging (§5, "Debugging"): "Like any program, a mapping
//! needs to be debugged. This could be done with breakpoints and
//! single-stepping, which are set in the context of T but may need to be
//! executed in the context of S."
//!
//! The debugger evaluates an expression operator by operator, recording a
//! [`TraceStep`] per node — the operator's description, its input/output
//! cardinalities, and a few sample rows — an `EXPLAIN ANALYZE` for
//! mappings. Together with [`crate::provenance::explain`] (the
//! route-style debugging of Chiticariu & Tan the paper cites) this covers
//! the single-stepping use case: a breakpoint is just a trace step you
//! stop at.

use mm_eval::{eval, EvalError};
use mm_expr::Expr;
use mm_instance::{Database, Relation, Tuple};
use mm_metamodel::Schema;
use std::fmt;

/// One evaluated operator in the trace.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// Depth in the operator tree (root = 0).
    pub depth: usize,
    /// Short operator description (`σ City = 'rome'`, `⋈ on AID=AID`, …).
    pub operator: String,
    /// Cardinalities of the inputs, in child order.
    pub input_rows: Vec<usize>,
    /// Output cardinality.
    pub output_rows: usize,
    /// Up to `SAMPLE` output rows for inspection.
    pub sample: Vec<Tuple>,
}

const SAMPLE: usize = 3;

impl fmt::Display for TraceStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let indent = "  ".repeat(self.depth);
        let ins: Vec<String> = self.input_rows.iter().map(usize::to_string).collect();
        write!(
            f,
            "{indent}{} [in: {} -> out: {}]",
            self.operator,
            if ins.is_empty() { "-".to_string() } else { ins.join(", ") },
            self.output_rows
        )
    }
}

/// A full trace, in evaluation (post-) order with the root last.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub steps: Vec<TraceStep>,
}

impl Trace {
    /// The step with the largest intermediate result — usually where a
    /// mapping bug (missing join condition, wrong selection) shows up.
    /// On ties the deepest (first-evaluated) step wins: that is where the
    /// blowup originates.
    pub fn hottest(&self) -> Option<&TraceStep> {
        let mut best: Option<&TraceStep> = None;
        for s in &self.steps {
            if best.map(|b| s.output_rows > b.output_rows).unwrap_or(true) {
                best = Some(s);
            }
        }
        best
    }

    /// Steps whose output is empty — where data "disappears".
    pub fn empty_steps(&self) -> Vec<&TraceStep> {
        self.steps.iter().filter(|s| s.output_rows == 0).collect()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.steps {
            writeln!(f, "{s}")?;
        }
        Ok(())
    }
}

fn describe(e: &Expr) -> String {
    match e {
        Expr::Base(n) => format!("scan {n}"),
        Expr::Literal { rows, .. } => format!("values ({} rows)", rows.len()),
        Expr::Project { columns, .. } => format!("π {}", columns.join(", ")),
        Expr::Select { predicate, .. } => format!("σ {predicate}"),
        Expr::Join { on, .. } => format!(
            "⋈ on {}",
            on.iter().map(|(a, b)| format!("{a}={b}")).collect::<Vec<_>>().join(", ")
        ),
        Expr::LeftJoin { on, .. } => format!(
            "⟕ on {}",
            on.iter().map(|(a, b)| format!("{a}={b}")).collect::<Vec<_>>().join(", ")
        ),
        Expr::Product { .. } => "×".to_string(),
        Expr::Union { all, .. } => if *all { "∪ all" } else { "∪" }.to_string(),
        Expr::Diff { .. } => "∖".to_string(),
        Expr::Rename { renames, .. } => format!(
            "ρ {}",
            renames.iter().map(|(a, b)| format!("{a}→{b}")).collect::<Vec<_>>().join(", ")
        ),
        Expr::Extend { column, scalar, .. } => format!("ext {column} := {scalar}"),
        Expr::Distinct { .. } => "distinct".to_string(),
        Expr::Aggregate { group_by, aggregates, .. } => format!(
            "γ [{}] {}",
            group_by.join(", "),
            aggregates
                .iter()
                .map(|a| a.output.clone())
                .collect::<Vec<_>>()
                .join(", ")
        ),
    }
}

/// Evaluate `expr` while tracing every operator. The trace is recorded
/// bottom-up (children before parents), root last.
pub fn trace(expr: &Expr, schema: &Schema, db: &Database) -> Result<Trace, EvalError> {
    let mut t = Trace::default();
    walk(expr, schema, db, 0, &mut t)?;
    Ok(t)
}

fn children(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Base(_) | Expr::Literal { .. } => Vec::new(),
        Expr::Project { input, .. }
        | Expr::Select { input, .. }
        | Expr::Rename { input, .. }
        | Expr::Extend { input, .. }
        | Expr::Distinct { input }
        | Expr::Aggregate { input, .. } => vec![input],
        Expr::Join { left, right, .. }
        | Expr::LeftJoin { left, right, .. }
        | Expr::Product { left, right }
        | Expr::Union { left, right, .. }
        | Expr::Diff { left, right } => vec![left, right],
    }
}

fn walk(
    e: &Expr,
    schema: &Schema,
    db: &Database,
    depth: usize,
    t: &mut Trace,
) -> Result<Relation, EvalError> {
    let mut input_rows = Vec::new();
    for c in children(e) {
        let r = walk(c, schema, db, depth + 1, t)?;
        input_rows.push(r.len());
    }
    let out = eval(e, schema, db)?;
    t.steps.push(TraceStep {
        depth,
        operator: describe(e),
        input_rows,
        output_rows: out.len(),
        sample: out.iter().take(SAMPLE).cloned().collect(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_expr::Predicate;
    use mm_instance::Value;
    use mm_metamodel::{DataType, SchemaBuilder};

    fn setup() -> (Schema, Database) {
        let s = SchemaBuilder::new("S")
            .relation("Names", &[("SID", DataType::Int), ("Name", DataType::Text)])
            .relation("Addresses", &[("SID", DataType::Int), ("City", DataType::Text)])
            .build()
            .unwrap();
        let mut db = Database::empty_of(&s);
        for i in 0..5 {
            db.insert("Names", Tuple::from([Value::Int(i), Value::text(format!("n{i}"))]));
        }
        db.insert("Addresses", Tuple::from([Value::Int(0), Value::text("rome")]));
        db.insert("Addresses", Tuple::from([Value::Int(1), Value::text("oslo")]));
        (s, db)
    }

    #[test]
    fn trace_records_every_operator_with_cardinalities() {
        let (s, db) = setup();
        let e = Expr::base("Names")
            .join(Expr::base("Addresses"), &[("SID", "SID")])
            .select(Predicate::col_eq_lit("City", "rome"))
            .project(&["Name"]);
        let t = trace(&e, &s, &db).unwrap();
        assert_eq!(t.steps.len(), 5); // 2 scans, join, select, project
        let root = t.steps.last().unwrap();
        assert_eq!(root.depth, 0);
        assert!(root.operator.starts_with('π'));
        assert_eq!(root.output_rows, 1);
        // the scans report their base sizes
        assert!(t.steps.iter().any(|s| s.operator == "scan Names" && s.output_rows == 5));
    }

    #[test]
    fn empty_steps_localize_where_data_disappears() {
        let (s, db) = setup();
        // a wrong selection value: data vanishes at the σ
        let e = Expr::base("Addresses")
            .select(Predicate::col_eq_lit("City", "atlantis"))
            .project(&["SID"]);
        let t = trace(&e, &s, &db).unwrap();
        let empty = t.empty_steps();
        assert!(!empty.is_empty());
        assert!(empty[0].operator.starts_with('σ'), "{}", empty[0].operator);
    }

    #[test]
    fn hottest_step_flags_blowups() {
        let (s, db) = setup();
        // missing join condition -> cross product blowup
        let e = Expr::base("Names")
            .product(Expr::base("Addresses").rename(&[("SID", "SID2")]))
            .project(&["Name", "City"]);
        let t = trace(&e, &s, &db).unwrap();
        let hot = t.hottest().unwrap();
        assert_eq!(hot.output_rows, 10);
        assert_eq!(hot.operator, "×");
    }

    #[test]
    fn samples_are_bounded() {
        let (s, db) = setup();
        let t = trace(&Expr::base("Names"), &s, &db).unwrap();
        assert!(t.steps[0].sample.len() <= 3);
    }

    #[test]
    fn trace_renders_indented() {
        let (s, db) = setup();
        let e = Expr::base("Names").project(&["Name"]);
        let t = trace(&e, &s, &db).unwrap();
        let text = t.to_string();
        assert!(text.contains("  scan Names"), "{text}");
        assert!(text.contains("π Name"), "{text}");
    }
}
