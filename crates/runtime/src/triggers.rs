//! Business logic across mappings (§5, "Business logic" and
//! "Notifications"): "Triggers and other business logic may be attached
//! to data in the context of T. It may be more efficient to execute them
//! in the context of S. This requires pushing the business logic through
//! mapST, which should be done statically."
//!
//! A [`Trigger`] is declared on a *target* (view-level) relation with a
//! firing condition. [`compile_triggers`] pushes each condition through
//! the mapping statically — unfolding to the base schema and optimizing —
//! so that at runtime, firing only requires a delta evaluation against
//! base-level changes.

use crate::ivm::{view_insert_delta, Delta};
use mm_eval::EvalError;
use mm_expr::{Expr, Predicate, ViewSet};
use mm_instance::{Database, Tuple};
use mm_metamodel::Schema;

/// A trigger declared in target terms.
#[derive(Debug, Clone)]
pub struct Trigger {
    pub name: String,
    /// Fires when a new row of this view-level relation…
    pub on: String,
    /// …satisfies this condition (None = every new row).
    pub when: Option<Predicate>,
}

impl Trigger {
    pub fn new(name: impl Into<String>, on: impl Into<String>) -> Self {
        Trigger { name: name.into(), on: on.into(), when: None }
    }

    pub fn when(mut self, p: Predicate) -> Self {
        self.when = Some(p);
        self
    }
}

/// A trigger compiled to base level: its condition as an (optimized)
/// expression over the base schema.
#[derive(Debug, Clone)]
pub struct CompiledTrigger {
    pub name: String,
    pub on: String,
    pub base_condition: Expr,
}

/// Static compilation: unfold each trigger's condition through the
/// mapping and optimize.
pub fn compile_triggers(
    triggers: &[Trigger],
    views: &ViewSet,
    base_schema: &Schema,
) -> Vec<CompiledTrigger> {
    triggers
        .iter()
        .map(|t| {
            let mut q = Expr::base(t.on.clone());
            if let Some(p) = &t.when {
                q = q.select(p.clone());
            }
            let unfolded = mm_eval::unfold_query(&q, views);
            let base_condition =
                mm_expr::optimize(&unfolded, base_schema).unwrap_or(unfolded);
            CompiledTrigger { name: t.name.clone(), on: t.on.clone(), base_condition }
        })
        .collect()
}

/// A firing: which trigger, and the new target-level row that caused it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Firing {
    pub trigger: String,
    pub row: Tuple,
}

/// Evaluate all compiled triggers against a base-level delta: a trigger
/// fires once per *new* satisfying target row (rows derivable before the
/// delta do not re-fire).
pub fn fire_triggers(
    compiled: &[CompiledTrigger],
    base_schema: &Schema,
    base_db: &Database,
    delta: &Delta,
) -> Result<Vec<Firing>, EvalError> {
    let mut out = Vec::new();
    for t in compiled {
        let new_rows = view_insert_delta(&t.base_condition, base_schema, base_db, delta)?;
        for row in new_rows.iter() {
            out.push(Firing { trigger: t.name.clone(), row: row.clone() });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_expr::{CmpOp, Scalar, ViewDef};
    use mm_instance::Value;
    use mm_metamodel::{DataType, SchemaBuilder};

    fn setup() -> (Schema, Database, ViewSet) {
        let s = SchemaBuilder::new("S")
            .relation("orders", &[
                ("oid", DataType::Int),
                ("cust", DataType::Int),
                ("total", DataType::Int),
            ])
            .relation("customers", &[("cid", DataType::Int), ("name", DataType::Text)])
            .build()
            .unwrap();
        let mut db = Database::empty_of(&s);
        db.insert("customers", Tuple::from([Value::Int(1), Value::text("ann")]));
        db.insert("orders", Tuple::from([Value::Int(10), Value::Int(1), Value::Int(40)]));
        let mut views = ViewSet::new("S", "Portal");
        views.push(ViewDef::new(
            "Orders",
            Expr::base("orders").join(Expr::base("customers"), &[("cust", "cid")]),
        ));
        (s, db, views)
    }

    #[test]
    fn compiled_condition_lives_on_the_base_schema() {
        let (s, _, views) = setup();
        let triggers = vec![Trigger::new("big_order", "Orders").when(Predicate::Cmp {
            op: CmpOp::Gt,
            left: Scalar::col("total"),
            right: Scalar::lit(100i64),
        })];
        let compiled = compile_triggers(&triggers, &views, &s);
        let bases = mm_expr::analyze::base_relations(&compiled[0].base_condition);
        assert!(bases.contains(&"orders"));
        assert!(!bases.contains(&"Orders"));
        // the condition was pushed to the orders scan
        assert!(
            compiled[0].base_condition.to_string().contains("orders) WHERE total > 100"),
            "{}",
            compiled[0].base_condition
        );
    }

    #[test]
    fn trigger_fires_only_on_new_satisfying_rows() {
        let (s, db, views) = setup();
        let triggers = vec![Trigger::new("big_order", "Orders").when(Predicate::Cmp {
            op: CmpOp::Gt,
            left: Scalar::col("total"),
            right: Scalar::lit(100i64),
        })];
        let compiled = compile_triggers(&triggers, &views, &s);

        // small order: no firing
        let mut small = Delta::new();
        small.insert("orders", Tuple::from([Value::Int(11), Value::Int(1), Value::Int(50)]));
        assert!(fire_triggers(&compiled, &s, &db, &small).unwrap().is_empty());

        // big order: fires once, with the joined target-level row
        let mut big = Delta::new();
        big.insert("orders", Tuple::from([Value::Int(12), Value::Int(1), Value::Int(500)]));
        let firings = fire_triggers(&compiled, &s, &db, &big).unwrap();
        assert_eq!(firings.len(), 1);
        assert_eq!(firings[0].trigger, "big_order");
        assert!(firings[0].row.values().contains(&Value::text("ann")));
    }

    #[test]
    fn unconditioned_trigger_fires_per_new_row() {
        let (s, db, views) = setup();
        let compiled = compile_triggers(&[Trigger::new("any", "Orders")], &views, &s);
        let mut delta = Delta::new();
        delta.insert("orders", Tuple::from([Value::Int(11), Value::Int(1), Value::Int(1)]));
        delta.insert("orders", Tuple::from([Value::Int(12), Value::Int(1), Value::Int(2)]));
        // plus one row that joins to no customer: must not fire
        delta.insert("orders", Tuple::from([Value::Int(13), Value::Int(99), Value::Int(3)]));
        let firings = fire_triggers(&compiled, &s, &db, &delta).unwrap();
        assert_eq!(firings.len(), 2);
    }

    #[test]
    fn preexisting_rows_do_not_refire() {
        let (s, db, views) = setup();
        let compiled = compile_triggers(&[Trigger::new("any", "Orders")], &views, &s);
        // delta inserting a customer makes the existing order join — that
        // IS a new target row, so it fires; re-running with empty delta
        // fires nothing
        let firings = fire_triggers(&compiled, &s, &db, &Delta::new()).unwrap();
        assert!(firings.is_empty());
    }
}
