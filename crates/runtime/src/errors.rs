//! Error translation (§5, "Errors"): "if a data access via T is
//! translated into an access on S that generates an error, then the error
//! needs to be passed back through mapST in a form that is understandable
//! in the context of T."
//!
//! The translator takes integrity violations raised against the *tables*
//! (the S side) and re-expresses them against the entity model (the T
//! side) using the mapping's fragments: a violation on table `Empl`
//! becomes a violation on entity type `Employee` with entity attribute
//! names.

use mm_instance::InstanceViolation;
use mm_metamodel::Schema;
use mm_transgen::Fragment;
use std::fmt;

/// A base-side violation re-expressed in target (entity) terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetError {
    /// The entity type(s) the offending table stores.
    pub entity_types: Vec<String>,
    /// The attribute in entity terms, when the violation names one.
    pub attribute: Option<String>,
    /// Human-readable message in target terms.
    pub message: String,
    /// The original base-side violation, preserved for debugging.
    pub source: InstanceViolation,
}

impl fmt::Display for TargetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (from: {})", self.message, self.source)
    }
}

/// Map the table name of a violation, if any.
fn violation_table(v: &InstanceViolation) -> Option<&str> {
    match v {
        InstanceViolation::MissingRelation(n) => Some(n),
        InstanceViolation::ArityMismatch { element, .. }
        | InstanceViolation::TypeMismatch { element, .. }
        | InstanceViolation::NullViolation { element, .. }
        | InstanceViolation::KeyViolation { element, .. } => Some(element),
        InstanceViolation::InclusionViolation { from, .. } => Some(from),
        InstanceViolation::BadEntityType { set, .. } => Some(set),
        InstanceViolation::DisjointViolation { left, .. } => Some(left),
        InstanceViolation::CoveringViolation { parent } => Some(parent),
    }
}

fn violation_attribute(v: &InstanceViolation) -> Option<&str> {
    match v {
        InstanceViolation::TypeMismatch { attribute, .. }
        | InstanceViolation::NullViolation { attribute, .. } => Some(attribute),
        InstanceViolation::KeyViolation { key, .. } => key.first().map(String::as_str),
        _ => None,
    }
}

/// Translate base-side violations into target-context errors using the
/// mapping `fragments`. Violations on tables outside the mapping pass
/// through with an empty entity-type list.
pub fn translate_violations(
    rel: &Schema,
    fragments: &[Fragment],
    violations: &[InstanceViolation],
) -> Vec<TargetError> {
    violations
        .iter()
        .map(|v| {
            let table = violation_table(v);
            let frag = table.and_then(|t| {
                fragments.iter().find(|f| f.table.as_deref() == Some(t))
            });
            match frag {
                Some(f) => {
                    let entity_types: Vec<String> = if f.types.is_empty() {
                        vec![f.extent_type.clone()]
                    } else {
                        f.types.iter().map(|a| a.ty.clone()).collect()
                    };
                    // table column -> entity attribute (positional)
                    let attribute = table.and_then(|t| {
                        let layout = rel.instance_layout(t)?;
                        let col = violation_attribute(v)?;
                        let pos = layout.iter().position(|a| a.name == col)?;
                        f.columns.get(pos).cloned()
                    });
                    let message = match &attribute {
                        Some(a) => format!(
                            "constraint violated on {}.{a}",
                            entity_types.join("/")
                        ),
                        None => format!("constraint violated on {}", entity_types.join("/")),
                    };
                    TargetError {
                        entity_types,
                        attribute,
                        message,
                        source: v.clone(),
                    }
                }
                None => TargetError {
                    entity_types: Vec::new(),
                    attribute: None,
                    message: format!("unmapped base error: {v}"),
                    source: v.clone(),
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_expr::{entity_extent, Expr, Mapping, MappingConstraint, Predicate};
    use mm_metamodel::{DataType, SchemaBuilder};
    use mm_transgen::parse_fragments;

    fn setup() -> (Schema, Schema, Vec<Fragment>) {
        let er = SchemaBuilder::new("ER")
            .entity("Person", &[("Id", DataType::Int), ("Name", DataType::Text)])
            .entity_sub("Customer", "Person", &[("CreditScore", DataType::Int)])
            .key("Person", &["Id"])
            .build()
            .unwrap();
        let rel = SchemaBuilder::new("SQL")
            .relation("Client", &[
                ("Id", DataType::Int),
                ("Name", DataType::Text),
                ("Score", DataType::Int),
            ])
            .build()
            .unwrap();
        let m = Mapping::with_constraints(
            "ER",
            "SQL",
            vec![MappingConstraint::ExprEq {
                source: entity_extent(&er, "Customer")
                    .unwrap()
                    .select(Predicate::IsOf { ty: "Customer".into(), only: false })
                    .project(&["Id", "Name", "CreditScore"]),
                target: Expr::base("Client"),
            }],
        );
        let frags = parse_fragments(&er, &rel, &m).unwrap();
        (er, rel, frags)
    }

    #[test]
    fn table_violation_maps_to_entity_attribute() {
        let (_, rel, frags) = setup();
        let v = InstanceViolation::NullViolation {
            element: "Client".into(),
            attribute: "Score".into(),
        };
        let out = translate_violations(&rel, &frags, &[v]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].entity_types, ["Customer"]);
        // table column Score positionally maps to entity CreditScore
        assert_eq!(out[0].attribute.as_deref(), Some("CreditScore"));
        assert!(out[0].message.contains("Customer.CreditScore"));
    }

    #[test]
    fn key_violation_names_key_attribute() {
        let (_, rel, frags) = setup();
        let v = InstanceViolation::KeyViolation {
            element: "Client".into(),
            key: vec!["Id".into()],
        };
        let out = translate_violations(&rel, &frags, &[v]);
        assert_eq!(out[0].attribute.as_deref(), Some("Id"));
    }

    #[test]
    fn unmapped_table_passes_through() {
        let (_, rel, frags) = setup();
        let v = InstanceViolation::MissingRelation("Audit".into());
        let out = translate_violations(&rel, &frags, &[v]);
        assert!(out[0].entity_types.is_empty());
        assert!(out[0].message.contains("unmapped"));
    }
}
