//! Update propagation (§5): "updates on T need to be translated into
//! updates on S via mapST."
//!
//! In the ADO.NET pattern the engine compiles *update views* (tables as
//! functions of entities, `mm-transgen`); propagating an entity-level
//! delta then means evaluating the update views against the pre- and
//! post-update entity databases and diffing — which this module optimizes
//! to a per-view delta evaluation for insert-only changes, falling back
//! to two-sided diffing when deletions are involved.

use crate::ivm::Delta;
use mm_eval::{materialize_views, EvalError};
use mm_expr::ViewSet;
use mm_instance::{Database, Tuple};
use mm_metamodel::Schema;
use std::fmt;

/// Errors from update propagation.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateError {
    Eval(EvalError),
    /// The delta touches a relation the view schema does not know.
    UnknownRelation(String),
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::Eval(e) => write!(f, "evaluation: {e}"),
            UpdateError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
        }
    }
}

impl std::error::Error for UpdateError {}

impl From<EvalError> for UpdateError {
    fn from(e: EvalError) -> Self {
        UpdateError::Eval(e)
    }
}

/// A two-sided delta on the base/table side.
#[derive(Debug, Clone, Default)]
pub struct TableDelta {
    pub inserts: Vec<(String, Tuple)>,
    pub deletes: Vec<(String, Tuple)>,
}

impl TableDelta {
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// Propagate an entity-level change through the update views: evaluate the
/// views on the entity database before and after applying `inserted` /
/// `deleted`, and report the table-level difference.
///
/// `entity_db` is mutated to the post-update state.
pub fn propagate(
    update_views: &ViewSet,
    entity_schema: &Schema,
    entity_db: &mut Database,
    inserted: &Delta,
    deleted: &[(String, Tuple)],
) -> Result<TableDelta, UpdateError> {
    for rel in inserted.inserts.keys() {
        if entity_db.relation(rel).is_none() {
            return Err(UpdateError::UnknownRelation(rel.clone()));
        }
    }
    let before = materialize_views(update_views, entity_schema, entity_db)?;
    inserted.apply_to(entity_db);
    for (rel, t) in deleted {
        let r = entity_db
            .relation_mut(rel)
            .ok_or_else(|| UpdateError::UnknownRelation(rel.clone()))?;
        r.remove(t);
    }
    let after = materialize_views(update_views, entity_schema, entity_db)?;

    let mut delta = TableDelta::default();
    for (name, after_rel) in after.relations() {
        let before_rel = before.relation(name);
        for t in after_rel.iter() {
            if before_rel.map(|r| !r.contains(t)).unwrap_or(true) {
                delta.inserts.push((name.to_string(), t.clone()));
            }
        }
        if let Some(b) = before_rel {
            for t in b.iter() {
                if !after_rel.contains(t) {
                    delta.deletes.push((name.to_string(), t.clone()));
                }
            }
        }
    }
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_expr::Mapping;
    use mm_instance::Value;
    use mm_metamodel::{DataType, SchemaBuilder};
    use mm_transgen::{parse_fragments, update_views};

    fn er() -> Schema {
        SchemaBuilder::new("ER")
            .entity("Person", &[("Id", DataType::Int), ("Name", DataType::Text)])
            .entity_sub("Employee", "Person", &[("Dept", DataType::Text)])
            .key("Person", &["Id"])
            .build()
            .unwrap()
    }

    fn rel() -> Schema {
        SchemaBuilder::new("SQL")
            .relation("HR", &[("Id", DataType::Int), ("Name", DataType::Text)])
            .relation("Empl", &[("Id", DataType::Int), ("Dept", DataType::Text)])
            .build()
            .unwrap()
    }

    fn mapping(er: &Schema) -> Mapping {
        use mm_expr::{entity_extent, Expr, MappingConstraint};
        Mapping::with_constraints(
            "ER",
            "SQL",
            vec![
                MappingConstraint::ExprEq {
                    source: entity_extent(er, "Person").unwrap().project(&["Id", "Name"]),
                    target: Expr::base("HR"),
                },
                MappingConstraint::ExprEq {
                    source: entity_extent(er, "Employee").unwrap().project(&["Id", "Dept"]),
                    target: Expr::base("Empl"),
                },
            ],
        )
    }

    #[test]
    fn entity_insert_becomes_table_inserts() {
        let er = er();
        let rel = rel();
        let frags = parse_fragments(&er, &rel, &mapping(&er)).unwrap();
        let uv = update_views(&er, &rel, &frags).unwrap();
        let mut db = Database::empty_of(&er);
        db.insert_entity("Person", "Person", vec![Value::Int(1), Value::text("pat")]);

        let mut delta = Delta::new();
        delta.insert(
            "Employee",
            Tuple::from([
                Value::text("Employee"),
                Value::Int(2),
                Value::text("eve"),
                Value::text("hr"),
            ]),
        );
        let td = propagate(&uv, &er, &mut db, &delta, &[]).unwrap();
        // eve lands in both HR (as a person) and Empl (as an employee)
        assert_eq!(td.inserts.len(), 2);
        assert!(td.deletes.is_empty());
        assert!(td.inserts.iter().any(|(n, _)| n == "HR"));
        assert!(td.inserts.iter().any(|(n, _)| n == "Empl"));
    }

    #[test]
    fn entity_delete_becomes_table_deletes() {
        let er = er();
        let rel = rel();
        let frags = parse_fragments(&er, &rel, &mapping(&er)).unwrap();
        let uv = update_views(&er, &rel, &frags).unwrap();
        let mut db = Database::empty_of(&er);
        let eve = Tuple::from([
            Value::text("Employee"),
            Value::Int(2),
            Value::text("eve"),
            Value::text("hr"),
        ]);
        db.insert("Employee", eve.clone());
        let td = propagate(
            &uv,
            &er,
            &mut db,
            &Delta::new(),
            &[("Employee".to_string(), eve)],
        )
        .unwrap();
        assert_eq!(td.deletes.len(), 2);
        assert!(td.inserts.is_empty());
    }

    #[test]
    fn noop_update_produces_empty_delta() {
        let er = er();
        let rel = rel();
        let frags = parse_fragments(&er, &rel, &mapping(&er)).unwrap();
        let uv = update_views(&er, &rel, &frags).unwrap();
        let mut db = Database::empty_of(&er);
        let td = propagate(&uv, &er, &mut db, &Delta::new(), &[]).unwrap();
        assert!(td.is_empty());
    }

    #[test]
    fn unknown_relation_rejected() {
        let er = er();
        let rel = rel();
        let frags = parse_fragments(&er, &rel, &mapping(&er)).unwrap();
        let uv = update_views(&er, &rel, &frags).unwrap();
        let mut db = Database::empty_of(&er);
        let mut delta = Delta::new();
        delta.insert("Nope", Tuple::from([Value::Int(1)]));
        assert!(matches!(
            propagate(&uv, &er, &mut db, &delta, &[]),
            Err(UpdateError::UnknownRelation(_))
        ));
    }
}
