//! Why-provenance (§5, "Provenance"): "after moving data from source to
//! target, a user wants to know the source data that contributed to a
//! particular target data item."
//!
//! The evaluator here is a lineage-carrying twin of `mm-eval`: every
//! intermediate tuple carries the set of base tuples it was derived from;
//! a target tuple's *witnesses* are the lineage sets of its derivations
//! (one per derivation — why-provenance as a set of witness sets).

// Translator-internal lookups are guarded by construction (schemas and
// view sets built in this module); `expect` here documents invariants,
// not caller-facing failure modes (DESIGN.md §7).
#![allow(clippy::expect_used)]

use mm_eval::EvalError;
use mm_expr::{Expr, Lit, Predicate, Scalar};
use mm_instance::{Database, RelSchema, Tuple, Value};
use mm_metamodel::Schema;
use std::collections::{BTreeSet, HashMap};

/// One witness: the base facts (relation name, tuple) jointly justifying
/// a target tuple.
pub type Witness = BTreeSet<(String, Tuple)>;

struct Lineage {
    schema: RelSchema,
    rows: Vec<(Tuple, Witness)>,
}

fn lit_to_value(l: &Lit) -> Value {
    match l {
        Lit::Int(v) => Value::Int(*v),
        Lit::Double(v) => Value::Double(*v),
        Lit::Bool(v) => Value::Bool(*v),
        Lit::Text(v) => Value::text(v.as_str()),
        Lit::Date(v) => Value::Date(*v),
        Lit::Null => Value::Null,
    }
}

/// Evaluate scalar/predicate against a row of a lineage relation by
/// staging a single-tuple scratch database (reuses the main evaluator's
/// semantics exactly).
fn row_passes(
    predicate: &Predicate,
    schema: &Schema,
    rel_schema: &RelSchema,
    tuple: &Tuple,
) -> Result<bool, EvalError> {
    let scratch = stage_single(rel_schema, tuple);
    let e = Expr::Select {
        input: Box::new(Expr::base("$row")),
        predicate: predicate.clone(),
    };
    let (s2, db) = scratch;
    let merged = merge_schema(schema, &s2);
    Ok(!mm_eval::eval(&e, &merged, &db)?.is_empty())
}

fn eval_scalar_on_row(
    scalar: &Scalar,
    schema: &Schema,
    rel_schema: &RelSchema,
    tuple: &Tuple,
) -> Result<Value, EvalError> {
    let (s2, db) = stage_single(rel_schema, tuple);
    let merged = merge_schema(schema, &s2);
    let e = Expr::base("$row").extend("$out", scalar.clone());
    let r = mm_eval::eval(&e, &merged, &db)?;
    let pos = r.schema.position("$out").expect("extended column");
    let value = r.iter().next().map(|t| t.values()[pos].clone()).unwrap_or(Value::Null);
    Ok(value)
}

fn stage_single(rel_schema: &RelSchema, tuple: &Tuple) -> (Schema, Database) {
    use mm_metamodel::{Element, ElementKind};
    let mut s = Schema::new("$scratch");
    s.add_element(Element {
        name: "$row".into(),
        kind: ElementKind::Relation,
        attributes: rel_schema.attributes.clone(),
    })
    .expect("fresh schema");
    let mut db = Database::new("$scratch");
    let mut r = mm_instance::Relation::new(rel_schema.clone());
    r.insert(tuple.clone());
    db.insert_relation("$row", r);
    (s, db)
}

fn merge_schema(base: &Schema, extra: &Schema) -> Schema {
    let mut s = base.clone();
    for e in extra.elements() {
        let _ = s.add_element(e.clone());
    }
    s
}

fn eval_lineage(expr: &Expr, schema: &Schema, db: &Database) -> Result<Lineage, EvalError> {
    let out_schema = RelSchema::new(
        mm_expr::output_schema(expr, schema).map_err(EvalError::Static)?,
    );
    let rows = match expr {
        Expr::Base(name) => {
            let rel = db
                .relation(name)
                .ok_or_else(|| EvalError::MissingRelation(name.clone()))?;
            rel.iter()
                .map(|t| {
                    let mut w = Witness::new();
                    w.insert((name.clone(), t.clone()));
                    (t.clone(), w)
                })
                .collect()
        }
        Expr::Literal { rows, .. } => rows
            .iter()
            .map(|r| (Tuple::new(r.iter().map(lit_to_value).collect()), Witness::new()))
            .collect(),
        Expr::Project { input, columns } => {
            let inner = eval_lineage(input, schema, db)?;
            let positions: Vec<usize> = columns
                .iter()
                .map(|c| inner.schema.position(c).expect("checked"))
                .collect();
            inner
                .rows
                .into_iter()
                .map(|(t, w)| (t.project(&positions), w))
                .collect()
        }
        Expr::Select { input, predicate } => {
            let inner = eval_lineage(input, schema, db)?;
            let mut out = Vec::new();
            for (t, w) in inner.rows {
                if row_passes(predicate, schema, &inner.schema, &t)? {
                    out.push((t, w));
                }
            }
            out
        }
        Expr::Rename { input, .. } => eval_lineage(input, schema, db)?.rows,
        Expr::Distinct { input } => eval_lineage(input, schema, db)?.rows,
        Expr::Extend { input, column: _, scalar } => {
            let inner = eval_lineage(input, schema, db)?;
            let mut out = Vec::new();
            for (t, w) in inner.rows {
                let v = eval_scalar_on_row(scalar, schema, &inner.schema, &t)?;
                let mut vals = t.values().to_vec();
                vals.push(v);
                out.push((Tuple::new(vals), w));
            }
            out
        }
        Expr::Union { left, right, .. } => {
            let mut l = eval_lineage(left, schema, db)?.rows;
            l.extend(eval_lineage(right, schema, db)?.rows);
            l
        }
        Expr::Diff { left, right } => {
            let l = eval_lineage(left, schema, db)?;
            let r = eval_lineage(right, schema, db)?;
            let exclude: std::collections::HashSet<&Tuple> =
                r.rows.iter().map(|(t, _)| t).collect();
            l.rows.into_iter().filter(|(t, _)| !exclude.contains(t)).collect()
        }
        Expr::Join { left, right, on } => {
            let l = eval_lineage(left, schema, db)?;
            let r = eval_lineage(right, schema, db)?;
            join_lineage(&l, &r, on, false)
        }
        Expr::LeftJoin { left, right, on } => {
            let l = eval_lineage(left, schema, db)?;
            let r = eval_lineage(right, schema, db)?;
            join_lineage(&l, &r, on, true)
        }
        Expr::Aggregate { input, group_by, aggregates } => {
            // a group's witnesses: one witness merging all member rows'
            // lineages (why-provenance of an aggregate needs every
            // contributor)
            let inner = eval_lineage(input, schema, db)?;
            let group_pos: Vec<usize> = group_by
                .iter()
                .map(|c| inner.schema.position(c).expect("checked"))
                .collect();
            let mut scratch_schema = Schema::new("$agg");
            let _ = scratch_schema.add_element(mm_metamodel::Element {
                name: "$in".into(),
                kind: mm_metamodel::ElementKind::Relation,
                attributes: inner.schema.attributes.clone(),
            });
            let mut scratch_db = Database::new("$agg");
            let mut rel = mm_instance::Relation::new(inner.schema.clone());
            for (t, _) in &inner.rows {
                rel.insert(t.clone());
            }
            scratch_db.insert_relation("$in", rel);
            let agg = Expr::Aggregate {
                input: Box::new(Expr::base("$in")),
                group_by: group_by.clone(),
                aggregates: aggregates.clone(),
            };
            let results = mm_eval::eval(&agg, &scratch_schema, &scratch_db)?;
            let mut out = Vec::new();
            for row in results.iter() {
                let key = row.project(&(0..group_pos.len()).collect::<Vec<_>>());
                let mut w = Witness::new();
                for (t, tw) in &inner.rows {
                    if t.project(&group_pos) == key {
                        w.extend(tw.iter().cloned());
                    }
                }
                out.push((row.clone(), w));
            }
            out
        }
        Expr::Product { left, right } => {
            let l = eval_lineage(left, schema, db)?;
            let r = eval_lineage(right, schema, db)?;
            let mut out = Vec::new();
            for (lt, lw) in &l.rows {
                for (rt, rw) in &r.rows {
                    let mut w = lw.clone();
                    w.extend(rw.iter().cloned());
                    out.push((lt.concat(rt), w));
                }
            }
            out
        }
    };
    Ok(Lineage { schema: out_schema, rows })
}

fn join_lineage(
    l: &Lineage,
    r: &Lineage,
    on: &[(String, String)],
    outer: bool,
) -> Vec<(Tuple, Witness)> {
    let l_keys: Vec<usize> =
        on.iter().map(|(a, _)| l.schema.position(a).expect("join col")).collect();
    let r_keys: Vec<usize> =
        on.iter().map(|(_, b)| r.schema.position(b).expect("join col")).collect();
    let keep_right: Vec<usize> =
        (0..r.schema.arity()).filter(|i| !r_keys.contains(i)).collect();
    let mut table: HashMap<Tuple, Vec<&(Tuple, Witness)>> = HashMap::new();
    for row in &r.rows {
        let key = row.0.project(&r_keys);
        if key.values().iter().any(Value::is_null) {
            continue;
        }
        table.entry(key).or_default().push(row);
    }
    let mut out = Vec::new();
    for (lt, lw) in &l.rows {
        let key = lt.project(&l_keys);
        let matches = if key.values().iter().any(Value::is_null) {
            None
        } else {
            table.get(&key)
        };
        match matches {
            Some(rows) => {
                for (rt, rw) in rows.iter().map(|r| (*r).clone()).collect::<Vec<_>>() {
                    let mut vals = lt.values().to_vec();
                    for &i in &keep_right {
                        vals.push(rt.values()[i].clone());
                    }
                    let mut w = lw.clone();
                    w.extend(rw);
                    out.push((Tuple::new(vals), w));
                }
            }
            None if outer => {
                let mut vals = lt.values().to_vec();
                vals.extend(std::iter::repeat_n(Value::Null, keep_right.len()));
                out.push((Tuple::new(vals), lw.clone()));
            }
            None => {}
        }
    }
    out
}

/// Why-provenance: all witnesses of `target` in the result of `expr` over
/// `db`. Empty if the tuple is not in the result.
pub fn explain(
    expr: &Expr,
    schema: &Schema,
    db: &Database,
    target: &Tuple,
) -> Result<Vec<Witness>, EvalError> {
    let lineage = eval_lineage(expr, schema, db)?;
    let mut out: Vec<Witness> = Vec::new();
    for (t, w) in lineage.rows {
        if &t == target && !out.contains(&w) {
            out.push(w);
        }
    }
    Ok(out)
}

/// [`explain`] wrapped in a `provenance.explain` span recording witness
/// count. With disabled telemetry this is the plain call.
pub fn explain_traced(
    expr: &Expr,
    schema: &Schema,
    db: &Database,
    target: &Tuple,
    tel: &mm_telemetry::Telemetry,
) -> Result<Vec<Witness>, EvalError> {
    if !tel.is_enabled() {
        return explain(expr, schema, db, target);
    }
    let mut span = mm_telemetry::Span::enter(tel, "provenance.explain", db.name.as_str());
    let result = explain(expr, schema, db, target);
    match &result {
        Ok(witnesses) => span.field("witnesses", witnesses.len()),
        Err(e) => span.field("error", e.to_string()),
    }
    span.finish();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_metamodel::{DataType, SchemaBuilder};

    fn setup() -> (Schema, Database) {
        let s = SchemaBuilder::new("S")
            .relation("Names", &[("SID", DataType::Int), ("Name", DataType::Text)])
            .relation("Addresses", &[("SID", DataType::Int), ("City", DataType::Text)])
            .build()
            .unwrap();
        let mut db = Database::empty_of(&s);
        db.insert("Names", Tuple::from([Value::Int(1), Value::text("ann")]));
        db.insert("Names", Tuple::from([Value::Int(2), Value::text("bob")]));
        db.insert("Addresses", Tuple::from([Value::Int(1), Value::text("rome")]));
        db.insert("Addresses", Tuple::from([Value::Int(2), Value::text("rome")]));
        (s, db)
    }

    #[test]
    fn join_witness_contains_both_sides() {
        let (s, db) = setup();
        let e = Expr::base("Names")
            .join(Expr::base("Addresses"), &[("SID", "SID")])
            .project(&["Name", "City"]);
        let target = Tuple::from([Value::text("ann"), Value::text("rome")]);
        let ws = explain(&e, &s, &db, &target).unwrap();
        assert_eq!(ws.len(), 1);
        let w = &ws[0];
        assert_eq!(w.len(), 2);
        assert!(w.contains(&("Names".to_string(), Tuple::from([Value::Int(1), Value::text("ann")]))));
        assert!(w.contains(&(
            "Addresses".to_string(),
            Tuple::from([Value::Int(1), Value::text("rome")])
        )));
    }

    #[test]
    fn projection_merge_yields_multiple_witnesses() {
        let (s, db) = setup();
        // π City over Addresses: 'rome' has two derivations
        let e = Expr::base("Addresses").project(&["City"]);
        let ws = explain(&e, &s, &db, &Tuple::from([Value::text("rome")])).unwrap();
        assert_eq!(ws.len(), 2);
    }

    #[test]
    fn absent_tuple_has_no_witnesses() {
        let (s, db) = setup();
        let e = Expr::base("Names").project(&["Name"]);
        let ws = explain(&e, &s, &db, &Tuple::from([Value::text("zoe")])).unwrap();
        assert!(ws.is_empty());
    }

    #[test]
    fn selection_preserves_witness() {
        let (s, db) = setup();
        let e = Expr::base("Names").select(Predicate::col_eq_lit("Name", "bob"));
        let t = Tuple::from([Value::Int(2), Value::text("bob")]);
        let ws = explain(&e, &s, &db, &t).unwrap();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].len(), 1);
    }

    #[test]
    fn aggregate_witness_merges_all_group_members() {
        use mm_expr::AggSpec;
        let (s, db) = setup();
        // count addresses per city: 'rome' has two contributing rows
        let e = Expr::base("Addresses").aggregate(&["City"], vec![AggSpec::count("n")]);
        let target = Tuple::from([Value::text("rome"), Value::Int(2)]);
        let ws = explain(&e, &s, &db, &target).unwrap();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].len(), 2, "both rome rows witness the count");
    }

    #[test]
    fn literal_rows_have_empty_witness() {
        let (s, db) = setup();
        let e = Expr::literal_row(&["c"], vec![Lit::text("US")]);
        let ws = explain(&e, &s, &db, &Tuple::from([Value::text("US")])).unwrap();
        assert_eq!(ws.len(), 1);
        assert!(ws[0].is_empty());
    }
}
