//! The mapping runtime (§5 of the paper).
//!
//! "The runtime system does not simply execute queries over mappings. It
//! must also propagate updates, notifications, exceptions, and access
//! rights, and provide other services, such as debugging, synchronization,
//! and provenance." This crate supplies those services over the engine's
//! view-defined mappings:
//!
//! * [`mediator`] — query mediation through chains of mappings
//!   (peer-to-peer): hop-by-hop unfolding vs a collapsed (pre-composed)
//!   mapping;
//! * [`updates`] — update propagation: deltas against a view schema
//!   translated into deltas against the base;
//! * [`ivm`] — incremental view maintenance for materialized targets
//!   (the "Notifications" service): delta rules for monotone algebra,
//!   full recompute fallback otherwise;
//! * [`provenance`] — why-provenance: the base tuples that witness a
//!   target tuple;
//! * [`errors`] — error translation: base-level integrity violations
//!   re-expressed in the context of the mapped (target) schema;
//! * [`batch`] — batch loading through a mapping into base relations.

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod access;
pub mod batch;
pub mod debugger;
pub mod errors;
pub mod indexing;
pub mod ivm;
pub mod mediator;
pub mod provenance;
pub mod sync;
pub mod triggers;
pub mod updates;

pub use access::{check_query, compile_policy, AccessPolicy, AccessRule, AccessViolation};
pub use batch::{batch_load, batch_load_governed};
pub use indexing::{advise_indexes, IndexRecommendation, IndexUse};
pub use errors::{translate_violations, TargetError};
pub use debugger::{trace, Trace, TraceStep};
pub use ivm::{
    maintain_insertions, maintain_insertions_governed, maintain_insertions_traced,
    maintain_insertions_with_plan, view_insert_delta, view_insert_delta_governed, Delta,
    MaintenancePlan, MaintenanceReport, MaintenanceStrategy,
};
pub use mediator::{
    MediationExplain, MediationMode, MediationPlan, MediationResult, Mediator,
};
pub use provenance::{explain, explain_traced, Witness};
pub use sync::{run_sync, translate_rules, SyncRule, SyncStats, TranslatedRule};
pub use triggers::{compile_triggers, fire_triggers, CompiledTrigger, Firing, Trigger};
pub use updates::{propagate, UpdateError};
