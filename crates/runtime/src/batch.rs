//! Batch loading (§5): "since most database systems have a high
//! performance interface for batch loading, in many scenarios it would be
//! more efficient to load data directly into S rather than through T.
//! This requires transforming the data to be loaded via mapST into the
//! format required by S's loader."
//!
//! The loader takes a staged batch formatted for the *target* (entity)
//! schema, pushes it through the update views once, and appends the
//! resulting table rows to the base database — bypassing per-row update
//! propagation.

use mm_eval::{materialize_views_governed, EvalError};
use mm_expr::ViewSet;
use mm_guard::{ExecBudget, Governor};
use mm_instance::Database;
use mm_metamodel::Schema;

/// Statistics of one batch load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadStats {
    /// Rows staged on the entity side.
    pub staged: usize,
    /// Rows appended to base tables (after dedup against existing rows).
    pub loaded: usize,
}

/// Transform `batch` (an instance of the entity schema) through the
/// update views and append the rows to `base_db`.
pub fn batch_load(
    update_views: &ViewSet,
    entity_schema: &Schema,
    batch: &Database,
    base_db: &mut Database,
) -> Result<LoadStats, EvalError> {
    batch_load_governed(update_views, entity_schema, batch, base_db, &ExecBudget::unbounded())
}

/// Budgeted variant of [`batch_load`]: the view transformation and the
/// per-row append both accrue against the budget, so an oversized or
/// adversarial batch trips a typed error instead of loading unboundedly.
/// The base database is only mutated after the transformation succeeds in
/// full, so a budget trip leaves it untouched.
pub fn batch_load_governed(
    update_views: &ViewSet,
    entity_schema: &Schema,
    batch: &Database,
    base_db: &mut Database,
    budget: &ExecBudget,
) -> Result<LoadStats, EvalError> {
    let mut gov = Governor::new(budget);
    let staged = batch.total_tuples();
    let tables = materialize_views_governed(update_views, entity_schema, batch, &mut gov)?;
    // Charge the whole append before touching the base database.
    let append_rows: usize = tables.relations().map(|(_, r)| r.len()).sum();
    gov.rows_n(append_rows as u64).map_err(EvalError::Exec)?;
    let mut loaded = 0usize;
    for (name, rel) in tables.relations() {
        for t in rel.iter() {
            if let Some(target) = base_db.relation_mut(name) {
                if target.insert(t.clone()) {
                    loaded += 1;
                }
            } else {
                let mut r = mm_instance::Relation::new(rel.schema.clone());
                r.insert(t.clone());
                base_db.insert_relation(name, r);
                loaded += 1;
            }
        }
    }
    Ok(LoadStats { staged, loaded })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_expr::{entity_extent, Expr, Mapping, MappingConstraint};
    use mm_instance::Value;
    use mm_metamodel::{DataType, SchemaBuilder};
    use mm_transgen::{parse_fragments, update_views};

    #[test]
    fn batch_flows_through_mapping_and_dedups() {
        let er = SchemaBuilder::new("ER")
            .entity("Person", &[("Id", DataType::Int), ("Name", DataType::Text)])
            .key("Person", &["Id"])
            .build()
            .unwrap();
        let rel = SchemaBuilder::new("SQL")
            .relation("HR", &[("Id", DataType::Int), ("Name", DataType::Text)])
            .build()
            .unwrap();
        let m = Mapping::with_constraints(
            "ER",
            "SQL",
            vec![MappingConstraint::ExprEq {
                source: entity_extent(&er, "Person").unwrap().project(&["Id", "Name"]),
                target: Expr::base("HR"),
            }],
        );
        let frags = parse_fragments(&er, &rel, &m).unwrap();
        let uv = update_views(&er, &rel, &frags).unwrap();

        let mut base = Database::empty_of(&rel);
        base.insert(
            "HR",
            mm_instance::Tuple::from([Value::Int(1), Value::text("pat")]),
        );

        let mut batch = Database::empty_of(&er);
        batch.insert_entity("Person", "Person", vec![Value::Int(1), Value::text("pat")]); // dup
        batch.insert_entity("Person", "Person", vec![Value::Int(2), Value::text("eve")]);

        let stats = batch_load(&uv, &er, &batch, &mut base).unwrap();
        assert_eq!(stats.staged, 2);
        assert_eq!(stats.loaded, 1); // only eve is new
        assert_eq!(base.relation("HR").unwrap().len(), 2);
    }
}
